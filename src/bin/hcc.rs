//! `hcc` — command-line front end for differentially private
//! hierarchical count-of-counts releases.
//!
//! ```text
//! hcc generate --kind housing --scale 0.01 --seed 7 --out-dir data/
//!     writes hierarchy.csv, groups.csv, entities.csv
//!
//! hcc release  --hierarchy data/hierarchy.csv --groups data/groups.csv \
//!              --entities data/entities.csv --epsilon 1.0 \
//!              [--method hc|hc-l2|hg|naive|adaptive] [--bound 100000] [--seed 42] \
//!              --out release.csv
//!     runs Algorithm 1 and writes the consistent private release
//!
//! hcc stats    --hierarchy data/hierarchy.csv --release release.csv \
//!              [--region NAME]
//!     prints group-size statistics of a (released) table
//!
//! hcc stats    --addr 127.0.0.1:7878 [--watch SECS] [--raw]
//!     fetches the METRICS exposition from a running server and
//!     renders a live telemetry summary (--raw dumps the Prometheus
//!     text verbatim; --watch repeats every SECS seconds)
//!
//! hcc trace    --addr 127.0.0.1:7878 --out trace.json
//!     drains the server's span recorder (requires `hcc serve
//!     --trace N`) and writes Chrome-trace JSON for chrome://tracing
//!
//! hcc evaluate --hierarchy data/hierarchy.csv --release release.csv \
//!              --truth truth.csv
//!     prints per-level earth-mover's distance between two releases
//!
//! hcc serve    --addr 127.0.0.1:7878 --threads 4
//!     boots the hcc-engine job server (bounded queue, worker pool,
//!     result cache) and serves release requests over TCP — an epoll
//!     reactor speaking both the framed protocol and the legacy line
//!     protocol on one port (--legacy-wire restores the blocking
//!     thread-per-connection server)
//!
//! hcc submit   --addr 127.0.0.1:7878 --hierarchy data/hierarchy.csv \
//!              --groups data/groups.csv --entities data/entities.csv \
//!              --epsilon 1.0 --out release.csv
//!     submits one release to a running server and fetches the result
//!     (framed protocol; --line-protocol uses the legacy text wire)
//!
//! hcc prepare  --addr 127.0.0.1:7878 --hierarchy data/hierarchy.csv \
//!              --groups data/groups.csv --entities data/entities.csv
//!     loads the tables into the server's prepared-dataset registry
//!     once and prints the content-addressed handle
//!
//! hcc sweep    --addr 127.0.0.1:7878 --handle ds-... \
//!              --eps 0.1,0.5,1,2 --out-dir sweeps/
//!     batch-submits an ε grid over one prepared handle on one
//!     connection, streaming per-ε results as they complete
//!
//! hcc derive   --addr 127.0.0.1:7878 --handle ds-... --delta delta.csv \
//!              [--append]
//!     applies a delta table (op,region,size,new_size,count) to a
//!     prepared dataset server-side and prints the derived handle;
//!     --append also drops one reference on the parent (rolling
//!     update)
//!
//! hcc unprepare --addr 127.0.0.1:7878 --handle ds-...
//!     drops one reference to a prepared dataset
//! ```

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use hccount::consistency::{
    from_csv as release_from_csv, to_csv as release_to_csv, top_down_release, HierarchicalCounts,
    TopDownConfig,
};
use hccount::core::{emd, size_stats};
use hccount::data::{Dataset, DatasetKind};
use hccount::engine::{
    level_method, protocol::SubmitParams, serve_blocking_with, serve_reactor, Client,
    DatasetHandle, Engine, EngineConfig, MuxClient, ReactorConfig, RetryPolicy, ServeConfig,
};
use hccount::hierarchy::{hierarchy_from_csv, Hierarchy};
use hccount::tables::CsvLoader;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "release" => cmd_release(&opts),
        "stats" => cmd_stats(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "prepare" => cmd_prepare(&opts),
        "sweep" => cmd_sweep(&opts),
        "derive" => cmd_derive(&opts),
        "unprepare" => cmd_unprepare(&opts),
        "trace" => cmd_trace(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hcc generate --kind housing|race-white|race-hawaiian|taxi [--scale F] [--seed N] --out-dir DIR
  hcc release  --hierarchy F --groups F --entities F --epsilon F [--method hc|hc-l2|hg|naive|adaptive]
               [--bound N] [--seed N] [--threads N] --out F
  hcc stats    --hierarchy F --release F [--region NAME]
  hcc stats    --addr HOST:PORT [--watch SECS] [--raw]
  hcc evaluate --hierarchy F --release F --truth F
  hcc serve    --addr HOST:PORT [--threads N] [--queue N] [--cache N]
               [--prepared N] [--read-timeout SECS (0 disables, default 30)]
               [--trace N (span-recorder capacity per worker, default 0 = off)]
               [--connections N] [--inflight N] [--bulk-inflight N] [--park N]
               [--store F.hcc (durable dataset store + WAL'd budget ledger)]
               [--budget-cap EPS (per-dataset cumulative ε ceiling)]
               [--legacy-wire (blocking thread-per-connection server)]
  hcc submit   --addr HOST:PORT --hierarchy F --groups F --entities F --epsilon F
               [--method hc|hc-l2|hg|naive|adaptive] [--bound N] [--seed N] [--out F]
               [--line-protocol (legacy text wire instead of framed)]
               [--no-retry (fail on the first BUSY shed instead of backing off)]
  hcc prepare  --addr HOST:PORT --hierarchy F --groups F --entities F
  hcc sweep    --addr HOST:PORT --eps F,F,... (--handle ds-HEX | --hierarchy F --groups F --entities F)
               [--method hc|hc-l2|hg|naive|adaptive] [--bound N] [--seed N] [--out-dir DIR]
               [--line-protocol (sequential text wire instead of pipelined frames)]
               [--no-retry (fail on the first BUSY shed instead of backing off)]
  hcc derive   --addr HOST:PORT --handle ds-HEX --delta F [--append]
  hcc unprepare --addr HOST:PORT --handle ds-HEX
  hcc trace    --addr HOST:PORT [--out F (default stdout)]

environment:
  HCC_THREADS  default for --threads: estimator parallelism in `release`,
               worker-pool size in `serve` (a fixed seed gives the same
               release at every thread count)
  HCC_SCALE, HCC_RUNS, HCC_SEED, HCC_BOUND, HCC_OUT
               experiment-harness knobs honoured by the hcc-bench binaries";

type Opts = HashMap<String, String>;

/// Options that are bare flags (present/absent) rather than
/// `--key value` pairs.
const FLAGS: &[&str] = &["append", "raw", "legacy-wire", "line-protocol", "no-retry"];

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got {key:?}"))?;
        if FLAGS.contains(&key) {
            opts.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{key} requires a value"))?;
        opts.insert(key.to_string(), value.clone());
    }
    Ok(opts)
}

fn required<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn parsed<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse {v:?}")),
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

fn write(path: &Path, content: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    std::fs::write(path, content).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// Loads hierarchy + the two row tables and aggregates to consistent
/// per-node histograms. Every IO or parse failure names the file it
/// came from.
fn load_all(opts: &Opts) -> Result<(Hierarchy, HierarchicalCounts), String> {
    let hierarchy_path = required(opts, "hierarchy")?;
    let (hierarchy, _) =
        hierarchy_from_csv(&read(hierarchy_path)?).map_err(|e| format!("{hierarchy_path}: {e}"))?;
    let mut loader = CsvLoader::new(&hierarchy);
    loader
        .load_groups_file(required(opts, "groups")?)
        .map_err(|e| e.to_string())?;
    loader
        .load_entities_file(required(opts, "entities")?)
        .map_err(|e| e.to_string())?;
    let db = loader.finish();
    let data = HierarchicalCounts::from_node_histograms(&hierarchy, db.node_histograms(&hierarchy))
        .map_err(|e| e.to_string())?;
    Ok((hierarchy, data))
}

/// `--no-retry` turns BUSY backpressure into an immediate failure;
/// the default is the bounded jittered backoff ladder.
fn retry_policy(opts: &Opts) -> RetryPolicy {
    if opts.contains_key("no-retry") {
        RetryPolicy::disabled()
    } else {
        RetryPolicy::default()
    }
}

/// Resolves `--threads`, falling back to `HCC_THREADS`, then `default`.
fn threads_opt(opts: &Opts, default: usize) -> Result<usize, String> {
    let n = match opts.get("threads") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--threads: cannot parse {v:?}"))?,
        None => match std::env::var("HCC_THREADS") {
            Ok(v) => v
                .parse()
                .map_err(|_| format!("HCC_THREADS: cannot parse {v:?}"))?,
            Err(_) => default,
        },
    };
    if n == 0 {
        return Err("thread count must be at least 1".to_string());
    }
    Ok(n)
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let kind = match required(opts, "kind")? {
        "housing" => DatasetKind::Housing,
        "race-white" => DatasetKind::RaceWhite,
        "race-hawaiian" => DatasetKind::RaceHawaiian,
        "taxi" => DatasetKind::Taxi,
        other => return Err(format!("unknown dataset kind {other:?}")),
    };
    let scale: f64 = parsed(opts, "scale", 0.01)?;
    let seed: u64 = parsed(opts, "seed", 42)?;
    let out_dir = PathBuf::from(required(opts, "out-dir")?);
    let ds = Dataset::generate(kind, scale, seed);

    // Emit the hierarchy plus groups/entities rows from the leaf
    // histograms (shared with tests and benches via `to_csv_tables`).
    let (hierarchy_csv, groups, entities) = ds.to_csv_tables();
    write(&out_dir.join("hierarchy.csv"), &hierarchy_csv)?;
    write(&out_dir.join("groups.csv"), &groups)?;
    write(&out_dir.join("entities.csv"), &entities)?;
    let stats = ds.stats();
    println!(
        "wrote {} regions, {} groups, {} entities under {}",
        ds.hierarchy.num_nodes(),
        stats.groups,
        stats.entities,
        out_dir.display()
    );
    Ok(())
}

fn cmd_release(opts: &Opts) -> Result<(), String> {
    let (hierarchy, data) = load_all(opts)?;
    let epsilon: f64 = required(opts, "epsilon")?
        .parse()
        .map_err(|_| "--epsilon: not a number".to_string())?;
    let bound: u64 = parsed(opts, "bound", 100_000)?;
    let seed: u64 = parsed(opts, "seed", 42)?;
    let method = level_method(
        opts.get("method").map(String::as_str).unwrap_or("hc"),
        bound,
    )?;
    let threads = threads_opt(opts, 1)?;
    let cfg = TopDownConfig::new(epsilon)
        .with_method(method)
        .with_parallelism(threads);
    let mut rng = StdRng::seed_from_u64(seed);
    let released =
        top_down_release(&hierarchy, &data, &cfg, &mut rng).map_err(|e| e.to_string())?;
    let out = PathBuf::from(required(opts, "out")?);
    write(&out, &release_to_csv(&hierarchy, &released))?;
    println!(
        "released {} regions under ε = {epsilon} ({}) to {}",
        hierarchy.num_nodes(),
        method.name(),
        out.display()
    );
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), String> {
    // `--addr` switches to live-server telemetry; without it this is
    // the original file-based group-size report.
    if opts.contains_key("addr") {
        return cmd_stats_server(opts);
    }
    let (hierarchy, _) =
        hierarchy_from_csv(&read(required(opts, "hierarchy")?)?).map_err(|e| e.to_string())?;
    let release = release_from_csv(&hierarchy, &read(required(opts, "release")?)?)
        .map_err(|e| e.to_string())?;
    let nodes: Vec<_> = match opts.get("region") {
        Some(name) => {
            let node = hierarchy
                .iter()
                .find(|&n| hierarchy.name(n) == name)
                .ok_or_else(|| format!("unknown region {name:?}"))?;
            vec![node]
        }
        None => hierarchy.iter().collect(),
    };
    println!(
        "{:<20} {:>10} {:>12} {:>9} {:>9} {:>8} {:>10}",
        "region", "groups", "entities", "mean", "median", "max", "skewness"
    );
    for node in nodes {
        let h = release.node(node);
        match size_stats(h) {
            Some(s) => println!(
                "{:<20} {:>10} {:>12} {:>9.2} {:>9} {:>8} {:>10.2}",
                hierarchy.name(node),
                s.groups,
                s.entities,
                s.mean,
                s.median,
                s.max,
                s.skewness
            ),
            None => println!("{:<20} {:>10}", hierarchy.name(node), 0),
        }
    }
    Ok(())
}

/// Live-server telemetry: fetches the `METRICS` exposition and
/// renders a summary (or dumps it verbatim with `--raw`). `--watch N`
/// repeats every N seconds on the same connection until killed.
fn cmd_stats_server(opts: &Opts) -> Result<(), String> {
    let addr = required(opts, "addr")?;
    let raw = opts.contains_key("raw");
    let watch_secs: u64 = parsed(opts, "watch", 0)?;
    let mut client = Client::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    loop {
        let text = client
            .metrics()
            .map_err(|e| format!("talking to {addr}: {e}"))?;
        if raw {
            print!("{text}");
        } else {
            print!("{}", render_metrics_summary(&text));
        }
        if watch_secs == 0 {
            break;
        }
        println!();
        std::thread::sleep(std::time::Duration::from_secs(watch_secs));
    }
    let _ = client.quit();
    Ok(())
}

/// Parses Prometheus text exposition into `full-series-name → value`
/// (labels kept verbatim in the key), skipping `#` comment lines.
fn parse_exposition(text: &str) -> HashMap<String, f64> {
    let mut map = HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<f64>() {
                map.insert(name.to_string(), v);
            }
        }
    }
    map
}

/// Renders the human summary of one METRICS exposition: job/cache
/// counters, scheduler totals (summed over per-worker series), and a
/// per-stage latency table from the derived quantile gauges.
fn render_metrics_summary(text: &str) -> String {
    let m = parse_exposition(text);
    let get = |name: &str| m.get(name).copied().unwrap_or(0.0);
    // Per-worker counters carry a `{worker="i"}` label; sum them.
    let sum_labeled = |prefix: &str| -> f64 {
        m.iter()
            .filter(|(k, _)| k.starts_with(prefix) && k.as_bytes().get(prefix.len()) == Some(&b'{'))
            .map(|(_, v)| v)
            .sum()
    };
    let mut out = String::new();
    out.push_str(&format!(
        "jobs      submitted {}  completed {}  failed {}  queued {}\n",
        get("hcc_jobs_submitted_total"),
        get("hcc_jobs_completed_total"),
        get("hcc_jobs_failed_total"),
        get("hcc_queue_depth"),
    ));
    out.push_str(&format!(
        "cache     hits {}  misses {}\n",
        get("hcc_cache_hits_total"),
        get("hcc_cache_misses_total"),
    ));
    out.push_str(&format!(
        "datasets  registry {}  prepared {}  derived {}\n",
        get("hcc_prepared_datasets"),
        get("hcc_datasets_prepared_total"),
        get("hcc_datasets_derived_total"),
    ));
    out.push_str(&format!(
        "workers   {}  uptime {:.1}s  trace spans dropped {}\n",
        get("hcc_workers"),
        get("hcc_uptime_seconds"),
        get("hcc_trace_spans_dropped_total"),
    ));
    out.push_str(&format!(
        "wire      conns {} active ({} accepted, {} rejected, {} legacy)  \
         frames {} in / {} out  busy {}  parked {}\n",
        get("hcc_wire_connections_active"),
        get("hcc_wire_connections_accepted_total"),
        get("hcc_wire_connections_rejected_total"),
        get("hcc_wire_legacy_connections_total"),
        get("hcc_wire_frames_in_total"),
        get("hcc_wire_frames_out_total"),
        get("hcc_wire_backpressure_total"),
        get("hcc_wire_parked_requests"),
    ));
    out.push_str(&format!(
        "tasks     executed {}  stolen {}\n",
        sum_labeled("hcc_tasks_executed_total"),
        sum_labeled("hcc_tasks_stolen_total"),
    ));
    out.push_str(&format!(
        "steals    attempts {}  successes {}  failed probes {}\n",
        sum_labeled("hcc_steal_attempts_total"),
        sum_labeled("hcc_steal_successes_total"),
        sum_labeled("hcc_steal_failed_probes_total"),
    ));
    out.push_str(&format!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}\n",
        "stage", "count", "p50", "p95", "p99"
    ));
    let fmt_latency = |secs: f64| -> String {
        if secs >= 1.0 {
            format!("{secs:.2}s")
        } else if secs >= 1e-3 {
            format!("{:.2}ms", secs * 1e3)
        } else if secs >= 1e-6 {
            format!("{:.2}us", secs * 1e6)
        } else {
            format!("{:.0}ns", secs * 1e9)
        }
    };
    let stage_row = |label: &str, series: &str, labels: &str| {
        let sep = if labels.is_empty() { "" } else { "," };
        let count = get(&format!(
            "{series}_count{}",
            if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            }
        ));
        if count == 0.0 {
            return String::new();
        }
        let q = |qs: &str| {
            fmt_latency(get(&format!(
                "{series}_quantile{{{labels}{sep}q=\"{qs}\"}}"
            )))
        };
        format!(
            "{label:<22} {count:>10} {:>10} {:>10} {:>10}\n",
            q("0.5"),
            q("0.95"),
            q("0.99")
        )
    };
    for (label, series) in [
        ("queue_wait", "hcc_queue_wait_seconds"),
        ("expand", "hcc_expand_seconds"),
        ("gate_wait", "hcc_gate_wait_seconds"),
        ("task", "hcc_task_seconds"),
        ("finalize", "hcc_finalize_seconds"),
        ("worker_idle", "hcc_worker_idle_seconds"),
    ] {
        out.push_str(&stage_row(label, series, ""));
    }
    for method in ["hc", "hc_l2", "hg", "naive", "adaptive"] {
        out.push_str(&stage_row(
            &format!("estimate[{method}]"),
            "hcc_estimate_seconds",
            &format!("method=\"{method}\""),
        ));
    }
    out
}

/// Drains a running server's span recorder and writes Chrome-trace
/// JSON (load in `chrome://tracing` or Perfetto). Requires the server
/// to have been started with `--trace N`; with the recorder off the
/// dump is valid but empty.
fn cmd_trace(opts: &Opts) -> Result<(), String> {
    let addr = required(opts, "addr")?;
    let mut client = Client::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let spans = client
        .trace()
        .map_err(|e| format!("talking to {addr}: {e}"))?;
    let json = hccount::engine::chrome_trace_json(&spans);
    match opts.get("out") {
        Some(out) => {
            let out = PathBuf::from(out);
            write(&out, &json)?;
            println!("{} spans written to {}", spans.len(), out.display());
        }
        None => println!("{json}"),
    }
    let _ = client.quit();
    Ok(())
}

/// Boots the hcc-engine worker pool and serves it over TCP until
/// killed. Prints one `listening` line (with the actual port, so
/// `--addr host:0` is scriptable) before blocking.
fn cmd_serve(opts: &Opts) -> Result<(), String> {
    let addr = required(opts, "addr")?;
    let default_workers = std::thread::available_parallelism().map_or(2, |n| n.get());
    let workers = threads_opt(opts, default_workers)?;
    if opts.contains_key("job-threads") {
        // The engine runs one work-stealing pool; there is no hidden
        // per-job thread spawn left to size.
        return Err(
            "--job-threads was removed: the engine runs a single work-stealing pool \
             sized by --threads/HCC_THREADS"
                .into(),
        );
    }
    let queue: usize = parsed(opts, "queue", 64)?;
    let cache: usize = parsed(opts, "cache", 32)?;
    let prepared: usize = parsed(opts, "prepared", 16)?;
    let read_timeout_secs: u64 = parsed(opts, "read-timeout", 30)?;
    let trace: usize = parsed(opts, "trace", 0)?;
    let legacy_wire = opts.contains_key("legacy-wire");
    let inflight: usize = parsed(opts, "inflight", 256)?;
    let bulk_inflight: usize = parsed(opts, "bulk-inflight", 64)?;
    let park: usize = parsed(opts, "park", 64)?;
    let connections: usize = parsed(opts, "connections", 1024)?;
    let budget_cap: Option<f64> = match opts.get("budget-cap") {
        Some(v) => {
            let cap: f64 = v
                .parse()
                .map_err(|_| format!("--budget-cap: cannot parse {v:?}"))?;
            if !(cap.is_finite() && cap > 0.0) {
                return Err("--budget-cap must be a positive finite ε".to_string());
            }
            Some(cap)
        }
        None => None,
    };
    let mut engine_cfg = EngineConfig::default()
        .with_workers(workers)
        .with_queue_capacity(queue.max(1))
        .with_cache_capacity(cache)
        .with_prepared_capacity(prepared)
        .with_trace_capacity(trace);
    if let Some(cap) = budget_cap {
        engine_cfg = engine_cfg.with_budget_cap(cap);
    }
    let engine = match opts.get("store") {
        Some(path) => {
            // Recovery happens inside `open` (WAL replay) and
            // `start_with_store` (fingerprint-verified reload); the
            // summary line is printed before serving so restart
            // scripts can compare budgets across a crash.
            let store = hccount::store::Store::open(Path::new(path))
                .map_err(|e| format!("opening store {path}: {e}"))?;
            println!(
                "store {path}: {} dataset(s), total spent eps={:.6}, cap {}",
                store.datasets().len(),
                store.total_spent(),
                budget_cap.map_or("off".to_string(), |c| format!("eps={c}")),
            );
            Engine::start_with_store(engine_cfg, store)
                .map_err(|e| format!("recovering store {path}: {e}"))?
        }
        None => Engine::start(engine_cfg),
    };
    // `--read-timeout 0` disables the idle disconnect.
    let read_timeout =
        (read_timeout_secs > 0).then(|| std::time::Duration::from_secs(read_timeout_secs));
    let handle = if legacy_wire {
        let serve_cfg = ServeConfig::default()
            .with_read_timeout(read_timeout)
            .with_max_connections(connections.max(1));
        serve_blocking_with(Arc::new(engine), addr, serve_cfg)
    } else {
        let reactor_cfg = ReactorConfig::default()
            .with_read_timeout(read_timeout)
            .with_max_connections(connections.max(1))
            .with_interactive_inflight(inflight.max(1))
            .with_bulk_inflight(bulk_inflight.max(1))
            .with_park_capacity(park);
        serve_reactor(Arc::new(engine), addr, reactor_cfg)
    }
    .map_err(|e| format!("binding {addr}: {e}"))?;
    println!(
        "hcc-engine listening on {} ({} wire, {workers} workers, queue {queue}, cache {cache}, \
         prepared {prepared}, read timeout {}, trace {})",
        handle.addr(),
        if legacy_wire {
            "blocking legacy".to_string()
        } else {
            format!("reactor, lanes {inflight}/{bulk_inflight} park {park}")
        },
        if read_timeout_secs > 0 {
            format!("{read_timeout_secs}s")
        } else {
            "off".to_string()
        },
        if trace > 0 {
            format!("{trace} spans/worker")
        } else {
            "off".to_string()
        }
    );
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

/// Client mode: submits one release request to a running `hcc serve`
/// and downloads the result. Speaks the framed protocol by default;
/// `--line-protocol` falls back to the legacy text wire.
fn cmd_submit(opts: &Opts) -> Result<(), String> {
    let addr = required(opts, "addr")?;
    let params = SubmitParams {
        epsilon: required(opts, "epsilon")?
            .parse()
            .map_err(|_| "--epsilon: not a number".to_string())?,
        method: opts.get("method").cloned().unwrap_or_else(|| "hc".into()),
        bound: parsed(opts, "bound", 100_000)?,
        seed: parsed(opts, "seed", 42)?,
        handle: None,
    };
    // Validate the method locally for a fast, friendly error.
    level_method(&params.method, params.bound)?;
    let hierarchy_csv = read(required(opts, "hierarchy")?)?;
    let groups_csv = read(required(opts, "groups")?)?;
    let entities_csv = read(required(opts, "entities")?)?;

    let io = |e: std::io::Error| format!("talking to {addr}: {e}");
    let (label, release) = if opts.contains_key("line-protocol") {
        let mut client = Client::connect(addr)
            .map_err(|e| format!("connecting to {addr}: {e}"))?
            .with_retry_policy(retry_policy(opts));
        let id = client
            .submit(&params, &hierarchy_csv, &groups_csv, &entities_csv)
            .map_err(io)?
            .map_err(|e| format!("server rejected the request: {e}"))?;
        let release = client
            .wait(id)
            .map_err(io)?
            .map_err(|e| format!("{id} failed: {e}"))?;
        let _ = client.quit();
        (id.to_string(), release)
    } else {
        let mut client = MuxClient::connect(addr)
            .map_err(|e| format!("connecting to {addr}: {e}"))?
            .with_retry_policy(retry_policy(opts));
        let release = client
            .submit_release(&params, &hierarchy_csv, &groups_csv, &entities_csv)
            .map_err(io)?
            .map_err(|e| format!("server rejected the request: {e}"))?;
        let _ = client.quit();
        ("submitted".to_string(), release)
    };
    match opts.get("out") {
        Some(out) => {
            let out = PathBuf::from(out);
            write(&out, &release.csv)?;
            println!(
                "{label}: {} rows ({}) written to {}",
                release.csv.lines().count().saturating_sub(1),
                if release.from_cache {
                    "cache hit"
                } else {
                    "computed"
                },
                out.display()
            );
        }
        None => print!("{}", release.csv),
    }
    Ok(())
}

/// Loads the three tables into a running server's prepared-dataset
/// registry and prints the content-addressed handle.
fn cmd_prepare(opts: &Opts) -> Result<(), String> {
    let addr = required(opts, "addr")?;
    let hierarchy_csv = read(required(opts, "hierarchy")?)?;
    let groups_csv = read(required(opts, "groups")?)?;
    let entities_csv = read(required(opts, "entities")?)?;
    let mut client = Client::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let handle = client
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .map_err(|e| format!("talking to {addr}: {e}"))?
        .map_err(|e| format!("server rejected the tables: {e}"))?;
    println!("prepared {handle}");
    let _ = client.quit();
    Ok(())
}

/// Applies a delta CSV to a prepared dataset server-side (`DERIVE`,
/// or `APPEND` with `--append`) and prints the derived handle.
fn cmd_derive(opts: &Opts) -> Result<(), String> {
    let addr = required(opts, "addr")?;
    let parent: DatasetHandle = required(opts, "handle")?.parse()?;
    let delta_path = required(opts, "delta")?;
    let delta = hccount::data::DatasetDelta::from_csv(&read(delta_path)?)
        .map_err(|e| format!("{delta_path}: {e}"))?;
    let append = opts.contains_key("append");
    let mut client = Client::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let io_err = |e: std::io::Error| format!("talking to {addr}: {e}");
    let derived = if append {
        client.append(parent, &delta)
    } else {
        client.derive(parent, &delta)
    }
    .map_err(io_err)?
    .map_err(|e| format!("server rejected the delta: {e}"))?;
    println!(
        "derived {derived} from {parent} ({} delta op(s){})",
        delta.len(),
        if append {
            ", parent reference dropped"
        } else {
            ""
        }
    );
    let _ = client.quit();
    Ok(())
}

/// Drops one reference to a prepared dataset on the server.
fn cmd_unprepare(opts: &Opts) -> Result<(), String> {
    let addr = required(opts, "addr")?;
    let handle: DatasetHandle = required(opts, "handle")?.parse()?;
    let mut client = Client::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let refs = client
        .unprepare(handle)
        .map_err(|e| format!("talking to {addr}: {e}"))?
        .map_err(|e| format!("server rejected the request: {e}"))?;
    println!("unprepared {handle} ({refs} references remain)");
    let _ = client.quit();
    Ok(())
}

/// Batch-submits an ε grid over one prepared handle on a single
/// connection. With table paths instead of `--handle`, prepares them
/// first (and unprepares on the way out). Each release is written to
/// `--out-dir/release-eps-<ε>.csv` when given; otherwise only the
/// per-ε summary lines are printed. The default wire is the framed
/// protocol with every grid point pipelined up front;
/// `--line-protocol` falls back to the legacy sequential text wire.
fn cmd_sweep(opts: &Opts) -> Result<(), String> {
    let addr = required(opts, "addr")?;
    let eps_tokens: Vec<String> = required(opts, "eps")?
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(String::from)
        .collect();
    if eps_tokens.is_empty() {
        return Err("--eps needs at least one value".to_string());
    }
    let epsilons: Vec<f64> = eps_tokens
        .iter()
        .map(|t| {
            t.parse::<f64>()
                .map_err(|_| format!("--eps: cannot parse {t:?}"))
        })
        .collect::<Result<_, _>>()?;
    let base = SubmitParams {
        epsilon: 1.0,
        method: opts.get("method").cloned().unwrap_or_else(|| "hc".into()),
        bound: parsed(opts, "bound", 100_000)?,
        seed: parsed(opts, "seed", 42)?,
        handle: None,
    };
    level_method(&base.method, base.bound)?;
    let out_dir = opts.get("out-dir").map(PathBuf::from);
    let io_err = |e: std::io::Error| format!("talking to {addr}: {e}");

    let mut failures = 0usize;
    let mut write_err: Option<String> = None;
    let mut point = 0usize;
    // Shared per-point reporting for both wire protocols. The token is
    // positional — value-matching would alias distinct tokens that
    // parse equal (`--eps 1,1.0`) and silently skip an output file.
    let mut on_point = |epsilon: f64, result: Result<hccount::engine::FetchedRelease, String>| {
        let token = eps_tokens
            .get(point)
            .cloned()
            .unwrap_or_else(|| epsilon.to_string());
        point += 1;
        match result {
            Ok(release) => {
                let rows = release.csv.lines().count().saturating_sub(1);
                let source = if release.from_cache {
                    "cache hit"
                } else {
                    "computed"
                };
                match &out_dir {
                    Some(dir) => {
                        let path = dir.join(format!("release-eps-{token}.csv"));
                        match write(&path, &release.csv) {
                            Ok(()) => {
                                println!(
                                    "eps={token}: {rows} rows ({source}) -> {}",
                                    path.display()
                                )
                            }
                            Err(e) => {
                                failures += 1;
                                write_err.get_or_insert(e);
                            }
                        }
                    }
                    None => println!("eps={token}: {rows} rows ({source})"),
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("eps={token}: failed: {e}");
            }
        }
    };

    if opts.contains_key("line-protocol") {
        let mut client = Client::connect(addr)
            .map_err(|e| format!("connecting to {addr}: {e}"))?
            .with_retry_policy(retry_policy(opts));
        let (handle, auto_prepared) = match opts.get("handle") {
            Some(h) => (h.parse::<DatasetHandle>()?, false),
            None => {
                let hierarchy_csv = read(required(opts, "hierarchy")?)?;
                let groups_csv = read(required(opts, "groups")?)?;
                let entities_csv = read(required(opts, "entities")?)?;
                let handle = client
                    .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
                    .map_err(io_err)?
                    .map_err(|e| format!("server rejected the tables: {e}"))?;
                println!("prepared {handle}");
                (handle, true)
            }
        };
        client
            .sweep(&base, handle, &epsilons, &mut on_point)
            .map_err(io_err)?;
        if auto_prepared {
            let _ = client.unprepare(handle);
        }
        let _ = client.quit();
    } else {
        // Framed wire: every grid point is pipelined up front on one
        // connection; the server computes them concurrently and the
        // responses come back matched by request id.
        let mut client = MuxClient::connect(addr)
            .map_err(|e| format!("connecting to {addr}: {e}"))?
            .with_retry_policy(retry_policy(opts));
        let (handle, auto_prepared) = match opts.get("handle") {
            Some(h) => (h.parse::<DatasetHandle>()?, false),
            None => {
                let hierarchy_csv = read(required(opts, "hierarchy")?)?;
                let groups_csv = read(required(opts, "groups")?)?;
                let entities_csv = read(required(opts, "entities")?)?;
                let handle = client
                    .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
                    .map_err(io_err)?
                    .map_err(|e| format!("server rejected the tables: {e}"))?;
                println!("prepared {handle}");
                (handle, true)
            }
        };
        let points = client.sweep(&base, handle, &epsilons).map_err(io_err)?;
        for p in points {
            on_point(p.epsilon, p.outcome);
        }
        if auto_prepared {
            let _ = client.unprepare(handle);
        }
        let _ = client.quit();
    }

    if let Some(e) = write_err {
        return Err(e);
    }
    if failures > 0 {
        return Err(format!(
            "{failures} of {} sweep points failed",
            epsilons.len()
        ));
    }
    Ok(())
}

fn cmd_evaluate(opts: &Opts) -> Result<(), String> {
    let (hierarchy, _) =
        hierarchy_from_csv(&read(required(opts, "hierarchy")?)?).map_err(|e| e.to_string())?;
    let a = release_from_csv(&hierarchy, &read(required(opts, "release")?)?)
        .map_err(|e| e.to_string())?;
    let b = release_from_csv(&hierarchy, &read(required(opts, "truth")?)?)
        .map_err(|e| e.to_string())?;
    println!("{:<8} {:>8} {:>16}", "level", "nodes", "avg EMD/node");
    for l in 0..hierarchy.num_levels() {
        let nodes = hierarchy.level(l);
        let total: u64 = nodes
            .iter()
            .map(|&n| {
                hccount::core::try_emd(a.node(n), b.node(n))
                    .unwrap_or_else(|_| a.node(n).num_entities().abs_diff(b.node(n).num_entities()))
            })
            .sum();
        println!(
            "{:<8} {:>8} {:>16.2}",
            l,
            nodes.len(),
            total as f64 / nodes.len() as f64
        );
    }
    let _ = emd; // re-exported for doc completeness
    Ok(())
}
