//! `hcc` — command-line front end for differentially private
//! hierarchical count-of-counts releases.
//!
//! ```text
//! hcc generate --kind housing --scale 0.01 --seed 7 --out-dir data/
//!     writes hierarchy.csv, groups.csv, entities.csv
//!
//! hcc release  --hierarchy data/hierarchy.csv --groups data/groups.csv \
//!              --entities data/entities.csv --epsilon 1.0 \
//!              [--method hc|hg|adaptive] [--bound 100000] [--seed 42] \
//!              --out release.csv
//!     runs Algorithm 1 and writes the consistent private release
//!
//! hcc stats    --hierarchy data/hierarchy.csv --release release.csv \
//!              [--region NAME]
//!     prints group-size statistics of a (released) table
//!
//! hcc evaluate --hierarchy data/hierarchy.csv --release release.csv \
//!              --truth truth.csv
//!     prints per-level earth-mover's distance between two releases
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hccount::consistency::{
    from_csv as release_from_csv, to_csv as release_to_csv, top_down_release, HierarchicalCounts,
    LevelMethod, TopDownConfig,
};
use hccount::core::{emd, size_stats};
use hccount::data::{Dataset, DatasetKind};
use hccount::hierarchy::{hierarchy_from_csv, hierarchy_to_csv, Hierarchy};
use hccount::tables::CsvLoader;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "release" => cmd_release(&opts),
        "stats" => cmd_stats(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hcc generate --kind housing|race-white|race-hawaiian|taxi [--scale F] [--seed N] --out-dir DIR
  hcc release  --hierarchy F --groups F --entities F --epsilon F [--method hc|hg|adaptive]
               [--bound N] [--seed N] --out F
  hcc stats    --hierarchy F --release F [--region NAME]
  hcc evaluate --hierarchy F --release F --truth F";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got {key:?}"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("--{key} requires a value"))?;
        opts.insert(key.to_string(), value.clone());
    }
    Ok(opts)
}

fn required<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{key}"))
}

fn parsed<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse {v:?}")),
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

fn write(path: &Path, content: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    std::fs::write(path, content).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// Loads hierarchy + the two row tables and aggregates to consistent
/// per-node histograms.
fn load_all(opts: &Opts) -> Result<(Hierarchy, HierarchicalCounts), String> {
    let (hierarchy, _) =
        hierarchy_from_csv(&read(required(opts, "hierarchy")?)?).map_err(|e| e.to_string())?;
    let mut loader = CsvLoader::new(&hierarchy);
    loader
        .load_groups(&read(required(opts, "groups")?)?)
        .map_err(|e| e.to_string())?;
    loader
        .load_entities(&read(required(opts, "entities")?)?)
        .map_err(|e| e.to_string())?;
    let db = loader.finish();
    let data = HierarchicalCounts::from_node_histograms(&hierarchy, db.node_histograms(&hierarchy))
        .map_err(|e| e.to_string())?;
    Ok((hierarchy, data))
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let kind = match required(opts, "kind")? {
        "housing" => DatasetKind::Housing,
        "race-white" => DatasetKind::RaceWhite,
        "race-hawaiian" => DatasetKind::RaceHawaiian,
        "taxi" => DatasetKind::Taxi,
        other => return Err(format!("unknown dataset kind {other:?}")),
    };
    let scale: f64 = parsed(opts, "scale", 0.01)?;
    let seed: u64 = parsed(opts, "seed", 42)?;
    let out_dir = PathBuf::from(required(opts, "out-dir")?);
    let ds = Dataset::generate(kind, scale, seed);

    write(
        &out_dir.join("hierarchy.csv"),
        &hierarchy_to_csv(&ds.hierarchy),
    )?;

    // Emit groups/entities rows from the leaf histograms.
    let mut groups = String::from("group_id,region_name\n");
    let mut entities = String::from("entity_id,group_id\n");
    let mut gid = 0u64;
    let mut eid = 0u64;
    for leaf in ds.hierarchy.leaves() {
        let name = ds.hierarchy.name(leaf);
        for run in ds.data.node(leaf).to_unattributed().runs() {
            for _ in 0..run.count {
                groups.push_str(&format!("g{gid},{name}\n"));
                for _ in 0..run.size {
                    entities.push_str(&format!("e{eid},g{gid}\n"));
                    eid += 1;
                }
                gid += 1;
            }
        }
    }
    write(&out_dir.join("groups.csv"), &groups)?;
    write(&out_dir.join("entities.csv"), &entities)?;
    println!(
        "wrote {} regions, {gid} groups, {eid} entities under {}",
        ds.hierarchy.num_nodes(),
        out_dir.display()
    );
    Ok(())
}

fn cmd_release(opts: &Opts) -> Result<(), String> {
    let (hierarchy, data) = load_all(opts)?;
    let epsilon: f64 = required(opts, "epsilon")?
        .parse()
        .map_err(|_| "--epsilon: not a number".to_string())?;
    let bound: u64 = parsed(opts, "bound", 100_000)?;
    let seed: u64 = parsed(opts, "seed", 42)?;
    let method = match opts.get("method").map(String::as_str).unwrap_or("hc") {
        "hc" => LevelMethod::Cumulative { bound },
        "hg" => LevelMethod::Unattributed,
        "adaptive" => LevelMethod::Adaptive { bound },
        other => return Err(format!("unknown method {other:?} (hc|hg|adaptive)")),
    };
    let cfg = TopDownConfig::new(epsilon).with_method(method);
    let mut rng = StdRng::seed_from_u64(seed);
    let released =
        top_down_release(&hierarchy, &data, &cfg, &mut rng).map_err(|e| e.to_string())?;
    let out = PathBuf::from(required(opts, "out")?);
    write(&out, &release_to_csv(&hierarchy, &released))?;
    println!(
        "released {} regions under ε = {epsilon} ({}) to {}",
        hierarchy.num_nodes(),
        method.name(),
        out.display()
    );
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let (hierarchy, _) =
        hierarchy_from_csv(&read(required(opts, "hierarchy")?)?).map_err(|e| e.to_string())?;
    let release = release_from_csv(&hierarchy, &read(required(opts, "release")?)?)
        .map_err(|e| e.to_string())?;
    let nodes: Vec<_> = match opts.get("region") {
        Some(name) => {
            let node = hierarchy
                .iter()
                .find(|&n| hierarchy.name(n) == name)
                .ok_or_else(|| format!("unknown region {name:?}"))?;
            vec![node]
        }
        None => hierarchy.iter().collect(),
    };
    println!(
        "{:<20} {:>10} {:>12} {:>9} {:>9} {:>8} {:>10}",
        "region", "groups", "entities", "mean", "median", "max", "skewness"
    );
    for node in nodes {
        let h = release.node(node);
        match size_stats(h) {
            Some(s) => println!(
                "{:<20} {:>10} {:>12} {:>9.2} {:>9} {:>8} {:>10.2}",
                hierarchy.name(node),
                s.groups,
                s.entities,
                s.mean,
                s.median,
                s.max,
                s.skewness
            ),
            None => println!("{:<20} {:>10}", hierarchy.name(node), 0),
        }
    }
    Ok(())
}

fn cmd_evaluate(opts: &Opts) -> Result<(), String> {
    let (hierarchy, _) =
        hierarchy_from_csv(&read(required(opts, "hierarchy")?)?).map_err(|e| e.to_string())?;
    let a = release_from_csv(&hierarchy, &read(required(opts, "release")?)?)
        .map_err(|e| e.to_string())?;
    let b = release_from_csv(&hierarchy, &read(required(opts, "truth")?)?)
        .map_err(|e| e.to_string())?;
    println!("{:<8} {:>8} {:>16}", "level", "nodes", "avg EMD/node");
    for l in 0..hierarchy.num_levels() {
        let nodes = hierarchy.level(l);
        let total: u64 = nodes
            .iter()
            .map(|&n| {
                hccount::core::try_emd(a.node(n), b.node(n))
                    .unwrap_or_else(|_| a.node(n).num_entities().abs_diff(b.node(n).num_entities()))
            })
            .sum();
        println!(
            "{:<8} {:>8} {:>16.2}",
            l,
            nodes.len(),
            total as f64 / nodes.len() as f64
        );
    }
    let _ = emd; // re-exported for doc completeness
    Ok(())
}
