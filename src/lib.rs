//! # hccount — Differentially Private Hierarchical Count-of-Counts Histograms
//!
//! Facade crate re-exporting the full public API of the workspace, a
//! reproduction of Kuo et al., *Differentially Private Hierarchical
//! Count-of-Counts Histograms*, PVLDB 11(12), 2018.
//!
//! ## Quickstart
//!
//! ```
//! use hccount::prelude::*;
//! use rand::SeedableRng;
//!
//! // Build a tiny hierarchy: a country with two states.
//! let mut b = HierarchyBuilder::new("country");
//! let va = b.add_child(Hierarchy::ROOT, "VA");
//! let md = b.add_child(Hierarchy::ROOT, "MD");
//! let hierarchy = b.build();
//!
//! // Attach the true (sensitive) count-of-counts histograms at the
//! // leaves; internal nodes aggregate automatically.
//! let mut data = HierarchicalCounts::from_leaves(
//!     &hierarchy,
//!     vec![
//!         (va, CountOfCounts::from_group_sizes([1, 2, 2, 4])),
//!         (md, CountOfCounts::from_group_sizes([1, 1, 3])),
//!     ],
//! ).unwrap();
//!
//! // Release ε-differentially-private, mutually consistent histograms.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 100 });
//! let released = top_down_release(&hierarchy, &data, &cfg, &mut rng).unwrap();
//!
//! // Children sum to parents and every node keeps its public G.
//! released.assert_desiderata(&hierarchy);
//! # let _ = &mut data;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hcc_consistency as consistency;
pub use hcc_core as core;
pub use hcc_data as data;
pub use hcc_engine as engine;
pub use hcc_estimators as estimators;
pub use hcc_hierarchy as hierarchy;
pub use hcc_isotonic as isotonic;
pub use hcc_noise as noise;
pub use hcc_store as store;
pub use hcc_tables as tables;

/// Convenience prelude with the most commonly used items.
pub mod prelude {
    pub use hcc_consistency::{
        bottom_up_release, top_down_release, HierarchicalCounts, LevelMethod, MergeStrategy,
        TopDownConfig,
    };
    pub use hcc_core::{emd, CountOfCounts, Cumulative, Run, Unattributed};
    pub use hcc_data::{Dataset, DatasetDelta, DatasetKind, DeltaOp};
    pub use hcc_engine::{DatasetHandle, Engine, EngineConfig, JobStatus, ReleaseRequest};
    pub use hcc_estimators::{
        CumulativeEstimator, Estimator, NaiveEstimator, UnattributedEstimator,
    };
    pub use hcc_hierarchy::{Hierarchy, HierarchyBuilder, NodeId};
    pub use hcc_noise::{GeometricMechanism, LaplaceMechanism, PrivacyBudget};
}
