#!/usr/bin/env bash
# Runs the criterion benches with a pinned noise seed and emits
# BENCH_<n>.json — one "median ns/iter" entry per bench label — so
# the perf trajectory across PRs is machine-readable.
#
# Usage:
#   scripts/bench.sh              # run benches, write BENCH_10.json
#   scripts/bench.sh --smoke      # CI mode: compile benches, run a
#                                 # fast scaling curve + wire sweep,
#                                 # write nothing
#   PR=9 scripts/bench.sh         # write BENCH_9.json instead
#   REPS=5 scripts/bench.sh       # more release_hot_path repetitions
#
# The cheap release_hot_path bench runs REPS times (median per label);
# the broader micro suite, the engine scaling curve (8-job batch
# wall time at 1/2/4/8 workers, `engine_scaling/jobs_batch8/<w>`),
# the wire-path curve (`wire_path/sweep100/{blocking,framed}`,
# `wire_path/submit_*/c{1,64,1000}`), and the durable-store curve
# (`store_path/{cold_prepare,warm_reload,wal_append}` — the fsync
# cost of crash safety) run once. HCC_SEED pins the RNG
# stream the release_hot_path bench draws from (default 0). The
# scaling run also dumps each point's engine telemetry snapshot
# (stage latency quantiles, steal/gate counters), embedded under a
# "telemetry" key in BENCH_N.json so a scaling regression names the
# stage it grew in.
set -euo pipefail
cd "$(dirname "$0")/.."

export HCC_SEED="${HCC_SEED:-0}"
PR="${PR:-10}"
OUT="BENCH_${PR}.json"
REPS="${REPS:-3}"

# A scoreboard entry from a tree that violates the workspace
# invariants (docs/lints.md) would pin a number nobody should trust;
# refuse to emit one. Smoke mode runs the same gate so CI fails fast.
cargo run --release -q -p hcc-lint -- --deny all

if [[ "${1:-}" == "--smoke" ]]; then
  cargo bench -p hcc-bench --no-run
  # Tiny scaling curve: proves the harness runs end-to-end without
  # paying for the full measurement workload.
  HCC_SCALING_SCALE=2e-6 HCC_SCALING_BOUND=500 HCC_SCALING_REPS=1 \
    cargo run --release -q -p hcc-bench --bin scaling
  # Tiny wire curve: reactor + framed protocol end-to-end over
  # loopback, without the full 1000-connection measurement.
  HCC_WIRE_SWEEP=8 HCC_WIRE_CONNS=1,8 HCC_WIRE_OPS=2 \
    cargo run --release -q -p hcc-bench --bin engine_wire
  # Tiny store curve: WAL append + checkpoint + warm reload on real
  # files, without the full dataset count.
  HCC_STORE_DATASETS=2 HCC_STORE_NODES=32 HCC_STORE_CHARGES=8 HCC_STORE_RELOADS=2 \
    cargo run --release -q -p hcc-bench --bin store_path
  echo "bench smoke OK (benches compile; scaling + wire + store curves ran)"
  exit 0
fi

RAW=$(mktemp)
METRICS=$(mktemp)
trap 'rm -f "$RAW" "$METRICS"' EXIT

for _ in $(seq "$REPS"); do
  cargo bench -p hcc-bench --bench release_hot_path | tee -a "$RAW"
done
cargo bench -p hcc-bench --bench micro | tee -a "$RAW"
HCC_SCALING_METRICS="$METRICS" \
  cargo run --release -q -p hcc-bench --bin scaling | tee -a "$RAW"
cargo run --release -q -p hcc-bench --bin engine_wire | tee -a "$RAW"
cargo run --release -q -p hcc-bench --bin store_path | tee -a "$RAW"

python3 - "$RAW" "$OUT" "$HCC_SEED" "$REPS" "$METRICS" <<'EOF'
import json
import re
import statistics
import sys

samples = {}
with open(sys.argv[1]) as fh:
    for line in fh:
        m = re.match(r"^(\S+)\s+(\d+)\s+ns/iter\s*$", line)
        if m:
            samples.setdefault(m.group(1), []).append(int(m.group(2)))
if not samples:
    sys.exit("no bench output parsed — did the harness format change?")
doc = {
    "seed": int(sys.argv[3]),
    "reps_release_hot_path": int(sys.argv[4]),
    "unit": "ns/iter",
    "stat": "median",
    "benches": {k: int(statistics.median(v)) for k, v in sorted(samples.items())},
}
# Per-worker-count engine telemetry from the scaling run: stage
# latency attribution for the jobs_batch8 curve, keyed "scaling
# workers" -> snapshot.
try:
    with open(sys.argv[5]) as fh:
        doc["telemetry"] = {"engine_scaling/jobs_batch8": json.load(fh)}
except (OSError, ValueError):
    print("warning: no telemetry snapshot captured", file=sys.stderr)
with open(sys.argv[2], "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
print(f"wrote {sys.argv[2]} with {len(doc['benches'])} benches")
EOF
