//! Quickstart: release differentially private, hierarchically
//! consistent count-of-counts histograms for a toy two-state country.
//!
//! Run with: `cargo run --release --example quickstart`

use hccount::prelude::*;
use rand::SeedableRng;

fn main() {
    // 1. Define the region hierarchy (public knowledge).
    let mut builder = HierarchyBuilder::new("country");
    let va = builder.add_child(Hierarchy::ROOT, "virginia");
    let md = builder.add_child(Hierarchy::ROOT, "maryland");
    let hierarchy = builder.build();

    // 2. Attach the sensitive data: the multiset of household sizes in
    //    each leaf region. Internal nodes aggregate automatically.
    let data = HierarchicalCounts::from_leaves(
        &hierarchy,
        vec![
            (
                va,
                CountOfCounts::from_group_sizes([1, 1, 2, 2, 2, 3, 3, 4, 4, 5, 8]),
            ),
            (
                md,
                CountOfCounts::from_group_sizes([1, 2, 2, 3, 3, 3, 4, 6]),
            ),
        ],
    )
    .expect("leaves are leaves and the hierarchy is uniform depth");

    // 3. Configure the release: total privacy budget ε = 1.0, the
    //    paper's recommended Hc method at every level, inverse-variance
    //    weighted merging.
    let config = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 100 });

    // 4. Release. Everything after the noisy per-node estimates is
    //    post-processing, so the whole release satisfies 1.0-DP.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2018);
    let released =
        top_down_release(&hierarchy, &data, &config, &mut rng).expect("hierarchy is uniform depth");

    // 5. The output satisfies every desideratum of the problem.
    released.assert_desiderata(&hierarchy);
    for node in hierarchy.iter() {
        assert_eq!(released.groups(node), data.groups(node));
    }

    println!("released histograms (index = household size):");
    for node in hierarchy.iter() {
        println!(
            "  {:<10} true {:?}",
            hierarchy.name(node),
            data.node(node).as_slice()
        );
        println!(
            "  {:<10} priv {:?}   (EMD = {})",
            "",
            released.node(node).as_slice(),
            emd(released.node(node), data.node(node)),
        );
    }
    println!("\nchildren sum to parents, counts are integers ≥ 0, and every");
    println!("region keeps its public number of households — by construction.");
}
