//! Tour of the library's extensions beyond the paper's core
//! algorithm:
//!
//! * CSV ingest of the Entities/Groups tables ([`hccount::tables::CsvLoader`]);
//! * private estimation of the public size bound `K` (footnote 6);
//! * adaptive per-node selection between `Hc` and `Hg` (footnote 4);
//! * privatizing the Groups table itself (footnote 5);
//! * skewness/quantile queries on the released histograms — the class
//!   of analyses count-of-counts tables exist to answer.
//!
//! Run with: `cargo run --release --example extensions`

use hccount::consistency::{private_group_counts, top_down_release, LevelMethod, TopDownConfig};
use hccount::core::{kth_largest, quantile, size_stats};
use hccount::estimators::estimate_size_bound;
use hccount::hierarchy::{Hierarchy, HierarchyBuilder};
use hccount::prelude::HierarchicalCounts;
use hccount::tables::CsvLoader;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- 1. CSV ingest -------------------------------------------------
    let mut b = HierarchyBuilder::new("city");
    let north = b.add_child(Hierarchy::ROOT, "north");
    let south = b.add_child(Hierarchy::ROOT, "south");
    let hierarchy = b.build();

    let groups_csv = "\
group_id,region_name
h1,north
h2,north
h3,north
h4,south
h5,south
h6,south
h7,south";
    // Household memberships: h1 has 3 people, h2 has 1, …
    let entities_csv: String = [
        ("h1", 3u64),
        ("h2", 1),
        ("h3", 2),
        ("h4", 2),
        ("h5", 5),
        ("h6", 1),
        ("h7", 90), // a dormitory
    ]
    .iter()
    .flat_map(|&(g, n)| (0..n).map(move |i| format!("{g}-p{i},{g}")))
    .collect::<Vec<_>>()
    .join("\n");

    let mut loader = CsvLoader::new(&hierarchy);
    loader.load_groups(groups_csv).expect("well-formed groups");
    loader
        .load_entities(&entities_csv)
        .expect("well-formed entities");
    let db = loader.finish();
    println!(
        "ingested {} groups / {} entities from CSV",
        db.num_groups(),
        db.num_entities()
    );

    let data = HierarchicalCounts::from_node_histograms(&hierarchy, db.node_histograms(&hierarchy))
        .expect("aggregation is consistent");

    let mut rng = StdRng::seed_from_u64(2018);

    // --- 2. Private K estimation (footnote 6) --------------------------
    let k = estimate_size_bound(data.node(Hierarchy::ROOT), 0.05, &mut rng);
    println!("privately estimated size bound K = {k} (true max 90)");

    // --- 3. Release with adaptive per-node method selection ------------
    let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Adaptive { bound: k });
    let released = top_down_release(&hierarchy, &data, &cfg, &mut rng).expect("uniform depth");
    released.assert_desiderata(&hierarchy);

    // --- 4. Private group counts (footnote 5) --------------------------
    let true_counts: Vec<u64> = hierarchy.iter().map(|n| data.groups(n)).collect();
    let private_g = private_group_counts(&hierarchy, &true_counts, 0.5, &mut rng);
    println!(
        "private group counts: city={} north={} south={} (true {}/{}/{})",
        private_g[Hierarchy::ROOT.index()],
        private_g[north.index()],
        private_g[south.index()],
        true_counts[0],
        true_counts[1],
        true_counts[2]
    );

    // --- 5. Skewness analyses on the released table --------------------
    let h = released.node(Hierarchy::ROOT);
    let s = size_stats(h).expect("non-empty");
    println!("\nreleased city-level household statistics:");
    println!("  mean size      {:.2}", s.mean);
    println!("  median size    {}", s.median);
    println!("  90th pct size  {}", quantile(h, 0.9).unwrap());
    println!("  largest group  {}", kth_largest(h, 1).unwrap());
    println!("  skewness       {:.2}", s.skewness);
    println!("\nall computed from the ε-DP release — no further privacy cost.");
}
