//! End-to-end pipeline from *relational tables* to a private release:
//! builds the paper's Entities/Groups/Hierarchy schema row by row,
//! derives the sensitive per-node count-of-counts histograms with the
//! group-by aggregation, then releases them under ε-DP.
//!
//! This mirrors how a statistical agency would wire the library to an
//! actual microdata table.
//!
//! Run with: `cargo run --release --example relational_pipeline`

use hccount::consistency::{top_down_release, HierarchicalCounts, LevelMethod, TopDownConfig};
use hccount::core::emd;
use hccount::hierarchy::{Hierarchy, HierarchyBuilder};
use hccount::tables::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Public Hierarchy table: one country, two states, five counties.
    let mut b = HierarchyBuilder::new("country");
    let east = b.add_child(Hierarchy::ROOT, "east");
    let west = b.add_child(Hierarchy::ROOT, "west");
    let counties = [
        b.add_child(east, "e-county-0"),
        b.add_child(east, "e-county-1"),
        b.add_child(east, "e-county-2"),
        b.add_child(west, "w-county-0"),
        b.add_child(west, "w-county-1"),
    ];
    let hierarchy = b.build();

    // Private Entities table + public Groups table, inserted row by
    // row as a microdata ingest would.
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(5);
    for (i, &county) in counties.iter().enumerate() {
        let households = 200 + 80 * i as u64;
        for _ in 0..households {
            let group = db.add_group(&hierarchy, county);
            // Household sizes 1..=8, geometric-ish.
            let mut size = 1 + rng.gen_range(0..3);
            while size < 8 && rng.gen::<f64>() < 0.35 {
                size += 1;
            }
            for _ in 0..size {
                db.add_entity(group);
            }
        }
    }
    println!(
        "ingested {} groups, {} entities",
        db.num_groups(),
        db.num_entities()
    );

    // SQL-equivalent aggregation:
    //   A := SELECT group_id, COUNT(*) FROM Entities GROUP BY group_id
    //   H := SELECT size, COUNT(*) FROM A GROUP BY size   -- per region
    let hists = db.node_histograms(&hierarchy);
    let data = HierarchicalCounts::from_node_histograms(&hierarchy, hists)
        .expect("aggregation is consistent by construction");

    // Release under ε = 2 with the default Hc method.
    let cfg = TopDownConfig::new(2.0).with_method(LevelMethod::Cumulative { bound: 64 });
    let released = top_down_release(&hierarchy, &data, &cfg, &mut rng).expect("uniform depth");
    released.assert_desiderata(&hierarchy);

    println!(
        "\n{:<12} {:>8} {:>8} {:>6}",
        "region", "groups", "people", "EMD"
    );
    for node in hierarchy.iter() {
        println!(
            "{:<12} {:>8} {:>8} {:>6}",
            hierarchy.name(node),
            released.groups(node),
            released.node(node).num_entities(),
            emd(released.node(node), data.node(node))
        );
    }
    println!("\nthe public Groups table (groups per region) is preserved exactly;");
    println!("the sensitive Entities table is protected by 2.0-differential privacy.");
}
