//! Serving releases: boot the hcc-engine worker pool, expose it over
//! loopback TCP, and drive it with the bundled client — the same
//! wire round-trip `hcc serve` / `hcc submit` perform.
//!
//! ```sh
//! cargo run --example engine_server
//! ```

use std::sync::Arc;

use hccount::engine::{protocol::SubmitParams, serve, Client, Engine, EngineConfig};

fn main() -> std::io::Result<()> {
    // A tiny two-state census: the tables a client would read from
    // disk (`hcc generate` writes the same three files).
    let hierarchy_csv = "region,parent\ncountry,\nVA,country\nMD,country\n";
    let groups_csv = "group_id,region_name\ng0,VA\ng1,VA\ng2,VA\ng3,MD\ng4,MD\n";
    let entities_csv = "entity_id,group_id\n\
        e0,g0\ne1,g1\ne2,g1\ne3,g2\ne4,g2\ne5,g2\ne6,g2\n\
        e7,g3\ne8,g4\ne9,g4\ne10,g4\n";

    // Server side: a 2-worker engine behind an ephemeral loopback port.
    let engine = Engine::start(EngineConfig::default().with_workers(2));
    let server = serve(Arc::new(engine), "127.0.0.1:0")?;
    println!("engine listening on {}", server.addr());

    // Client side: submit, then block for the release.
    let mut client = Client::connect(server.addr())?;
    let params = SubmitParams {
        epsilon: 1.0,
        method: "hc".into(),
        bound: 100,
        seed: 7,
        handle: None,
    };
    let id = client
        .submit(&params, hierarchy_csv, groups_csv, entities_csv)?
        .expect("submission accepted");
    println!("submitted {id}, status: {}", client.status(id)?);
    let release = client.wait(id)?.expect("release succeeded");
    println!("released CSV:\n{}", release.csv);

    // ε-sweep workflow: load the tables once into the prepared
    // registry, then sweep a budget grid over the handle — the server
    // never re-parses the tables and streams each ε as it finishes.
    let handle = client
        .prepare(hierarchy_csv, groups_csv, entities_csv)?
        .expect("tables accepted");
    println!("prepared {handle}");
    client.sweep(&params, handle, &[0.5, 1.0, 2.0], |eps, result| {
        let r = result.expect("sweep point succeeded");
        println!(
            "eps={eps}: {} rows ({})",
            r.csv.lines().count().saturating_sub(1),
            if r.from_cache {
                "cache hit"
            } else {
                "computed"
            }
        );
    })?;
    client.unprepare(handle)?.expect("handle released");

    // The same request again — served bit-identically from the cache.
    let id2 = client
        .submit(&params, hierarchy_csv, groups_csv, entities_csv)?
        .expect("submission accepted");
    let cached = client.wait(id2)?.expect("release succeeded");
    assert_eq!(cached.csv, release.csv);
    println!(
        "repeat request was a cache {} — {}",
        if cached.from_cache { "hit" } else { "miss" },
        client.stats()?
    );

    client.quit()?;
    server.shutdown();
    Ok(())
}
