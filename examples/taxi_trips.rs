//! Mobility workload: taxis as groups, pickups as entities, over the
//! Manhattan geography — demonstrating per-level method selection
//! (`Hg` at the sparse top, `Hc` below) and the effect of the privacy
//! budget on utility.
//!
//! Run with: `cargo run --release --example taxi_trips`

use hccount::consistency::{top_down_release, LevelMethod, TopDownConfig};
use hccount::core::emd;
use hccount::data::{taxi, TaxiConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = taxi(&TaxiConfig {
        scale: 0.05,
        seed: 13,
        ..Default::default()
    });
    println!("dataset: {}", ds.stats());

    let hc = LevelMethod::Cumulative { bound: 100_000 };
    let hg = LevelMethod::Unattributed;

    println!(
        "\n{:>8} {:>10} {:>16} {:>16}",
        "eps", "", "Hc×Hc×Hc", "Hg×Hc×Hc"
    );
    for eps_per_level in [0.1, 0.5, 1.0] {
        let total = eps_per_level * ds.hierarchy.num_levels() as f64;
        let mut rng = StdRng::seed_from_u64(7 + (eps_per_level * 100.0) as u64);

        let uniform = TopDownConfig::new(total).with_method(hc);
        let rel_hc =
            top_down_release(&ds.hierarchy, &ds.data, &uniform, &mut rng).expect("uniform depth");
        rel_hc.assert_desiderata(&ds.hierarchy);

        let mixed = TopDownConfig::new(total).with_level_methods(vec![hg, hc, hc]);
        let rel_mixed =
            top_down_release(&ds.hierarchy, &ds.data, &mixed, &mut rng).expect("uniform depth");

        for level in 0..ds.hierarchy.num_levels() {
            let nodes = ds.hierarchy.level(level);
            let avg = |rel: &hccount::consistency::HierarchicalCounts| -> f64 {
                nodes
                    .iter()
                    .map(|&n| emd(rel.node(n), ds.data.node(n)) as f64)
                    .sum::<f64>()
                    / nodes.len() as f64
            };
            println!(
                "{:>8} {:>10} {:>16.1} {:>16.1}",
                if level == 0 {
                    format!("{eps_per_level}")
                } else {
                    String::new()
                },
                format!("level {level}"),
                avg(&rel_hc),
                avg(&rel_mixed),
            );
        }
    }

    println!("\nhigher ε ⇒ lower earth-mover's error at every level;");
    println!("the released histograms stay consistent across the hierarchy throughout.");
}
