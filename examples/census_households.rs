//! Census-style workload: the paper's partially synthetic housing
//! dataset over a National / State / County hierarchy, released with
//! Algorithm 1 and compared against the bottom-up baseline and the
//! omniscient yardstick.
//!
//! Run with: `cargo run --release --example census_households`

use hccount::consistency::{
    bottom_up_release, omniscient_expected_error, top_down_release, LevelMethod, TopDownConfig,
};
use hccount::core::emd;
use hccount::data::{housing, HousingConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // West-coast (CA/OR/WA) 3-level hierarchy, ~1/5000 of full scale.
    let ds = housing(&HousingConfig {
        scale: 2e-4,
        seed: 7,
        west_coast_only: true,
        ..Default::default()
    });
    let stats = ds.stats();
    println!("dataset: {stats}");

    let epsilon = 1.0;
    let mut rng = StdRng::seed_from_u64(99);
    let method = LevelMethod::Cumulative { bound: 100_000 };

    let cfg = TopDownConfig::new(epsilon).with_method(method);
    let topdown = top_down_release(&ds.hierarchy, &ds.data, &cfg, &mut rng).expect("uniform depth");
    topdown.assert_desiderata(&ds.hierarchy);

    let bu = bottom_up_release(&ds.hierarchy, &ds.data, method, epsilon, &mut rng)
        .expect("uniform depth");

    let eps_level = epsilon / ds.hierarchy.num_levels() as f64;
    println!(
        "\n{:<8} {:>6} {:>14} {:>14} {:>14}   (avg EMD per node)",
        "level", "nodes", "top-down", "bottom-up", "omniscient*"
    );
    for l in 0..ds.hierarchy.num_levels() {
        let nodes = ds.hierarchy.level(l);
        let avg = |rel: &dyn Fn(hccount::hierarchy::NodeId) -> u64| -> f64 {
            nodes.iter().map(|&n| rel(n) as f64).sum::<f64>() / nodes.len() as f64
        };
        let td = avg(&|n| emd(topdown.node(n), ds.data.node(n)));
        let b = avg(&|n| emd(bu.node(n), ds.data.node(n)));
        // The paper's §6.2 analytic yardstick (not a mechanism).
        let o = nodes
            .iter()
            .map(|&n| omniscient_expected_error(ds.data.node(n).distinct_sizes(), eps_level))
            .sum::<f64>()
            / nodes.len() as f64;
        println!(
            "{:<8} {:>6} {:>14.1} {:>14.1} {:>14.1}",
            l,
            nodes.len(),
            td,
            b,
            o
        );
    }

    println!("(*analytic expected error of the non-private omniscient yardstick)");

    // Show a published query a downstream user would run: household
    // size distribution for the largest state (CA).
    let ca = ds.hierarchy.level(1)[0];
    println!(
        "\n{} household-size histogram (sizes 1..=7):",
        ds.hierarchy.name(ca)
    );
    let t = ds.data.node(ca);
    let r = topdown.node(ca);
    for size in 1..=7u64 {
        println!(
            "  size {size}: true {:>7}  released {:>7}",
            t.count_of(size),
            r.count_of(size)
        );
    }
}
