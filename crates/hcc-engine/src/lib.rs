//! # hcc-engine — parallel release engine for hierarchical
//! count-of-counts histograms
//!
//! The other `hcc-*` crates reproduce Kuo et al.'s *algorithm*
//! (PVLDB 11(12), 2018); this crate turns it into a *service*. A
//! statistical agency does not run Algorithm 1 once from a batch CLI —
//! it serves release requests continuously, under concurrency, with
//! repeated requests for the same table. The engine provides the
//! missing execution layer:
//!
//! * **[`Engine`]** — a job API: [`Engine::submit`] enqueues a
//!   [`ReleaseRequest`] into a bounded queue drained by one
//!   engine-wide **work-stealing worker pool**. Per-node estimates
//!   are embarrassingly parallel (sibling regions hold disjoint
//!   groups), so each job expands into node-level subtree tasks
//!   ([`hcc_consistency::subtree_tasks`]) interleaved across *all*
//!   in-flight jobs: workers pop their own deque LIFO and steal FIFO
//!   from the others, each permanently owning one estimation
//!   workspace — one level of parallelism, sized once by
//!   [`EngineConfig::workers`], with no per-job thread spawns and no
//!   shared-pool lock on the node-task hot path. Per-node RNG
//!   streams are derived deterministically from the master seed
//!   ([`hcc_consistency::node_seeds`]), so the released bytes are
//!   **identical for every worker count** — parallelism is purely an
//!   execution concern, never a statistical one.
//!   [`Engine::status`] polls, [`Engine::wait`] blocks.
//! * **[`exec`]** — the same subtree decomposition as a standalone
//!   one-shot call ([`parallel_release`]) on scoped `std::thread`
//!   workers, for callers that want parallel releases without booting
//!   an engine.
//! * **[`cache`]** — an LRU result cache keyed by a 128-bit
//!   fingerprint of (hierarchy, data, config, seed), with hit/miss
//!   counters. A release is a pure function of its fingerprint, so
//!   serving a repeat from cache is bit-exact and spends no extra
//!   privacy budget.
//! * **[`registry`]** — a prepared-dataset registry: `PREPARE` loads
//!   the hierarchy + group tables once, aggregates the per-node true
//!   views, and stores them under a content-addressed
//!   [`DatasetHandle`]; ε-sweeps and repeated queries then submit by
//!   handle and skip parsing/aggregation entirely, with the cache
//!   key collapsing to a cheap (handle, config, seed) digest.
//!   Entries are ref-counted under an LRU bound (`UNPREPARE` drops a
//!   reference). `DERIVE`/`APPEND` move a prepared dataset forward by
//!   a [`hcc_data::DatasetDelta`] — re-aggregation limited to the
//!   touched root-to-leaf paths, no re-parse, no full bottom-up
//!   pass — with the derived handle chaining content fingerprints so
//!   it is identical to a cold `PREPARE` of the post-delta tables
//!   (see [`Engine::derive`]).
//! * **[`serve`]/[`Client`]/[`MuxClient`]** — a `std::net` TCP
//!   serving layer wired into the CLI as `hcc serve`, `hcc submit`,
//!   `hcc prepare`, `hcc derive`, and `hcc sweep`. [`serve`] runs the
//!   **epoll reactor** ([`serve_reactor`]): one event-loop thread
//!   multiplexing every connection, speaking both the versioned
//!   binary framed protocol ([`protocol::frame`] — length-prefixed
//!   frames, client-chosen request ids, pipelining with out-of-order
//!   responses) and, by first-byte auto-detection, the legacy
//!   line-delimited protocol ([`protocol`]) byte-for-byte. Per-
//!   connection **admission control** ([`ReactorConfig`]) gives each
//!   client an interactive and a bulk lane with separate in-flight
//!   quotas and a bounded park buffer; overload is shed with
//!   structured `BUSY` backpressure frames rather than stalls.
//!   [`Client`] speaks the legacy protocol; [`MuxClient`] the framed
//!   one. [`serve_blocking`] keeps the thread-per-connection
//!   line-protocol server as a comparison baseline.
//! * **[`telemetry`]** — always-on-cheap observability: per-worker
//!   relaxed-atomic counters and log-bucketed latency histograms over
//!   the full job lifecycle (queue wait, expansion, per-node
//!   estimation split by level method, compute-gate wait, steals,
//!   idle time), aggregated only when a reader asks
//!   ([`Engine::telemetry`]), rendered as Prometheus text exposition
//!   by the `METRICS` wire verb; plus an opt-in bounded span recorder
//!   ([`EngineConfig::with_trace_capacity`]) whose dumps
//!   ([`Engine::take_trace`], the `TRACE` verb, `hcc trace`) render
//!   as Chrome-trace JSON ([`chrome_trace_json`]).
//! * **[`locks`]** — every engine mutex is a rank-ordered
//!   `RankedMutex` (state < cache < registry < lanes < gate < job <
//!   telemetry < wire); `debug_assertions` builds panic on any
//!   misordered acquisition, and the `hcc-lint` static `lock-order`
//!   rule checks the same order over the extracted acquisition graph.
//!
//! The crate denies `unsafe_code`; the single exception is the
//! reactor's audited epoll FFI module, every call site of which
//! carries an `hcc-lint` hygiene waiver (the lint audits all `unsafe`
//! tokens workspace-wide).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod client;
mod engine;
pub mod exec;
pub mod fingerprint;
mod job;
pub mod locks;
pub mod protocol;
mod reactor;
pub mod registry;
mod scheduler;
mod server;
pub mod telemetry;

pub use client::{Client, FetchedRelease, MuxClient, RetryPolicy, SweepPoint};
pub use engine::{Engine, EngineConfig, EngineStats};
pub use exec::{parallel_release, parallel_release_pooled};
pub use fingerprint::{dataset_fingerprint, fingerprint, request_fingerprint, Fingerprint};
pub use job::{EngineError, JobId, JobStatus, ReleaseRequest, ReleaseResult};
pub use protocol::level_method;
pub use reactor::{serve_reactor, ReactorConfig};
pub use registry::{DatasetHandle, DatasetRegistry};
pub use server::{
    serve, serve_blocking, serve_blocking_with, serve_with, ServeConfig, ServerHandle,
};
pub use telemetry::{
    chrome_trace_json, HistogramSnapshot, MethodKind, SpanEvent, SpanKind, TelemetrySnapshot,
    WorkerSnapshot,
};
