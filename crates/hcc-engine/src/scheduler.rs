//! Engine-wide work-stealing scheduler primitives.
//!
//! The engine used to run one *whole release* per worker, each release
//! spawning its own scoped threads — two levels of parallelism that
//! oversubscribed cores and made batch throughput regress as workers
//! were added. This module flips the grain: every queued job is
//! expanded once into node-level subtree tasks
//! ([`hcc_consistency::subtree_tasks`]) and all engine workers drain
//! one engine-wide pool of such tasks. The pool is a set of per-worker
//! deques in the chase-lev spirit: the owner pushes and pops at the
//! back (LIFO, staying on the job it just expanded), thieves steal
//! from the front (FIFO, taking the oldest — and typically
//! largest-remaining — work). The deques are mutex-guarded
//! `VecDeque`s rather than lock-free ring buffers because `hcc-engine`
//! forbids `unsafe` code; the per-task critical section is two pointer
//! moves, invisible next to a node estimation.
//!
//! Determinism: a task only *groups* nodes. Node `i` is always
//! estimated with its own `StdRng` seeded from [`ActiveJob`]'s
//! `seeds[i]` (the [`hcc_consistency::node_seeds`] derivation), so
//! which worker runs a task — and when, and from whose deque it was
//! stolen — never changes the released bytes. The golden-hash suite
//! in `tests/golden_release.rs` pins this across worker counts.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hcc_consistency::{node_seeds, subtree_tasks};
use hcc_estimators::NodeEstimate;
use hcc_hierarchy::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fingerprint::Fingerprint;
use crate::job::{JobId, ReleaseRequest};
use crate::locks::{Rank, RankedMutex};

/// A job whose subtree tasks are in (or entering) the task pool.
///
/// All scheduling state lives here: which nodes each task estimates,
/// the per-node RNG seeds, the estimate slots the tasks fill, and the
/// countdown that tells the worker finishing the last task to run the
/// deterministic top-down phase.
pub(crate) struct ActiveJob {
    /// The engine-visible job handle.
    pub id: JobId,
    /// The release being computed.
    pub request: ReleaseRequest,
    /// Result-cache key precomputed at submission (`None` when the
    /// cache is disabled).
    pub key: Option<Fingerprint>,
    /// Per-level budget slice `ε / levels`.
    pub eps_level: f64,
    /// Per-node RNG seeds in `hierarchy.iter()` order — the
    /// [`node_seeds`] derivation that makes estimates independent of
    /// scheduling.
    pub seeds: Vec<u64>,
    /// Node groups, one scheduler task each.
    pub tasks: Vec<Vec<NodeId>>,
    /// When the job was expanded; `compute_time` is measured from
    /// here, spanning every task plus the top-down phase.
    pub started: Instant,
    /// One slot per node, filled by whichever task covers it.
    estimates: RankedMutex<Vec<Option<NodeEstimate>>>,
    /// Tasks not yet finished; the worker decrementing this to zero
    /// finalizes the job.
    remaining: AtomicUsize,
    /// First failure message wins; later ones are dropped.
    failure: RankedMutex<Option<String>>,
    /// Quick-check flag for [`ActiveJob::failure`]: once set, tasks
    /// still in the pool skip their estimation work entirely.
    cancelled: AtomicBool,
}

impl ActiveJob {
    /// Expands a queued job for an engine with `workers` workers:
    /// derives the per-node seeds and partitions the hierarchy into
    /// `≈ 2 × workers` subtree tasks — enough slack for stealing to
    /// balance uneven subtrees without shredding tasks into per-node
    /// slivers.
    pub fn new(
        id: JobId,
        request: ReleaseRequest,
        key: Option<Fingerprint>,
        workers: usize,
    ) -> Self {
        let mut master = StdRng::seed_from_u64(request.seed);
        let seeds = node_seeds(&request.hierarchy, &mut master);
        let eps_level = request.config.level_epsilon(request.hierarchy.num_levels());
        let tasks = subtree_tasks(&request.hierarchy, 2 * workers.max(1));
        let slots = request.hierarchy.num_nodes();
        Self {
            id,
            key,
            eps_level,
            seeds,
            remaining: AtomicUsize::new(tasks.len()),
            tasks,
            started: Instant::now(),
            estimates: RankedMutex::new(Rank::Job, vec![None; slots]),
            failure: RankedMutex::new(Rank::Job, None),
            cancelled: AtomicBool::new(false),
            request,
        }
    }

    /// Whether a sibling task already failed this job. Checked before
    /// estimating, so a failed job's remaining tasks drain at
    /// deque-pop speed instead of burning estimation time.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Records a task failure and cancels the job's remaining tasks.
    /// The first message is the one surfaced to waiters.
    pub fn record_failure(&self, message: String) {
        let mut failure = self.failure.lock();
        if failure.is_none() {
            *failure = Some(message);
        }
        drop(failure);
        self.cancelled.store(true, Ordering::Release);
    }

    /// Stores one task's `(node index, estimate)` results.
    pub fn store(&self, results: Vec<(usize, NodeEstimate)>) {
        let mut estimates = self.estimates.lock();
        for (index, estimate) in results {
            // hcc-lint: allow(panic-policy, reason = "index originates from node.index() of this job's own hierarchy; estimates was sized to num_nodes at construction")
            estimates[index] = Some(estimate);
        }
    }

    /// Marks one task finished; `true` means this was the last one
    /// and the caller must finalize the job.
    pub fn finish_task(&self) -> bool {
        self.remaining.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// After the last task: the full estimate vector in
    /// `hierarchy.iter()` order, or the first failure message.
    pub fn take_outcome(&self) -> Result<Vec<NodeEstimate>, String> {
        if let Some(message) = self.failure.lock().take() {
            return Err(message);
        }
        self.estimates
            .lock()
            .drain(..)
            .map(|slot| slot.ok_or_else(|| "internal: node estimate missing".to_string()))
            .collect()
    }
}

/// Admission control for the compute hot path: at most `limit`
/// workers run node tasks *simultaneously*. Extra workers still pop,
/// steal, expand jobs, and take over at every release point — they
/// just never pile more hot estimation working sets onto the cores
/// than the cores can hold. Without this, worker counts beyond the
/// host's parallelism make the OS time-slice several
/// hundreds-of-KB estimation workspaces through the same caches, and
/// throughput *drops* as workers are added; with it, oversubscribed
/// configurations degrade to the single-core schedule instead of
/// below it.
pub(crate) struct ComputeGate {
    permits: RankedMutex<usize>,
    released: std::sync::Condvar,
}

impl ComputeGate {
    pub fn new(limit: usize) -> Self {
        Self {
            permits: RankedMutex::new(Rank::Gate, limit.max(1)),
            released: std::sync::Condvar::new(),
        }
    }

    /// Blocks until a compute permit is free and takes it.
    pub fn acquire(&self) {
        let mut permits = self.permits.lock();
        while *permits == 0 {
            permits = permits.wait(&self.released);
        }
        *permits -= 1;
    }

    /// Returns a permit and wakes one waiting worker.
    pub fn release(&self) {
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        self.released.notify_one();
    }
}

/// One unit of schedulable work: estimate task `index` of `job`.
pub(crate) struct NodeTask {
    pub job: Arc<ActiveJob>,
    pub index: usize,
}

/// The engine-wide task pool: one deque per worker plus a pool-wide
/// pending count the sleep/wake protocol in `engine.rs` reads.
pub(crate) struct TaskDeques {
    lanes: Vec<RankedMutex<VecDeque<NodeTask>>>,
    /// Tasks pushed but not yet popped or stolen. Advisory on its own
    /// — sleep decisions pair it with the engine state lock (see the
    /// lost-wakeup note in `engine.rs`).
    pending: AtomicUsize,
}

impl TaskDeques {
    pub fn new(workers: usize) -> Self {
        Self {
            lanes: (0..workers.max(1))
                .map(|_| RankedMutex::new(Rank::Lanes, VecDeque::new()))
                .collect(),
            pending: AtomicUsize::new(0),
        }
    }

    /// Tasks currently sitting in the deques (not counting tasks
    /// already claimed and running).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Pushes every task of `job` onto `worker`'s own lane: task 0
    /// lands at the steal end, the last task at the owner's end.
    pub fn push_job(&self, worker: usize, job: &Arc<ActiveJob>) {
        // hcc-lint: allow(panic-policy, reason = "worker < lanes.len(): the caller is engine worker `worker` of the pool the lanes were sized for")
        let mut lane = self.lanes[worker].lock();
        for index in 0..job.tasks.len() {
            lane.push_back(NodeTask {
                job: Arc::clone(job),
                index,
            });
        }
        drop(lane);
        self.pending.fetch_add(job.tasks.len(), Ordering::AcqRel);
    }

    /// Owner pop: newest first, keeping the worker on the job it just
    /// expanded while thieves drain the other end.
    pub fn pop(&self, worker: usize) -> Option<NodeTask> {
        // hcc-lint: allow(panic-policy, reason = "worker < lanes.len(): the caller is engine worker `worker` of the pool the lanes were sized for")
        let task = self.lanes[worker].lock().pop_back()?;
        self.pending.fetch_sub(1, Ordering::AcqRel);
        Some(task)
    }

    /// Steals the oldest task from the first non-empty other lane,
    /// scanning round-robin from the thief's right neighbour. The
    /// second element counts empty lanes probed along the way — the
    /// scheduler telemetry's `steal_failed_probes`, which separates
    /// "stole on the first try" from "scanned the whole pool for
    /// nothing" when diagnosing steal-granularity problems.
    pub fn steal(&self, thief: usize) -> (Option<NodeTask>, usize) {
        let lanes = self.lanes.len();
        let mut failed_probes = 0;
        for offset in 1..lanes {
            let victim = (thief + offset) % lanes;
            // hcc-lint: allow(panic-policy, reason = "victim = (thief + offset) % lanes.len() is in bounds by the modulo")
            let task = self.lanes[victim].lock().pop_front();
            if let Some(task) = task {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return (Some(task), failed_probes);
            }
            failed_probes += 1;
        }
        (None, failed_probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_consistency::{HierarchicalCounts, TopDownConfig};
    use hcc_core::CountOfCounts;
    use hcc_hierarchy::{Hierarchy, HierarchyBuilder};

    fn job(workers: usize) -> Arc<ActiveJob> {
        let mut b = HierarchyBuilder::new("root");
        let leaves: Vec<_> = (0..8)
            .map(|i| b.add_child(Hierarchy::ROOT, format!("l{i}")))
            .collect();
        let h = Arc::new(b.build());
        let data = Arc::new(
            HierarchicalCounts::from_leaves(
                &h,
                leaves
                    .iter()
                    .map(|&l| (l, CountOfCounts::from_group_sizes([1, 2, 3])))
                    .collect(),
            )
            .unwrap(),
        );
        let request = ReleaseRequest::new(h, data, TopDownConfig::new(1.0), 7);
        Arc::new(ActiveJob::new(JobId(0), request, None, workers))
    }

    #[test]
    fn tasks_cover_every_node_and_seeds_match_node_count() {
        let job = job(2);
        let nodes = job.request.hierarchy.num_nodes();
        assert_eq!(job.seeds.len(), nodes);
        let mut seen = vec![0usize; nodes];
        for task in &job.tasks {
            for &n in task {
                seen[n.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn owner_pops_lifo_thieves_steal_fifo() {
        let deques = TaskDeques::new(2);
        let job = job(2);
        let total = job.tasks.len();
        assert!(total >= 3, "need a few tasks for order checks");
        deques.push_job(0, &job);
        assert_eq!(deques.pending(), total);

        let owned = deques.pop(0).unwrap();
        assert_eq!(owned.index, total - 1, "owner takes the newest task");
        let (stolen, failed_probes) = deques.steal(1);
        assert_eq!(stolen.unwrap().index, 0, "thief takes the oldest task");
        assert_eq!(failed_probes, 0, "lane 0 is non-empty: first probe hits");
        assert_eq!(deques.pending(), total - 2);

        // The thief's own lane is empty; it must not steal from itself.
        assert!(deques.pop(1).is_none());
        // Draining the rest empties the pool.
        while deques.steal(1).0.is_some() {}
        assert_eq!(deques.pending(), 0);
        assert!(deques.pop(0).is_none());
        // An empty pool: the failed scan probed every other lane.
        let (none, failed_probes) = deques.steal(1);
        assert!(none.is_none());
        assert_eq!(failed_probes, 1, "one victim lane in a 2-lane pool");
    }

    #[test]
    fn failure_cancels_and_first_message_wins() {
        let job = job(1);
        assert!(!job.is_cancelled());
        job.record_failure("first".into());
        job.record_failure("second".into());
        assert!(job.is_cancelled());
        for _ in 0..job.tasks.len() {
            job.finish_task();
        }
        assert_eq!(job.take_outcome().unwrap_err(), "first");
    }

    #[test]
    fn missing_estimates_surface_as_internal_error_not_panic() {
        let job = job(1);
        // Finish every task without storing anything: take_outcome
        // must degrade to an error, never index into empty slots.
        let mut last = false;
        for _ in 0..job.tasks.len() {
            last = job.finish_task();
        }
        assert!(last, "the final decrement reports last=true");
        assert!(job.take_outcome().unwrap_err().contains("internal"));
    }
}
