//! TCP front end: serves the engine's job API over `std::net`.
//!
//! [`serve`]/[`serve_with`] boot the event-driven reactor
//! ([`crate::reactor`]): one epoll thread multiplexes every
//! connection, speaking the binary framed protocol
//! ([`crate::protocol::frame`]) and auto-detecting legacy
//! line-protocol clients from the first byte. The pre-reactor
//! thread-per-connection server survives as
//! [`serve_blocking`]/[`serve_blocking_with`] — it is the baseline the
//! `engine_wire` benchmark compares against, and a second
//! implementation pinning the legacy protocol's observable behavior.
//!
//! The line-protocol request dispatch ([`dispatch_legacy`]) is shared:
//! the blocking server feeds it straight from the socket, the reactor
//! feeds it from a buffered, already-framed request — so the two
//! paths cannot drift apart.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hcc_consistency::{HierarchicalCounts, TopDownConfig};
use hcc_data::DatasetDelta;
use hcc_hierarchy::{hierarchy_from_csv, Hierarchy};
use hcc_tables::CsvLoader;

use crate::job::{EngineError, JobId, JobStatus, ReleaseRequest, ReleaseResult};
use crate::protocol::{
    format_stats, level_method, one_line, read_line, read_section_body, SubmitParams,
};
use crate::reactor::ReactorConfig;
use crate::registry::DatasetHandle;
use crate::telemetry::WireStats;
use crate::Engine;

/// Most lines one `SUBMIT` section may declare; counts come from the
/// peer, so they are bounded before any payload is read.
pub(crate) const MAX_SECTION_LINES: usize = 50_000_000;

/// Most bytes one `SUBMIT` section may occupy once reassembled.
pub(crate) const MAX_SECTION_BYTES: usize = 1 << 30;

/// Transport knobs of [`serve_with`]; [`serve`] uses the defaults.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// How long one blocking read on a connection may wait for client
    /// bytes before the server hangs up. Connection slots are a
    /// bounded resource (`max_connections`), so idle or slowloris
    /// clients must not pin them forever — a timed-out connection
    /// gets one `ERR idle timeout` line and is closed. `None`
    /// disables the timeout (the pre-PR-4 behaviour). The timer only
    /// covers waiting for *client* bytes; a long server-side `WAIT`
    /// on a slow job never trips it.
    pub read_timeout: Option<Duration>,
    /// Most concurrent connections; beyond this, new clients get one
    /// `ERR server busy` line and are dropped (handler threads are
    /// per-connection and can block in `WAIT`, so they must be
    /// bounded).
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(30)),
            max_connections: 1024,
        }
    }
}

impl ServeConfig {
    /// Sets the per-connection read timeout (`None` disables it).
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the concurrent-connection bound.
    pub fn with_max_connections(mut self, max: usize) -> Self {
        assert!(max >= 1, "need at least one connection slot");
        self.max_connections = max;
        self
    }
}

/// Decrements the live-connection count when a handler thread exits,
/// however it exits.
struct ConnectionGuard(Arc<AtomicUsize>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        // Release pairs with the acquire half of the accept loop's
        // fetch_add, so a reused slot observes the finished handler.
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running TCP server; dropping the handle stops the server (open
/// connections are torn down by the reactor; blocking-server
/// connections finish their current request).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Reactor wake pipe; `None` for the blocking server, which is
    /// woken by a throwaway connection instead.
    wake: Option<UnixStream>,
    thread: Option<JoinHandle<()>>,
    /// Wire-level counters; `None` for the blocking server, whose
    /// legacy transport predates them.
    wire: Option<Arc<WireStats>>,
}

impl ServerHandle {
    pub(crate) fn for_reactor(
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        wake: UnixStream,
        thread: JoinHandle<()>,
        wire: Arc<WireStats>,
    ) -> Self {
        Self {
            addr,
            stop,
            wake: Some(wake),
            thread: Some(thread),
            wire: Some(wire),
        }
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the wire-level counters (connections, frames,
    /// bytes, backpressure). `None` for the blocking server, which
    /// predates them.
    pub fn wire_stats(&self) -> Option<crate::telemetry::WireSnapshot> {
        self.wire.as_ref().map(|w| w.snapshot())
    }

    /// Stops the server thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_serving();
    }

    fn stop_serving(&mut self) {
        self.stop.store(true, Ordering::Release);
        match &self.wake {
            // Reactor: one byte on the wake pipe interrupts epoll.
            Some(wake) => {
                let _ = (&*wake).write_all(&[1]);
            }
            // Blocking server: unblock accept() with a throwaway
            // connection.
            None => {
                let _ = TcpStream::connect(self.addr);
            }
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_serving();
    }
}

/// Binds `addr` and serves the engine with the default
/// [`ServeConfig`] until the handle is shut down.
///
/// This boots the epoll reactor: the framed binary protocol
/// ([`crate::protocol::frame`]) and the legacy line protocol share
/// the port, told apart by the first byte each connection sends.
pub fn serve(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    serve_with(engine, addr, ServeConfig::default())
}

/// Binds `addr` and serves the engine until the handle is shut down,
/// with explicit transport configuration. See [`serve`].
pub fn serve_with(
    engine: Arc<Engine>,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let reactor_config = ReactorConfig::default()
        .with_read_timeout(config.read_timeout)
        .with_max_connections(config.max_connections);
    crate::reactor::serve_reactor(engine, addr, reactor_config)
}

/// Binds `addr` and serves the engine with the pre-reactor blocking
/// thread-per-connection server (line protocol only). Baseline for
/// the `engine_wire` benchmark and the legacy-compat tests.
pub fn serve_blocking(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    serve_blocking_with(engine, addr, ServeConfig::default())
}

/// [`serve_blocking`] with explicit transport configuration.
pub fn serve_blocking_with(
    engine: Arc<Engine>,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("hcc-engine-accept".to_string())
        .spawn(move || {
            let live = Arc::new(AtomicUsize::new(0));
            let max_connections = config.max_connections;
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else {
                    // Persistent accept errors (EMFILE under fd
                    // exhaustion) would otherwise spin this loop at
                    // 100% CPU.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    continue;
                };
                if live.fetch_add(1, Ordering::AcqRel) >= max_connections {
                    live.fetch_sub(1, Ordering::AcqRel);
                    let mut stream = stream;
                    let _ = writeln!(stream, "ERR server busy ({max_connections} connections)");
                    continue;
                }
                // An unresponsive peer must not pin this bounded
                // connection slot forever.
                let _ = stream.set_read_timeout(config.read_timeout);
                let guard = ConnectionGuard(Arc::clone(&live));
                let engine = Arc::clone(&engine);
                // On spawn failure the closure (and with it the
                // guard) is dropped, releasing the slot.
                let _ = std::thread::Builder::new()
                    .name("hcc-engine-conn".to_string())
                    .spawn(move || {
                        let _guard = guard;
                        let _ = handle_connection(&engine, stream);
                    });
            }
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        wake: None,
        thread: Some(accept_thread),
        wire: None,
    })
}

/// Whether a read error is the connection's read timeout firing
/// (`SO_RCVTIMEO` surfaces as `WouldBlock` on Unix, `TimedOut` on
/// Windows).
fn is_read_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn handle_connection(engine: &Engine, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match read_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            // Idle past the read timeout: free the connection slot,
            // telling the (possibly still-listening) client why.
            Err(e) if is_read_timeout(&e) => {
                let _ = writeln!(writer, "ERR idle timeout; closing connection");
                let _ = writer.flush();
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        match dispatch_legacy(engine, &line, &mut reader, None)? {
            LegacyOutcome::Reply(bytes) => {
                writer.write_all(&bytes)?;
                writer.flush()?;
            }
            LegacyOutcome::Close(bytes) => {
                writer.write_all(&bytes)?;
                writer.flush()?;
                return Ok(());
            }
            LegacyOutcome::Wait(id) => {
                // The blocking server can afford to park this thread
                // on the job; the reactor resolves the same outcome
                // with a completion callback instead.
                let finished = engine.wait(id).map_err(|e| e.to_string());
                writer.write_all(&render_wait_reply(finished))?;
                writer.flush()?;
            }
        }
    }
}

/// What one legacy line-protocol request asks of the transport, after
/// [`dispatch_legacy`] has executed it against the engine.
pub(crate) enum LegacyOutcome {
    /// Reply bytes; keep the connection.
    Reply(Vec<u8>),
    /// Reply bytes; close the connection afterwards (`QUIT`, or a
    /// fatal framing error that desynced the stream).
    Close(Vec<u8>),
    /// `WAIT`: the reply is [`render_wait_reply`] over the job's
    /// terminal status, whenever it arrives.
    Wait(JobId),
}

/// Renders the terminal half of a `WAIT`/`FETCH` reply: `ERR` line,
/// or `RELEASE <n> cached=<b>` + CSV + `END`.
pub(crate) fn render_wait_reply(finished: Result<(Arc<ReleaseResult>, bool), String>) -> Vec<u8> {
    match finished {
        Err(e) => format!("ERR {}\n", one_line(&e)).into_bytes(),
        Ok((result, from_cache)) => {
            let mut out = format!(
                "RELEASE {} cached={}\n",
                result.csv.lines().count(),
                u8::from(from_cache)
            )
            .into_bytes();
            out.extend_from_slice(result.csv.as_bytes());
            out.extend_from_slice(b"END\n");
            out
        }
    }
}

/// Converts a terminal [`JobStatus`] into the payload
/// [`render_wait_reply`] expects, with the same error text
/// `Engine::wait` would produce.
pub(crate) fn wait_outcome(
    id: JobId,
    status: JobStatus,
) -> Result<(Arc<ReleaseResult>, bool), String> {
    match status {
        JobStatus::Done { result, from_cache } => Ok((result, from_cache)),
        JobStatus::Failed(msg) => Err(EngineError::JobFailed(msg).to_string()),
        JobStatus::Queued | JobStatus::Running => Err(format!("job {id} not finished")),
    }
}

/// Executes one legacy line-protocol request: `line` is the command
/// line (already stripped of its newline), `reader` supplies any
/// sectioned payload. `wire` appends the reactor's wire counters to
/// `METRICS` output when serving through the reactor.
///
/// Every observable byte written for a given request is produced
/// here, so the blocking server and the reactor cannot drift apart.
/// An `Err` return means the transport failed mid-request (or the
/// payload ended early) and the connection is beyond saving.
pub(crate) fn dispatch_legacy(
    engine: &Engine,
    line: &str,
    reader: &mut impl io::BufRead,
    wire: Option<&WireStats>,
) -> io::Result<LegacyOutcome> {
    let (cmd, tail) = match line.split_once(' ') {
        Some((c, t)) => (c, t.trim()),
        None => (line, ""),
    };
    let mut out = Vec::new();
    match cmd {
        "" => {}
        "PING" => writeln!(out, "PONG")?,
        "QUIT" => {
            writeln!(out, "BYE")?;
            return Ok(LegacyOutcome::Close(out));
        }
        "STATS" => {
            let line = format_stats(
                engine.config().workers,
                engine.queue_len(),
                engine.prepared_len(),
                &engine.stats(),
            );
            writeln!(out, "{line}")?;
        }
        "METRICS" => {
            // Prometheus text exposition, framed like every other
            // bulk payload: `METRICS <n>` + n lines + END.
            let mut text = engine.telemetry().to_prometheus();
            if let Some(wire) = wire {
                text.push_str(&wire.snapshot().to_prometheus());
            }
            writeln!(out, "METRICS {}", text.lines().count())?;
            out.extend_from_slice(text.as_bytes());
            writeln!(out, "END")?;
        }
        "TRACE" => {
            // Drains the span recorder (empty unless the engine
            // was started with a trace capacity).
            let spans = engine.take_trace();
            writeln!(out, "TRACE {}", spans.len())?;
            for span in &spans {
                writeln!(out, "{}", span.to_wire_line())?;
            }
            writeln!(out, "END")?;
        }
        "SUBMIT" => match read_submit(engine, reader, tail) {
            Ok(id) => writeln!(out, "OK {id}")?,
            Err(SubmitFailure::Protocol(e)) => writeln!(out, "ERR {}", one_line(&e))?,
            Err(SubmitFailure::Fatal(e)) => {
                // Section framing is lost; any further reads would
                // misparse payload as commands. Report and close.
                writeln!(out, "ERR {}", one_line(&e))?;
                return Ok(LegacyOutcome::Close(out));
            }
            Err(SubmitFailure::Io(e)) => return Err(e),
        },
        "PREPARE" => match read_prepare(engine, reader) {
            Ok(handle) => writeln!(out, "OK {handle}")?,
            Err(SubmitFailure::Protocol(e)) => writeln!(out, "ERR {}", one_line(&e))?,
            Err(SubmitFailure::Fatal(e)) => {
                writeln!(out, "ERR {}", one_line(&e))?;
                return Ok(LegacyOutcome::Close(out));
            }
            Err(SubmitFailure::Io(e)) => return Err(e),
        },
        "UNPREPARE" => match tail.parse::<DatasetHandle>() {
            Err(e) => writeln!(out, "ERR {}", one_line(&e))?,
            Ok(handle) => match engine.unprepare(handle) {
                Ok(refs) => writeln!(out, "OK refs={refs}")?,
                Err(e) => writeln!(out, "ERR {}", one_line(&e.to_string()))?,
            },
        },
        "DERIVE" | "APPEND" => match read_derive(engine, reader, tail, cmd == "APPEND") {
            Ok(handle) => writeln!(out, "OK {handle}")?,
            Err(SubmitFailure::Protocol(e)) => writeln!(out, "ERR {}", one_line(&e))?,
            Err(SubmitFailure::Fatal(e)) => {
                writeln!(out, "ERR {}", one_line(&e))?;
                return Ok(LegacyOutcome::Close(out));
            }
            Err(SubmitFailure::Io(e)) => return Err(e),
        },
        "STATUS" => match tail.parse::<crate::JobId>() {
            Err(e) => writeln!(out, "ERR {}", one_line(&e))?,
            Ok(id) => match engine.status(id) {
                None => writeln!(out, "ERR unknown job {id}")?,
                Some(JobStatus::Queued) => writeln!(out, "QUEUED")?,
                Some(JobStatus::Running) => writeln!(out, "RUNNING")?,
                Some(JobStatus::Done { result, from_cache }) => writeln!(
                    out,
                    "DONE rows={} cached={}",
                    result.rows,
                    u8::from(from_cache)
                )?,
                Some(JobStatus::Failed(msg)) => writeln!(out, "FAILED {}", one_line(&msg))?,
            },
        },
        "WAIT" => match tail.parse::<crate::JobId>() {
            Err(e) => writeln!(out, "ERR {}", one_line(&e))?,
            Ok(id) => return Ok(LegacyOutcome::Wait(id)),
        },
        "FETCH" => match tail.parse::<crate::JobId>() {
            Err(e) => writeln!(out, "ERR {}", one_line(&e))?,
            Ok(id) => {
                let finished = match engine.status(id) {
                    None => Err(EngineError::UnknownJob(id).to_string()),
                    Some(status) => wait_outcome(id, status),
                };
                out.extend_from_slice(&render_wait_reply(finished));
            }
        },
        other => writeln!(out, "ERR unknown command {:?}", one_line(other))?,
    }
    Ok(LegacyOutcome::Reply(out))
}

enum SubmitFailure {
    /// Malformed request whose payload was fully drained — report on
    /// the wire, keep the connection.
    Protocol(String),
    /// Malformed request whose section framing is unrecoverable (the
    /// remaining payload length is unknowable) — report, then close
    /// the connection so stale payload is never parsed as commands.
    Fatal(String),
    /// Transport failure — give up on the connection.
    Io(io::Error),
}

impl From<io::Error> for SubmitFailure {
    fn from(e: io::Error) -> Self {
        SubmitFailure::Io(e)
    }
}

/// Reads the labelled sections of a sectioned command (`SUBMIT`,
/// `PREPARE`, `DERIVE`, `APPEND`) through the terminating `END`,
/// filling `sections[i]` with the body of the section labelled
/// `labels[i]`. Every slot may be `None`: a handle submission
/// legitimately carries no sections, and a malformed request must
/// still be drained so the connection stays in sync.
fn read_sections(
    reader: &mut impl io::BufRead,
    labels: &[&str],
) -> Result<Vec<Option<String>>, SubmitFailure> {
    let mut bad_section: Option<String> = None;
    let mut sections: Vec<Option<String>> = vec![None; labels.len()];
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(SubmitFailure::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-submit",
            )));
        };
        if line == "END" {
            break;
        }
        let header = line
            .split_once(' ')
            .and_then(|(label, count)| Some((label, count.parse::<usize>().ok()?)));
        let Some((label, count)) = header else {
            return Err(SubmitFailure::Fatal(format!(
                "unparseable section header {line:?}; closing connection"
            )));
        };
        // Declared lengths are peer-controlled: refuse to buffer (or
        // even drain) absurd sections before reading a single line.
        if count > MAX_SECTION_LINES {
            return Err(SubmitFailure::Fatal(format!(
                "section {label} declares {count} lines (limit {MAX_SECTION_LINES}); \
                 closing connection"
            )));
        }
        let body = read_section_body(reader, count, MAX_SECTION_BYTES).map_err(|e| {
            if e.kind() == io::ErrorKind::InvalidData {
                SubmitFailure::Fatal(e.to_string())
            } else {
                SubmitFailure::Io(e)
            }
        })?;
        match labels
            .iter()
            .position(|&l| l == label)
            .and_then(|i| sections.get_mut(i))
        {
            Some(slot) => *slot = Some(body),
            None => {
                bad_section.get_or_insert_with(|| format!("unknown section {label:?}"));
            }
        }
    }
    if let Some(e) = bad_section {
        return Err(SubmitFailure::Protocol(e));
    }
    Ok(sections)
}

/// The three base tables of a `SUBMIT`/`PREPARE`.
fn read_table_sections(
    reader: &mut impl io::BufRead,
) -> Result<[Option<String>; 3], SubmitFailure> {
    let sections = read_sections(reader, &["HIERARCHY", "GROUPS", "ENTITIES"])?;
    let mut it = sections.into_iter();
    Ok([
        it.next().flatten(),
        it.next().flatten(),
        it.next().flatten(),
    ])
}

/// Parses the three CSV tables and aggregates the per-node true
/// views — the expensive load that `PREPARE` amortizes. Shared with
/// the reactor's framed `SUBMIT`/`PREPARE` handlers.
pub(crate) fn load_dataset(
    hierarchy_csv: &str,
    groups_csv: &str,
    entities_csv: &str,
) -> Result<(Arc<Hierarchy>, Arc<HierarchicalCounts>), String> {
    let (hierarchy, _) =
        hierarchy_from_csv(hierarchy_csv).map_err(|e| format!("hierarchy: {e}"))?;
    let mut loader = CsvLoader::new(&hierarchy);
    loader
        .load_groups(groups_csv)
        .map_err(|e| format!("groups: {e}"))?;
    loader
        .load_entities(entities_csv)
        .map_err(|e| format!("entities: {e}"))?;
    let db = loader.finish();
    let data = HierarchicalCounts::from_node_histograms(&hierarchy, db.node_histograms(&hierarchy))
        .map_err(|e| e.to_string())?;
    Ok((Arc::new(hierarchy), Arc::new(data)))
}

/// Builds the release configuration a request's parameters describe —
/// the half of request validation shared by both wire protocols.
pub(crate) fn submit_config(params: &SubmitParams) -> Result<TopDownConfig, String> {
    let method = level_method(&params.method, params.bound)?;
    Ok(TopDownConfig::new(params.epsilon).with_method(method))
}

/// Reads the sections of a `SUBMIT` (inline tables or none for a
/// handle submission), builds the request, and enqueues it.
fn read_submit(
    engine: &Engine,
    reader: &mut impl io::BufRead,
    params_tail: &str,
) -> Result<crate::JobId, SubmitFailure> {
    // Parse the parameter line but defer its error: the client has
    // already written the section payload, so it must be consumed
    // through END either way — replying before draining would leave
    // stale CSV lines on the stream and desync every later request on
    // this connection. The same applies to an unknown-but-well-framed
    // section label (drain it, then reject); only a header whose
    // length is unparseable forces closing the connection.
    let params = SubmitParams::decode(params_tail);
    let sections = read_table_sections(reader)?;
    let params = params.map_err(SubmitFailure::Protocol)?;
    let config = submit_config(&params).map_err(SubmitFailure::Protocol)?;

    if let Some(handle) = params.handle {
        if sections.iter().any(Option::is_some) {
            return Err(SubmitFailure::Protocol(
                "SUBMIT with handle= takes no data sections".to_string(),
            ));
        }
        return engine
            .submit_prepared(handle, config, params.seed)
            .map_err(|e| SubmitFailure::Protocol(reject_text(e)));
    }

    let [Some(hierarchy_csv), Some(groups_csv), Some(entities_csv)] = sections else {
        return Err(SubmitFailure::Protocol(
            "SUBMIT needs HIERARCHY, GROUPS, and ENTITIES sections (or a handle=)".to_string(),
        ));
    };
    let (hierarchy, data) = load_dataset(&hierarchy_csv, &groups_csv, &entities_csv)
        .map_err(SubmitFailure::Protocol)?;
    let request = ReleaseRequest::new(hierarchy, data, config, params.seed);
    engine
        .submit(request)
        .map_err(|e| SubmitFailure::Protocol(reject_text(e)))
}

/// Renders an engine-side submission rejection for the wire,
/// prefixing retryable conditions with the stable
/// [`protocol::BUSY`](crate::protocol::BUSY) token (and budget
/// exhaustion with [`protocol::BUDGET`](crate::protocol::BUDGET)) so
/// clients can key their handling on a stable token instead of on
/// error prose.
fn reject_text(e: EngineError) -> String {
    match e {
        EngineError::QueueFull { .. } => format!("{} {e}", crate::protocol::BUSY),
        EngineError::BudgetExhausted { .. } => format!("{} {e}", crate::protocol::BUDGET),
        other => other.to_string(),
    }
}

/// Reads the sections of a `PREPARE`, loads the dataset once, and
/// registers it under its content-addressed handle.
fn read_prepare(
    engine: &Engine,
    reader: &mut impl io::BufRead,
) -> Result<DatasetHandle, SubmitFailure> {
    let sections = read_table_sections(reader)?;
    let [Some(hierarchy_csv), Some(groups_csv), Some(entities_csv)] = sections else {
        return Err(SubmitFailure::Protocol(
            "PREPARE needs HIERARCHY, GROUPS, and ENTITIES sections".to_string(),
        ));
    };
    let (hierarchy, data) = load_dataset(&hierarchy_csv, &groups_csv, &entities_csv)
        .map_err(SubmitFailure::Protocol)?;
    engine
        .prepare(hierarchy, data)
        .map_err(|e| SubmitFailure::Protocol(e.to_string()))
}

/// Reads the `DELTA` section of a `DERIVE`/`APPEND`, parses it, and
/// derives a new prepared dataset from the parent handle on the
/// command line. The section is drained through `END` even when the
/// handle is malformed, so the connection stays in sync.
fn read_derive(
    engine: &Engine,
    reader: &mut impl io::BufRead,
    params_tail: &str,
    append: bool,
) -> Result<DatasetHandle, SubmitFailure> {
    let parent = params_tail.parse::<DatasetHandle>();
    let sections = read_sections(reader, &["DELTA"])?;
    let parent = parent.map_err(SubmitFailure::Protocol)?;
    let Some(delta_csv) = sections.into_iter().next().flatten() else {
        return Err(SubmitFailure::Protocol(
            "DERIVE/APPEND needs a DELTA section".to_string(),
        ));
    };
    let delta =
        DatasetDelta::from_csv(&delta_csv).map_err(|e| SubmitFailure::Protocol(e.to_string()))?;
    let derived = if append {
        engine.append(parent, &delta)
    } else {
        engine.derive(parent, &delta)
    };
    derived.map_err(|e| SubmitFailure::Protocol(e.to_string()))
}
