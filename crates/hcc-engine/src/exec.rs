//! Subtree-parallel execution of the top-down release.
//!
//! The per-node estimates of Algorithm 1 are embarrassingly parallel:
//! sibling regions hold disjoint groups (parallel composition) and
//! each node draws noise from its own RNG stream. This module splits
//! the hierarchy into **subtree tasks**, feeds them to a hand-rolled
//! work queue consumed by scoped `std::thread` workers, and hands the
//! finished estimates to
//! [`hcc_consistency::top_down_from_estimates`] for the deterministic
//! matching/merging phase.
//!
//! Determinism: node `i` of `hierarchy.iter()` is estimated with a
//! `StdRng` seeded by `seeds[i]`, where the seeds are drawn
//! sequentially from `StdRng::seed_from_u64(master_seed)` — the exact
//! derivation [`hcc_consistency::node_seeds`] uses. Task scheduling
//! only changes *when* a node is estimated, never its RNG stream, so
//! the release is **bit-identical** to a direct single-threaded
//! [`top_down_release`](hcc_consistency::top_down_release) call with
//! the same master seed, for every worker count.
//!
//! This is the execution layer behind *both* submission paths of the
//! engine: inline jobs and prepared-handle jobs
//! ([`Engine::submit_prepared`](crate::Engine::submit_prepared))
//! resolve to the same `(hierarchy, data, config, seed)` tuple before
//! reaching [`parallel_release`], which is why a sweep point over a
//! prepared dataset is byte-identical to a cold inline submission.
//! The per-release work here (seed derivation, subtree partitioning)
//! is O(nodes) and depends on the master seed, so it is *not* hoisted
//! into the prepared registry — what `PREPARE` amortizes is the far
//! larger table parse + per-node true-view aggregation.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::locks::{Rank, RankedMutex};
use hcc_consistency::{
    estimate_node, node_seeds, subtree_tasks, top_down_from_estimates, ConsistencyError,
    HierarchicalCounts, TopDownConfig,
};
use hcc_estimators::{EstimatorWorkspace, NodeEstimate, WorkspacePool};
use hcc_hierarchy::{Hierarchy, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the full top-down release with subtree-level parallelism on
/// `threads` scoped worker threads pulling tasks from a shared queue.
///
/// Bit-identical to
/// `top_down_release(hierarchy, data, cfg, &mut StdRng::seed_from_u64(seed))`
/// for every `threads >= 1`; with one thread the estimates are
/// computed inline without spawning. Scratch buffers come from a
/// release-local [`WorkspacePool`]; a long-running engine shares one
/// pool across jobs via [`parallel_release_pooled`].
pub fn parallel_release(
    hierarchy: &Hierarchy,
    data: &HierarchicalCounts,
    cfg: &TopDownConfig,
    seed: u64,
    threads: usize,
) -> Result<HierarchicalCounts, ConsistencyError> {
    parallel_release_pooled(hierarchy, data, cfg, seed, threads, &WorkspacePool::new())
}

/// [`parallel_release`] drawing estimation workspaces from a shared
/// pool. Each worker thread checks out one [`EstimatorWorkspace`] for
/// the whole release — reused across every node of every subtree task
/// it runs — and restores it afterwards, so an engine serving many
/// jobs keeps its buffers warm across jobs too. Which workspace
/// estimates which node never matters: buffers are fully overwritten
/// per node and each node draws from its own seeded RNG stream, so
/// the release stays bit-identical for every pool state.
pub fn parallel_release_pooled(
    hierarchy: &Hierarchy,
    data: &HierarchicalCounts,
    cfg: &TopDownConfig,
    seed: u64,
    threads: usize,
    pool: &WorkspacePool,
) -> Result<HierarchicalCounts, ConsistencyError> {
    if !hierarchy.is_uniform_depth() {
        return Err(ConsistencyError::NotUniformDepth);
    }
    let mut master = StdRng::seed_from_u64(seed);
    let seeds = node_seeds(hierarchy, &mut master);
    let eps_level = cfg.level_epsilon(hierarchy.num_levels());
    let n = hierarchy.num_nodes();

    let estimate = |node: NodeId, ws: &mut EstimatorWorkspace| -> NodeEstimate {
        estimate_node(
            hierarchy,
            data,
            cfg,
            eps_level,
            node,
            seeds[node.index()],
            ws,
        )
    };

    let estimates: Vec<NodeEstimate> = if threads <= 1 {
        let mut ws = pool.checkout();
        let out = hierarchy
            .iter()
            .map(|node| estimate(node, &mut ws))
            .collect();
        pool.restore(ws);
        out
    } else {
        // Twice as many tasks as threads: slack for load balancing.
        let tasks = subtree_tasks(hierarchy, 2 * threads.max(1));
        let next = AtomicUsize::new(0);
        let slots: RankedMutex<Vec<Option<NodeEstimate>>> =
            RankedMutex::new(Rank::Job, vec![None; n]);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(tasks.len()) {
                scope.spawn(|| {
                    let mut ws = pool.checkout();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(t) else { break };
                        let done: Vec<(usize, NodeEstimate)> = task
                            .iter()
                            .map(|&node| (node.index(), estimate(node, &mut ws)))
                            .collect();
                        let mut slots = slots.lock();
                        for (i, e) in done {
                            slots[i] = Some(e);
                        }
                    }
                    pool.restore(ws);
                });
            }
        });
        slots
            .into_inner()
            .into_iter()
            .map(|e| e.expect("tasks cover every node exactly once"))
            .collect()
    };
    top_down_from_estimates(hierarchy, cfg, estimates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_consistency::{top_down_release, LevelMethod};
    use hcc_core::CountOfCounts;
    use hcc_hierarchy::HierarchyBuilder;

    fn deep_data() -> (Hierarchy, HierarchicalCounts) {
        let mut b = HierarchyBuilder::new("nation");
        let mut leaves = Vec::new();
        for s in 0..3 {
            let state = b.add_child(Hierarchy::ROOT, format!("s{s}"));
            for c in 0..4 {
                let county = b.add_child(state, format!("s{s}c{c}"));
                for t in 0..2 {
                    leaves.push(b.add_child(county, format!("s{s}c{c}t{t}")));
                }
            }
        }
        let h = b.build();
        let data = HierarchicalCounts::from_leaves(
            &h,
            leaves
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    (
                        l,
                        CountOfCounts::from_group_sizes(
                            (0..20u64).map(|k| 1 + (k * (i as u64 + 3)) % 11),
                        ),
                    )
                })
                .collect(),
        )
        .unwrap();
        (h, data)
    }

    #[test]
    fn bit_identical_to_direct_release_for_every_worker_count() {
        let (h, d) = deep_data();
        for method in [
            LevelMethod::Cumulative { bound: 64 },
            LevelMethod::Unattributed,
            LevelMethod::Adaptive { bound: 64 },
        ] {
            let cfg = TopDownConfig::new(1.0).with_method(method);
            let mut rng = StdRng::seed_from_u64(7);
            let direct = top_down_release(&h, &d, &cfg, &mut rng).unwrap();
            for threads in [1, 2, 3, 8] {
                let parallel = parallel_release(&h, &d, &cfg, 7, threads).unwrap();
                assert_eq!(parallel, direct, "{} threads={threads}", method.name());
            }
        }
    }

    #[test]
    fn warm_pool_releases_are_bit_identical_across_jobs() {
        let (h, d) = deep_data();
        let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 64 });
        let cold = parallel_release(&h, &d, &cfg, 9, 2).unwrap();
        let pool = WorkspacePool::new();
        for job in 0..3 {
            let warm = parallel_release_pooled(&h, &d, &cfg, 9, 2, &pool).unwrap();
            assert_eq!(warm, cold, "job {job} diverged with warm workspaces");
        }
        assert!(
            pool.idle_len() >= 1,
            "workspaces must return to the pool between jobs"
        );
    }

    #[test]
    fn ragged_hierarchy_is_rejected() {
        let mut b = HierarchyBuilder::new("r");
        let mid = b.add_child(Hierarchy::ROOT, "mid");
        let _deep = b.add_child(mid, "deep");
        let _shallow = b.add_child(Hierarchy::ROOT, "shallow");
        let h = b.build();
        let data = HierarchicalCounts::from_leaves(&h, Vec::new());
        assert!(
            data.is_err() || {
                let cfg = TopDownConfig::new(1.0);
                parallel_release(&h, &data.unwrap(), &cfg, 1, 2).is_err()
            }
        );
    }
}
