//! In-memory LRU cache of finished releases.
//!
//! Production deployments see the same release request repeatedly —
//! dashboards refresh, downstream consumers retry — and a private
//! release is a pure function of its request fingerprint, so
//! recomputing it burns CPU for a bit-identical answer. (Re-serving a
//! cached release also spends no additional privacy budget: it is the
//! *same* ε-DP output, not a fresh draw.)

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use crate::fingerprint::Fingerprint;
use crate::job::ReleaseResult;

/// Bounded LRU map from request fingerprint to finished release.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    /// Ordered by fingerprint so iteration (debug dumps, future cache
    /// listings) is deterministic; recency lives in `order`, so the
    /// map's own ordering is free to be by key.
    map: BTreeMap<Fingerprint, Arc<ReleaseResult>>,
    /// Front = least recently used.
    order: VecDeque<Fingerprint>,
}

impl ResultCache {
    /// A cache holding at most `capacity` releases; `0` disables
    /// caching entirely.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: BTreeMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Looks up a finished release, refreshing its recency.
    pub fn get(&mut self, key: Fingerprint) -> Option<Arc<ReleaseResult>> {
        let hit = self.map.get(&key).cloned()?;
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push_back(key);
        }
        Some(hit)
    }

    /// Stores a finished release, evicting the least recently used
    /// entry when full.
    pub fn insert(&mut self, key: Fingerprint, value: Arc<ReleaseResult>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key, value).is_some() {
            // Refresh recency of the overwritten key.
            if let Some(pos) = self.order.iter().position(|&k| k == key) {
                self.order.remove(pos);
            }
        } else if self.map.len() > self.capacity {
            if let Some(lru) = self.order.pop_front() {
                self.map.remove(&lru);
            }
        }
        self.order.push_back(key);
    }

    /// Number of cached releases.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn result(tag: u64) -> Arc<ReleaseResult> {
        Arc::new(ReleaseResult {
            csv: format!("region,level,size,count\nr,0,1,{tag}\n"),
            rows: 1,
            compute_time: Duration::ZERO,
        })
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ResultCache::new(2);
        c.insert(Fingerprint(1), result(1));
        c.insert(Fingerprint(2), result(2));
        assert!(c.get(Fingerprint(1)).is_some()); // 2 is now LRU
        c.insert(Fingerprint(3), result(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(Fingerprint(2)).is_none(), "LRU entry evicted");
        assert!(c.get(Fingerprint(1)).is_some());
        assert!(c.get(Fingerprint(3)).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let mut c = ResultCache::new(2);
        c.insert(Fingerprint(1), result(1));
        c.insert(Fingerprint(2), result(2));
        c.insert(Fingerprint(1), result(10));
        assert_eq!(c.len(), 2);
        c.insert(Fingerprint(3), result(3));
        assert!(c.get(Fingerprint(2)).is_none(), "2 was the LRU");
        assert!(c.get(Fingerprint(1)).unwrap().csv.contains(",10"));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        c.insert(Fingerprint(1), result(1));
        assert!(c.is_empty());
        assert!(c.get(Fingerprint(1)).is_none());
    }
}
