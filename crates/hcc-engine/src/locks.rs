//! Ranked mutexes: the engine's lock-order discipline, enforced at runtime.
//!
//! Deadlock freedom in the engine rests on a total acquisition order over
//! its lock families:
//!
//! ```text
//! state < cache < registry < store < lanes < gate < job < telemetry < wire
//! ```
//!
//! Every engine mutex is a crate-internal `RankedMutex` carrying its
//! [`Rank`]. Under
//! `debug_assertions` each thread keeps a stack of currently-held ranks, and
//! acquiring a lock whose rank is not strictly greater than the top of the
//! stack panics with both ranks named — so any test run (tier-1 runs the
//! whole suite in debug) catches a misordered acquisition the first time it
//! executes, not the first time it deadlocks. Release builds compile the
//! checker away entirely; a `RankedMutex` is then exactly a `Mutex`.
//!
//! The same order is verified *statically* by `hcc-lint`'s `lock-order` rule,
//! which extracts every `.lock()` site in this crate and checks the nesting
//! graph. The lint's declared order and [`RANK_NAMES`] are asserted equal by
//! the workspace self-check test, so the two checkers can never drift apart.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Human-readable names of the ranks, lowest first. Index `i` names
/// `Rank` variant `i`; `hcc-lint` asserts this matches its declared order.
pub const RANK_NAMES: [&str; 9] = [
    "state",
    "cache",
    "registry",
    "store",
    "lanes",
    "gate",
    "job",
    "telemetry",
    "wire",
];

/// Acquisition rank of an engine lock, lowest-acquired-first.
///
/// A thread may only acquire a lock of *strictly* higher rank than every
/// lock it currently holds (two locks of the same rank may never be held
/// together).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rank {
    /// The engine `State` mutex (job queue, job table, counters).
    State,
    /// The fingerprint-keyed result cache.
    Cache,
    /// The prepared-dataset registry.
    Registry,
    /// The durable budget ledger and its backing on-disk store
    /// (`hcc-store`). Above `Registry` so a prepare/unprepare may
    /// persist its refcount change while still holding the registry
    /// lock (keeping disk refcounts ordered with the in-memory ones),
    /// and below the execution-side locks so persistence never nests
    /// inside a running task.
    Store,
    /// Per-worker task deque lanes.
    Lanes,
    /// The compute-admission gate's permit count.
    Gate,
    /// Job-internal locks (`estimates`, `failure`, legacy executor slots).
    Job,
    /// Telemetry span rings.
    Telemetry,
    /// The reactor's cross-thread completion queue (`completions`):
    /// highest rank, so engine completion watchers may push into it
    /// while the worker holds nothing, and the reactor drains it
    /// before touching any engine lock.
    Wire,
}

impl Rank {
    /// The rank's name as used by `hcc-lint` and in violation messages.
    pub fn name(self) -> &'static str {
        match self {
            Rank::State => "state",
            Rank::Cache => "cache",
            Rank::Registry => "registry",
            Rank::Store => "store",
            Rank::Lanes => "lanes",
            Rank::Gate => "gate",
            Rank::Job => "job",
            Rank::Telemetry => "telemetry",
            Rank::Wire => "wire",
        }
    }
}

#[cfg(debug_assertions)]
mod held {
    use super::Rank;
    use std::cell::RefCell;

    thread_local! {
        static STACK: RefCell<Vec<Rank>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn push(rank: Rank) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(&top) = stack.last() {
                assert!(
                    rank > top,
                    "lock-rank violation: acquiring `{}` while holding `{}` \
                     (declared order: {})",
                    rank.name(),
                    top.name(),
                    super::RANK_NAMES.join(" < ")
                );
            }
            stack.push(rank);
        });
    }

    pub(super) fn pop(rank: Rank) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&r| r == rank) {
                stack.remove(pos);
            }
        });
    }
}

/// RAII record of one rank on the current thread's held stack. Popping on
/// drop (rather than dropping the guard struct itself) lets
/// [`RankedGuard::wait`] destructure and reassemble the guard around a
/// condvar wait without touching the stack — the lock conceptually stays
/// held across the wait.
struct RankToken {
    #[cfg(debug_assertions)]
    rank: Rank,
}

impl RankToken {
    fn acquire(rank: Rank) -> RankToken {
        #[cfg(debug_assertions)]
        held::push(rank);
        #[cfg(not(debug_assertions))]
        let _ = rank;
        RankToken {
            #[cfg(debug_assertions)]
            rank,
        }
    }
}

impl Drop for RankToken {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        held::pop(self.rank);
    }
}

/// A `Mutex` that knows its place in the engine lock order.
#[derive(Debug)]
pub(crate) struct RankedMutex<T> {
    rank: Rank,
    inner: Mutex<T>,
}

/// Guard returned by [`RankedMutex::lock`]; derefs to the protected value.
pub(crate) struct RankedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    token: RankToken,
}

impl<T> RankedMutex<T> {
    /// Wrap `value` in a mutex of the given rank.
    pub(crate) fn new(rank: Rank, value: T) -> RankedMutex<T> {
        RankedMutex {
            rank,
            inner: Mutex::new(value),
        }
    }

    /// Acquire the lock, asserting rank order under `debug_assertions`.
    ///
    /// Poisoning is converted to a panic here, once, for every engine lock:
    /// a poisoned engine lock means a worker panicked while mutating shared
    /// state the `catch_unwind` isolation should have protected, and no
    /// caller has a saner recovery than propagating.
    pub(crate) fn lock(&self) -> RankedGuard<'_, T> {
        let token = RankToken::acquire(self.rank);
        // hcc-lint: allow(panic-policy, reason = "single poison conversion point for all engine locks; poisoning implies a bug catch_unwind isolation failed to contain")
        let guard = self.inner.lock().expect("engine lock poisoned");
        RankedGuard { guard, token }
    }

    /// Consume the mutex, returning the protected value. No thread can
    /// still hold the lock (we own the mutex), so no rank bookkeeping.
    pub(crate) fn into_inner(self) -> T {
        // hcc-lint: allow(panic-policy, reason = "same poison policy as RankedMutex::lock")
        self.inner.into_inner().expect("engine lock poisoned")
    }
}

impl<'a, T> RankedGuard<'a, T> {
    /// Block on `condvar`, releasing and reacquiring the underlying mutex.
    ///
    /// The rank token is carried across the wait: the lock is still
    /// considered held for ordering purposes, exactly matching `Condvar`
    /// semantics (the mutex is reacquired before this returns).
    pub(crate) fn wait(self, condvar: &Condvar) -> RankedGuard<'a, T> {
        let RankedGuard { guard, token } = self;
        // hcc-lint: allow(panic-policy, reason = "same poison policy as RankedMutex::lock; wait repoisons only if a peer panicked while holding the lock")
        let guard = condvar.wait(guard).expect("engine lock poisoned");
        RankedGuard { guard, token }
    }
}

impl<T> std::ops::Deref for RankedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_nesting_is_allowed() {
        let state = RankedMutex::new(Rank::State, 1);
        let gate = RankedMutex::new(Rank::Gate, 2);
        let telemetry = RankedMutex::new(Rank::Telemetry, 3);
        let a = state.lock();
        let b = gate.lock();
        let c = telemetry.lock();
        assert_eq!(*a + *b + *c, 6);
    }

    #[test]
    fn reacquire_after_release_is_allowed() {
        let state = RankedMutex::new(Rank::State, 0);
        let cache = RankedMutex::new(Rank::Cache, 0);
        {
            let _c = cache.lock();
        }
        // cache released: acquiring the lower-ranked state lock is fine now.
        let _s = state.lock();
        let _c = cache.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank violation")]
    fn misordered_nesting_panics() {
        let state = RankedMutex::new(Rank::State, 0);
        let gate = RankedMutex::new(Rank::Gate, 0);
        let _g = gate.lock();
        let _s = state.lock(); // gate > state: must panic
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank violation")]
    fn equal_rank_nesting_panics() {
        let a = RankedMutex::new(Rank::Job, 0);
        let b = RankedMutex::new(Rank::Job, 0);
        let _a = a.lock();
        let _b = b.lock();
    }

    #[test]
    fn wait_preserves_rank_and_content() {
        use std::sync::{Arc, Condvar};
        let mutex = Arc::new(RankedMutex::new(Rank::State, false));
        let condvar = Arc::new(Condvar::new());
        let (m2, c2) = (Arc::clone(&mutex), Arc::clone(&condvar));
        let setter = std::thread::spawn(move || {
            *m2.lock() = true;
            c2.notify_all();
        });
        let mut guard = mutex.lock();
        while !*guard {
            guard = guard.wait(&condvar);
        }
        assert!(*guard);
        drop(guard);
        setter.join().expect("setter thread panicked");
    }

    #[test]
    fn rank_names_match_variants() {
        let ranks = [
            Rank::State,
            Rank::Cache,
            Rank::Registry,
            Rank::Store,
            Rank::Lanes,
            Rank::Gate,
            Rank::Job,
            Rank::Telemetry,
            Rank::Wire,
        ];
        for (i, rank) in ranks.iter().enumerate() {
            assert_eq!(rank.name(), RANK_NAMES[i]);
        }
    }
}
