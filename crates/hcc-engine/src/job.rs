//! Job types: what a client submits, what the engine returns, and the
//! lifecycle states in between.

use std::sync::Arc;
use std::time::Duration;

use hcc_consistency::{HierarchicalCounts, TopDownConfig};
use hcc_hierarchy::Hierarchy;

/// Opaque handle for a submitted release job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl std::str::FromStr for JobId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.strip_prefix("job-")
            .and_then(|n| n.parse().ok())
            .map(JobId)
            .ok_or_else(|| format!("malformed job id {s:?}"))
    }
}

/// One release to compute: the hierarchy, the sensitive per-node
/// histograms, the algorithm configuration, and the master RNG seed.
///
/// Hierarchy and data are shared via [`Arc`] so a request is cheap to
/// move into the queue even for large inputs.
#[derive(Clone, Debug)]
pub struct ReleaseRequest {
    /// The region hierarchy.
    pub hierarchy: Arc<Hierarchy>,
    /// True (sensitive) histograms, consistent by construction.
    pub data: Arc<HierarchicalCounts>,
    /// Budget, per-level methods, and merge strategy.
    pub config: TopDownConfig,
    /// Master seed; the released bytes are a pure function of
    /// (hierarchy, data, config, seed).
    pub seed: u64,
}

impl ReleaseRequest {
    /// Bundles a request.
    pub fn new(
        hierarchy: Arc<Hierarchy>,
        data: Arc<HierarchicalCounts>,
        config: TopDownConfig,
        seed: u64,
    ) -> Self {
        Self {
            hierarchy,
            data,
            config,
            seed,
        }
    }
}

/// A finished release.
#[derive(Clone, Debug)]
pub struct ReleaseResult {
    /// The release serialised as `region,level,size,count` CSV.
    pub csv: String,
    /// Number of data rows in `csv` (excluding the header).
    pub rows: usize,
    /// Wall-clock time the original computation took. A cache hit
    /// shares the originally computed result, so this stays the
    /// first run's duration — use the `from_cache` flag (not this
    /// field) to detect cache service.
    pub compute_time: Duration,
}

/// Lifecycle of a submitted job.
#[derive(Clone, Debug)]
pub enum JobStatus {
    /// Waiting in the bounded queue.
    Queued,
    /// A worker is computing it.
    Running,
    /// Finished; `from_cache` tells whether the result was served
    /// from the result cache instead of recomputed.
    Done {
        /// The finished release.
        result: Arc<ReleaseResult>,
        /// Whether the result cache served it.
        from_cache: bool,
    },
    /// The release failed (e.g. a ragged hierarchy).
    Failed(String),
}

impl JobStatus {
    /// Short wire/display name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done { .. } => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// Errors surfaced by the engine's job API.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The bounded job queue is at capacity; retry later.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The engine is shutting down and accepts no new jobs.
    ShuttingDown,
    /// No job with the given id was ever submitted.
    UnknownJob(JobId),
    /// The job ran and failed.
    JobFailed(String),
    /// No dataset with the given handle was ever prepared.
    UnknownDataset(crate::DatasetHandle),
    /// The dataset was prepared but has since been evicted by the
    /// registry's LRU bound; prepare it again.
    DatasetEvicted(crate::DatasetHandle),
    /// Different content digested to an already-registered handle.
    /// FNV-1a is not collision-resistant, so the registry verifies
    /// content equality on repeat preparations and refuses to alias
    /// two datasets under one handle.
    DatasetCollision(crate::DatasetHandle),
    /// The engine was started with a zero-capacity prepared-dataset
    /// registry, so `PREPARE` is unavailable.
    RegistryDisabled,
    /// A `DERIVE`/`APPEND` delta failed validation against the parent
    /// dataset (unknown region, non-leaf region, removing groups that
    /// are not there, malformed delta CSV).
    BadDelta(String),
    /// Admitting the submission would push the dataset's cumulative
    /// privacy spend past the configured budget cap. Nothing was
    /// charged and no noise was drawn; the request must not be
    /// retried with the same ε.
    BudgetExhausted {
        /// The dataset whose budget is exhausted.
        handle: crate::DatasetHandle,
        /// ε already charged against this dataset.
        spent: f64,
        /// The configured per-dataset cap.
        cap: f64,
        /// ε this submission asked for.
        requested: f64,
    },
    /// The durable store could not persist a mutation (WAL append or
    /// checkpoint failed). The engine refuses to acknowledge work it
    /// cannot make durable.
    StoreFailed(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::QueueFull { capacity } => {
                write!(f, "job queue is full ({capacity} jobs)")
            }
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::UnknownJob(id) => write!(f, "unknown job {id}"),
            EngineError::JobFailed(msg) => write!(f, "job failed: {msg}"),
            EngineError::UnknownDataset(handle) => {
                write!(f, "unknown dataset handle {handle}")
            }
            EngineError::DatasetEvicted(handle) => {
                write!(
                    f,
                    "dataset {handle} was evicted from the prepared registry; \
                     PREPARE it again"
                )
            }
            EngineError::DatasetCollision(handle) => {
                write!(
                    f,
                    "dataset handle collision: different content digests to {handle}; \
                     refusing to alias it"
                )
            }
            EngineError::RegistryDisabled => {
                write!(f, "the prepared-dataset registry is disabled (capacity 0)")
            }
            EngineError::BadDelta(msg) => write!(f, "bad delta: {msg}"),
            EngineError::BudgetExhausted {
                handle,
                spent,
                cap,
                requested,
            } => {
                write!(
                    f,
                    "privacy budget exhausted for {handle}: \
                     spent ε={spent} of cap ε={cap}, requested ε={requested}"
                )
            }
            EngineError::StoreFailed(msg) => {
                write!(f, "durable store failed: {msg}")
            }
        }
    }
}

impl std::error::Error for EngineError {}
