//! Engine telemetry: per-worker counters, log-bucketed latency
//! histograms, and a bounded span recorder.
//!
//! The eight-counter `STATS` line says *what* the engine did; this
//! module says *where the time went* — the prerequisite for closing
//! the remaining multi-core scaling gap (steal granularity, gate
//! hand-off latency, queue wait) without guessing. Three layers:
//!
//! * **`WorkerMetrics`** (crate-private) — one cache-line-aligned
//!   block of relaxed atomics per worker, written only by the owning
//!   worker thread on the hot path: counters (steal attempts /
//!   successes / failed probes, tasks executed / stolen) and
//!   `AtomicHistogram`s for queue wait, job expansion, compute-gate
//!   wait, node-task run time, per-node estimation time **split by
//!   level method** (`Hc` vs `Hg` vs the rest — the paper's §4.3 cost
//!   asymmetry, observable per release), job finalization, and worker
//!   idle time. Recording is one relaxed `fetch_add` per field — no
//!   locks, no allocation, no cross-worker cache-line sharing.
//! * **Snapshots** — [`TelemetrySnapshot`] aggregates the per-worker
//!   blocks on demand (the *reader* pays, never the workers) and
//!   renders Prometheus-style text exposition ([`TelemetrySnapshot::
//!   to_prometheus`], served by the `METRICS` wire verb) with
//!   p50/p95/p99 derived from the histogram buckets, or a compact
//!   JSON attribution blob ([`TelemetrySnapshot::to_json`], embedded
//!   into `BENCH_N.json` by `scripts/bench.sh`).
//! * **Span recorder** — when enabled (per-server flag; off by
//!   default), each worker appends [`SpanEvent`]s (worker, job, task,
//!   start, end, kind) to its own bounded ring buffer, overwriting
//!   the oldest beyond capacity. [`chrome_trace_json`] renders a dump
//!   as `chrome://tracing` / Perfetto JSON (`hcc trace --out
//!   trace.json`). Span kinds tile a worker's wall-clock — sched,
//!   expand, gate wait, task, finalize, idle — so a trace accounts
//!   for where every worker spent its time, not just what it
//!   computed.
//!
//! Everything here is hand-rolled on `std` (the build has no
//! crates.io access) and `unsafe`-free like the rest of the crate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::locks::{Rank, RankedMutex};

use hcc_consistency::LevelMethod;

use crate::engine::EngineStats;
use crate::job::JobId;

/// Number of log₂ latency buckets. Bucket `i < HIST_BUCKETS - 1`
/// counts durations below [`bucket_upper_ns`]`(i)`; the last bucket
/// is the +Inf overflow.
pub const HIST_BUCKETS: usize = 32;

/// The smallest bucket's upper bound is `2^MIN_SHIFT` ns (128 ns);
/// each bucket doubles from there, so the finite range tops out near
/// `2^(MIN_SHIFT + HIST_BUCKETS - 2)` ns ≈ 18 minutes.
const MIN_SHIFT: u32 = 7;

/// Exclusive upper bound of bucket `i`, in nanoseconds
/// (`u64::MAX` for the +Inf bucket).
pub fn bucket_upper_ns(i: usize) -> u64 {
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << (MIN_SHIFT + i as u32)
    }
}

/// The bucket a duration of `ns` nanoseconds lands in.
fn bucket_of(ns: u64) -> usize {
    if ns < (1 << MIN_SHIFT) {
        0
    } else {
        ((ns.ilog2() + 1 - MIN_SHIFT) as usize).min(HIST_BUCKETS - 1)
    }
}

/// A log-bucketed latency histogram writable with relaxed atomics.
///
/// `record` is the only writer-side operation: one bucket increment
/// plus count/sum/max updates, all `Ordering::Relaxed` — the snapshot
/// path tolerates torn cross-field reads (counts are monotone, and
/// consistency across *fields* is not load-bearing for quantiles).
pub(crate) struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl AtomicHistogram {
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        // hcc-lint: allow(panic-policy, reason = "bucket_of clamps to BUCKETS - 1")
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one `AtomicHistogram`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, `HIST_BUCKETS` long (last bucket = +Inf).
    pub buckets: Vec<u64>,
    /// Total recorded durations.
    pub count: u64,
    /// Sum of recorded durations in nanoseconds.
    pub sum_ns: u64,
    /// Largest recorded duration in nanoseconds.
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Accumulates another snapshot (e.g. per-worker → engine-wide).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, estimated as
    /// the upper bound of the bucket holding the target rank and
    /// clamped to the observed maximum. `0` for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_ns(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Mean recorded duration in nanoseconds (`0` when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Estimation-method families the per-node timing is split by — the
/// wire/metric labels for [`LevelMethod`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// `Hc` with L1 post-processing.
    Hc,
    /// `Hc` with L2 post-processing.
    HcL2,
    /// `Hg` (unattributed histogram).
    Hg,
    /// Naive cell noise.
    Naive,
    /// Data-adaptive `Hc`/`Hg` selection.
    Adaptive,
}

impl MethodKind {
    /// Every kind, in label order.
    pub const ALL: [MethodKind; 5] = [
        MethodKind::Hc,
        MethodKind::HcL2,
        MethodKind::Hg,
        MethodKind::Naive,
        MethodKind::Adaptive,
    ];

    /// The kind of a [`LevelMethod`].
    pub fn of(method: LevelMethod) -> Self {
        match method {
            LevelMethod::Cumulative { .. } => MethodKind::Hc,
            LevelMethod::CumulativeL2 { .. } => MethodKind::HcL2,
            LevelMethod::Unattributed => MethodKind::Hg,
            LevelMethod::Naive { .. } => MethodKind::Naive,
            LevelMethod::Adaptive { .. } => MethodKind::Adaptive,
        }
    }

    /// Stable metric-label text (`method="<label>"`).
    pub fn label(self) -> &'static str {
        match self {
            MethodKind::Hc => "hc",
            MethodKind::HcL2 => "hc_l2",
            MethodKind::Hg => "hg",
            MethodKind::Naive => "naive",
            MethodKind::Adaptive => "adaptive",
        }
    }

    fn index(self) -> usize {
        match self {
            MethodKind::Hc => 0,
            MethodKind::HcL2 => 1,
            MethodKind::Hg => 2,
            MethodKind::Naive => 3,
            MethodKind::Adaptive => 4,
        }
    }
}

/// One worker's hot-path telemetry block. Alignment keeps two
/// workers' counters off one cache line — the exact false-sharing
/// hazard ROADMAP item 1 wants to measure, not introduce.
#[repr(align(64))]
pub(crate) struct WorkerMetrics {
    /// Job submission → expansion (time spent in the bounded queue).
    pub queue_wait: AtomicHistogram,
    /// Job expansion (seed derivation + task partitioning + push).
    pub expand: AtomicHistogram,
    /// Compute-gate acquisition wait.
    pub gate_wait: AtomicHistogram,
    /// Whole node-task run time (all nodes of one task).
    pub task_run: AtomicHistogram,
    /// Per-node estimation time, split by [`MethodKind`].
    pub estimate: [AtomicHistogram; 5],
    /// Top-down + CSV + cache-insert finalization.
    pub finalize: AtomicHistogram,
    /// Parked/idle stretches (no queued job, no pending task).
    pub idle: AtomicHistogram,
    pub steal_attempts: AtomicU64,
    pub steal_successes: AtomicU64,
    /// Lanes probed during steal scans that held no task.
    pub steal_failed_probes: AtomicU64,
    pub tasks_executed: AtomicU64,
    pub tasks_stolen: AtomicU64,
}

impl WorkerMetrics {
    fn new() -> Self {
        Self {
            queue_wait: AtomicHistogram::new(),
            expand: AtomicHistogram::new(),
            gate_wait: AtomicHistogram::new(),
            task_run: AtomicHistogram::new(),
            estimate: std::array::from_fn(|_| AtomicHistogram::new()),
            finalize: AtomicHistogram::new(),
            idle: AtomicHistogram::new(),
            steal_attempts: AtomicU64::new(0),
            steal_successes: AtomicU64::new(0),
            steal_failed_probes: AtomicU64::new(0),
            tasks_executed: AtomicU64::new(0),
            tasks_stolen: AtomicU64::new(0),
        }
    }

    /// The estimation histogram for one method family.
    pub fn estimate_for(&self, kind: MethodKind) -> &AtomicHistogram {
        // hcc-lint: allow(panic-policy, reason = "kind.index() < 5 by definition and estimate is [_; 5]")
        &self.estimate[kind.index()]
    }

    fn snapshot(&self) -> WorkerSnapshot {
        WorkerSnapshot {
            queue_wait: self.queue_wait.snapshot(),
            expand: self.expand.snapshot(),
            gate_wait: self.gate_wait.snapshot(),
            task_run: self.task_run.snapshot(),
            // hcc-lint: allow(panic-policy, reason = "k.index() < 5 by definition and estimate is [_; 5]")
            estimate: MethodKind::ALL.map(|k| self.estimate[k.index()].snapshot()),
            finalize: self.finalize.snapshot(),
            idle: self.idle.snapshot(),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            steal_successes: self.steal_successes.load(Ordering::Relaxed),
            steal_failed_probes: self.steal_failed_probes.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one worker's `WorkerMetrics` (also used,
/// merged, for the engine-wide totals).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Job submission → expansion latency.
    pub queue_wait: HistogramSnapshot,
    /// Job expansion time.
    pub expand: HistogramSnapshot,
    /// Compute-gate wait.
    pub gate_wait: HistogramSnapshot,
    /// Node-task run time.
    pub task_run: HistogramSnapshot,
    /// Per-node estimation time in [`MethodKind::ALL`] order.
    pub estimate: [HistogramSnapshot; 5],
    /// Job finalization time.
    pub finalize: HistogramSnapshot,
    /// Idle/parked stretches.
    pub idle: HistogramSnapshot,
    /// Steal scans started.
    pub steal_attempts: u64,
    /// Steal scans that yielded a task.
    pub steal_successes: u64,
    /// Empty lanes probed across all steal scans.
    pub steal_failed_probes: u64,
    /// Node tasks this worker ran.
    pub tasks_executed: u64,
    /// Node tasks this worker stole before running.
    pub tasks_stolen: u64,
}

impl WorkerSnapshot {
    /// Accumulates another worker's snapshot into this one.
    pub fn merge(&mut self, other: &WorkerSnapshot) {
        self.queue_wait.merge(&other.queue_wait);
        self.expand.merge(&other.expand);
        self.gate_wait.merge(&other.gate_wait);
        self.task_run.merge(&other.task_run);
        for (a, b) in self.estimate.iter_mut().zip(&other.estimate) {
            a.merge(b);
        }
        self.finalize.merge(&other.finalize);
        self.idle.merge(&other.idle);
        self.steal_attempts += other.steal_attempts;
        self.steal_successes += other.steal_successes;
        self.steal_failed_probes += other.steal_failed_probes;
        self.tasks_executed += other.tasks_executed;
        self.tasks_stolen += other.tasks_stolen;
    }

    /// The estimation snapshot for one method family.
    pub fn estimate_for(&self, kind: MethodKind) -> &HistogramSnapshot {
        // hcc-lint: allow(panic-policy, reason = "kind.index() < 5 by definition and estimate is [_; 5]")
        &self.estimate[kind.index()]
    }
}

/// What a recorded span was doing. The kinds tile a worker's
/// wall-clock: between consecutive spans of one worker lies only a
/// handful of instructions, so a trace accounts for (nearly) all of
/// each worker's time — including time spent preempted on an
/// oversubscribed host, which lands inside whichever span was open.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Claiming the next task: gate hand-off from the previous task,
    /// own-deque pop, steal scan.
    Sched,
    /// Expanding a queued job into node tasks.
    Expand,
    /// Waiting at the compute gate.
    GateWait,
    /// Running one node task (estimating its nodes).
    Task,
    /// Finalizing a job (top-down phase, CSV, cache insert).
    Finalize,
    /// Parked: no queued job and no pending task.
    Idle,
}

impl SpanKind {
    /// Stable wire/trace label.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Sched => "sched",
            SpanKind::Expand => "expand",
            SpanKind::GateWait => "gate_wait",
            SpanKind::Task => "task",
            SpanKind::Finalize => "finalize",
            SpanKind::Idle => "idle",
        }
    }

    /// Parses a [`SpanKind::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "sched" => SpanKind::Sched,
            "expand" => SpanKind::Expand,
            "gate_wait" => SpanKind::GateWait,
            "task" => SpanKind::Task,
            "finalize" => SpanKind::Finalize,
            "idle" => SpanKind::Idle,
            _ => return None,
        })
    }
}

/// One recorded span: worker `worker` spent
/// `[start_ns, end_ns]` (nanoseconds since the engine booted) doing
/// `kind`, on behalf of `job`/`task` when they apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Worker index within the pool.
    pub worker: u32,
    /// What the worker was doing.
    pub kind: SpanKind,
    /// The job involved, if any (idle spans have none).
    pub job: Option<u64>,
    /// The task index within the job, if any.
    pub task: Option<u32>,
    /// Span start, nanoseconds since engine boot.
    pub start_ns: u64,
    /// Span end, nanoseconds since engine boot.
    pub end_ns: u64,
}

impl SpanEvent {
    /// Renders the `TRACE` wire line:
    /// `worker,kind,job,task,start_ns,end_ns` (empty job/task when
    /// absent).
    pub fn to_wire_line(&self) -> String {
        format!(
            "{},{},{},{},{},{}",
            self.worker,
            self.kind.label(),
            self.job.map(|j| j.to_string()).unwrap_or_default(),
            self.task.map(|t| t.to_string()).unwrap_or_default(),
            self.start_ns,
            self.end_ns
        )
    }

    /// Parses a [`SpanEvent::to_wire_line`] line.
    pub fn from_wire_line(line: &str) -> Result<Self, String> {
        let fields: Vec<&str> = line.split(',').collect();
        let [worker, kind, job, task, start_ns, end_ns] = fields.as_slice() else {
            return Err(format!("expected 6 span fields, got {line:?}"));
        };
        let opt = |s: &str, what: &str| -> Result<Option<u64>, String> {
            if s.is_empty() {
                Ok(None)
            } else {
                s.parse()
                    .map(Some)
                    .map_err(|_| format!("{what}: cannot parse {s:?}"))
            }
        };
        Ok(Self {
            worker: worker
                .parse()
                .map_err(|_| format!("worker: cannot parse {worker:?}"))?,
            kind: SpanKind::parse(kind).ok_or_else(|| format!("unknown span kind {kind:?}"))?,
            job: opt(job, "job")?,
            task: opt(task, "task")?.map(|t| t as u32),
            start_ns: start_ns
                .parse()
                .map_err(|_| format!("start_ns: cannot parse {start_ns:?}"))?,
            end_ns: end_ns
                .parse()
                .map_err(|_| format!("end_ns: cannot parse {end_ns:?}"))?,
        })
    }
}

/// Bounded per-worker span storage: a ring that overwrites the
/// oldest event past capacity, counting what it dropped.
struct SpanRing {
    events: Vec<SpanEvent>,
    /// Next write position once `events` reached capacity.
    next: usize,
    dropped: u64,
}

impl SpanRing {
    fn push(&mut self, event: SpanEvent, capacity: usize) {
        if self.events.len() < capacity {
            self.events.push(event);
        } else {
            // hcc-lint: allow(panic-policy, reason = "next < capacity == events.len() here: maintained by the modulo below and the branch above")
            self.events[self.next] = event;
            self.next = (self.next + 1) % capacity;
            self.dropped += 1;
        }
    }
}

/// The engine's telemetry hub: per-worker metric blocks plus the
/// optional span rings, all keyed to one boot-time epoch.
pub(crate) struct Telemetry {
    epoch: Instant,
    workers: Vec<WorkerMetrics>,
    rings: Vec<RankedMutex<SpanRing>>,
    /// Per-worker ring capacity; `0` disables span recording (the
    /// histograms and counters above stay always-on).
    trace_capacity: usize,
}

impl Telemetry {
    pub fn new(workers: usize, trace_capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            workers: (0..workers).map(|_| WorkerMetrics::new()).collect(),
            rings: (0..workers)
                .map(|_| {
                    RankedMutex::new(
                        Rank::Telemetry,
                        SpanRing {
                            events: Vec::new(),
                            next: 0,
                            dropped: 0,
                        },
                    )
                })
                .collect(),
            trace_capacity,
        }
    }

    /// The metric block worker `i` writes.
    pub fn worker(&self, i: usize) -> &WorkerMetrics {
        // hcc-lint: allow(panic-policy, reason = "i is an engine worker index; both vectors were sized to the worker count at construction")
        &self.workers[i]
    }

    /// Whether span recording is on.
    pub fn tracing(&self) -> bool {
        self.trace_capacity > 0
    }

    /// Engine uptime.
    pub fn uptime(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Records a span that started at `start` and ends now. No-op
    /// unless tracing is enabled; the only cost in the disabled case
    /// is this branch.
    pub fn span(
        &self,
        worker: usize,
        kind: SpanKind,
        job: Option<JobId>,
        task: Option<usize>,
        start: Instant,
    ) {
        if !self.tracing() {
            return;
        }
        let start_ns =
            u64::try_from(start.saturating_duration_since(self.epoch).as_nanos()).unwrap_or(0);
        let end_ns = u64::try_from(
            Instant::now()
                .saturating_duration_since(self.epoch)
                .as_nanos(),
        )
        .unwrap_or(u64::MAX);
        let event = SpanEvent {
            worker: worker as u32,
            kind,
            job: job.map(|j| j.0),
            task: task.map(|t| t as u32),
            start_ns,
            end_ns,
        };
        // Owner-only writes: this lock is uncontended except while a
        // TRACE dump drains the ring.
        // hcc-lint: allow(panic-policy, reason = "worker is an engine worker index; rings was sized to the worker count at construction")
        self.rings[worker].lock().push(event, self.trace_capacity);
    }

    /// Drains every worker's ring, returning all recorded spans in
    /// start order.
    pub fn take_spans(&self) -> Vec<SpanEvent> {
        let mut all = Vec::new();
        for ring in &self.rings {
            let mut ring = ring.lock();
            all.append(&mut ring.events);
            ring.next = 0;
        }
        all.sort_by_key(|e| (e.start_ns, e.worker));
        all
    }

    /// Spans overwritten because a ring was full.
    pub fn spans_dropped(&self) -> u64 {
        self.rings.iter().map(|ring| ring.lock().dropped).sum()
    }

    /// Per-worker metric snapshots.
    pub fn worker_snapshots(&self) -> Vec<WorkerSnapshot> {
        self.workers.iter().map(|w| w.snapshot()).collect()
    }
}

/// A structured, internally consistent point-in-time view of the
/// whole engine: job counters, per-worker scheduler metrics, and
/// latency histograms. Produced by `Engine::telemetry`; rendered for
/// the wire by [`TelemetrySnapshot::to_prometheus`] and for
/// BENCH_N.json by [`TelemetrySnapshot::to_json`].
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// The job-level counters (same numbers as `Engine::stats`).
    pub stats: EngineStats,
    /// Worker-pool size.
    pub workers: usize,
    /// Jobs waiting in the bounded queue at snapshot time.
    pub queued: usize,
    /// Datasets in the prepared registry at snapshot time.
    pub prepared_datasets: usize,
    /// Time since the engine booted.
    pub uptime: Duration,
    /// One snapshot per worker, index-aligned with the pool.
    pub per_worker: Vec<WorkerSnapshot>,
    /// Whether the span recorder is enabled.
    pub trace_enabled: bool,
    /// Spans lost to ring-buffer overwrites.
    pub spans_dropped: u64,
}

impl TelemetrySnapshot {
    /// All workers merged into one engine-wide view.
    pub fn totals(&self) -> WorkerSnapshot {
        let mut total = WorkerSnapshot::default();
        for w in &self.per_worker {
            total.merge(w);
        }
        total
    }

    /// Renders Prometheus text exposition: counters and gauges for
    /// the job/scheduler state, one histogram series per lifecycle
    /// stage (with per-method labels for estimation), and
    /// `*_quantile` gauges (p50/p95/p99) derived from the buckets.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(16 * 1024);
        let s = &self.stats;
        for (name, help, value) in [
            (
                "hcc_jobs_submitted_total",
                "Jobs accepted by submit",
                s.submitted,
            ),
            (
                "hcc_jobs_completed_total",
                "Jobs finished successfully (cache hits included)",
                s.completed,
            ),
            ("hcc_jobs_failed_total", "Jobs that failed", s.failed),
            (
                "hcc_cache_hits_total",
                "Completions served from the result cache",
                s.cache_hits,
            ),
            (
                "hcc_cache_misses_total",
                "Completions that had to compute",
                s.cache_misses,
            ),
            (
                "hcc_datasets_prepared_total",
                "PREPARE calls accepted",
                s.prepared,
            ),
            (
                "hcc_datasets_derived_total",
                "DERIVE/APPEND calls accepted",
                s.derived,
            ),
            (
                "hcc_trace_spans_dropped_total",
                "Spans lost to ring-buffer overwrites",
                self.spans_dropped,
            ),
        ] {
            push_series(&mut out, name, "counter", help, &[("", value)]);
        }
        for (name, help, value) in [
            ("hcc_workers", "Worker-pool size", self.workers as u64),
            (
                "hcc_queue_depth",
                "Jobs waiting in the bounded queue",
                self.queued as u64,
            ),
            (
                "hcc_prepared_datasets",
                "Datasets currently in the prepared registry",
                self.prepared_datasets as u64,
            ),
        ] {
            push_series(&mut out, name, "gauge", help, &[("", value)]);
        }
        out.push_str("# HELP hcc_uptime_seconds Time since the engine booted\n");
        out.push_str("# TYPE hcc_uptime_seconds gauge\n");
        out.push_str(&format!(
            "hcc_uptime_seconds {}\n",
            fmt_seconds(u64::try_from(self.uptime.as_nanos()).unwrap_or(u64::MAX))
        ));

        // Per-worker scheduler counters.
        let worker_counter = |snap: &WorkerSnapshot, field: fn(&WorkerSnapshot) -> u64| field(snap);
        for (name, help, field) in [
            (
                "hcc_tasks_executed_total",
                "Node tasks run by this worker",
                (|w| w.tasks_executed) as fn(&WorkerSnapshot) -> u64,
            ),
            (
                "hcc_tasks_stolen_total",
                "Node tasks stolen from another worker's deque",
                |w| w.tasks_stolen,
            ),
            (
                "hcc_steal_attempts_total",
                "Steal scans started by this worker",
                |w| w.steal_attempts,
            ),
            (
                "hcc_steal_successes_total",
                "Steal scans that yielded a task",
                |w| w.steal_successes,
            ),
            (
                "hcc_steal_failed_probes_total",
                "Empty victim lanes probed during steal scans",
                |w| w.steal_failed_probes,
            ),
        ] {
            let series: Vec<(String, u64)> = self
                .per_worker
                .iter()
                .enumerate()
                .map(|(i, w)| (format!("{{worker=\"{i}\"}}"), worker_counter(w, field)))
                .collect();
            let refs: Vec<(&str, u64)> = series.iter().map(|(l, v)| (l.as_str(), *v)).collect();
            push_series(&mut out, name, "counter", help, &refs);
        }
        // Per-worker idle time as a plain counter (seconds).
        out.push_str("# HELP hcc_worker_idle_seconds_total Time this worker spent parked\n");
        out.push_str("# TYPE hcc_worker_idle_seconds_total counter\n");
        for (i, w) in self.per_worker.iter().enumerate() {
            out.push_str(&format!(
                "hcc_worker_idle_seconds_total{{worker=\"{i}\"}} {}\n",
                fmt_seconds(w.idle.sum_ns)
            ));
        }

        // Engine-wide latency histograms + derived quantiles.
        let totals = self.totals();
        for (name, help, hist) in [
            (
                "hcc_queue_wait_seconds",
                "Job submission to expansion",
                &totals.queue_wait,
            ),
            (
                "hcc_expand_seconds",
                "Job expansion into node tasks",
                &totals.expand,
            ),
            (
                "hcc_gate_wait_seconds",
                "Compute-gate acquisition wait",
                &totals.gate_wait,
            ),
            ("hcc_task_seconds", "Node-task run time", &totals.task_run),
            (
                "hcc_finalize_seconds",
                "Job finalization (top-down phase, CSV, cache insert)",
                &totals.finalize,
            ),
            (
                "hcc_worker_idle_seconds",
                "Length of individual idle stretches",
                &totals.idle,
            ),
        ] {
            push_histogram(&mut out, name, help, "", hist);
        }
        out.push_str(
            "# HELP hcc_estimate_seconds Per-node estimation time by level method\n\
             # TYPE hcc_estimate_seconds histogram\n",
        );
        for kind in MethodKind::ALL {
            push_histogram_body(
                &mut out,
                "hcc_estimate_seconds",
                &format!("method=\"{}\"", kind.label()),
                totals.estimate_for(kind),
            );
        }
        for kind in MethodKind::ALL {
            push_quantiles(
                &mut out,
                "hcc_estimate_seconds",
                &format!("method=\"{}\"", kind.label()),
                totals.estimate_for(kind),
            );
        }
        out
    }

    /// Renders a compact JSON attribution blob (job counters plus
    /// p50/p95/p99/mean/count per lifecycle stage) for embedding in
    /// `BENCH_N.json` — small enough to diff across PRs, detailed
    /// enough to say *which* stage a scaling regression grew in.
    pub fn to_json(&self) -> String {
        let totals = self.totals();
        let hist = |h: &HistogramSnapshot| {
            format!(
                "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                h.count,
                h.mean_ns(),
                h.quantile_ns(0.50),
                h.quantile_ns(0.95),
                h.quantile_ns(0.99),
                h.max_ns
            )
        };
        let estimates: Vec<String> = MethodKind::ALL
            .iter()
            .filter(|k| totals.estimate_for(**k).count > 0)
            .map(|k| format!("\"{}\":{}", k.label(), hist(totals.estimate_for(*k))))
            .collect();
        format!(
            "{{\"workers\":{},\"queued\":{},\"jobs\":{{\"submitted\":{},\"completed\":{},\"failed\":{},\
             \"cache_hits\":{},\"cache_misses\":{}}},\
             \"tasks\":{{\"executed\":{},\"stolen\":{},\"steal_attempts\":{},\"steal_successes\":{},\
             \"steal_failed_probes\":{}}},\
             \"latency\":{{\"queue_wait\":{},\"expand\":{},\"gate_wait\":{},\"task\":{},\
             \"finalize\":{},\"idle\":{},\"estimate\":{{{}}}}}}}",
            self.workers,
            self.queued,
            self.stats.submitted,
            self.stats.completed,
            self.stats.failed,
            self.stats.cache_hits,
            self.stats.cache_misses,
            totals.tasks_executed,
            totals.tasks_stolen,
            totals.steal_attempts,
            totals.steal_successes,
            totals.steal_failed_probes,
            hist(&totals.queue_wait),
            hist(&totals.expand),
            hist(&totals.gate_wait),
            hist(&totals.task_run),
            hist(&totals.finalize),
            hist(&totals.idle),
            estimates.join(",")
        )
    }
}

/// Writes `# HELP`/`# TYPE` plus one sample line per `(labels,
/// value)` pair (`labels` already braced, or empty).
fn push_series(out: &mut String, name: &str, kind: &str, help: &str, samples: &[(&str, u64)]) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    for (labels, value) in samples {
        out.push_str(&format!("{name}{labels} {value}\n"));
    }
}

/// Formats nanoseconds as decimal seconds without float rounding
/// surprises (9 fractional digits, trailing zeros trimmed).
fn fmt_seconds(ns: u64) -> String {
    let whole = ns / 1_000_000_000;
    let frac = ns % 1_000_000_000;
    if frac == 0 {
        return format!("{whole}");
    }
    let mut s = format!("{whole}.{frac:09}");
    while s.ends_with('0') {
        s.pop();
    }
    s
}

/// Writes a full histogram: HELP/TYPE header, buckets, sum, count,
/// then the derived quantile gauges.
fn push_histogram(out: &mut String, name: &str, help: &str, labels: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    push_histogram_body(out, name, labels, h);
    push_quantiles(out, name, labels, h);
}

/// Writes the `_bucket`/`_sum`/`_count` lines of one histogram
/// (header emitted by the caller, so label variants share one TYPE).
fn push_histogram_body(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    let sep = if labels.is_empty() { "" } else { "," };
    for (i, &c) in h.buckets.iter().enumerate() {
        cumulative += c;
        let le = if i == HIST_BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            fmt_seconds(bucket_upper_ns(i))
        };
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}\n"
        ));
    }
    let braced = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!("{name}_sum{braced} {}\n", fmt_seconds(h.sum_ns)));
    out.push_str(&format!("{name}_count{braced} {}\n", h.count));
}

/// Writes the p50/p95/p99 gauge lines derived from one histogram.
fn push_quantiles(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
        out.push_str(&format!(
            "{name}_quantile{{{labels}{sep}q=\"{label}\"}} {}\n",
            fmt_seconds(h.quantile_ns(q))
        ));
    }
}

/// Renders recorded spans as Chrome-trace JSON (the object form with
/// a `traceEvents` array), loadable in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev): one complete (`"ph":"X"`)
/// event per span, timestamps in microseconds since engine boot,
/// `tid` = worker index, plus thread-name metadata so workers are
/// labelled in the UI.
pub fn chrome_trace_json(spans: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(128 + 96 * spans.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let workers: std::collections::BTreeSet<u32> = spans.iter().map(|s| s.worker).collect();
    let mut first = true;
    for w in workers {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{w},\
             \"args\":{{\"name\":\"worker-{w}\"}}}}"
        ));
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let ts_us = s.start_ns as f64 / 1_000.0;
        let dur_us = s.end_ns.saturating_sub(s.start_ns) as f64 / 1_000.0;
        let mut args = String::new();
        if let Some(job) = s.job {
            args.push_str(&format!("\"job\":{job}"));
        }
        if let Some(task) = s.task {
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(&format!("\"task\":{task}"));
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"hcc\",\"ph\":\"X\",\"ts\":{ts_us:.3},\
             \"dur\":{dur_us:.3},\"pid\":0,\"tid\":{},\"args\":{{{args}}}}}",
            s.kind.label(),
            s.worker
        ));
    }
    out.push_str("]}");
    out
}

/// Connection-level counters of the reactor wire path. All relaxed
/// atomics bumped from the reactor thread (and, for `backpressure`,
/// wherever a shed happens): no cross-field invariant, read only when
/// a snapshot is taken — same discipline as the per-worker
/// `WorkerMetrics` counters.
#[derive(Debug, Default)]
pub struct WireStats {
    /// Connections accepted and registered with the reactor.
    pub accepted: AtomicU64,
    /// Currently-open connections (gauge: incremented on accept,
    /// decremented on close).
    pub active: AtomicU64,
    /// Connections turned away at the `max_connections` bound.
    pub rejected: AtomicU64,
    /// Bytes read off client sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to client sockets.
    pub bytes_out: AtomicU64,
    /// Framed requests decoded.
    pub frames_in: AtomicU64,
    /// Response frames sent.
    pub frames_out: AtomicU64,
    /// BUSY backpressure frames sent (load shed to a framed client).
    pub backpressure: AtomicU64,
    /// Connections auto-detected as legacy line-protocol speakers.
    pub legacy_connections: AtomicU64,
    /// Framed requests currently parked awaiting an engine queue slot
    /// or lane quota (gauge).
    pub parked: AtomicU64,
}

impl WireStats {
    /// Copies the counters into a plain snapshot.
    pub fn snapshot(&self) -> WireSnapshot {
        WireSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            backpressure: self.backpressure.load(Ordering::Relaxed),
            legacy_connections: self.legacy_connections.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`WireStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Currently-open connections.
    pub active: u64,
    /// Connections rejected at the connection bound.
    pub rejected: u64,
    /// Bytes read from clients.
    pub bytes_in: u64,
    /// Bytes written to clients.
    pub bytes_out: u64,
    /// Framed requests decoded.
    pub frames_in: u64,
    /// Response frames sent.
    pub frames_out: u64,
    /// BUSY backpressure frames sent.
    pub backpressure: u64,
    /// Connections served via legacy line-protocol auto-detection.
    pub legacy_connections: u64,
    /// Requests currently parked for admission.
    pub parked: u64,
}

impl WireSnapshot {
    /// Renders the wire counters as Prometheus text exposition; the
    /// reactor appends this to the engine's `METRICS` payload.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        let counters: [(&str, &str, u64); 8] = [
            (
                "hcc_wire_connections_accepted_total",
                "Connections accepted by the reactor",
                self.accepted,
            ),
            (
                "hcc_wire_connections_rejected_total",
                "Connections rejected at the connection bound",
                self.rejected,
            ),
            (
                "hcc_wire_bytes_in_total",
                "Bytes read from clients",
                self.bytes_in,
            ),
            (
                "hcc_wire_bytes_out_total",
                "Bytes written to clients",
                self.bytes_out,
            ),
            (
                "hcc_wire_frames_in_total",
                "Framed requests decoded",
                self.frames_in,
            ),
            (
                "hcc_wire_frames_out_total",
                "Response frames sent",
                self.frames_out,
            ),
            (
                "hcc_wire_backpressure_total",
                "BUSY backpressure frames sent",
                self.backpressure,
            ),
            (
                "hcc_wire_legacy_connections_total",
                "Connections auto-detected as legacy line protocol",
                self.legacy_connections,
            ),
        ];
        for (name, help, value) in counters {
            push_series(&mut out, name, "counter", help, &[("", value)]);
        }
        push_series(
            &mut out,
            "hcc_wire_connections_active",
            "gauge",
            "Currently-open connections",
            &[("", self.active)],
        );
        push_series(
            &mut out,
            "hcc_wire_parked_requests",
            "gauge",
            "Framed requests parked awaiting admission",
            &[("", self.parked)],
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_full_u64_range_monotonically() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(127), 0);
        assert_eq!(bucket_of(128), 1);
        assert_eq!(bucket_of(255), 1);
        assert_eq!(bucket_of(256), 2);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let mut prev = 0;
        for ns in [1u64, 100, 1_000, 50_000, 1 << 20, 1 << 40, u64::MAX] {
            let b = bucket_of(ns);
            assert!(b >= prev, "bucket_of must be monotone");
            assert!(
                ns < bucket_upper_ns(b) || b == HIST_BUCKETS - 1,
                "{ns} must sit below its bucket bound"
            );
            prev = b;
        }
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let h = AtomicHistogram::new();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum_ns, (1..=100u64).sum::<u64>() * 1_000);
        assert_eq!(snap.max_ns, 100_000);
        let p50 = snap.quantile_ns(0.50);
        let p99 = snap.quantile_ns(0.99);
        // Log buckets: quantiles are upper bounds, so p50 lands in
        // [50µs, 128µs] and p99 within the max.
        assert!((50_000..=131_072).contains(&p50), "p50 = {p50}");
        assert!((99_000..=100_000).contains(&p99), "p99 = {p99}");
        assert_eq!(HistogramSnapshot::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn merge_accumulates() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        a.record(Duration::from_nanos(100));
        b.record(Duration::from_micros(10));
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 2);
        assert_eq!(m.sum_ns, 100 + 10_000);
        assert_eq!(m.max_ns, 10_000);
    }

    #[test]
    fn span_wire_lines_round_trip() {
        let spans = [
            SpanEvent {
                worker: 3,
                kind: SpanKind::Task,
                job: Some(17),
                task: Some(2),
                start_ns: 1_000,
                end_ns: 5_000,
            },
            SpanEvent {
                worker: 0,
                kind: SpanKind::Idle,
                job: None,
                task: None,
                start_ns: 0,
                end_ns: 99,
            },
        ];
        for s in spans {
            assert_eq!(SpanEvent::from_wire_line(&s.to_wire_line()).unwrap(), s);
        }
        assert!(SpanEvent::from_wire_line("nope").is_err());
        assert!(SpanEvent::from_wire_line("0,bogus,,,1,2").is_err());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let tel = Telemetry::new(1, 2);
        let t0 = Instant::now();
        for _ in 0..3 {
            tel.span(0, SpanKind::Idle, None, None, t0);
        }
        assert_eq!(tel.spans_dropped(), 1);
        let spans = tel.take_spans();
        assert_eq!(spans.len(), 2);
        // Draining resets the ring but keeps the drop counter.
        assert!(tel.take_spans().is_empty());
        assert_eq!(tel.spans_dropped(), 1);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let tel = Telemetry::new(2, 0);
        tel.span(0, SpanKind::Task, Some(JobId(1)), Some(0), Instant::now());
        assert!(!tel.tracing());
        assert!(tel.take_spans().is_empty());
        assert_eq!(tel.spans_dropped(), 0);
    }

    #[test]
    fn chrome_trace_json_shape() {
        let spans = vec![SpanEvent {
            worker: 1,
            kind: SpanKind::Task,
            job: Some(4),
            task: Some(0),
            start_ns: 2_500,
            end_ns: 12_500,
        }];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"task\""));
        assert!(json.contains("\"ts\":2.500"));
        assert!(json.contains("\"dur\":10.000"));
        assert!(json.contains("\"args\":{\"job\":4,\"task\":0}"));
        assert!(json.contains("thread_name"));
        // Balanced braces = parseable by any JSON reader.
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn fmt_seconds_is_exact_decimal() {
        assert_eq!(fmt_seconds(0), "0");
        assert_eq!(fmt_seconds(1), "0.000000001");
        assert_eq!(fmt_seconds(1_500_000_000), "1.5");
        assert_eq!(fmt_seconds(128), "0.000000128");
        assert_eq!(fmt_seconds(2_000_000_000), "2");
    }

    #[test]
    fn method_kind_labels_are_stable() {
        assert_eq!(
            MethodKind::of(LevelMethod::Cumulative { bound: 1 }).label(),
            "hc"
        );
        assert_eq!(
            MethodKind::of(LevelMethod::CumulativeL2 { bound: 1 }).label(),
            "hc_l2"
        );
        assert_eq!(MethodKind::of(LevelMethod::Unattributed).label(), "hg");
        assert_eq!(
            MethodKind::of(LevelMethod::Naive { bound: 1 }).label(),
            "naive"
        );
        assert_eq!(
            MethodKind::of(LevelMethod::Adaptive { bound: 1 }).label(),
            "adaptive"
        );
        for (i, k) in MethodKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
