//! The release engine: a bounded job queue drained by one engine-wide
//! work-stealing worker pool, fronted by the result cache.
//!
//! Lifecycle of a job:
//!
//! ```text
//! submit(request) ─▶ Queued ─▶ Running ─▶ Done { result, from_cache }
//!        │                        └─────▶ Failed(message)
//!        ├─▶ Done { from_cache: true } instantly on a cache hit
//!        └─▶ Err(QueueFull) when the bounded queue is at capacity
//! ```
//!
//! [`Engine::submit`] consults the [`ResultCache`] by request
//! fingerprint first, so hits complete at submission without touching
//! the queue. Execution is a single level of parallelism: a worker
//! with nothing to run pops the next queued job, re-checks the cache
//! (an identical job may have finished in the meantime), and *expands*
//! it into node-level subtree tasks pushed onto its own deque
//! ([`crate::scheduler`]); all workers pop their own deque LIFO and
//! steal FIFO from the others, interleaving tasks from every in-flight
//! job. Each worker permanently owns one [`EstimatorWorkspace`], so
//! the node-task hot path takes no pool lock — and neither the result
//! cache nor the prepared-dataset registry sits on it (each lives
//! behind its own mutex, touched only at job granularity). Jobs are
//! only expanded when the task pool is dry, which keeps the number of
//! concurrently-active working sets near the core count instead of
//! the queue depth. Waiters block on a condvar rather than polling.
//! Dropping the engine finishes every queued job, then joins the pool.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::Instant;

use hcc_consistency::{
    estimate_node, to_csv, top_down_from_estimates, ConsistencyError, HierarchicalCounts,
    TopDownConfig,
};
use hcc_core::CountOfCounts;
use hcc_estimators::EstimatorWorkspace;
use hcc_hierarchy::{Hierarchy, HierarchyBuilder};
use hcc_store::{DatasetRecord, Store};

use crate::cache::ResultCache;
use crate::fingerprint::{dataset_fingerprint, request_fingerprint, Fingerprint};
use crate::job::{EngineError, JobId, JobStatus, ReleaseRequest, ReleaseResult};
use crate::locks::{Rank, RankedGuard, RankedMutex};
use crate::registry::{DatasetHandle, DatasetRegistry};
use crate::scheduler::{ActiveJob, ComputeGate, NodeTask, TaskDeques};
use crate::telemetry::{MethodKind, SpanEvent, SpanKind, Telemetry, TelemetrySnapshot};

/// Sizing knobs for [`Engine::start`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads in the engine-wide work-stealing pool. This is
    /// the engine's *only* parallelism: releases decompose into node
    /// tasks drained by these workers, with no per-job thread spawns.
    pub workers: usize,
    /// How many workers may run node tasks *simultaneously* —
    /// `None` (the default) means `min(workers, available
    /// parallelism)`. Worker threads beyond this limit still pop,
    /// steal, and expand jobs; they just wait their turn at the
    /// compute gate, so oversubscribed worker counts add scheduling
    /// diversity without time-slicing more estimation working sets
    /// through the caches than the cores can hold. Tests force full
    /// oversubscription contention with
    /// [`EngineConfig::with_active_limit`]`(workers)`.
    pub active_limit: Option<usize>,
    /// Bounded queue capacity; [`Engine::submit`] returns
    /// [`EngineError::QueueFull`] beyond it.
    pub queue_capacity: usize,
    /// Result-cache capacity in releases; `0` disables caching.
    pub cache_capacity: usize,
    /// How many *finished* jobs stay queryable through
    /// [`Engine::status`]/[`Engine::wait`]. A long-running service
    /// would otherwise retain every release ever computed; beyond this
    /// many finished jobs, the oldest are forgotten (a later lookup
    /// gets [`EngineError::UnknownJob`]).
    pub retained_jobs: usize,
    /// Capacity of the prepared-dataset registry in datasets; beyond
    /// it, the least-recently-used dataset is evicted. `0` disables
    /// [`Engine::prepare`].
    pub prepared_capacity: usize,
    /// Per-worker span-ring capacity for the telemetry trace recorder
    /// (`0`, the default, disables span recording; counters and
    /// histograms are always on). When full, the oldest spans are
    /// overwritten and counted as dropped.
    pub trace_capacity: usize,
    /// Per-dataset privacy-budget cap: a submission whose cumulative
    /// ε charge against its dataset would exceed this is rejected
    /// with [`EngineError::BudgetExhausted`] *before* any budget is
    /// charged or noise drawn. `None` (the default) disables cap
    /// enforcement; the ledger still accumulates when a durable
    /// store is attached ([`Engine::start_with_store`]).
    pub budget_cap: Option<f64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            active_limit: None,
            queue_capacity: 64,
            cache_capacity: 32,
            retained_jobs: 1024,
            prepared_capacity: 16,
            trace_capacity: 0,
            budget_cap: None,
        }
    }
}

impl EngineConfig {
    /// Sets the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Caps how many workers compute simultaneously (see
    /// [`EngineConfig::active_limit`]).
    pub fn with_active_limit(mut self, limit: usize) -> Self {
        assert!(limit >= 1, "active limit must be at least 1");
        self.active_limit = Some(limit);
        self
    }

    /// The effective compute-gate width: the configured
    /// [`EngineConfig::active_limit`], or `min(workers, available
    /// parallelism)` when unset.
    pub fn effective_active_limit(&self) -> usize {
        self.active_limit.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism().map_or(self.workers, |n| n.get());
            self.workers.min(cores).max(1)
        })
    }

    /// Sets the bounded queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        self.queue_capacity = capacity;
        self
    }

    /// Sets the result-cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets how many finished jobs stay queryable.
    pub fn with_retained_jobs(mut self, retained: usize) -> Self {
        assert!(retained >= 1, "must retain at least one finished job");
        self.retained_jobs = retained;
        self
    }

    /// Sets the prepared-dataset registry capacity (`0` disables
    /// preparation).
    pub fn with_prepared_capacity(mut self, capacity: usize) -> Self {
        self.prepared_capacity = capacity;
        self
    }

    /// Enables the span recorder with the given per-worker ring
    /// capacity (`0` disables recording; see
    /// [`EngineConfig::trace_capacity`]).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Caps the cumulative per-dataset privacy spend (see
    /// [`EngineConfig::budget_cap`]).
    pub fn with_budget_cap(mut self, cap: f64) -> Self {
        assert!(
            cap.is_finite() && cap > 0.0,
            "budget cap must be positive and finite"
        );
        self.budget_cap = Some(cap);
        self
    }
}

/// Point-in-time counters. The snapshot is internally consistent:
/// the job counters are copied together under the engine state lock,
/// so `completed + failed ≤ submitted` always holds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs accepted by [`Engine::submit`].
    pub submitted: u64,
    /// Jobs finished successfully (cache hits included).
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Completions served from the result cache.
    pub cache_hits: u64,
    /// Completions that had to compute.
    pub cache_misses: u64,
    /// `PREPARE` calls accepted (repeat preparations of identical
    /// content included).
    pub prepared: u64,
    /// `DERIVE`/`APPEND` calls accepted.
    pub derived: u64,
    /// Node-level subtree tasks executed by the work-stealing pool.
    pub tasks_executed: u64,
    /// Tasks a worker stole from another worker's deque (a subset of
    /// `tasks_executed`; high ratios mean the pool is load-balancing).
    pub tasks_stolen: u64,
}

struct QueuedJob {
    id: JobId,
    request: ReleaseRequest,
    /// Precomputed at submission (None when caching is disabled) so
    /// workers never re-hash the request.
    key: Option<Fingerprint>,
    /// When [`Engine::submit`] accepted the job; queue-wait telemetry
    /// measures from here to expansion.
    submitted_at: Instant,
}

/// Counters with no cross-field invariant, updated off the job
/// lifecycle: relaxed atomics are fine here. The *job* counters
/// (submitted/completed/failed/cache hits/misses) live in [`State`]
/// instead, under the state lock, so a [`Engine::stats`] snapshot is
/// internally consistent — `completed + failed ≤ submitted` and
/// `cache_hits + cache_misses ≤ submitted` hold mid-flight, which
/// separate atomics read field-by-field cannot guarantee.
#[derive(Default)]
struct Counters {
    prepared: AtomicU64,
    derived: AtomicU64,
}

/// Callback registered by [`Engine::on_finish`], invoked exactly once
/// with the terminal status of its job.
type FinishWatcher = Box<dyn FnOnce(JobId, JobStatus) + Send>;

/// The engine's durable half: the per-dataset privacy-budget ledger
/// and, optionally, the on-disk store backing it. One mutex (rank
/// `store` in the lock order) covers both so a cap check, the WAL'd
/// charge, and the in-memory mirror update are a single atomic step.
///
/// The in-memory `ledger` is always authoritative for cap checks —
/// it equals the store's ledger when one is attached (rebuilt from it
/// at boot, updated in lockstep after every fsynced charge) and it is
/// the *only* ledger when the engine runs with a cap but no store.
struct Durable {
    /// Per-dataset ε cap, `None` = unlimited (ledger still records).
    cap: Option<f64>,
    /// Cumulative ε charged per dataset fingerprint. Entries are
    /// never removed: budget is spent against the data, so it
    /// survives `UNPREPARE`, eviction, and re-`PREPARE` of the same
    /// content.
    ledger: BTreeMap<u128, f64>,
    /// The WAL'd on-disk store, when the engine was booted with one.
    store: Option<Store>,
}

struct State {
    queue: VecDeque<QueuedJob>,
    /// Ordered map so any future iteration (logging, admin listings)
    /// is deterministic by job id — `HashMap` order would leak the
    /// per-process hasher seed into output.
    jobs: BTreeMap<JobId, JobStatus>,
    /// Finished job ids, oldest first; bounds `jobs` growth.
    finished: VecDeque<JobId>,
    /// Completion watchers for jobs that are not yet terminal, drained
    /// by `finish_job` and invoked outside every engine lock. The
    /// event-driven wire path registers one per in-flight framed
    /// request instead of parking a thread in [`Engine::wait`].
    watchers: BTreeMap<JobId, Vec<FinishWatcher>>,
    next_id: u64,
    /// Job-lifecycle counters (see [`Counters`] for why they live
    /// under the lock). Every writer already holds the lock at the
    /// increment site, so this costs nothing extra.
    submitted: u64,
    completed: u64,
    failed: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl State {
    /// Records a terminal status and forgets the oldest finished jobs
    /// beyond the retention limit.
    fn finish(&mut self, id: JobId, status: JobStatus, retained: usize) {
        self.jobs.insert(id, status);
        self.finished.push_back(id);
        while self.finished.len() > retained {
            if let Some(old) = self.finished.pop_front() {
                self.jobs.remove(&old);
            }
        }
    }
}

struct Shared {
    state: RankedMutex<State>,
    /// Signalled when a job is queued, a job's tasks enter the pool,
    /// or the engine shuts down.
    ///
    /// Lost-wakeup protocol: a worker only sleeps after observing, in
    /// one critical section of `state`, that the queue is empty *and*
    /// [`TaskDeques::pending`] is zero; every pusher makes its work
    /// visible first, then passes through the `state` lock before
    /// notifying. A pusher racing a would-be sleeper therefore either
    /// publishes before the sleeper's check, or notifies after the
    /// sleeper is parked on the condvar.
    work: Condvar,
    /// Signalled when any job reaches Done/Failed.
    done: Condvar,
    /// Completed releases by request fingerprint. Its own lock, off
    /// the node-task path: touched once per job at expansion (hit
    /// re-check) and once at finalisation (insert), never per task.
    cache: RankedMutex<ResultCache>,
    /// Prepared datasets. Its own lock for the same reason — handle
    /// resolution at submission never contends with running tasks.
    registry: RankedMutex<DatasetRegistry>,
    /// Budget ledger + durable store; `None` when the engine runs
    /// without a cap and without a store, so the common ephemeral
    /// configuration pays nothing on the submit path.
    durable: Option<RankedMutex<Durable>>,
    /// The engine-wide work-stealing task pool.
    deques: TaskDeques,
    /// Caps simultaneous compute (see [`EngineConfig::active_limit`]).
    gate: ComputeGate,
    shutting_down: AtomicBool,
    counters: Counters,
    /// Per-worker metrics and the span recorder
    /// ([`crate::telemetry`]).
    telemetry: Telemetry,
    config: EngineConfig,
}

/// A long-running release service: submit jobs, poll or block on
/// their completion, share results through the cache.
///
/// ```
/// use std::sync::Arc;
/// use hcc_consistency::{HierarchicalCounts, TopDownConfig};
/// use hcc_core::CountOfCounts;
/// use hcc_engine::{Engine, EngineConfig, ReleaseRequest};
/// use hcc_hierarchy::{Hierarchy, HierarchyBuilder};
///
/// let mut b = HierarchyBuilder::new("country");
/// let va = b.add_child(Hierarchy::ROOT, "VA");
/// let hierarchy = Arc::new(b.build());
/// let data = Arc::new(HierarchicalCounts::from_leaves(
///     &hierarchy,
///     vec![(va, CountOfCounts::from_group_sizes([1, 2, 2]))],
/// ).unwrap());
///
/// let engine = Engine::start(EngineConfig::default());
/// let req = ReleaseRequest::new(hierarchy, data, TopDownConfig::new(1.0), 7);
/// let id = engine.submit(req).unwrap();
/// let (result, _from_cache) = engine.wait(id).unwrap();
/// assert!(result.csv.starts_with("region,level,size,count"));
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Boots the worker pool. With [`EngineConfig::budget_cap`] set,
    /// the budget ledger is enforced in memory only; attach a durable
    /// store with [`Engine::start_with_store`] to make it survive
    /// restarts.
    pub fn start(config: EngineConfig) -> Self {
        let registry = DatasetRegistry::new(config.prepared_capacity);
        let durable = config.budget_cap.map(|cap| Durable {
            cap: Some(cap),
            ledger: BTreeMap::new(),
            store: None,
        });
        Self::boot(config, registry, durable)
    }

    /// Boots the worker pool on top of an already-opened durable
    /// store: every dataset the store holds is rebuilt and re-registered
    /// at its persisted reference count, and the budget ledger resumes
    /// from the recovered cumulative charges.
    ///
    /// Each reloaded dataset's content fingerprint is **recomputed
    /// from the reloaded bytes** and must equal the stored handle —
    /// a mismatch means the snapshot or WAL replay did not reproduce
    /// the acknowledged data byte-identically, and boot fails rather
    /// than serving silently different data under an old handle.
    pub fn start_with_store(config: EngineConfig, mut store: Store) -> Result<Self, EngineError> {
        let mut registry = DatasetRegistry::new(config.prepared_capacity);
        for rec in store.datasets().values().cloned().collect::<Vec<_>>() {
            let (hierarchy, data) = rebuild_dataset(&rec).map_err(EngineError::StoreFailed)?;
            let recomputed = dataset_fingerprint(&hierarchy, &data);
            if recomputed.0 != rec.handle {
                return Err(EngineError::StoreFailed(format!(
                    "dataset ds-{:032x} reloaded with fingerprint {recomputed} — \
                     the recovered bytes do not reproduce the acknowledged handle",
                    rec.handle
                )));
            }
            let (_, evicted) = registry.insert_with_refs(
                DatasetHandle(recomputed),
                Arc::new(hierarchy),
                Arc::new(data),
                rec.refs,
            )?;
            // More durable datasets than registry capacity: the LRU
            // bound wins, and the drop is persisted like any runtime
            // eviction (the budget ledger is untouched).
            for ev in evicted {
                store
                    .set_refs(ev.0 .0, 0)
                    .map_err(|e| EngineError::StoreFailed(e.to_string()))?;
            }
        }
        let ledger = store.ledger().iter().map(|(&h, &eps)| (h, eps)).collect();
        let durable = Some(Durable {
            cap: config.budget_cap,
            ledger,
            store: Some(store),
        });
        Ok(Self::boot(config, registry, durable))
    }

    fn boot(config: EngineConfig, registry: DatasetRegistry, durable: Option<Durable>) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        let shared = Arc::new(Shared {
            state: RankedMutex::new(
                Rank::State,
                State {
                    queue: VecDeque::new(),
                    jobs: BTreeMap::new(),
                    finished: VecDeque::new(),
                    watchers: BTreeMap::new(),
                    next_id: 0,
                    submitted: 0,
                    completed: 0,
                    failed: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                },
            ),
            work: Condvar::new(),
            done: Condvar::new(),
            cache: RankedMutex::new(Rank::Cache, ResultCache::new(config.cache_capacity)),
            registry: RankedMutex::new(Rank::Registry, registry),
            durable: durable.map(|d| RankedMutex::new(Rank::Store, d)),
            deques: TaskDeques::new(config.workers),
            gate: ComputeGate::new(config.effective_active_limit()),
            shutting_down: AtomicBool::new(false),
            counters: Counters::default(),
            telemetry: Telemetry::new(config.workers, config.trace_capacity),
            config: config.clone(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hcc-engine-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    // hcc-lint: allow(panic-policy, reason = "startup fail-fast: an engine that cannot spawn its pool has no degraded mode to fall back to")
                    .expect("spawning engine worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Enqueues a release job, returning its handle immediately. A
    /// request whose release is already cached completes at
    /// submission — it consumes no queue slot and no worker dispatch,
    /// so cache hits are never rejected by a full queue.
    ///
    /// Fails with [`EngineError::QueueFull`] when the bounded queue is
    /// at capacity — callers decide whether to retry, shed load, or
    /// block.
    pub fn submit(&self, request: ReleaseRequest) -> Result<JobId, EngineError> {
        // The dataset digest serves double duty: the cache key folds
        // it with config + seed, and the budget ledger charges
        // against it — so an inline submission of the same tables a
        // client PREPAREd draws from the same budget line.
        let dataset = (self.shared.config.cache_capacity > 0 || self.shared.durable.is_some())
            .then(|| dataset_fingerprint(&request.hierarchy, &request.data));
        let key = match dataset {
            Some(ds) if self.shared.config.cache_capacity > 0 => Some(request_fingerprint(
                ds,
                request.hierarchy.num_levels(),
                &request.config,
                request.seed,
            )),
            _ => None,
        };
        self.admit(request, key, dataset)
    }

    /// Registers a dataset in the prepared registry, returning its
    /// content-addressed handle. Preparing identical content again
    /// returns the same handle and adds a reference; beyond the
    /// configured capacity the least-recently-used dataset is
    /// evicted. Submissions via [`Engine::submit_prepared`] skip the
    /// expensive data walk entirely.
    pub fn prepare(
        &self,
        hierarchy: Arc<Hierarchy>,
        data: Arc<HierarchicalCounts>,
    ) -> Result<DatasetHandle, EngineError> {
        // The content digest is the expensive part; compute it before
        // taking the lock.
        let handle = DatasetHandle(dataset_fingerprint(&hierarchy, &data));
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(EngineError::ShuttingDown);
        }
        self.register_dataset(handle, hierarchy, data)?;
        self.shared
            .counters
            .prepared
            .fetch_add(1, Ordering::Relaxed);
        Ok(handle)
    }

    /// Inserts into the registry and, when a durable store is
    /// attached, persists the new state *before* the handle is
    /// acknowledged: a `PREPARE`/`DERIVE` only returns `OK` once the
    /// dataset (or its refcount bump) is WAL-appended and fsynced.
    /// On a store failure the in-memory insert is rolled back, so
    /// memory never runs ahead of disk for acknowledged handles.
    ///
    /// The registry lock is held across the persist (rank `registry`
    /// < rank `store`), keeping on-disk reference counts ordered
    /// identically to the in-memory ones under concurrent
    /// prepare/unprepare of one handle.
    fn register_dataset(
        &self,
        handle: DatasetHandle,
        hierarchy: Arc<Hierarchy>,
        data: Arc<HierarchicalCounts>,
    ) -> Result<(), EngineError> {
        let mut registry = self.lock_registry();
        let (refs, evicted) = registry.insert(handle, Arc::clone(&hierarchy), Arc::clone(&data))?;
        let persisted = self.persist_dataset(handle, refs, &hierarchy, &data, &evicted);
        if let Err(e) = persisted {
            let _ = registry.release(handle);
            return Err(e);
        }
        Ok(())
    }

    /// The store half of [`Engine::register_dataset`]: a no-op
    /// without a durable store. Evicted handles are dropped from the
    /// store (their budget-ledger entries survive — budget is spent
    /// against the data, not the registry slot).
    fn persist_dataset(
        &self,
        handle: DatasetHandle,
        refs: u64,
        hierarchy: &Hierarchy,
        data: &HierarchicalCounts,
        evicted: &[DatasetHandle],
    ) -> Result<(), EngineError> {
        let Some(durable) = &self.shared.durable else {
            return Ok(());
        };
        let mut d = durable.lock();
        let Some(store) = d.store.as_mut() else {
            return Ok(());
        };
        let written = if refs == 1 {
            store.put_dataset(&dataset_record(handle.0 .0, hierarchy, data, refs))
        } else {
            store.set_refs(handle.0 .0, refs)
        };
        written.map_err(|e| EngineError::StoreFailed(e.to_string()))?;
        for ev in evicted {
            store
                .set_refs(ev.0 .0, 0)
                .map_err(|e| EngineError::StoreFailed(e.to_string()))?;
        }
        Ok(())
    }

    /// Drops one reference to a prepared dataset, removing it when no
    /// references remain. Returns the number of references still
    /// held. In-flight jobs keep their `Arc`s, so unpreparing never
    /// invalidates running work. With a durable store attached the
    /// new reference count is persisted before the acknowledgment
    /// (dropping the dataset record entirely at zero — the budget
    /// ledger entry survives).
    pub fn unprepare(&self, handle: DatasetHandle) -> Result<u64, EngineError> {
        let mut registry = self.lock_registry();
        let remaining = registry.release(handle)?;
        if let Some(durable) = &self.shared.durable {
            let mut d = durable.lock();
            if let Some(store) = d.store.as_mut() {
                store
                    .set_refs(handle.0 .0, remaining)
                    .map_err(|e| EngineError::StoreFailed(e.to_string()))?;
            }
        }
        Ok(remaining)
    }

    /// Registers the dataset obtained by applying `delta` to the
    /// prepared dataset `parent`, returning the derived handle. The
    /// parent keeps all its references; the derived dataset starts at
    /// one (like a fresh [`Engine::prepare`]).
    ///
    /// The *re-aggregation* is **O(delta · depth)**: only the
    /// root-to-leaf paths the delta touches are re-summed
    /// ([`hcc_data::DatasetDelta::apply_to`]), never the whole
    /// hierarchy. The remaining per-derive cost is an in-memory clone
    /// and content re-digest of the per-node histograms — linear in
    /// histogram cells, but with tiny constants next to what a cold
    /// `PREPARE` of the post-delta tables pays: shipping and parsing
    /// one CSV row *per entity* plus a full bottom-up aggregation.
    /// The `engine_derive` benchmark measures the gap at ~29× on a
    /// 1%-changed census-style dataset.
    ///
    /// **Fingerprint chaining.** The derived handle is the content
    /// fingerprint of the post-delta dataset — i.e.
    /// `derive(prepare(T), δ) == prepare(apply(δ, T))`, byte for
    /// byte. Chained derivations compose the same way, so a derived
    /// handle plugs into the cheap (handle, config, seed) request
    /// fingerprint of PR 3 unchanged, and submissions against a
    /// derived handle share cache entries with inline or
    /// cold-prepared submissions of the same post-delta data.
    pub fn derive(
        &self,
        parent: DatasetHandle,
        delta: &hcc_data::DatasetDelta,
    ) -> Result<DatasetHandle, EngineError> {
        // Resolve under the lock; clone, apply, and re-digest outside
        // it (the clone is the only O(dataset) step and must not
        // stall every submitter).
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(EngineError::ShuttingDown);
        }
        let (hierarchy, data) = self.lock_registry().get(parent)?;
        let mut derived = (*data).clone();
        delta
            .apply_to(&hierarchy, &mut derived)
            .map_err(|e| EngineError::BadDelta(e.to_string()))?;
        let handle = DatasetHandle(dataset_fingerprint(&hierarchy, &derived));
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(EngineError::ShuttingDown);
        }
        self.register_dataset(handle, hierarchy, Arc::new(derived))?;
        self.shared.counters.derived.fetch_add(1, Ordering::Relaxed);
        Ok(handle)
    }

    /// Rolling-update variant of [`Engine::derive`]: registers the
    /// derived dataset, then drops one reference on the parent — the
    /// "my dataset moved forward" flow, so a client appending releases
    /// month after month holds one registry slot, not a growing
    /// chain. Deriving with an *empty* delta is a no-op overall (the
    /// derived handle is the parent, whose reference count is bumped
    /// and then dropped).
    pub fn append(
        &self,
        parent: DatasetHandle,
        delta: &hcc_data::DatasetDelta,
    ) -> Result<DatasetHandle, EngineError> {
        let handle = self.derive(parent, delta)?;
        // Best-effort: if the parent was concurrently unprepared or
        // evicted, the goal state (parent no longer held by this
        // caller) is already reached.
        let _ = self.unprepare(parent);
        Ok(handle)
    }

    /// Number of datasets currently held by the prepared registry.
    pub fn prepared_len(&self) -> usize {
        self.lock_registry().len()
    }

    /// Enqueues a release of a prepared dataset. Equivalent to
    /// [`Engine::submit`] with the dataset the handle was prepared
    /// from — including sharing cache entries with inline submissions
    /// of the same data — but the cache key costs O(levels) instead
    /// of a full data walk, so ε-sweeps over one handle are cheap to
    /// fingerprint.
    pub fn submit_prepared(
        &self,
        handle: DatasetHandle,
        config: TopDownConfig,
        seed: u64,
    ) -> Result<JobId, EngineError> {
        // Resolution holds only the registry lock; the job keeps its
        // `Arc`s from here on, so a concurrent unprepare/eviction
        // can't invalidate the submission being admitted.
        let (hierarchy, data) = self.lock_registry().get(handle)?;
        let key = (self.shared.config.cache_capacity > 0)
            .then(|| request_fingerprint(handle.0, hierarchy.num_levels(), &config, seed));
        self.admit(
            ReleaseRequest::new(hierarchy, data, config, seed),
            key,
            Some(handle.0),
        )
    }

    /// The shared back half of submission: consult the cache, charge
    /// the budget ledger, then enqueue.
    fn admit(
        &self,
        request: ReleaseRequest,
        key: Option<Fingerprint>,
        dataset: Option<Fingerprint>,
    ) -> Result<JobId, EngineError> {
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(EngineError::ShuttingDown);
        }
        // Cache consultation takes only the cache lock; a racing
        // identical submission at worst enqueues twice, and the
        // worker-side re-check at expansion serves the second from
        // the cache anyway. A cache hit re-serves already-released
        // bytes, so it spends no budget and is never charged.
        let cached = key.and_then(|k| self.lock_cache().get(k));
        if let Some(result) = cached {
            let mut state = self.lock_state();
            let id = JobId(state.next_id);
            state.next_id += 1;
            state.finish(
                id,
                JobStatus::Done {
                    result,
                    from_cache: true,
                },
                self.shared.config.retained_jobs,
            );
            state.submitted += 1;
            state.completed += 1;
            state.cache_hits += 1;
            drop(state);
            self.shared.done.notify_all();
            return Ok(id);
        }
        let charged = self.charge_budget(&request, dataset)?;
        let mut state = self.lock_state();
        if !charged && state.queue.len() >= self.shared.config.queue_capacity {
            return Err(EngineError::QueueFull {
                capacity: self.shared.config.queue_capacity,
            });
        }
        let id = JobId(state.next_id);
        state.next_id += 1;
        state.jobs.insert(id, JobStatus::Queued);
        state.queue.push_back(QueuedJob {
            id,
            request,
            key,
            submitted_at: Instant::now(),
        });
        state.submitted += 1;
        drop(state);
        self.shared.work.notify_one();
        Ok(id)
    }

    /// Charge-then-release: records the request's ε against its
    /// dataset's cumulative spend *before* the job is enqueued (and
    /// so before any noise is drawn), WAL-appending and fsyncing the
    /// charge when a durable store is attached. Returns whether a
    /// charge happened (`false` when the engine has no durable half).
    ///
    /// A charge is never refunded: a crash (or job failure) after the
    /// charge but before the release over-counts spent budget, which
    /// is the safe direction — the ledger can only ever claim *more*
    /// privacy loss than actually occurred.
    ///
    /// Ordering: the queue-capacity pre-check runs first, under the
    /// state lock, so a `QueueFull` rejection — the retryable error
    /// clients loop on — can never burn budget. The enqueue after a
    /// successful charge is then unconditional; a racing burst can
    /// overshoot the queue bound by the number of in-flight charges,
    /// which is bounded by the submitter count and strictly better
    /// than charging for work that is then rejected.
    fn charge_budget(
        &self,
        request: &ReleaseRequest,
        dataset: Option<Fingerprint>,
    ) -> Result<bool, EngineError> {
        let Some(durable) = &self.shared.durable else {
            return Ok(false);
        };
        {
            let state = self.lock_state();
            if state.queue.len() >= self.shared.config.queue_capacity {
                return Err(EngineError::QueueFull {
                    capacity: self.shared.config.queue_capacity,
                });
            }
        }
        let ds = match dataset {
            Some(ds) => ds,
            None => dataset_fingerprint(&request.hierarchy, &request.data),
        };
        let requested = request.config.epsilon();
        let mut d = durable.lock();
        let spent = d.ledger.get(&ds.0).copied().unwrap_or(0.0);
        if let Some(cap) = d.cap {
            if spent + requested > cap {
                return Err(EngineError::BudgetExhausted {
                    handle: DatasetHandle(ds),
                    spent,
                    cap,
                    requested,
                });
            }
        }
        if let Some(store) = d.store.as_mut() {
            store
                .charge(ds.0, requested)
                .map_err(|e| EngineError::StoreFailed(e.to_string()))?;
        }
        *d.ledger.entry(ds.0).or_insert(0.0) += requested;
        Ok(true)
    }

    /// Cumulative ε charged against a dataset, or `None` when the
    /// engine runs without a budget ledger. Spend survives
    /// `UNPREPARE` and eviction — it is keyed by content, not by
    /// registry slot.
    pub fn budget_spent(&self, handle: DatasetHandle) -> Option<f64> {
        let durable = self.shared.durable.as_ref()?;
        let d = durable.lock();
        Some(d.ledger.get(&handle.0 .0).copied().unwrap_or(0.0))
    }

    /// The configured per-dataset budget cap, if any.
    pub fn budget_cap(&self) -> Option<f64> {
        self.shared.config.budget_cap
    }

    /// Snapshot of a job's current status (`None` for unknown ids).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.lock_state().jobs.get(&id).cloned()
    }

    /// Blocks until the job finishes, returning the release and
    /// whether the cache served it.
    pub fn wait(&self, id: JobId) -> Result<(Arc<ReleaseResult>, bool), EngineError> {
        let mut state = self.lock_state();
        loop {
            match state.jobs.get(&id) {
                None => return Err(EngineError::UnknownJob(id)),
                Some(JobStatus::Done { result, from_cache }) => {
                    return Ok((Arc::clone(result), *from_cache));
                }
                Some(JobStatus::Failed(msg)) => return Err(EngineError::JobFailed(msg.clone())),
                Some(_) => {
                    state = state.wait(&self.shared.done);
                }
            }
        }
    }

    /// Registers a completion callback for `id`, invoked exactly once
    /// with the job's terminal status — the event-driven alternative
    /// to parking a thread in [`Engine::wait`].
    ///
    /// If the job is already terminal the watcher runs immediately on
    /// the calling thread; otherwise it runs on the worker thread that
    /// finishes the job. Either way it is invoked *outside* every
    /// engine lock, so a watcher may call back into the engine (e.g.
    /// submit a follow-up job) freely — but it must stay cheap, since
    /// on the deferred path it borrows a pool worker. Watcher panics
    /// are caught and discarded; they never take down a worker.
    ///
    /// Returns [`EngineError::UnknownJob`] for ids never submitted (or
    /// already forgotten past the retention bound).
    pub fn on_finish(
        &self,
        id: JobId,
        watcher: impl FnOnce(JobId, JobStatus) + Send + 'static,
    ) -> Result<(), EngineError> {
        let mut state = self.lock_state();
        match state.jobs.get(&id) {
            None => Err(EngineError::UnknownJob(id)),
            Some(status @ (JobStatus::Done { .. } | JobStatus::Failed(_))) => {
                let status = status.clone();
                drop(state);
                invoke_watcher(Box::new(watcher), id, status);
                Ok(())
            }
            Some(_) => {
                state
                    .watchers
                    .entry(id)
                    .or_default()
                    .push(Box::new(watcher));
                Ok(())
            }
        }
    }

    /// Current counter values, as one internally consistent snapshot:
    /// the job counters are read together under the state lock (held
    /// only for five copies), so `completed + failed ≤ submitted` and
    /// `cache_hits + cache_misses ≤ submitted` hold even mid-flight.
    pub fn stats(&self) -> EngineStats {
        let state = self.lock_state();
        self.stats_locked(&state)
    }

    /// Assembles [`EngineStats`] while the caller holds the state
    /// lock. Task counters are per-worker relaxed atomics summed here;
    /// they carry no cross-field invariant with the job counters.
    fn stats_locked(&self, state: &State) -> EngineStats {
        let c = &self.shared.counters;
        let (mut tasks_executed, mut tasks_stolen) = (0, 0);
        for i in 0..self.shared.config.workers {
            let w = self.shared.telemetry.worker(i);
            tasks_executed += w.tasks_executed.load(Ordering::Relaxed);
            tasks_stolen += w.tasks_stolen.load(Ordering::Relaxed);
        }
        EngineStats {
            submitted: state.submitted,
            completed: state.completed,
            failed: state.failed,
            cache_hits: state.cache_hits,
            cache_misses: state.cache_misses,
            prepared: c.prepared.load(Ordering::Relaxed),
            derived: c.derived.load(Ordering::Relaxed),
            tasks_executed,
            tasks_stolen,
        }
    }

    /// A structured telemetry snapshot: [`Engine::stats`] plus queue
    /// depth, per-worker scheduler counters, and the latency
    /// histograms (see [`crate::telemetry`]). Aggregation cost is paid
    /// here by the caller; workers never stop to publish.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let (stats, queued) = {
            let state = self.lock_state();
            (self.stats_locked(&state), state.queue.len())
        };
        TelemetrySnapshot {
            stats,
            workers: self.shared.config.workers,
            queued,
            prepared_datasets: self.lock_registry().len(),
            uptime: self.shared.telemetry.uptime(),
            per_worker: self.shared.telemetry.worker_snapshots(),
            trace_enabled: self.shared.telemetry.tracing(),
            spans_dropped: self.shared.telemetry.spans_dropped(),
        }
    }

    /// Drains the span recorder, returning all recorded spans in
    /// start order (empty unless the engine was started with
    /// [`EngineConfig::with_trace_capacity`]). Render with
    /// [`crate::telemetry::chrome_trace_json`].
    pub fn take_trace(&self) -> Vec<SpanEvent> {
        self.shared.telemetry.take_spans()
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.lock_state().queue.len()
    }

    /// The configuration the engine was started with.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// Finishes all queued jobs, then stops the workers (idempotent;
    /// also runs on drop). Finished results stay queryable through
    /// [`Engine::status`] and [`Engine::wait`] afterwards, but new
    /// submissions are rejected with [`EngineError::ShuttingDown`].
    pub fn shutdown(&mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        // Pass through the state lock before notifying so a worker
        // between its sleep-check and its wait can't miss the signal.
        drop(self.lock_state());
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Best-effort checkpoint so a clean shutdown leaves a short
        // WAL. Purely an optimization: recovery replays the WAL
        // regardless, so a failure here loses nothing.
        if let Some(durable) = &self.shared.durable {
            let mut d = durable.lock();
            if let Some(store) = d.store.as_mut() {
                let _ = store.checkpoint();
            }
        }
    }

    fn lock_state(&self) -> RankedGuard<'_, State> {
        self.shared.state.lock()
    }

    fn lock_cache(&self) -> RankedGuard<'_, ResultCache> {
        self.shared.cache.lock()
    }

    fn lock_registry(&self) -> RankedGuard<'_, DatasetRegistry> {
        self.shared.registry.lock()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Serializes a prepared dataset for the durable store: node names
/// and parent indices in node-id order, plus each node's histogram
/// run-length encoded as ascending `(size, count)` pairs.
fn dataset_record(
    handle: u128,
    hierarchy: &Hierarchy,
    data: &HierarchicalCounts,
    refs: u64,
) -> DatasetRecord {
    let n = hierarchy.num_nodes();
    let mut names = Vec::with_capacity(n);
    let mut parents = Vec::with_capacity(n);
    let mut histograms = Vec::with_capacity(n);
    for node in hierarchy.iter() {
        names.push(hierarchy.name(node).to_string());
        parents.push(match hierarchy.parent(node) {
            Some(p) => p.index() as u64,
            None => u64::MAX,
        });
        histograms.push(
            data.node(node)
                .as_slice()
                .iter()
                .enumerate()
                .filter(|&(_, &count)| count > 0)
                .map(|(size, &count)| (size as u64, count))
                .collect(),
        );
    }
    DatasetRecord {
        handle,
        names,
        parents,
        histograms,
        refs,
    }
}

/// Rebuilds the in-memory dataset a [`dataset_record`] was taken
/// from. The inverse is exact — the caller verifies that by
/// recomputing the content fingerprint and comparing it to the
/// stored handle.
fn rebuild_dataset(rec: &DatasetRecord) -> Result<(Hierarchy, HierarchicalCounts), String> {
    let n = rec.names.len();
    if n == 0 {
        return Err("dataset record has no nodes".to_string());
    }
    if rec.parents.len() != n || rec.histograms.len() != n {
        return Err(format!(
            "dataset record is ragged: {n} names, {} parents, {} histograms",
            rec.parents.len(),
            rec.histograms.len()
        ));
    }
    if rec.parents.first() != Some(&u64::MAX) {
        return Err("dataset record node 0 is not a root".to_string());
    }
    let Some(root_name) = rec.names.first() else {
        return Err("dataset record has no nodes".to_string());
    };
    // The builder assigns sequential node ids (root = 0), so pushing
    // children in record order reproduces the original ids exactly.
    let mut builder = HierarchyBuilder::new(root_name.clone());
    let mut nodes = vec![Hierarchy::ROOT];
    for (off, (name, &parent)) in rec.names.iter().zip(rec.parents.iter()).skip(1).enumerate() {
        let i = off + 1;
        let parent_node = usize::try_from(parent)
            .ok()
            .filter(|&p| p < i)
            .and_then(|p| nodes.get(p).copied())
            .ok_or_else(|| {
                format!("dataset record node {i}: parent {parent} does not precede it")
            })?;
        nodes.push(builder.add_child(parent_node, name.clone()));
    }
    let hierarchy = builder.build();
    let hists = rec
        .histograms
        .iter()
        .map(|pairs| {
            let mut h = CountOfCounts::new();
            for &(size, count) in pairs {
                h.add_groups(size, count);
            }
            h
        })
        .collect();
    let data = HierarchicalCounts::from_node_histograms(&hierarchy, hists)
        .map_err(|e| format!("dataset record histograms are inconsistent: {e}"))?;
    Ok((hierarchy, data))
}

fn worker_loop(shared: &Shared, me: usize) {
    // Permanently owned workspace: scratch buffers stay warm across
    // every task this worker ever runs, with no pool lock on the hot
    // path. Which workspace estimates which node never matters —
    // buffers are fully overwritten per node and each node draws from
    // its own seeded RNG stream.
    let mut ws = EstimatorWorkspace::new();
    // Trace-only: when the previous task started handing the compute
    // gate off, so the claim of the next task is recorded from
    // *before* the release — on an oversubscribed host the hand-off
    // notify is exactly where a worker loses the CPU, and that time
    // must land inside a span for traces to tile wall-clock.
    let mut handoff: Option<Instant> = None;
    loop {
        let sched_t0 = handoff
            .take()
            .or_else(|| shared.telemetry.tracing().then(Instant::now));
        // Hot path: own deque first (LIFO), then steal (FIFO). The
        // compute gate is taken *after* claiming a task: claiming is
        // cheap, and a claimed task is guaranteed to run, so waiting
        // at the gate can't strand work.
        if let Some(task) = shared.deques.pop(me) {
            record_sched(shared, me, &task, sched_t0);
            handoff = run_task_gated(shared, me, &task, &mut ws);
            continue;
        }
        let (stolen, failed_probes) = shared.deques.steal(me);
        {
            let w = shared.telemetry.worker(me);
            w.steal_attempts.fetch_add(1, Ordering::Relaxed);
            w.steal_failed_probes
                .fetch_add(failed_probes as u64, Ordering::Relaxed);
            if stolen.is_some() {
                w.steal_successes.fetch_add(1, Ordering::Relaxed);
                w.tasks_stolen.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(task) = stolen {
            record_sched(shared, me, &task, sched_t0);
            handoff = run_task_gated(shared, me, &task, &mut ws);
            continue;
        }
        // No runnable task anywhere: expand the next queued job, or
        // sleep until there is something to do. Expanding lazily —
        // only when the task pool is dry — keeps jobs flowing
        // depth-first: workers help finish in-flight releases before
        // admitting new working sets.
        //
        // Idle telemetry starts at the first condvar wait, not at the
        // lock: a worker that finds work without sleeping was never
        // idle. The open-ended park after the *last* job is only
        // recorded once the worker wakes — live spans have no end.
        let mut idle_since: Option<Instant> = None;
        let next = {
            let mut state = shared.state.lock();
            // The claim came up dry: close its span at the point the
            // state lock was won, so a contended lock still shows up
            // as sched time rather than a hole in the trace.
            if let Some(t0) = sched_t0 {
                shared.telemetry.span(me, SpanKind::Sched, None, None, t0);
            }
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.jobs.insert(job.id, JobStatus::Running);
                    break Some(job);
                }
                if shared.deques.pending() > 0 {
                    // Tasks appeared while we were taking the lock.
                    break None;
                }
                if shared.shutting_down.load(Ordering::Acquire) {
                    drop(state);
                    record_idle(shared, me, idle_since);
                    return;
                }
                idle_since.get_or_insert_with(Instant::now);
                state = state.wait(&shared.work);
            }
        };
        record_idle(shared, me, idle_since);
        if let Some(job) = next {
            expand_job(shared, me, job);
        }
    }
}

/// Closes out an idle stretch, if one happened.
fn record_idle(shared: &Shared, me: usize, idle_since: Option<Instant>) {
    if let Some(t0) = idle_since {
        shared.telemetry.worker(me).idle.record(t0.elapsed());
        shared.telemetry.span(me, SpanKind::Idle, None, None, t0);
    }
}

/// Closes out the trace-mode claim span for a just-claimed task.
fn record_sched(shared: &Shared, me: usize, task: &NodeTask, sched_t0: Option<Instant>) {
    if let Some(t0) = sched_t0 {
        shared
            .telemetry
            .span(me, SpanKind::Sched, Some(task.job.id), Some(task.index), t0);
    }
}

/// Takes the compute gate (timing the wait), runs the task, returns
/// the permit. In trace mode, also returns the instant the gate
/// release began, opening the next claim span.
fn run_task_gated(
    shared: &Shared,
    me: usize,
    task: &NodeTask,
    ws: &mut EstimatorWorkspace,
) -> Option<Instant> {
    let gate_t0 = Instant::now();
    shared.gate.acquire();
    shared
        .telemetry
        .worker(me)
        .gate_wait
        .record(gate_t0.elapsed());
    shared.telemetry.span(
        me,
        SpanKind::GateWait,
        Some(task.job.id),
        Some(task.index),
        gate_t0,
    );
    run_task(shared, me, task, ws);
    let handoff = shared.telemetry.tracing().then(Instant::now);
    shared.gate.release();
    handoff
}

/// Turns a queued job into node tasks on `me`'s deque (or finishes it
/// straight away on a late cache hit / invalid hierarchy).
fn expand_job(shared: &Shared, me: usize, job: QueuedJob) {
    let QueuedJob {
        id,
        request,
        key,
        submitted_at,
    } = job;
    shared
        .telemetry
        .worker(me)
        .queue_wait
        .record(submitted_at.elapsed());
    // Submission missed the cache, but an identical job may have
    // completed while this one sat in the queue — re-check before
    // paying for a release.
    let cached = key.and_then(|k| shared.cache.lock().get(k));
    if let Some(result) = cached {
        shared.state.lock().cache_hits += 1;
        finish_job(
            shared,
            id,
            Ok(JobStatus::Done {
                result,
                from_cache: true,
            }),
        );
        return;
    }
    let expand_t0 = Instant::now();
    shared.state.lock().cache_misses += 1;
    if !request.hierarchy.is_uniform_depth() {
        finish_job(
            shared,
            id,
            Err(ConsistencyError::NotUniformDepth.to_string()),
        );
        return;
    }
    let job = Arc::new(ActiveJob::new(id, request, key, shared.config.workers));
    shared.deques.push_job(me, &job);
    // Lock-then-notify (see the `work` field docs) so sleepy workers
    // can't miss these tasks.
    drop(shared.state.lock());
    shared.work.notify_all();
    shared
        .telemetry
        .worker(me)
        .expand
        .record(expand_t0.elapsed());
    shared
        .telemetry
        .span(me, SpanKind::Expand, Some(id), None, expand_t0);
}

/// Runs one node task; the worker finishing a job's last task also
/// runs the deterministic top-down phase and publishes the result.
fn run_task(shared: &Shared, me: usize, task: &NodeTask, ws: &mut EstimatorWorkspace) {
    let job = &task.job;
    let w = shared.telemetry.worker(me);
    let task_t0 = Instant::now();
    if !job.is_cancelled() {
        // A panicking estimator (degenerate budget, internal assert)
        // must fail its *job*, not kill the worker: an unwound worker
        // would shrink the pool and strand jobs in Running, hanging
        // every waiter. Reusing `ws` after an unwind is sound — its
        // buffers are fully overwritten per node.
        let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let request = &job.request;
            // hcc-lint: allow(panic-policy, reason = "task.index < tasks.len() by construction: NodeTask indices are minted by ActiveJob::new from this very vector")
            job.tasks[task.index]
                .iter()
                .map(|&node| {
                    // Per-node timing, split by the level method that
                    // will estimate this node (the paper's Hc/Hg cost
                    // asymmetry): one Instant pair per node, recorded
                    // with a relaxed fetch_add — noise next to the
                    // estimation itself.
                    let kind = MethodKind::of(
                        request
                            .config
                            .method_for_level(request.hierarchy.level_of(node)),
                    );
                    let node_t0 = Instant::now();
                    let estimate = estimate_node(
                        &request.hierarchy,
                        &request.data,
                        &request.config,
                        job.eps_level,
                        node,
                        // hcc-lint: allow(panic-policy, reason = "seeds has one slot per hierarchy node and `node` comes from this hierarchy's task list")
                        job.seeds[node.index()],
                        ws,
                    );
                    w.estimate_for(kind).record(node_t0.elapsed());
                    (node.index(), estimate)
                })
                .collect::<Vec<_>>()
        }));
        match computed {
            Ok(results) => job.store(results),
            Err(panic) => job.record_failure(panic_message(panic)),
        }
    }
    w.task_run.record(task_t0.elapsed());
    w.tasks_executed.fetch_add(1, Ordering::Relaxed);
    shared
        .telemetry
        .span(me, SpanKind::Task, Some(job.id), Some(task.index), task_t0);
    if job.finish_task() {
        // Telemetry for the finalize phase is recorded *before* the
        // status is published: once `Engine::wait` returns, every
        // counter and span belonging to the job is already visible to
        // `telemetry()` / `take_trace()`.
        let finalize_t0 = Instant::now();
        let status = finalize_job(shared, job);
        w.finalize.record(finalize_t0.elapsed());
        shared
            .telemetry
            .span(me, SpanKind::Finalize, Some(job.id), None, finalize_t0);
        finish_job(shared, job.id, status);
    }
}

/// The post-estimation half of a job: deterministic matching/merging,
/// CSV serialisation, cache insert. Returns the terminal status for
/// `finish_job` to publish.
fn finalize_job(shared: &Shared, job: &ActiveJob) -> Result<JobStatus, String> {
    let outcome = job.take_outcome().and_then(|estimates| {
        // The top-down phase and the CSV serialisation stay inside a
        // guard too — any panic past this point must become a Failed
        // job, never a dead worker.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            top_down_from_estimates(&job.request.hierarchy, &job.request.config, estimates)
                .map(|release| {
                    let csv = to_csv(&job.request.hierarchy, &release);
                    let rows = csv.lines().count().saturating_sub(1);
                    Arc::new(ReleaseResult {
                        csv,
                        rows,
                        compute_time: job.started.elapsed(),
                    })
                })
                .map_err(|e| e.to_string())
        }))
        .map_err(panic_message)
        .and_then(|computed| computed)
    });
    outcome.map(|result| {
        if let Some(key) = job.key {
            shared.cache.lock().insert(key, Arc::clone(&result));
        }
        JobStatus::Done {
            result,
            from_cache: false,
        }
    })
}

/// Publishes a terminal status, wakes blocking waiters, and fires any
/// completion watchers registered through [`Engine::on_finish`].
fn finish_job(shared: &Shared, id: JobId, status: Result<JobStatus, String>) {
    let (status, failed) = match status {
        Ok(status) => (status, false),
        Err(msg) => (JobStatus::Failed(msg), true),
    };
    let mut state = shared.state.lock();
    state.finish(id, status.clone(), shared.config.retained_jobs);
    if failed {
        state.failed += 1;
    } else {
        state.completed += 1;
    }
    let watchers = state.watchers.remove(&id).unwrap_or_default();
    drop(state);
    shared.done.notify_all();
    for watcher in watchers {
        invoke_watcher(watcher, id, status.clone());
    }
}

/// Runs one completion watcher outside every engine lock, isolating
/// panics: deferred watchers execute on pool worker threads, and a
/// panicking callback must not kill a worker.
fn invoke_watcher(watcher: FinishWatcher, id: JobId, status: JobStatus) {
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || watcher(id, status)));
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_consistency::{top_down_release, HierarchicalCounts, LevelMethod, TopDownConfig};
    use hcc_core::CountOfCounts;
    use hcc_hierarchy::{Hierarchy, HierarchyBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn request(seed: u64) -> ReleaseRequest {
        let mut b = HierarchyBuilder::new("root");
        let leaves: Vec<_> = (0..6)
            .map(|i| b.add_child(Hierarchy::ROOT, format!("l{i}")))
            .collect();
        let h = Arc::new(b.build());
        let data = Arc::new(
            HierarchicalCounts::from_leaves(
                &h,
                leaves
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| {
                        (
                            l,
                            CountOfCounts::from_group_sizes(
                                (0..12u64).map(|k| 1 + (k + i as u64) % 7),
                            ),
                        )
                    })
                    .collect(),
            )
            .unwrap(),
        );
        let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 32 });
        ReleaseRequest::new(h, data, cfg, seed)
    }

    #[test]
    fn submit_wait_matches_direct_release() {
        let engine = Engine::start(EngineConfig::default().with_workers(3));
        let req = request(11);
        let direct = {
            let mut rng = StdRng::seed_from_u64(11);
            let rel = top_down_release(&req.hierarchy, &req.data, &req.config, &mut rng).unwrap();
            to_csv(&req.hierarchy, &rel)
        };
        let id = engine.submit(req).unwrap();
        let (result, from_cache) = engine.wait(id).unwrap();
        assert!(!from_cache);
        assert_eq!(result.csv, direct);
        assert_eq!(result.rows, direct.lines().count() - 1);
    }

    #[test]
    fn cache_serves_repeat_requests() {
        let engine = Engine::start(EngineConfig::default().with_workers(1));
        let a = engine.submit(request(5)).unwrap();
        let (first, _) = engine.wait(a).unwrap();
        let b = engine.submit(request(5)).unwrap();
        let (second, from_cache) = engine.wait(b).unwrap();
        assert!(from_cache, "identical request must hit the cache");
        assert!(Arc::ptr_eq(&first, &second), "cache shares the Arc");
        let c = engine.submit(request(6)).unwrap();
        let (_, from_cache) = engine.wait(c).unwrap();
        assert!(!from_cache, "different seed is a different release");
        let stats = engine.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn many_concurrent_jobs_all_finish_deterministically() {
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(4)
                .with_cache_capacity(0),
        );
        let ids: Vec<JobId> = (0..16)
            .map(|s| engine.submit(request(s)).unwrap())
            .collect();
        for (seed, id) in ids.into_iter().enumerate() {
            let (result, _) = engine.wait(id).unwrap();
            let req = request(seed as u64);
            let mut rng = StdRng::seed_from_u64(seed as u64);
            let direct =
                top_down_release(&req.hierarchy, &req.data, &req.config, &mut rng).unwrap();
            assert_eq!(result.csv, to_csv(&req.hierarchy, &direct), "seed {seed}");
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, 16);
        assert!(
            stats.tasks_executed >= 16,
            "every job decomposes into at least one task: {stats:?}"
        );
        assert!(
            stats.tasks_stolen <= stats.tasks_executed,
            "steals are a subset of executions: {stats:?}"
        );
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        // One worker, capacity 1: with the worker parked on the first
        // job, the second fills the queue and the third must bounce.
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(1)
                .with_queue_capacity(1),
        );
        let mut accepted = 0;
        let mut rejected = 0;
        for s in 0..50 {
            match engine.submit(request(s)) {
                Ok(_) => accepted += 1,
                Err(EngineError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(accepted >= 1);
        assert!(rejected >= 1, "a 50-deep burst must overflow capacity 1");
    }

    #[test]
    fn unknown_job_and_status_lifecycle() {
        let engine = Engine::start(EngineConfig::default());
        assert!(engine.status(JobId(99)).is_none());
        assert!(matches!(
            engine.wait(JobId(99)),
            Err(EngineError::UnknownJob(JobId(99)))
        ));
        let id = engine.submit(request(1)).unwrap();
        engine.wait(id).unwrap();
        assert_eq!(engine.status(id).unwrap().name(), "done");
    }

    #[test]
    fn cache_hits_bypass_a_full_queue() {
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(1)
                .with_queue_capacity(1),
        );
        // Prime the cache.
        let id = engine.submit(request(0)).unwrap();
        engine.wait(id).unwrap();
        // Saturate the pool and the queue with uncached work.
        let mut burst = Vec::new();
        for s in 1..50 {
            match engine.submit(request(s)) {
                Ok(id) => burst.push(id),
                Err(EngineError::QueueFull { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // The cached request must still be accepted and complete
        // instantly, no matter how full the queue is.
        let id = engine.submit(request(0)).unwrap();
        let (_, from_cache) = engine.wait(id).unwrap();
        assert!(from_cache);
        for id in burst {
            engine.wait(id).unwrap();
        }
    }

    #[test]
    fn panicking_release_fails_the_job_but_not_the_worker() {
        let engine = Engine::start(EngineConfig::default().with_workers(1));
        // A negative budget trips the noise mechanism's assert; the
        // panic must surface as a Failed job, not a dead worker.
        let mut bad = request(1);
        bad.config = TopDownConfig::new(-1.0);
        let id = engine.submit(bad).unwrap();
        let err = engine.wait(id).unwrap_err();
        assert!(matches!(err, EngineError::JobFailed(_)), "{err:?}");
        assert_eq!(engine.stats().failed, 1);
        // The lone worker is still alive and serves the next job.
        let id = engine.submit(request(2)).unwrap();
        assert!(engine.wait(id).is_ok());
    }

    #[test]
    fn finished_jobs_are_evicted_beyond_retention() {
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(1)
                .with_retained_jobs(2)
                .with_cache_capacity(0),
        );
        let ids: Vec<JobId> = (0..4).map(|s| engine.submit(request(s)).unwrap()).collect();
        // One worker drains FIFO, so the newest job finishing means all
        // four are done.
        engine.wait(ids[3]).unwrap();
        // Only the two newest remain queryable.
        assert!(engine.status(ids[0]).is_none());
        assert!(engine.status(ids[1]).is_none());
        assert_eq!(engine.status(ids[2]).unwrap().name(), "done");
        assert_eq!(engine.status(ids[3]).unwrap().name(), "done");
        assert!(matches!(
            engine.wait(ids[0]),
            Err(EngineError::UnknownJob(_))
        ));
        assert_eq!(engine.stats().completed, 4);
    }

    #[test]
    fn prepared_submission_is_byte_identical_to_inline() {
        // Cache disabled: both paths must *compute* and still agree.
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(2)
                .with_cache_capacity(0),
        );
        let req = request(21);
        let handle = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        let inline_id = engine.submit(req.clone()).unwrap();
        let prepared_id = engine
            .submit_prepared(handle, req.config.clone(), req.seed)
            .unwrap();
        let (inline, _) = engine.wait(inline_id).unwrap();
        let (prepared, _) = engine.wait(prepared_id).unwrap();
        assert_eq!(inline.csv, prepared.csv);
    }

    #[test]
    fn prepared_and_inline_submissions_share_the_cache() {
        let engine = Engine::start(EngineConfig::default().with_workers(1));
        let req = request(13);
        let id = engine.submit(req.clone()).unwrap();
        let (first, _) = engine.wait(id).unwrap();
        // Same data through the prepared path: the request fingerprint
        // must collide with the inline one and hit the cache.
        let handle = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        let id = engine
            .submit_prepared(handle, req.config.clone(), req.seed)
            .unwrap();
        let (second, from_cache) = engine.wait(id).unwrap();
        assert!(from_cache, "prepared submission must reuse the cache entry");
        assert!(Arc::ptr_eq(&first, &second));
        // A different ε over the same handle computes fresh.
        let id = engine
            .submit_prepared(
                handle,
                TopDownConfig::new(2.0).with_method(LevelMethod::Cumulative { bound: 32 }),
                req.seed,
            )
            .unwrap();
        let (_, from_cache) = engine.wait(id).unwrap();
        assert!(!from_cache);
    }

    #[test]
    fn prepare_is_content_addressed_and_refcounted() {
        let engine = Engine::start(EngineConfig::default());
        let req = request(1);
        let a = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        let b = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        assert_eq!(a, b, "identical content gets one handle");
        assert_eq!(engine.prepared_len(), 1);
        assert_eq!(engine.stats().prepared, 2);
        assert_eq!(engine.unprepare(a).unwrap(), 1);
        assert_eq!(engine.unprepare(a).unwrap(), 0);
        assert!(matches!(
            engine.submit_prepared(a, req.config.clone(), 1),
            Err(EngineError::UnknownDataset(_))
        ));
        assert!(matches!(
            engine.unprepare(a),
            Err(EngineError::UnknownDataset(_))
        ));
    }

    #[test]
    fn registry_eviction_surfaces_as_evicted_error() {
        let engine = Engine::start(EngineConfig::default().with_prepared_capacity(1));
        let first = {
            let req = request(0);
            engine.prepare(req.hierarchy, req.data).unwrap()
        };
        // A second, different dataset evicts the first (capacity 1).
        let mut b = HierarchyBuilder::new("other");
        let leaf = b.add_child(Hierarchy::ROOT, "x");
        let h = Arc::new(b.build());
        let d = Arc::new(
            HierarchicalCounts::from_leaves(&h, vec![(leaf, CountOfCounts::from_group_sizes([2]))])
                .unwrap(),
        );
        let second = engine.prepare(h, d).unwrap();
        assert_ne!(first, second);
        let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 32 });
        assert!(matches!(
            engine.submit_prepared(first, cfg.clone(), 7),
            Err(EngineError::DatasetEvicted(_))
        ));
        let id = engine.submit_prepared(second, cfg, 7).unwrap();
        assert!(engine.wait(id).is_ok());
    }

    #[test]
    fn derive_chains_content_fingerprints() {
        use hcc_data::{DatasetDelta, DeltaOp};

        let engine = Engine::start(EngineConfig::default().with_workers(1));
        let req = request(3);
        let parent = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        let delta = DatasetDelta {
            ops: vec![
                DeltaOp::Add {
                    region: "l0".into(),
                    size: 9,
                    count: 2,
                },
                DeltaOp::Resize {
                    region: "l1".into(),
                    old_size: 1,
                    new_size: 3,
                    count: 1,
                },
            ],
        };
        let derived = engine.derive(parent, &delta).unwrap();
        assert_ne!(derived, parent);
        assert_eq!(engine.prepared_len(), 2, "parent stays registered");

        // Fingerprint chaining: the derived handle must equal a cold
        // PREPARE of the post-delta data.
        let mut post = (*req.data).clone();
        delta.apply_to(&req.hierarchy, &mut post).unwrap();
        let cold = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::new(post))
            .unwrap();
        assert_eq!(cold, derived);

        // Releases from the derived handle must compute against the
        // post-delta data: same bytes as submitting it inline.
        let id = engine
            .submit_prepared(derived, req.config.clone(), 7)
            .unwrap();
        let (from_handle, _) = engine.wait(id).unwrap();
        let mut post = (*req.data).clone();
        delta.apply_to(&req.hierarchy, &mut post).unwrap();
        let direct = {
            let mut rng = StdRng::seed_from_u64(7);
            let rel = top_down_release(&req.hierarchy, &post, &req.config, &mut rng).unwrap();
            to_csv(&req.hierarchy, &rel)
        };
        assert_eq!(from_handle.csv, direct);
        assert_eq!(engine.stats().derived, 1);

        // A bad delta is a typed rejection, not a panic, and derives
        // from unknown parents say so.
        let bad = DatasetDelta {
            ops: vec![DeltaOp::Remove {
                region: "l0".into(),
                size: 777,
                count: 1,
            }],
        };
        assert!(matches!(
            engine.derive(parent, &bad),
            Err(EngineError::BadDelta(_))
        ));
        let bogus = DatasetHandle(crate::fingerprint::Fingerprint(42));
        assert!(matches!(
            engine.derive(bogus, &delta),
            Err(EngineError::UnknownDataset(_))
        ));
    }

    #[test]
    fn append_is_a_rolling_update() {
        use hcc_data::{DatasetDelta, DeltaOp};

        let engine = Engine::start(EngineConfig::default());
        let req = request(4);
        let parent = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        let delta = DatasetDelta {
            ops: vec![DeltaOp::Add {
                region: "l2".into(),
                size: 5,
                count: 1,
            }],
        };
        let derived = engine.append(parent, &delta).unwrap();
        assert_ne!(derived, parent);
        // The parent's single reference was dropped: only the derived
        // dataset remains registered.
        assert_eq!(engine.prepared_len(), 1);
        assert!(matches!(
            engine.unprepare(parent),
            Err(EngineError::UnknownDataset(_))
        ));
        // An empty delta is a no-op: handle unchanged, refcount level.
        let same = engine.append(derived, &DatasetDelta::new()).unwrap();
        assert_eq!(same, derived);
        assert_eq!(engine.prepared_len(), 1);
        assert_eq!(engine.unprepare(derived).unwrap(), 0);
    }

    #[test]
    fn shutdown_finishes_queued_work_then_rejects_new_jobs() {
        let mut engine = Engine::start(EngineConfig::default().with_workers(2));
        let ids: Vec<JobId> = (0..6).map(|s| engine.submit(request(s)).unwrap()).collect();
        engine.shutdown();
        for id in ids {
            assert_eq!(engine.status(id).unwrap().name(), "done");
            assert!(engine.wait(id).is_ok());
        }
        assert_eq!(engine.stats().completed, 6);
        assert!(matches!(
            engine.submit(request(0)),
            Err(EngineError::ShuttingDown)
        ));
    }

    #[test]
    fn ragged_hierarchy_fails_the_job_with_a_typed_message() {
        // A ragged hierarchy can't carry its own HierarchicalCounts,
        // but a request can (wrongly) pair one with data built from a
        // *different* uniform hierarchy of equal node count — the
        // expansion-time guard must fail the job, not panic a worker.
        let mut b = HierarchyBuilder::new("r");
        let mid = b.add_child(Hierarchy::ROOT, "mid");
        let _deep = b.add_child(mid, "deep");
        let _shallow = b.add_child(Hierarchy::ROOT, "shallow");
        let ragged = Arc::new(b.build());
        let mut b = HierarchyBuilder::new("u");
        let leaves: Vec<_> = (0..3)
            .map(|i| b.add_child(Hierarchy::ROOT, format!("l{i}")))
            .collect();
        let uniform = b.build();
        assert_eq!(uniform.num_nodes(), ragged.num_nodes());
        let data = Arc::new(
            HierarchicalCounts::from_leaves(
                &uniform,
                leaves
                    .iter()
                    .map(|&l| (l, CountOfCounts::from_group_sizes([1, 2])))
                    .collect(),
            )
            .unwrap(),
        );
        let engine = Engine::start(EngineConfig::default().with_workers(2));
        let id = engine
            .submit(ReleaseRequest::new(
                ragged,
                data,
                TopDownConfig::new(1.0),
                1,
            ))
            .unwrap();
        match engine.wait(id) {
            Err(EngineError::JobFailed(msg)) => {
                assert!(msg.contains("deepest level"), "{msg}");
            }
            other => panic!("expected JobFailed, got {other:?}"),
        }
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hcc-engine-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn budget_cap_charges_per_dataset_and_rejects_over_cap() {
        // request() carries ε=1.0; a 2.5 cap admits two charged
        // releases and refuses the third before any noise is drawn.
        let engine = Engine::start(EngineConfig::default().with_workers(1).with_budget_cap(2.5));
        let req = request(1);
        let handle = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        let id = engine
            .submit_prepared(handle, req.config.clone(), 1)
            .unwrap();
        engine.wait(id).unwrap();
        assert_eq!(engine.budget_spent(handle), Some(1.0));
        // A cache hit re-serves the computed release for free.
        let id = engine
            .submit_prepared(handle, req.config.clone(), 1)
            .unwrap();
        let (_, from_cache) = engine.wait(id).unwrap();
        assert!(from_cache);
        assert_eq!(engine.budget_spent(handle), Some(1.0));
        // A fresh seed computes and charges again.
        let id = engine
            .submit_prepared(handle, req.config.clone(), 2)
            .unwrap();
        engine.wait(id).unwrap();
        assert_eq!(engine.budget_spent(handle), Some(2.0));
        // 2.0 + 1.0 > 2.5: typed refusal, ledger untouched.
        match engine.submit_prepared(handle, req.config.clone(), 3) {
            Err(EngineError::BudgetExhausted {
                handle: h,
                spent,
                cap,
                requested,
            }) => {
                assert_eq!(h, handle);
                assert_eq!(spent, 2.0);
                assert_eq!(cap, 2.5);
                assert_eq!(requested, 1.0);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(engine.budget_spent(handle), Some(2.0));
        // Inline submission of the same tables draws from the same
        // budget line: an uncached seed is also refused.
        let mut inline = req;
        inline.seed = 99;
        assert!(matches!(
            engine.submit(inline),
            Err(EngineError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn queue_overflow_never_burns_budget() {
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_cache_capacity(0)
                .with_budget_cap(1000.0),
        );
        let req = request(0);
        let handle = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        let mut accepted = 0u32;
        let mut ids = Vec::new();
        for s in 0..50 {
            match engine.submit_prepared(handle, req.config.clone(), s) {
                Ok(id) => {
                    accepted += 1;
                    ids.push(id);
                }
                Err(EngineError::QueueFull { .. }) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        for id in ids {
            engine.wait(id).unwrap();
        }
        // Every admitted job charged ε=1.0 exactly once; every
        // QueueFull bounce charged nothing, so a BUSY retry loop
        // never drains the budget.
        assert_eq!(engine.budget_spent(handle), Some(f64::from(accepted)));
    }

    #[test]
    fn durable_store_restores_handles_refs_and_ledger() {
        let dir = store_dir("roundtrip");
        let path = dir.join("engine.hcc");
        let req = request(9);
        let handle = {
            let store = hcc_store::Store::open(&path).unwrap();
            let mut engine = Engine::start_with_store(
                EngineConfig::default()
                    .with_workers(1)
                    .with_budget_cap(10.0),
                store,
            )
            .unwrap();
            let handle = engine
                .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
                .unwrap();
            // Prepare again: refcount 2 must survive the restart.
            engine
                .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
                .unwrap();
            let id = engine
                .submit_prepared(handle, req.config.clone(), 1)
                .unwrap();
            engine.wait(id).unwrap();
            assert_eq!(engine.budget_spent(handle), Some(1.0));
            engine.shutdown();
            handle
        };
        // Cold process: everything comes back from the file alone.
        let store = hcc_store::Store::open(&path).unwrap();
        let engine = Engine::start_with_store(
            EngineConfig::default()
                .with_workers(1)
                .with_budget_cap(10.0),
            store,
        )
        .unwrap();
        assert_eq!(engine.prepared_len(), 1);
        assert_eq!(engine.budget_spent(handle), Some(1.0));
        // The reloaded dataset answers under its original handle and
        // produces byte-identical releases.
        let id = engine
            .submit_prepared(handle, req.config.clone(), 2)
            .unwrap();
        assert!(engine.wait(id).is_ok());
        assert_eq!(engine.budget_spent(handle), Some(2.0));
        // Both persisted references are intact.
        assert_eq!(engine.unprepare(handle).unwrap(), 1);
        assert_eq!(engine.unprepare(handle).unwrap(), 0);
        // Spend is keyed by content: it survives UNPREPARE.
        assert_eq!(engine.budget_spent(handle), Some(2.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn boot_rejects_bytes_that_do_not_reproduce_the_handle() {
        let dir = store_dir("badhandle");
        let path = dir.join("engine.hcc");
        {
            let mut store = hcc_store::Store::open(&path).unwrap();
            // A structurally valid record filed under a handle its
            // content does not digest to.
            store
                .put_dataset(&hcc_store::DatasetRecord {
                    handle: 42,
                    names: vec!["root".into(), "leaf".into()],
                    parents: vec![u64::MAX, 0],
                    histograms: vec![vec![(1, 3)], vec![(1, 3)]],
                    refs: 1,
                })
                .unwrap();
        }
        let store = hcc_store::Store::open(&path).unwrap();
        match Engine::start_with_store(EngineConfig::default(), store) {
            Err(EngineError::StoreFailed(msg)) => {
                assert!(msg.contains("do not reproduce"), "{msg}");
            }
            Err(other) => panic!("expected StoreFailed, got {other:?}"),
            Ok(_) => panic!("boot must refuse a fingerprint mismatch"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
