//! The release engine: a bounded job queue drained by one engine-wide
//! work-stealing worker pool, fronted by the result cache.
//!
//! Lifecycle of a job:
//!
//! ```text
//! submit(request) ─▶ Queued ─▶ Running ─▶ Done { result, from_cache }
//!        │                        └─────▶ Failed(message)
//!        ├─▶ Done { from_cache: true } instantly on a cache hit
//!        └─▶ Err(QueueFull) when the bounded queue is at capacity
//! ```
//!
//! [`Engine::submit`] consults the [`ResultCache`] by request
//! fingerprint first, so hits complete at submission without touching
//! the queue. Execution is a single level of parallelism: a worker
//! with nothing to run pops the next queued job, re-checks the cache
//! (an identical job may have finished in the meantime), and *expands*
//! it into node-level subtree tasks pushed onto its own deque
//! ([`crate::scheduler`]); all workers pop their own deque LIFO and
//! steal FIFO from the others, interleaving tasks from every in-flight
//! job. Each worker permanently owns one [`EstimatorWorkspace`], so
//! the node-task hot path takes no pool lock — and neither the result
//! cache nor the prepared-dataset registry sits on it (each lives
//! behind its own mutex, touched only at job granularity). Jobs are
//! only expanded when the task pool is dry, which keeps the number of
//! concurrently-active working sets near the core count instead of
//! the queue depth. Waiters block on a condvar rather than polling.
//! Dropping the engine finishes every queued job, then joins the pool.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::Instant;

use hcc_consistency::{
    estimate_node, to_csv, top_down_from_estimates, ConsistencyError, HierarchicalCounts,
    TopDownConfig,
};
use hcc_estimators::EstimatorWorkspace;
use hcc_hierarchy::Hierarchy;

use crate::cache::ResultCache;
use crate::fingerprint::{dataset_fingerprint, fingerprint, request_fingerprint, Fingerprint};
use crate::job::{EngineError, JobId, JobStatus, ReleaseRequest, ReleaseResult};
use crate::locks::{Rank, RankedGuard, RankedMutex};
use crate::registry::{DatasetHandle, DatasetRegistry};
use crate::scheduler::{ActiveJob, ComputeGate, NodeTask, TaskDeques};
use crate::telemetry::{MethodKind, SpanEvent, SpanKind, Telemetry, TelemetrySnapshot};

/// Sizing knobs for [`Engine::start`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads in the engine-wide work-stealing pool. This is
    /// the engine's *only* parallelism: releases decompose into node
    /// tasks drained by these workers, with no per-job thread spawns.
    pub workers: usize,
    /// How many workers may run node tasks *simultaneously* —
    /// `None` (the default) means `min(workers, available
    /// parallelism)`. Worker threads beyond this limit still pop,
    /// steal, and expand jobs; they just wait their turn at the
    /// compute gate, so oversubscribed worker counts add scheduling
    /// diversity without time-slicing more estimation working sets
    /// through the caches than the cores can hold. Tests force full
    /// oversubscription contention with
    /// [`EngineConfig::with_active_limit`]`(workers)`.
    pub active_limit: Option<usize>,
    /// Bounded queue capacity; [`Engine::submit`] returns
    /// [`EngineError::QueueFull`] beyond it.
    pub queue_capacity: usize,
    /// Result-cache capacity in releases; `0` disables caching.
    pub cache_capacity: usize,
    /// How many *finished* jobs stay queryable through
    /// [`Engine::status`]/[`Engine::wait`]. A long-running service
    /// would otherwise retain every release ever computed; beyond this
    /// many finished jobs, the oldest are forgotten (a later lookup
    /// gets [`EngineError::UnknownJob`]).
    pub retained_jobs: usize,
    /// Capacity of the prepared-dataset registry in datasets; beyond
    /// it, the least-recently-used dataset is evicted. `0` disables
    /// [`Engine::prepare`].
    pub prepared_capacity: usize,
    /// Per-worker span-ring capacity for the telemetry trace recorder
    /// (`0`, the default, disables span recording; counters and
    /// histograms are always on). When full, the oldest spans are
    /// overwritten and counted as dropped.
    pub trace_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            active_limit: None,
            queue_capacity: 64,
            cache_capacity: 32,
            retained_jobs: 1024,
            prepared_capacity: 16,
            trace_capacity: 0,
        }
    }
}

impl EngineConfig {
    /// Sets the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Caps how many workers compute simultaneously (see
    /// [`EngineConfig::active_limit`]).
    pub fn with_active_limit(mut self, limit: usize) -> Self {
        assert!(limit >= 1, "active limit must be at least 1");
        self.active_limit = Some(limit);
        self
    }

    /// The effective compute-gate width: the configured
    /// [`EngineConfig::active_limit`], or `min(workers, available
    /// parallelism)` when unset.
    pub fn effective_active_limit(&self) -> usize {
        self.active_limit.unwrap_or_else(|| {
            let cores = std::thread::available_parallelism().map_or(self.workers, |n| n.get());
            self.workers.min(cores).max(1)
        })
    }

    /// Sets the bounded queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        self.queue_capacity = capacity;
        self
    }

    /// Sets the result-cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets how many finished jobs stay queryable.
    pub fn with_retained_jobs(mut self, retained: usize) -> Self {
        assert!(retained >= 1, "must retain at least one finished job");
        self.retained_jobs = retained;
        self
    }

    /// Sets the prepared-dataset registry capacity (`0` disables
    /// preparation).
    pub fn with_prepared_capacity(mut self, capacity: usize) -> Self {
        self.prepared_capacity = capacity;
        self
    }

    /// Enables the span recorder with the given per-worker ring
    /// capacity (`0` disables recording; see
    /// [`EngineConfig::trace_capacity`]).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

/// Point-in-time counters. The snapshot is internally consistent:
/// the job counters are copied together under the engine state lock,
/// so `completed + failed ≤ submitted` always holds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs accepted by [`Engine::submit`].
    pub submitted: u64,
    /// Jobs finished successfully (cache hits included).
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Completions served from the result cache.
    pub cache_hits: u64,
    /// Completions that had to compute.
    pub cache_misses: u64,
    /// `PREPARE` calls accepted (repeat preparations of identical
    /// content included).
    pub prepared: u64,
    /// `DERIVE`/`APPEND` calls accepted.
    pub derived: u64,
    /// Node-level subtree tasks executed by the work-stealing pool.
    pub tasks_executed: u64,
    /// Tasks a worker stole from another worker's deque (a subset of
    /// `tasks_executed`; high ratios mean the pool is load-balancing).
    pub tasks_stolen: u64,
}

struct QueuedJob {
    id: JobId,
    request: ReleaseRequest,
    /// Precomputed at submission (None when caching is disabled) so
    /// workers never re-hash the request.
    key: Option<Fingerprint>,
    /// When [`Engine::submit`] accepted the job; queue-wait telemetry
    /// measures from here to expansion.
    submitted_at: Instant,
}

/// Counters with no cross-field invariant, updated off the job
/// lifecycle: relaxed atomics are fine here. The *job* counters
/// (submitted/completed/failed/cache hits/misses) live in [`State`]
/// instead, under the state lock, so a [`Engine::stats`] snapshot is
/// internally consistent — `completed + failed ≤ submitted` and
/// `cache_hits + cache_misses ≤ submitted` hold mid-flight, which
/// separate atomics read field-by-field cannot guarantee.
#[derive(Default)]
struct Counters {
    prepared: AtomicU64,
    derived: AtomicU64,
}

/// Callback registered by [`Engine::on_finish`], invoked exactly once
/// with the terminal status of its job.
type FinishWatcher = Box<dyn FnOnce(JobId, JobStatus) + Send>;

struct State {
    queue: VecDeque<QueuedJob>,
    /// Ordered map so any future iteration (logging, admin listings)
    /// is deterministic by job id — `HashMap` order would leak the
    /// per-process hasher seed into output.
    jobs: BTreeMap<JobId, JobStatus>,
    /// Finished job ids, oldest first; bounds `jobs` growth.
    finished: VecDeque<JobId>,
    /// Completion watchers for jobs that are not yet terminal, drained
    /// by `finish_job` and invoked outside every engine lock. The
    /// event-driven wire path registers one per in-flight framed
    /// request instead of parking a thread in [`Engine::wait`].
    watchers: BTreeMap<JobId, Vec<FinishWatcher>>,
    next_id: u64,
    /// Job-lifecycle counters (see [`Counters`] for why they live
    /// under the lock). Every writer already holds the lock at the
    /// increment site, so this costs nothing extra.
    submitted: u64,
    completed: u64,
    failed: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl State {
    /// Records a terminal status and forgets the oldest finished jobs
    /// beyond the retention limit.
    fn finish(&mut self, id: JobId, status: JobStatus, retained: usize) {
        self.jobs.insert(id, status);
        self.finished.push_back(id);
        while self.finished.len() > retained {
            if let Some(old) = self.finished.pop_front() {
                self.jobs.remove(&old);
            }
        }
    }
}

struct Shared {
    state: RankedMutex<State>,
    /// Signalled when a job is queued, a job's tasks enter the pool,
    /// or the engine shuts down.
    ///
    /// Lost-wakeup protocol: a worker only sleeps after observing, in
    /// one critical section of `state`, that the queue is empty *and*
    /// [`TaskDeques::pending`] is zero; every pusher makes its work
    /// visible first, then passes through the `state` lock before
    /// notifying. A pusher racing a would-be sleeper therefore either
    /// publishes before the sleeper's check, or notifies after the
    /// sleeper is parked on the condvar.
    work: Condvar,
    /// Signalled when any job reaches Done/Failed.
    done: Condvar,
    /// Completed releases by request fingerprint. Its own lock, off
    /// the node-task path: touched once per job at expansion (hit
    /// re-check) and once at finalisation (insert), never per task.
    cache: RankedMutex<ResultCache>,
    /// Prepared datasets. Its own lock for the same reason — handle
    /// resolution at submission never contends with running tasks.
    registry: RankedMutex<DatasetRegistry>,
    /// The engine-wide work-stealing task pool.
    deques: TaskDeques,
    /// Caps simultaneous compute (see [`EngineConfig::active_limit`]).
    gate: ComputeGate,
    shutting_down: AtomicBool,
    counters: Counters,
    /// Per-worker metrics and the span recorder
    /// ([`crate::telemetry`]).
    telemetry: Telemetry,
    config: EngineConfig,
}

/// A long-running release service: submit jobs, poll or block on
/// their completion, share results through the cache.
///
/// ```
/// use std::sync::Arc;
/// use hcc_consistency::{HierarchicalCounts, TopDownConfig};
/// use hcc_core::CountOfCounts;
/// use hcc_engine::{Engine, EngineConfig, ReleaseRequest};
/// use hcc_hierarchy::{Hierarchy, HierarchyBuilder};
///
/// let mut b = HierarchyBuilder::new("country");
/// let va = b.add_child(Hierarchy::ROOT, "VA");
/// let hierarchy = Arc::new(b.build());
/// let data = Arc::new(HierarchicalCounts::from_leaves(
///     &hierarchy,
///     vec![(va, CountOfCounts::from_group_sizes([1, 2, 2]))],
/// ).unwrap());
///
/// let engine = Engine::start(EngineConfig::default());
/// let req = ReleaseRequest::new(hierarchy, data, TopDownConfig::new(1.0), 7);
/// let id = engine.submit(req).unwrap();
/// let (result, _from_cache) = engine.wait(id).unwrap();
/// assert!(result.csv.starts_with("region,level,size,count"));
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Boots the worker pool.
    pub fn start(config: EngineConfig) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        let shared = Arc::new(Shared {
            state: RankedMutex::new(
                Rank::State,
                State {
                    queue: VecDeque::new(),
                    jobs: BTreeMap::new(),
                    finished: VecDeque::new(),
                    watchers: BTreeMap::new(),
                    next_id: 0,
                    submitted: 0,
                    completed: 0,
                    failed: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                },
            ),
            work: Condvar::new(),
            done: Condvar::new(),
            cache: RankedMutex::new(Rank::Cache, ResultCache::new(config.cache_capacity)),
            registry: RankedMutex::new(
                Rank::Registry,
                DatasetRegistry::new(config.prepared_capacity),
            ),
            deques: TaskDeques::new(config.workers),
            gate: ComputeGate::new(config.effective_active_limit()),
            shutting_down: AtomicBool::new(false),
            counters: Counters::default(),
            telemetry: Telemetry::new(config.workers, config.trace_capacity),
            config: config.clone(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hcc-engine-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    // hcc-lint: allow(panic-policy, reason = "startup fail-fast: an engine that cannot spawn its pool has no degraded mode to fall back to")
                    .expect("spawning engine worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Enqueues a release job, returning its handle immediately. A
    /// request whose release is already cached completes at
    /// submission — it consumes no queue slot and no worker dispatch,
    /// so cache hits are never rejected by a full queue.
    ///
    /// Fails with [`EngineError::QueueFull`] when the bounded queue is
    /// at capacity — callers decide whether to retry, shed load, or
    /// block.
    pub fn submit(&self, request: ReleaseRequest) -> Result<JobId, EngineError> {
        let key = (self.shared.config.cache_capacity > 0).then(|| {
            fingerprint(
                &request.hierarchy,
                &request.data,
                &request.config,
                request.seed,
            )
        });
        self.admit(request, key)
    }

    /// Registers a dataset in the prepared registry, returning its
    /// content-addressed handle. Preparing identical content again
    /// returns the same handle and adds a reference; beyond the
    /// configured capacity the least-recently-used dataset is
    /// evicted. Submissions via [`Engine::submit_prepared`] skip the
    /// expensive data walk entirely.
    pub fn prepare(
        &self,
        hierarchy: Arc<Hierarchy>,
        data: Arc<HierarchicalCounts>,
    ) -> Result<DatasetHandle, EngineError> {
        // The content digest is the expensive part; compute it before
        // taking the lock.
        let handle = DatasetHandle(dataset_fingerprint(&hierarchy, &data));
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(EngineError::ShuttingDown);
        }
        self.lock_registry().insert(handle, hierarchy, data)?;
        self.shared
            .counters
            .prepared
            .fetch_add(1, Ordering::Relaxed);
        Ok(handle)
    }

    /// Drops one reference to a prepared dataset, removing it when no
    /// references remain. Returns the number of references still
    /// held. In-flight jobs keep their `Arc`s, so unpreparing never
    /// invalidates running work.
    pub fn unprepare(&self, handle: DatasetHandle) -> Result<u64, EngineError> {
        self.lock_registry().release(handle)
    }

    /// Registers the dataset obtained by applying `delta` to the
    /// prepared dataset `parent`, returning the derived handle. The
    /// parent keeps all its references; the derived dataset starts at
    /// one (like a fresh [`Engine::prepare`]).
    ///
    /// The *re-aggregation* is **O(delta · depth)**: only the
    /// root-to-leaf paths the delta touches are re-summed
    /// ([`hcc_data::DatasetDelta::apply_to`]), never the whole
    /// hierarchy. The remaining per-derive cost is an in-memory clone
    /// and content re-digest of the per-node histograms — linear in
    /// histogram cells, but with tiny constants next to what a cold
    /// `PREPARE` of the post-delta tables pays: shipping and parsing
    /// one CSV row *per entity* plus a full bottom-up aggregation.
    /// The `engine_derive` benchmark measures the gap at ~29× on a
    /// 1%-changed census-style dataset.
    ///
    /// **Fingerprint chaining.** The derived handle is the content
    /// fingerprint of the post-delta dataset — i.e.
    /// `derive(prepare(T), δ) == prepare(apply(δ, T))`, byte for
    /// byte. Chained derivations compose the same way, so a derived
    /// handle plugs into the cheap (handle, config, seed) request
    /// fingerprint of PR 3 unchanged, and submissions against a
    /// derived handle share cache entries with inline or
    /// cold-prepared submissions of the same post-delta data.
    pub fn derive(
        &self,
        parent: DatasetHandle,
        delta: &hcc_data::DatasetDelta,
    ) -> Result<DatasetHandle, EngineError> {
        // Resolve under the lock; clone, apply, and re-digest outside
        // it (the clone is the only O(dataset) step and must not
        // stall every submitter).
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(EngineError::ShuttingDown);
        }
        let (hierarchy, data) = self.lock_registry().get(parent)?;
        let mut derived = (*data).clone();
        delta
            .apply_to(&hierarchy, &mut derived)
            .map_err(|e| EngineError::BadDelta(e.to_string()))?;
        let handle = DatasetHandle(dataset_fingerprint(&hierarchy, &derived));
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(EngineError::ShuttingDown);
        }
        self.lock_registry()
            .insert(handle, hierarchy, Arc::new(derived))?;
        self.shared.counters.derived.fetch_add(1, Ordering::Relaxed);
        Ok(handle)
    }

    /// Rolling-update variant of [`Engine::derive`]: registers the
    /// derived dataset, then drops one reference on the parent — the
    /// "my dataset moved forward" flow, so a client appending releases
    /// month after month holds one registry slot, not a growing
    /// chain. Deriving with an *empty* delta is a no-op overall (the
    /// derived handle is the parent, whose reference count is bumped
    /// and then dropped).
    pub fn append(
        &self,
        parent: DatasetHandle,
        delta: &hcc_data::DatasetDelta,
    ) -> Result<DatasetHandle, EngineError> {
        let handle = self.derive(parent, delta)?;
        // Best-effort: if the parent was concurrently unprepared or
        // evicted, the goal state (parent no longer held by this
        // caller) is already reached.
        let _ = self.unprepare(parent);
        Ok(handle)
    }

    /// Number of datasets currently held by the prepared registry.
    pub fn prepared_len(&self) -> usize {
        self.lock_registry().len()
    }

    /// Enqueues a release of a prepared dataset. Equivalent to
    /// [`Engine::submit`] with the dataset the handle was prepared
    /// from — including sharing cache entries with inline submissions
    /// of the same data — but the cache key costs O(levels) instead
    /// of a full data walk, so ε-sweeps over one handle are cheap to
    /// fingerprint.
    pub fn submit_prepared(
        &self,
        handle: DatasetHandle,
        config: TopDownConfig,
        seed: u64,
    ) -> Result<JobId, EngineError> {
        // Resolution holds only the registry lock; the job keeps its
        // `Arc`s from here on, so a concurrent unprepare/eviction
        // can't invalidate the submission being admitted.
        let (hierarchy, data) = self.lock_registry().get(handle)?;
        let key = (self.shared.config.cache_capacity > 0)
            .then(|| request_fingerprint(handle.0, hierarchy.num_levels(), &config, seed));
        self.admit(ReleaseRequest::new(hierarchy, data, config, seed), key)
    }

    /// The shared back half of submission: consult the cache, then
    /// enqueue.
    fn admit(
        &self,
        request: ReleaseRequest,
        key: Option<Fingerprint>,
    ) -> Result<JobId, EngineError> {
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(EngineError::ShuttingDown);
        }
        // Cache consultation takes only the cache lock; a racing
        // identical submission at worst enqueues twice, and the
        // worker-side re-check at expansion serves the second from
        // the cache anyway.
        let cached = key.and_then(|k| self.lock_cache().get(k));
        let mut state = self.lock_state();
        if let Some(result) = cached {
            let id = JobId(state.next_id);
            state.next_id += 1;
            state.finish(
                id,
                JobStatus::Done {
                    result,
                    from_cache: true,
                },
                self.shared.config.retained_jobs,
            );
            state.submitted += 1;
            state.completed += 1;
            state.cache_hits += 1;
            drop(state);
            self.shared.done.notify_all();
            return Ok(id);
        }
        if state.queue.len() >= self.shared.config.queue_capacity {
            return Err(EngineError::QueueFull {
                capacity: self.shared.config.queue_capacity,
            });
        }
        let id = JobId(state.next_id);
        state.next_id += 1;
        state.jobs.insert(id, JobStatus::Queued);
        state.queue.push_back(QueuedJob {
            id,
            request,
            key,
            submitted_at: Instant::now(),
        });
        state.submitted += 1;
        drop(state);
        self.shared.work.notify_one();
        Ok(id)
    }

    /// Snapshot of a job's current status (`None` for unknown ids).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.lock_state().jobs.get(&id).cloned()
    }

    /// Blocks until the job finishes, returning the release and
    /// whether the cache served it.
    pub fn wait(&self, id: JobId) -> Result<(Arc<ReleaseResult>, bool), EngineError> {
        let mut state = self.lock_state();
        loop {
            match state.jobs.get(&id) {
                None => return Err(EngineError::UnknownJob(id)),
                Some(JobStatus::Done { result, from_cache }) => {
                    return Ok((Arc::clone(result), *from_cache));
                }
                Some(JobStatus::Failed(msg)) => return Err(EngineError::JobFailed(msg.clone())),
                Some(_) => {
                    state = state.wait(&self.shared.done);
                }
            }
        }
    }

    /// Registers a completion callback for `id`, invoked exactly once
    /// with the job's terminal status — the event-driven alternative
    /// to parking a thread in [`Engine::wait`].
    ///
    /// If the job is already terminal the watcher runs immediately on
    /// the calling thread; otherwise it runs on the worker thread that
    /// finishes the job. Either way it is invoked *outside* every
    /// engine lock, so a watcher may call back into the engine (e.g.
    /// submit a follow-up job) freely — but it must stay cheap, since
    /// on the deferred path it borrows a pool worker. Watcher panics
    /// are caught and discarded; they never take down a worker.
    ///
    /// Returns [`EngineError::UnknownJob`] for ids never submitted (or
    /// already forgotten past the retention bound).
    pub fn on_finish(
        &self,
        id: JobId,
        watcher: impl FnOnce(JobId, JobStatus) + Send + 'static,
    ) -> Result<(), EngineError> {
        let mut state = self.lock_state();
        match state.jobs.get(&id) {
            None => Err(EngineError::UnknownJob(id)),
            Some(status @ (JobStatus::Done { .. } | JobStatus::Failed(_))) => {
                let status = status.clone();
                drop(state);
                invoke_watcher(Box::new(watcher), id, status);
                Ok(())
            }
            Some(_) => {
                state
                    .watchers
                    .entry(id)
                    .or_default()
                    .push(Box::new(watcher));
                Ok(())
            }
        }
    }

    /// Current counter values, as one internally consistent snapshot:
    /// the job counters are read together under the state lock (held
    /// only for five copies), so `completed + failed ≤ submitted` and
    /// `cache_hits + cache_misses ≤ submitted` hold even mid-flight.
    pub fn stats(&self) -> EngineStats {
        let state = self.lock_state();
        self.stats_locked(&state)
    }

    /// Assembles [`EngineStats`] while the caller holds the state
    /// lock. Task counters are per-worker relaxed atomics summed here;
    /// they carry no cross-field invariant with the job counters.
    fn stats_locked(&self, state: &State) -> EngineStats {
        let c = &self.shared.counters;
        let (mut tasks_executed, mut tasks_stolen) = (0, 0);
        for i in 0..self.shared.config.workers {
            let w = self.shared.telemetry.worker(i);
            tasks_executed += w.tasks_executed.load(Ordering::Relaxed);
            tasks_stolen += w.tasks_stolen.load(Ordering::Relaxed);
        }
        EngineStats {
            submitted: state.submitted,
            completed: state.completed,
            failed: state.failed,
            cache_hits: state.cache_hits,
            cache_misses: state.cache_misses,
            prepared: c.prepared.load(Ordering::Relaxed),
            derived: c.derived.load(Ordering::Relaxed),
            tasks_executed,
            tasks_stolen,
        }
    }

    /// A structured telemetry snapshot: [`Engine::stats`] plus queue
    /// depth, per-worker scheduler counters, and the latency
    /// histograms (see [`crate::telemetry`]). Aggregation cost is paid
    /// here by the caller; workers never stop to publish.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let (stats, queued) = {
            let state = self.lock_state();
            (self.stats_locked(&state), state.queue.len())
        };
        TelemetrySnapshot {
            stats,
            workers: self.shared.config.workers,
            queued,
            prepared_datasets: self.lock_registry().len(),
            uptime: self.shared.telemetry.uptime(),
            per_worker: self.shared.telemetry.worker_snapshots(),
            trace_enabled: self.shared.telemetry.tracing(),
            spans_dropped: self.shared.telemetry.spans_dropped(),
        }
    }

    /// Drains the span recorder, returning all recorded spans in
    /// start order (empty unless the engine was started with
    /// [`EngineConfig::with_trace_capacity`]). Render with
    /// [`crate::telemetry::chrome_trace_json`].
    pub fn take_trace(&self) -> Vec<SpanEvent> {
        self.shared.telemetry.take_spans()
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.lock_state().queue.len()
    }

    /// The configuration the engine was started with.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// Finishes all queued jobs, then stops the workers (idempotent;
    /// also runs on drop). Finished results stay queryable through
    /// [`Engine::status`] and [`Engine::wait`] afterwards, but new
    /// submissions are rejected with [`EngineError::ShuttingDown`].
    pub fn shutdown(&mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        // Pass through the state lock before notifying so a worker
        // between its sleep-check and its wait can't miss the signal.
        drop(self.lock_state());
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn lock_state(&self) -> RankedGuard<'_, State> {
        self.shared.state.lock()
    }

    fn lock_cache(&self) -> RankedGuard<'_, ResultCache> {
        self.shared.cache.lock()
    }

    fn lock_registry(&self) -> RankedGuard<'_, DatasetRegistry> {
        self.shared.registry.lock()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    // Permanently owned workspace: scratch buffers stay warm across
    // every task this worker ever runs, with no pool lock on the hot
    // path. Which workspace estimates which node never matters —
    // buffers are fully overwritten per node and each node draws from
    // its own seeded RNG stream.
    let mut ws = EstimatorWorkspace::new();
    // Trace-only: when the previous task started handing the compute
    // gate off, so the claim of the next task is recorded from
    // *before* the release — on an oversubscribed host the hand-off
    // notify is exactly where a worker loses the CPU, and that time
    // must land inside a span for traces to tile wall-clock.
    let mut handoff: Option<Instant> = None;
    loop {
        let sched_t0 = handoff
            .take()
            .or_else(|| shared.telemetry.tracing().then(Instant::now));
        // Hot path: own deque first (LIFO), then steal (FIFO). The
        // compute gate is taken *after* claiming a task: claiming is
        // cheap, and a claimed task is guaranteed to run, so waiting
        // at the gate can't strand work.
        if let Some(task) = shared.deques.pop(me) {
            record_sched(shared, me, &task, sched_t0);
            handoff = run_task_gated(shared, me, &task, &mut ws);
            continue;
        }
        let (stolen, failed_probes) = shared.deques.steal(me);
        {
            let w = shared.telemetry.worker(me);
            w.steal_attempts.fetch_add(1, Ordering::Relaxed);
            w.steal_failed_probes
                .fetch_add(failed_probes as u64, Ordering::Relaxed);
            if stolen.is_some() {
                w.steal_successes.fetch_add(1, Ordering::Relaxed);
                w.tasks_stolen.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(task) = stolen {
            record_sched(shared, me, &task, sched_t0);
            handoff = run_task_gated(shared, me, &task, &mut ws);
            continue;
        }
        // No runnable task anywhere: expand the next queued job, or
        // sleep until there is something to do. Expanding lazily —
        // only when the task pool is dry — keeps jobs flowing
        // depth-first: workers help finish in-flight releases before
        // admitting new working sets.
        //
        // Idle telemetry starts at the first condvar wait, not at the
        // lock: a worker that finds work without sleeping was never
        // idle. The open-ended park after the *last* job is only
        // recorded once the worker wakes — live spans have no end.
        let mut idle_since: Option<Instant> = None;
        let next = {
            let mut state = shared.state.lock();
            // The claim came up dry: close its span at the point the
            // state lock was won, so a contended lock still shows up
            // as sched time rather than a hole in the trace.
            if let Some(t0) = sched_t0 {
                shared.telemetry.span(me, SpanKind::Sched, None, None, t0);
            }
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.jobs.insert(job.id, JobStatus::Running);
                    break Some(job);
                }
                if shared.deques.pending() > 0 {
                    // Tasks appeared while we were taking the lock.
                    break None;
                }
                if shared.shutting_down.load(Ordering::Acquire) {
                    drop(state);
                    record_idle(shared, me, idle_since);
                    return;
                }
                idle_since.get_or_insert_with(Instant::now);
                state = state.wait(&shared.work);
            }
        };
        record_idle(shared, me, idle_since);
        if let Some(job) = next {
            expand_job(shared, me, job);
        }
    }
}

/// Closes out an idle stretch, if one happened.
fn record_idle(shared: &Shared, me: usize, idle_since: Option<Instant>) {
    if let Some(t0) = idle_since {
        shared.telemetry.worker(me).idle.record(t0.elapsed());
        shared.telemetry.span(me, SpanKind::Idle, None, None, t0);
    }
}

/// Closes out the trace-mode claim span for a just-claimed task.
fn record_sched(shared: &Shared, me: usize, task: &NodeTask, sched_t0: Option<Instant>) {
    if let Some(t0) = sched_t0 {
        shared
            .telemetry
            .span(me, SpanKind::Sched, Some(task.job.id), Some(task.index), t0);
    }
}

/// Takes the compute gate (timing the wait), runs the task, returns
/// the permit. In trace mode, also returns the instant the gate
/// release began, opening the next claim span.
fn run_task_gated(
    shared: &Shared,
    me: usize,
    task: &NodeTask,
    ws: &mut EstimatorWorkspace,
) -> Option<Instant> {
    let gate_t0 = Instant::now();
    shared.gate.acquire();
    shared
        .telemetry
        .worker(me)
        .gate_wait
        .record(gate_t0.elapsed());
    shared.telemetry.span(
        me,
        SpanKind::GateWait,
        Some(task.job.id),
        Some(task.index),
        gate_t0,
    );
    run_task(shared, me, task, ws);
    let handoff = shared.telemetry.tracing().then(Instant::now);
    shared.gate.release();
    handoff
}

/// Turns a queued job into node tasks on `me`'s deque (or finishes it
/// straight away on a late cache hit / invalid hierarchy).
fn expand_job(shared: &Shared, me: usize, job: QueuedJob) {
    let QueuedJob {
        id,
        request,
        key,
        submitted_at,
    } = job;
    shared
        .telemetry
        .worker(me)
        .queue_wait
        .record(submitted_at.elapsed());
    // Submission missed the cache, but an identical job may have
    // completed while this one sat in the queue — re-check before
    // paying for a release.
    let cached = key.and_then(|k| shared.cache.lock().get(k));
    if let Some(result) = cached {
        shared.state.lock().cache_hits += 1;
        finish_job(
            shared,
            id,
            Ok(JobStatus::Done {
                result,
                from_cache: true,
            }),
        );
        return;
    }
    let expand_t0 = Instant::now();
    shared.state.lock().cache_misses += 1;
    if !request.hierarchy.is_uniform_depth() {
        finish_job(
            shared,
            id,
            Err(ConsistencyError::NotUniformDepth.to_string()),
        );
        return;
    }
    let job = Arc::new(ActiveJob::new(id, request, key, shared.config.workers));
    shared.deques.push_job(me, &job);
    // Lock-then-notify (see the `work` field docs) so sleepy workers
    // can't miss these tasks.
    drop(shared.state.lock());
    shared.work.notify_all();
    shared
        .telemetry
        .worker(me)
        .expand
        .record(expand_t0.elapsed());
    shared
        .telemetry
        .span(me, SpanKind::Expand, Some(id), None, expand_t0);
}

/// Runs one node task; the worker finishing a job's last task also
/// runs the deterministic top-down phase and publishes the result.
fn run_task(shared: &Shared, me: usize, task: &NodeTask, ws: &mut EstimatorWorkspace) {
    let job = &task.job;
    let w = shared.telemetry.worker(me);
    let task_t0 = Instant::now();
    if !job.is_cancelled() {
        // A panicking estimator (degenerate budget, internal assert)
        // must fail its *job*, not kill the worker: an unwound worker
        // would shrink the pool and strand jobs in Running, hanging
        // every waiter. Reusing `ws` after an unwind is sound — its
        // buffers are fully overwritten per node.
        let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let request = &job.request;
            // hcc-lint: allow(panic-policy, reason = "task.index < tasks.len() by construction: NodeTask indices are minted by ActiveJob::new from this very vector")
            job.tasks[task.index]
                .iter()
                .map(|&node| {
                    // Per-node timing, split by the level method that
                    // will estimate this node (the paper's Hc/Hg cost
                    // asymmetry): one Instant pair per node, recorded
                    // with a relaxed fetch_add — noise next to the
                    // estimation itself.
                    let kind = MethodKind::of(
                        request
                            .config
                            .method_for_level(request.hierarchy.level_of(node)),
                    );
                    let node_t0 = Instant::now();
                    let estimate = estimate_node(
                        &request.hierarchy,
                        &request.data,
                        &request.config,
                        job.eps_level,
                        node,
                        // hcc-lint: allow(panic-policy, reason = "seeds has one slot per hierarchy node and `node` comes from this hierarchy's task list")
                        job.seeds[node.index()],
                        ws,
                    );
                    w.estimate_for(kind).record(node_t0.elapsed());
                    (node.index(), estimate)
                })
                .collect::<Vec<_>>()
        }));
        match computed {
            Ok(results) => job.store(results),
            Err(panic) => job.record_failure(panic_message(panic)),
        }
    }
    w.task_run.record(task_t0.elapsed());
    w.tasks_executed.fetch_add(1, Ordering::Relaxed);
    shared
        .telemetry
        .span(me, SpanKind::Task, Some(job.id), Some(task.index), task_t0);
    if job.finish_task() {
        // Telemetry for the finalize phase is recorded *before* the
        // status is published: once `Engine::wait` returns, every
        // counter and span belonging to the job is already visible to
        // `telemetry()` / `take_trace()`.
        let finalize_t0 = Instant::now();
        let status = finalize_job(shared, job);
        w.finalize.record(finalize_t0.elapsed());
        shared
            .telemetry
            .span(me, SpanKind::Finalize, Some(job.id), None, finalize_t0);
        finish_job(shared, job.id, status);
    }
}

/// The post-estimation half of a job: deterministic matching/merging,
/// CSV serialisation, cache insert. Returns the terminal status for
/// `finish_job` to publish.
fn finalize_job(shared: &Shared, job: &ActiveJob) -> Result<JobStatus, String> {
    let outcome = job.take_outcome().and_then(|estimates| {
        // The top-down phase and the CSV serialisation stay inside a
        // guard too — any panic past this point must become a Failed
        // job, never a dead worker.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            top_down_from_estimates(&job.request.hierarchy, &job.request.config, estimates)
                .map(|release| {
                    let csv = to_csv(&job.request.hierarchy, &release);
                    let rows = csv.lines().count().saturating_sub(1);
                    Arc::new(ReleaseResult {
                        csv,
                        rows,
                        compute_time: job.started.elapsed(),
                    })
                })
                .map_err(|e| e.to_string())
        }))
        .map_err(panic_message)
        .and_then(|computed| computed)
    });
    outcome.map(|result| {
        if let Some(key) = job.key {
            shared.cache.lock().insert(key, Arc::clone(&result));
        }
        JobStatus::Done {
            result,
            from_cache: false,
        }
    })
}

/// Publishes a terminal status, wakes blocking waiters, and fires any
/// completion watchers registered through [`Engine::on_finish`].
fn finish_job(shared: &Shared, id: JobId, status: Result<JobStatus, String>) {
    let (status, failed) = match status {
        Ok(status) => (status, false),
        Err(msg) => (JobStatus::Failed(msg), true),
    };
    let mut state = shared.state.lock();
    state.finish(id, status.clone(), shared.config.retained_jobs);
    if failed {
        state.failed += 1;
    } else {
        state.completed += 1;
    }
    let watchers = state.watchers.remove(&id).unwrap_or_default();
    drop(state);
    shared.done.notify_all();
    for watcher in watchers {
        invoke_watcher(watcher, id, status.clone());
    }
}

/// Runs one completion watcher outside every engine lock, isolating
/// panics: deferred watchers execute on pool worker threads, and a
/// panicking callback must not kill a worker.
fn invoke_watcher(watcher: FinishWatcher, id: JobId, status: JobStatus) {
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || watcher(id, status)));
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_consistency::{top_down_release, HierarchicalCounts, LevelMethod, TopDownConfig};
    use hcc_core::CountOfCounts;
    use hcc_hierarchy::{Hierarchy, HierarchyBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn request(seed: u64) -> ReleaseRequest {
        let mut b = HierarchyBuilder::new("root");
        let leaves: Vec<_> = (0..6)
            .map(|i| b.add_child(Hierarchy::ROOT, format!("l{i}")))
            .collect();
        let h = Arc::new(b.build());
        let data = Arc::new(
            HierarchicalCounts::from_leaves(
                &h,
                leaves
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| {
                        (
                            l,
                            CountOfCounts::from_group_sizes(
                                (0..12u64).map(|k| 1 + (k + i as u64) % 7),
                            ),
                        )
                    })
                    .collect(),
            )
            .unwrap(),
        );
        let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 32 });
        ReleaseRequest::new(h, data, cfg, seed)
    }

    #[test]
    fn submit_wait_matches_direct_release() {
        let engine = Engine::start(EngineConfig::default().with_workers(3));
        let req = request(11);
        let direct = {
            let mut rng = StdRng::seed_from_u64(11);
            let rel = top_down_release(&req.hierarchy, &req.data, &req.config, &mut rng).unwrap();
            to_csv(&req.hierarchy, &rel)
        };
        let id = engine.submit(req).unwrap();
        let (result, from_cache) = engine.wait(id).unwrap();
        assert!(!from_cache);
        assert_eq!(result.csv, direct);
        assert_eq!(result.rows, direct.lines().count() - 1);
    }

    #[test]
    fn cache_serves_repeat_requests() {
        let engine = Engine::start(EngineConfig::default().with_workers(1));
        let a = engine.submit(request(5)).unwrap();
        let (first, _) = engine.wait(a).unwrap();
        let b = engine.submit(request(5)).unwrap();
        let (second, from_cache) = engine.wait(b).unwrap();
        assert!(from_cache, "identical request must hit the cache");
        assert!(Arc::ptr_eq(&first, &second), "cache shares the Arc");
        let c = engine.submit(request(6)).unwrap();
        let (_, from_cache) = engine.wait(c).unwrap();
        assert!(!from_cache, "different seed is a different release");
        let stats = engine.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn many_concurrent_jobs_all_finish_deterministically() {
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(4)
                .with_cache_capacity(0),
        );
        let ids: Vec<JobId> = (0..16)
            .map(|s| engine.submit(request(s)).unwrap())
            .collect();
        for (seed, id) in ids.into_iter().enumerate() {
            let (result, _) = engine.wait(id).unwrap();
            let req = request(seed as u64);
            let mut rng = StdRng::seed_from_u64(seed as u64);
            let direct =
                top_down_release(&req.hierarchy, &req.data, &req.config, &mut rng).unwrap();
            assert_eq!(result.csv, to_csv(&req.hierarchy, &direct), "seed {seed}");
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, 16);
        assert!(
            stats.tasks_executed >= 16,
            "every job decomposes into at least one task: {stats:?}"
        );
        assert!(
            stats.tasks_stolen <= stats.tasks_executed,
            "steals are a subset of executions: {stats:?}"
        );
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        // One worker, capacity 1: with the worker parked on the first
        // job, the second fills the queue and the third must bounce.
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(1)
                .with_queue_capacity(1),
        );
        let mut accepted = 0;
        let mut rejected = 0;
        for s in 0..50 {
            match engine.submit(request(s)) {
                Ok(_) => accepted += 1,
                Err(EngineError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(accepted >= 1);
        assert!(rejected >= 1, "a 50-deep burst must overflow capacity 1");
    }

    #[test]
    fn unknown_job_and_status_lifecycle() {
        let engine = Engine::start(EngineConfig::default());
        assert!(engine.status(JobId(99)).is_none());
        assert!(matches!(
            engine.wait(JobId(99)),
            Err(EngineError::UnknownJob(JobId(99)))
        ));
        let id = engine.submit(request(1)).unwrap();
        engine.wait(id).unwrap();
        assert_eq!(engine.status(id).unwrap().name(), "done");
    }

    #[test]
    fn cache_hits_bypass_a_full_queue() {
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(1)
                .with_queue_capacity(1),
        );
        // Prime the cache.
        let id = engine.submit(request(0)).unwrap();
        engine.wait(id).unwrap();
        // Saturate the pool and the queue with uncached work.
        let mut burst = Vec::new();
        for s in 1..50 {
            match engine.submit(request(s)) {
                Ok(id) => burst.push(id),
                Err(EngineError::QueueFull { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // The cached request must still be accepted and complete
        // instantly, no matter how full the queue is.
        let id = engine.submit(request(0)).unwrap();
        let (_, from_cache) = engine.wait(id).unwrap();
        assert!(from_cache);
        for id in burst {
            engine.wait(id).unwrap();
        }
    }

    #[test]
    fn panicking_release_fails_the_job_but_not_the_worker() {
        let engine = Engine::start(EngineConfig::default().with_workers(1));
        // A negative budget trips the noise mechanism's assert; the
        // panic must surface as a Failed job, not a dead worker.
        let mut bad = request(1);
        bad.config = TopDownConfig::new(-1.0);
        let id = engine.submit(bad).unwrap();
        let err = engine.wait(id).unwrap_err();
        assert!(matches!(err, EngineError::JobFailed(_)), "{err:?}");
        assert_eq!(engine.stats().failed, 1);
        // The lone worker is still alive and serves the next job.
        let id = engine.submit(request(2)).unwrap();
        assert!(engine.wait(id).is_ok());
    }

    #[test]
    fn finished_jobs_are_evicted_beyond_retention() {
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(1)
                .with_retained_jobs(2)
                .with_cache_capacity(0),
        );
        let ids: Vec<JobId> = (0..4).map(|s| engine.submit(request(s)).unwrap()).collect();
        // One worker drains FIFO, so the newest job finishing means all
        // four are done.
        engine.wait(ids[3]).unwrap();
        // Only the two newest remain queryable.
        assert!(engine.status(ids[0]).is_none());
        assert!(engine.status(ids[1]).is_none());
        assert_eq!(engine.status(ids[2]).unwrap().name(), "done");
        assert_eq!(engine.status(ids[3]).unwrap().name(), "done");
        assert!(matches!(
            engine.wait(ids[0]),
            Err(EngineError::UnknownJob(_))
        ));
        assert_eq!(engine.stats().completed, 4);
    }

    #[test]
    fn prepared_submission_is_byte_identical_to_inline() {
        // Cache disabled: both paths must *compute* and still agree.
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(2)
                .with_cache_capacity(0),
        );
        let req = request(21);
        let handle = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        let inline_id = engine.submit(req.clone()).unwrap();
        let prepared_id = engine
            .submit_prepared(handle, req.config.clone(), req.seed)
            .unwrap();
        let (inline, _) = engine.wait(inline_id).unwrap();
        let (prepared, _) = engine.wait(prepared_id).unwrap();
        assert_eq!(inline.csv, prepared.csv);
    }

    #[test]
    fn prepared_and_inline_submissions_share_the_cache() {
        let engine = Engine::start(EngineConfig::default().with_workers(1));
        let req = request(13);
        let id = engine.submit(req.clone()).unwrap();
        let (first, _) = engine.wait(id).unwrap();
        // Same data through the prepared path: the request fingerprint
        // must collide with the inline one and hit the cache.
        let handle = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        let id = engine
            .submit_prepared(handle, req.config.clone(), req.seed)
            .unwrap();
        let (second, from_cache) = engine.wait(id).unwrap();
        assert!(from_cache, "prepared submission must reuse the cache entry");
        assert!(Arc::ptr_eq(&first, &second));
        // A different ε over the same handle computes fresh.
        let id = engine
            .submit_prepared(
                handle,
                TopDownConfig::new(2.0).with_method(LevelMethod::Cumulative { bound: 32 }),
                req.seed,
            )
            .unwrap();
        let (_, from_cache) = engine.wait(id).unwrap();
        assert!(!from_cache);
    }

    #[test]
    fn prepare_is_content_addressed_and_refcounted() {
        let engine = Engine::start(EngineConfig::default());
        let req = request(1);
        let a = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        let b = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        assert_eq!(a, b, "identical content gets one handle");
        assert_eq!(engine.prepared_len(), 1);
        assert_eq!(engine.stats().prepared, 2);
        assert_eq!(engine.unprepare(a).unwrap(), 1);
        assert_eq!(engine.unprepare(a).unwrap(), 0);
        assert!(matches!(
            engine.submit_prepared(a, req.config.clone(), 1),
            Err(EngineError::UnknownDataset(_))
        ));
        assert!(matches!(
            engine.unprepare(a),
            Err(EngineError::UnknownDataset(_))
        ));
    }

    #[test]
    fn registry_eviction_surfaces_as_evicted_error() {
        let engine = Engine::start(EngineConfig::default().with_prepared_capacity(1));
        let first = {
            let req = request(0);
            engine.prepare(req.hierarchy, req.data).unwrap()
        };
        // A second, different dataset evicts the first (capacity 1).
        let mut b = HierarchyBuilder::new("other");
        let leaf = b.add_child(Hierarchy::ROOT, "x");
        let h = Arc::new(b.build());
        let d = Arc::new(
            HierarchicalCounts::from_leaves(&h, vec![(leaf, CountOfCounts::from_group_sizes([2]))])
                .unwrap(),
        );
        let second = engine.prepare(h, d).unwrap();
        assert_ne!(first, second);
        let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 32 });
        assert!(matches!(
            engine.submit_prepared(first, cfg.clone(), 7),
            Err(EngineError::DatasetEvicted(_))
        ));
        let id = engine.submit_prepared(second, cfg, 7).unwrap();
        assert!(engine.wait(id).is_ok());
    }

    #[test]
    fn derive_chains_content_fingerprints() {
        use hcc_data::{DatasetDelta, DeltaOp};

        let engine = Engine::start(EngineConfig::default().with_workers(1));
        let req = request(3);
        let parent = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        let delta = DatasetDelta {
            ops: vec![
                DeltaOp::Add {
                    region: "l0".into(),
                    size: 9,
                    count: 2,
                },
                DeltaOp::Resize {
                    region: "l1".into(),
                    old_size: 1,
                    new_size: 3,
                    count: 1,
                },
            ],
        };
        let derived = engine.derive(parent, &delta).unwrap();
        assert_ne!(derived, parent);
        assert_eq!(engine.prepared_len(), 2, "parent stays registered");

        // Fingerprint chaining: the derived handle must equal a cold
        // PREPARE of the post-delta data.
        let mut post = (*req.data).clone();
        delta.apply_to(&req.hierarchy, &mut post).unwrap();
        let cold = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::new(post))
            .unwrap();
        assert_eq!(cold, derived);

        // Releases from the derived handle must compute against the
        // post-delta data: same bytes as submitting it inline.
        let id = engine
            .submit_prepared(derived, req.config.clone(), 7)
            .unwrap();
        let (from_handle, _) = engine.wait(id).unwrap();
        let mut post = (*req.data).clone();
        delta.apply_to(&req.hierarchy, &mut post).unwrap();
        let direct = {
            let mut rng = StdRng::seed_from_u64(7);
            let rel = top_down_release(&req.hierarchy, &post, &req.config, &mut rng).unwrap();
            to_csv(&req.hierarchy, &rel)
        };
        assert_eq!(from_handle.csv, direct);
        assert_eq!(engine.stats().derived, 1);

        // A bad delta is a typed rejection, not a panic, and derives
        // from unknown parents say so.
        let bad = DatasetDelta {
            ops: vec![DeltaOp::Remove {
                region: "l0".into(),
                size: 777,
                count: 1,
            }],
        };
        assert!(matches!(
            engine.derive(parent, &bad),
            Err(EngineError::BadDelta(_))
        ));
        let bogus = DatasetHandle(crate::fingerprint::Fingerprint(42));
        assert!(matches!(
            engine.derive(bogus, &delta),
            Err(EngineError::UnknownDataset(_))
        ));
    }

    #[test]
    fn append_is_a_rolling_update() {
        use hcc_data::{DatasetDelta, DeltaOp};

        let engine = Engine::start(EngineConfig::default());
        let req = request(4);
        let parent = engine
            .prepare(Arc::clone(&req.hierarchy), Arc::clone(&req.data))
            .unwrap();
        let delta = DatasetDelta {
            ops: vec![DeltaOp::Add {
                region: "l2".into(),
                size: 5,
                count: 1,
            }],
        };
        let derived = engine.append(parent, &delta).unwrap();
        assert_ne!(derived, parent);
        // The parent's single reference was dropped: only the derived
        // dataset remains registered.
        assert_eq!(engine.prepared_len(), 1);
        assert!(matches!(
            engine.unprepare(parent),
            Err(EngineError::UnknownDataset(_))
        ));
        // An empty delta is a no-op: handle unchanged, refcount level.
        let same = engine.append(derived, &DatasetDelta::new()).unwrap();
        assert_eq!(same, derived);
        assert_eq!(engine.prepared_len(), 1);
        assert_eq!(engine.unprepare(derived).unwrap(), 0);
    }

    #[test]
    fn shutdown_finishes_queued_work_then_rejects_new_jobs() {
        let mut engine = Engine::start(EngineConfig::default().with_workers(2));
        let ids: Vec<JobId> = (0..6).map(|s| engine.submit(request(s)).unwrap()).collect();
        engine.shutdown();
        for id in ids {
            assert_eq!(engine.status(id).unwrap().name(), "done");
            assert!(engine.wait(id).is_ok());
        }
        assert_eq!(engine.stats().completed, 6);
        assert!(matches!(
            engine.submit(request(0)),
            Err(EngineError::ShuttingDown)
        ));
    }

    #[test]
    fn ragged_hierarchy_fails_the_job_with_a_typed_message() {
        // A ragged hierarchy can't carry its own HierarchicalCounts,
        // but a request can (wrongly) pair one with data built from a
        // *different* uniform hierarchy of equal node count — the
        // expansion-time guard must fail the job, not panic a worker.
        let mut b = HierarchyBuilder::new("r");
        let mid = b.add_child(Hierarchy::ROOT, "mid");
        let _deep = b.add_child(mid, "deep");
        let _shallow = b.add_child(Hierarchy::ROOT, "shallow");
        let ragged = Arc::new(b.build());
        let mut b = HierarchyBuilder::new("u");
        let leaves: Vec<_> = (0..3)
            .map(|i| b.add_child(Hierarchy::ROOT, format!("l{i}")))
            .collect();
        let uniform = b.build();
        assert_eq!(uniform.num_nodes(), ragged.num_nodes());
        let data = Arc::new(
            HierarchicalCounts::from_leaves(
                &uniform,
                leaves
                    .iter()
                    .map(|&l| (l, CountOfCounts::from_group_sizes([1, 2])))
                    .collect(),
            )
            .unwrap(),
        );
        let engine = Engine::start(EngineConfig::default().with_workers(2));
        let id = engine
            .submit(ReleaseRequest::new(
                ragged,
                data,
                TopDownConfig::new(1.0),
                1,
            ))
            .unwrap();
        match engine.wait(id) {
            Err(EngineError::JobFailed(msg)) => {
                assert!(msg.contains("deepest level"), "{msg}");
            }
            other => panic!("expected JobFailed, got {other:?}"),
        }
    }
}
