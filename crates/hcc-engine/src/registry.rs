//! The prepared-dataset registry: load once, serve many.
//!
//! The paper's evaluation (§6) is built from ε-sweeps and repeated
//! releases over the *same* hierarchy + group table, yet a naive
//! server re-parses the CSVs and re-aggregates the per-node true
//! views on every submission — the dominant cost once the hierarchy
//! is large. Classic database practice (prepared statements, shared
//! scans) says to hoist that work: `PREPARE` loads the tables once,
//! computes the per-node true views, and registers them under a
//! **content-addressed handle**; submissions then reference the
//! handle and skip parsing and aggregation entirely, and the
//! result-cache fingerprint collapses to a cheap (handle, config,
//! seed) key.
//!
//! Handles are the [`dataset_fingerprint`](crate::dataset_fingerprint)
//! of the loaded data, so preparing the same tables twice yields the
//! *same* handle (and bumps a reference count) instead of a duplicate
//! entry. Entries are ref-counted — `UNPREPARE` decrements and the
//! entry is dropped at zero — under an LRU capacity bound: when the
//! bound is exceeded the least-recently-used entry is evicted even if
//! still referenced (the registry caps server memory; clients holding
//! an evicted handle get a distinguishable error telling them to
//! re-prepare). Eviction also discards the entry's reference ledger:
//! re-preparing a previously evicted handle starts it back at one
//! reference, so every client that held the handle before the
//! eviction must re-prepare (not merely keep submitting) to count
//! itself again.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use hcc_consistency::HierarchicalCounts;
use hcc_hierarchy::Hierarchy;

use crate::fingerprint::Fingerprint;
use crate::job::EngineError;

/// How many evicted handles are remembered so that a stale client
/// gets "evicted, re-prepare" instead of "unknown handle".
const MAX_TOMBSTONES: usize = 1024;

/// Content-addressed handle of a prepared dataset: the
/// [`dataset_fingerprint`](crate::dataset_fingerprint) of its
/// hierarchy + per-node histograms, rendered as `ds-<32 hex digits>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatasetHandle(pub Fingerprint);

impl std::fmt::Display for DatasetHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ds-{}", self.0)
    }
}

impl std::str::FromStr for DatasetHandle {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.strip_prefix("ds-")
            .filter(|hex| hex.len() == 32)
            .and_then(|hex| u128::from_str_radix(hex, 16).ok())
            .map(|bits| DatasetHandle(Fingerprint(bits)))
            .ok_or_else(|| format!("malformed dataset handle {s:?} (expected ds-<32 hex>)"))
    }
}

/// A dataset held by the registry: the hierarchy and the aggregated
/// per-node true views, shared via [`Arc`] with every in-flight job
/// that references them.
struct Entry {
    hierarchy: Arc<Hierarchy>,
    data: Arc<HierarchicalCounts>,
    /// `PREPARE` count minus `UNPREPARE` count.
    refs: u64,
}

/// Ref-counted, LRU-bounded map from [`DatasetHandle`] to prepared
/// dataset.
pub struct DatasetRegistry {
    capacity: usize,
    /// Ordered by handle so any iteration over entries (wire listings,
    /// logs) is deterministic; LRU recency lives in `order`.
    entries: BTreeMap<DatasetHandle, Entry>,
    /// Front = least recently used.
    order: VecDeque<DatasetHandle>,
    /// Recently evicted handles, oldest first (bounded).
    tombstones: VecDeque<DatasetHandle>,
}

impl DatasetRegistry {
    /// A registry holding at most `capacity` datasets; `0` disables
    /// preparation entirely.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            tombstones: VecDeque::new(),
        }
    }

    fn touch(&mut self, handle: DatasetHandle) {
        if let Some(pos) = self.order.iter().position(|&h| h == handle) {
            self.order.remove(pos);
        }
        self.order.push_back(handle);
    }

    fn bury(&mut self, handle: DatasetHandle) {
        self.tombstones.push_back(handle);
        while self.tombstones.len() > MAX_TOMBSTONES {
            self.tombstones.pop_front();
        }
    }

    /// Registers a dataset under `handle` (one more reference if the
    /// identical content is already prepared), evicting the
    /// least-recently-used entry beyond capacity. Returns the entry's
    /// reference count after this insert plus every handle the LRU
    /// bound evicted to make room — the caller persists both.
    ///
    /// Handles are FNV-1a digests, which are not collision-resistant
    /// against adversarial inputs — so a repeat preparation is only
    /// counted as a reference after verifying the stored content
    /// actually equals the new content; a crafted collision is
    /// rejected instead of silently serving the older dataset under
    /// the forged handle.
    pub fn insert(
        &mut self,
        handle: DatasetHandle,
        hierarchy: Arc<Hierarchy>,
        data: Arc<HierarchicalCounts>,
    ) -> Result<(u64, Vec<DatasetHandle>), EngineError> {
        self.insert_with_refs(handle, hierarchy, data, 1)
    }

    /// [`DatasetRegistry::insert`] with an explicit starting reference
    /// count — the boot-reload path restores handles at the count the
    /// durable store recorded, not at one.
    pub fn insert_with_refs(
        &mut self,
        handle: DatasetHandle,
        hierarchy: Arc<Hierarchy>,
        data: Arc<HierarchicalCounts>,
        refs: u64,
    ) -> Result<(u64, Vec<DatasetHandle>), EngineError> {
        if self.capacity == 0 {
            return Err(EngineError::RegistryDisabled);
        }
        let refs_now = if let Some(entry) = self.entries.get_mut(&handle) {
            if *entry.hierarchy != *hierarchy || *entry.data != *data {
                return Err(EngineError::DatasetCollision(handle));
            }
            entry.refs += refs;
            entry.refs
        } else {
            self.entries.insert(
                handle,
                Entry {
                    hierarchy,
                    data,
                    refs,
                },
            );
            // A re-prepared handle is live again, not evicted.
            self.tombstones.retain(|&h| h != handle);
            refs
        };
        self.touch(handle);
        let mut evicted = Vec::new();
        while self.entries.len() > self.capacity {
            if let Some(lru) = self.order.pop_front() {
                self.entries.remove(&lru);
                self.bury(lru);
                evicted.push(lru);
            }
        }
        Ok((refs_now, evicted))
    }

    /// Resolves a handle to its dataset, refreshing its recency.
    pub fn get(
        &mut self,
        handle: DatasetHandle,
    ) -> Result<(Arc<Hierarchy>, Arc<HierarchicalCounts>), EngineError> {
        if let Some(entry) = self.entries.get(&handle) {
            let out = (Arc::clone(&entry.hierarchy), Arc::clone(&entry.data));
            self.touch(handle);
            return Ok(out);
        }
        if self.tombstones.contains(&handle) {
            Err(EngineError::DatasetEvicted(handle))
        } else {
            Err(EngineError::UnknownDataset(handle))
        }
    }

    /// Drops one reference, removing the entry when none remain.
    /// Returns the number of references still held.
    pub fn release(&mut self, handle: DatasetHandle) -> Result<u64, EngineError> {
        let Some(entry) = self.entries.get_mut(&handle) else {
            return if self.tombstones.contains(&handle) {
                Err(EngineError::DatasetEvicted(handle))
            } else {
                Err(EngineError::UnknownDataset(handle))
            };
        };
        entry.refs -= 1;
        let remaining = entry.refs;
        if remaining == 0 {
            self.entries.remove(&handle);
            self.order.retain(|&h| h != handle);
            // Fully unprepared is *not* evicted: a later lookup is an
            // unknown handle, matching an explicit client decision.
        }
        Ok(remaining)
    }

    /// Number of datasets currently registered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::CountOfCounts;
    use hcc_hierarchy::HierarchyBuilder;

    fn dataset(tag: u64) -> (Arc<Hierarchy>, Arc<HierarchicalCounts>) {
        let mut b = HierarchyBuilder::new("root");
        let leaf = b.add_child(Hierarchy::ROOT, format!("leaf{tag}"));
        let h = Arc::new(b.build());
        let d = Arc::new(
            HierarchicalCounts::from_leaves(
                &h,
                vec![(leaf, CountOfCounts::from_group_sizes([1, tag + 1]))],
            )
            .unwrap(),
        );
        (h, d)
    }

    fn handle(tag: u64) -> DatasetHandle {
        DatasetHandle(Fingerprint(u128::from(tag)))
    }

    #[test]
    fn handle_display_round_trips() {
        let h = DatasetHandle(Fingerprint(0xdead_beef));
        let s = h.to_string();
        assert!(s.starts_with("ds-"), "{s}");
        assert_eq!(s.parse::<DatasetHandle>().unwrap(), h);
        assert!("ds-xyz".parse::<DatasetHandle>().is_err());
        assert!("job-7".parse::<DatasetHandle>().is_err());
        assert!("ds-1234".parse::<DatasetHandle>().is_err(), "length check");
    }

    #[test]
    fn repeat_prepare_refcounts_one_entry() {
        let mut r = DatasetRegistry::new(4);
        let (h, d) = dataset(0);
        r.insert(handle(1), Arc::clone(&h), Arc::clone(&d)).unwrap();
        r.insert(handle(1), h, d).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.release(handle(1)).unwrap(), 1);
        assert!(r.get(handle(1)).is_ok(), "still one reference");
        assert_eq!(r.release(handle(1)).unwrap(), 0);
        assert!(
            matches!(r.get(handle(1)), Err(EngineError::UnknownDataset(_))),
            "fully unprepared handles are unknown, not evicted"
        );
    }

    #[test]
    fn lru_eviction_leaves_a_tombstone() {
        let mut r = DatasetRegistry::new(2);
        for tag in 1..=2 {
            let (h, d) = dataset(tag);
            r.insert(handle(tag), h, d).unwrap();
        }
        // Touch 1 so 2 becomes the LRU.
        r.get(handle(1)).unwrap();
        let (h, d) = dataset(3);
        r.insert(handle(3), h, d).unwrap();
        assert_eq!(r.len(), 2);
        assert!(matches!(
            r.get(handle(2)),
            Err(EngineError::DatasetEvicted(_))
        ));
        assert!(matches!(
            r.release(handle(2)),
            Err(EngineError::DatasetEvicted(_))
        ));
        assert!(r.get(handle(1)).is_ok());
        assert!(r.get(handle(3)).is_ok());
        // Re-preparing the evicted handle resurrects it.
        let (h, d) = dataset(2);
        r.insert(handle(2), h, d).unwrap();
        assert!(r.get(handle(2)).is_ok());
    }

    #[test]
    fn forged_handle_collision_is_rejected() {
        // FNV-1a collisions are constructible by an adversary; the
        // registry must refuse to alias different content under one
        // handle instead of silently serving the older dataset.
        let mut r = DatasetRegistry::new(4);
        let (h, d) = dataset(0);
        r.insert(handle(1), h, d).unwrap();
        let (h2, d2) = dataset(9);
        assert!(matches!(
            r.insert(handle(1), h2, d2),
            Err(EngineError::DatasetCollision(_))
        ));
        // The original content is untouched and still singly held.
        assert!(r.get(handle(1)).is_ok());
        assert_eq!(r.release(handle(1)).unwrap(), 0);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut r = DatasetRegistry::new(0);
        let (h, d) = dataset(0);
        assert!(matches!(
            r.insert(handle(1), h, d),
            Err(EngineError::RegistryDisabled)
        ));
        assert!(r.is_empty());
    }
}
