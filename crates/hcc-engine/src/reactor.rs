//! Event-driven wire path: a single-thread epoll reactor multiplexing
//! every connection.
//!
//! The blocking server ([`crate::server::serve_blocking`]) spends one
//! OS thread per connection, and a pipelined client still pays a full
//! round trip per request. This module replaces that wire path with a
//! hand-rolled reactor (std-only; crates.io is unavailable, in the
//! spirit of the PR 2 work queue):
//!
//! - **One reactor thread.** A level-triggered epoll instance watches
//!   the listener, a wake pipe, and every client socket; accept, read,
//!   decode, dispatch, and write all happen on this thread. Job
//!   execution stays on the engine's worker pool — the reactor
//!   subscribes to results with [`crate::Engine::on_finish`] and never
//!   blocks on a job, so reactor threads stay at `1` no matter how
//!   many connections or jobs are open.
//! - **Two protocols on one port.** The first byte a connection sends
//!   picks its protocol: [`frame::MAGIC`] means the framed binary
//!   protocol ([`crate::protocol::frame`]); anything else (legacy
//!   commands start with an uppercase ASCII letter) is served by the
//!   exact same dispatch the blocking server uses
//!   ([`crate::server::dispatch_legacy`]), byte-for-byte.
//! - **Multi-tenant admission control.** Each connection has two
//!   request lanes — interactive ([`frame::FLAG_BULK`] clear) and bulk
//!   (set) — with separate in-flight quotas, plus a bounded park
//!   buffer absorbing short engine-queue-full spikes. When both the
//!   quota (or queue) and the park buffer are exhausted, the request
//!   is shed with a structured [`frame::T_BUSY`] frame — the framed
//!   generalization of the legacy `busy:` token — never silently
//!   dropped. Parked interactive requests re-admit before bulk ones.
//!
//! Completions cross from worker threads to the reactor through
//! [`CompletionQueue`]: a `wire`-ranked mutex (last in the lock order,
//! so a watcher fired under no engine lock can always take it) plus a
//! nonblocking wake pipe that interrupts `epoll_wait`.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hcc_consistency::TopDownConfig;
use hcc_data::DatasetDelta;

use crate::job::{EngineError, JobId, JobStatus, ReleaseRequest};
use crate::locks::{Rank, RankedMutex};
use crate::protocol::frame::{
    self, busy_frame, decode_frame, encode_frame, error_frame, hello_ok_frame, ok_text_frame,
    parse_derive, parse_prepare, parse_submit, parse_unprepare, result_frame, Frame, FrameError,
    HelloLimits, B_QUEUE, B_QUOTA, E_BUDGET, E_FAILED, E_PROTO, E_REJECTED, E_TIMEOUT, E_VERSION,
    FLAG_BULK, HEADER_LEN, T_APPEND, T_DERIVE, T_GOODBYE, T_HELLO, T_METRICS, T_PING, T_PONG,
    T_PREPARE, T_STATS, T_SUBMIT, T_UNPREPARE,
};
use crate::protocol::{format_stats, one_line};
use crate::registry::DatasetHandle;
use crate::server::{
    dispatch_legacy, load_dataset, render_wait_reply, submit_config, wait_outcome, LegacyOutcome,
    ServerHandle, MAX_SECTION_BYTES, MAX_SECTION_LINES,
};
use crate::telemetry::WireStats;
use crate::Engine;

/// Minimal epoll FFI. The only unsafe code in the workspace lives in
/// this module; every call site carries a `hcc-lint` hygiene waiver
/// stating why it is sound. libc is already linked by std, so the
/// symbols resolve without any build-script or dependency work.
#[allow(unsafe_code)]
mod sys {
    use std::io;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Mirrors the kernel's `struct epoll_event`. On x86-64 the kernel
    /// ABI packs it (no padding between `events` and `data`); other
    /// 64-bit targets use the naturally-aligned layout.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Creates a close-on-exec epoll instance.
    pub fn epoll_create() -> io::Result<i32> {
        // hcc-lint: allow(hygiene, reason = "audited FFI: epoll_create1 takes no pointers; the returned fd is checked before use")
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(fd)
        }
    }

    /// Adds/modifies/deletes `fd`'s interest set. An event struct is
    /// passed even for DEL (required by kernels before 2.6.9, ignored
    /// since).
    pub fn ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // hcc-lint: allow(hygiene, reason = "audited FFI: the event pointer refers to a live stack value for exactly the duration of the call")
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Waits for events, returning how many were written into
    /// `events`. `EINTR` is reported as zero events.
    pub fn wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let max = i32::try_from(events.len()).unwrap_or(i32::MAX);
        if max == 0 {
            return Ok(0);
        }
        // hcc-lint: allow(hygiene, reason = "audited FFI: the pointer/length pair comes from one live mutable slice; the kernel writes at most `max` entries")
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), max, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(usize::try_from(n).unwrap_or(0))
    }

    /// Closes an fd this module opened (best-effort).
    pub fn close_fd(fd: i32) {
        // hcc-lint: allow(hygiene, reason = "audited FFI: closes only the epoll fd this module created; double-close is impossible because the owner is dropped exactly once")
        let _ = unsafe { close(fd) };
    }
}

/// Safe owner of one epoll instance.
struct Epoll {
    fd: i32,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            fd: sys::epoll_create()?,
        })
    }

    fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        sys::ctl(self.fd, sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        sys::ctl(self.fd, sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn delete(&self, fd: i32) {
        let _ = sys::ctl(self.fd, sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        sys::wait(self.fd, events, timeout_ms)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

/// Reactor transport and admission knobs;
/// [`serve_reactor`] applies them, [`crate::serve_with`] maps the
/// blocking-era [`crate::ServeConfig`] onto the transport subset.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Close a connection idle this long with nothing in flight
    /// (`None` disables the sweep).
    pub read_timeout: Option<Duration>,
    /// Most concurrent connections; beyond this, new clients get one
    /// `ERR server busy` line and are dropped.
    pub max_connections: usize,
    /// Largest frame payload accepted from a client.
    pub max_frame: u32,
    /// Interactive-lane (default) in-flight job quota per connection.
    pub interactive_inflight: usize,
    /// Bulk-lane ([`FLAG_BULK`]) in-flight job quota per connection.
    pub bulk_inflight: usize,
    /// Requests parked per connection (awaiting quota or an engine
    /// queue slot) before further submits are shed with `BUSY`.
    pub park_capacity: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(30)),
            max_connections: 1024,
            max_frame: frame::DEFAULT_MAX_FRAME,
            interactive_inflight: 256,
            bulk_inflight: 64,
            park_capacity: 64,
        }
    }
}

impl ReactorConfig {
    /// Sets the idle timeout (`None` disables it).
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the concurrent-connection bound.
    pub fn with_max_connections(mut self, max: usize) -> Self {
        assert!(max >= 1, "need at least one connection slot");
        self.max_connections = max;
        self
    }

    /// Sets the largest accepted frame payload.
    pub fn with_max_frame(mut self, max: u32) -> Self {
        self.max_frame = max;
        self
    }

    /// Sets the interactive-lane in-flight quota.
    pub fn with_interactive_inflight(mut self, quota: usize) -> Self {
        assert!(quota >= 1, "need at least one interactive slot");
        self.interactive_inflight = quota;
        self
    }

    /// Sets the bulk-lane in-flight quota.
    pub fn with_bulk_inflight(mut self, quota: usize) -> Self {
        assert!(quota >= 1, "need at least one bulk slot");
        self.bulk_inflight = quota;
        self
    }

    /// Sets the per-connection park-buffer capacity (may be zero:
    /// every over-quota submit is shed immediately).
    pub fn with_park_capacity(mut self, capacity: usize) -> Self {
        self.park_capacity = capacity;
        self
    }
}

/// Token of the listening socket in the epoll interest set.
const TOK_LISTENER: u64 = 0;
/// Token of the wake pipe's read end.
const TOK_WAKE: u64 = 1;
/// First token handed to a client connection (monotonic, never
/// reused, so a stale event cannot alias a new connection).
const FIRST_CONN_TOKEN: u64 = 2;
/// Retry hint carried in `BUSY` frames.
const BUSY_RETRY_MS: u32 = 50;
/// A connection whose peer stops reading may buffer at most this many
/// unsent response bytes before being dropped.
const OUTBUF_CAP: usize = 1 << 30;
/// How often the idle sweep runs.
const SWEEP_EVERY: Duration = Duration::from_millis(500);

/// A job completion crossing from a worker thread to the reactor.
struct Completion {
    token: u64,
    request_id: u64,
    job: JobId,
    kind: CompletionKind,
    status: JobStatus,
}

/// What the completion resolves on the connection.
enum CompletionKind {
    /// A framed submit; the response is a `RESULT`/`ERROR` frame keyed
    /// by request id.
    Framed,
    /// A legacy `WAIT`; the response is the line-protocol release
    /// block, and the connection resumes parsing afterwards.
    LegacyWait,
}

/// The worker→reactor handoff: completions land in a `wire`-ranked
/// vector (the last rank, so watchers may push while holding no other
/// lock and the reactor drains without ordering hazards), and a byte
/// on the wake pipe interrupts `epoll_wait`.
struct CompletionQueue {
    completions: RankedMutex<Vec<Completion>>,
    wake: UnixStream,
}

impl CompletionQueue {
    fn push(&self, completion: Completion) {
        self.completions.lock().push(completion);
        // Nonblocking: a full pipe already guarantees a pending wake.
        let _ = (&self.wake).write(&[1]);
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock())
    }
}

/// Incremental scanner finding the end of one legacy line-protocol
/// request in a growing buffer, without copying or re-scanning
/// consumed bytes. Mirrors the framing rules of
/// [`crate::server::dispatch_legacy`]'s section reader: sectioned
/// commands (`SUBMIT`/`PREPARE`/`DERIVE`/`APPEND`) run through `END`,
/// with each `<label> <count>` header declaring `count` payload lines;
/// every other command is one line.
#[derive(Default)]
struct LegacyScan {
    /// Bytes of the current request already validated.
    offset: usize,
    /// Whether the command line has been consumed.
    started: bool,
    /// Whether the command carries sections through `END`.
    in_sections: bool,
    /// Payload lines still to skip in the current section.
    lines_left: usize,
}

impl LegacyScan {
    /// Advances over `buf` (the unconsumed input, starting at the
    /// request's first byte). `Ok(Some(len))` means the first `len`
    /// bytes form one complete request; `Ok(None)` means more input is
    /// needed; `Err` is a fatal framing error (mirroring the blocking
    /// server's close-the-connection cases, with identical text).
    fn advance(&mut self, buf: &[u8]) -> Result<Option<usize>, String> {
        loop {
            while self.lines_left > 0 {
                let Some(end) = next_line_end(buf, self.offset) else {
                    return Ok(None);
                };
                self.offset = end;
                self.lines_left -= 1;
            }
            let Some(end) = next_line_end(buf, self.offset) else {
                return Ok(None);
            };
            let line = line_text(buf, self.offset, end);
            let at_start = !self.started;
            self.offset = end;
            if at_start {
                self.started = true;
                let cmd = line.split(' ').next().unwrap_or("");
                if matches!(cmd, "SUBMIT" | "PREPARE" | "DERIVE" | "APPEND") {
                    self.in_sections = true;
                    continue;
                }
                return Ok(Some(self.offset));
            }
            // Inside sections: END terminates; anything else must be a
            // section header declaring its payload length.
            if line == "END" {
                return Ok(Some(self.offset));
            }
            let header = line
                .split_once(' ')
                .and_then(|(label, count)| Some((label, count.parse::<usize>().ok()?)));
            let Some((label, count)) = header else {
                return Err(format!(
                    "unparseable section header {line:?}; closing connection"
                ));
            };
            if count > MAX_SECTION_LINES {
                return Err(format!(
                    "section {label} declares {count} lines (limit {MAX_SECTION_LINES}); \
                     closing connection"
                ));
            }
            self.lines_left = count;
        }
    }
}

/// Index just past the next `\n` at or after `from`, if present.
fn next_line_end(buf: &[u8], from: usize) -> Option<usize> {
    let rest = buf.get(from..)?;
    rest.iter().position(|&b| b == b'\n').map(|i| from + i + 1)
}

/// The text of `buf[start..end]` minus the line terminator (lossy:
/// only used for framing decisions; the dispatch re-reads the bytes
/// with the strict UTF-8 reader).
fn line_text(buf: &[u8], start: usize, end: usize) -> String {
    let mut bytes = buf.get(start..end).unwrap_or(&[]);
    while let Some((&last, rest)) = bytes.split_last() {
        if last == b'\n' || last == b'\r' {
            bytes = rest;
        } else {
            break;
        }
    }
    String::from_utf8_lossy(bytes).into_owned()
}

/// Which protocol a connection speaks, decided by its first byte.
enum Mode {
    /// Nothing received yet.
    Detect,
    /// Binary framed protocol.
    Framed,
    /// Legacy line protocol, with its request scanner.
    Legacy(LegacyScan),
}

/// A request admitted past parsing but not yet submitted to the
/// engine (it may wait in the park buffer for a queue slot or lane
/// quota).
struct Pending {
    request_id: u64,
    bulk: bool,
    work: PendingWork,
}

/// The submittable form of a parked request.
enum PendingWork {
    /// Inline tables, already parsed and aggregated.
    Inline(ReleaseRequest),
    /// A prepared-dataset submission.
    Prepared {
        handle: DatasetHandle,
        config: TopDownConfig,
        seed: u64,
    },
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    mode: Mode,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Bytes of `outbuf` already written to the socket.
    out_at: usize,
    last_activity: Instant,
    /// Close once `outbuf` drains (goodbye, fatal error, idle sweep).
    close_after_flush: bool,
    /// Whether the epoll interest set currently includes `EPOLLOUT`.
    wants_writable: bool,
    /// Whether the framed handshake (`HELLO`) has completed.
    hello_done: bool,
    /// A legacy `WAIT` is outstanding; parsing is paused so replies
    /// keep the line protocol's strict request/response order.
    legacy_waiting: bool,
    /// Consecutive idle-sweep passes that saw this connection past the
    /// read timeout with nothing in flight. Closing needs two strikes,
    /// so a client that is merely starved for CPU (not gone) gets a
    /// full sweep period to show life after the first observation.
    idle_strikes: u8,
    /// In-flight framed submits: request id → bulk lane?
    inflight: BTreeMap<u64, bool>,
    inflight_interactive: usize,
    inflight_bulk: usize,
    /// Requests parked for admission, oldest first.
    parked: VecDeque<Pending>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            mode: Mode::Detect,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_at: 0,
            last_activity: Instant::now(),
            close_after_flush: false,
            wants_writable: false,
            hello_done: false,
            legacy_waiting: false,
            idle_strikes: 0,
            inflight: BTreeMap::new(),
            inflight_interactive: 0,
            inflight_bulk: 0,
            parked: VecDeque::new(),
        }
    }
}

/// One decodable unit pulled off a connection's input buffer.
enum Step {
    /// Input incomplete; wait for more bytes.
    Idle,
    /// Parsing is paused (legacy `WAIT` outstanding).
    Blocked,
    /// One complete frame.
    Frame(Frame),
    /// One complete legacy request (raw bytes: command line + payload).
    Legacy(Vec<u8>),
    /// Unrecoverable frame-stream error (desynced; must close).
    FrameFatal(FrameError),
    /// Unrecoverable legacy framing error (must close).
    LegacyFatal(String),
}

/// Pulls the next complete request off `conn.inbuf`, consuming its
/// bytes. Also performs first-byte protocol detection.
fn next_step(conn: &mut Conn, wire: &WireStats, max_frame: u32) -> Step {
    if let Mode::Detect = conn.mode {
        match conn.inbuf.first() {
            None => return Step::Idle,
            Some(&b) if b == frame::MAGIC => conn.mode = Mode::Framed,
            Some(_) => {
                conn.mode = Mode::Legacy(LegacyScan::default());
                wire.legacy_connections.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    match &mut conn.mode {
        Mode::Detect => Step::Idle,
        Mode::Framed => match decode_frame(&conn.inbuf, max_frame) {
            Ok(None) => Step::Idle,
            Ok(Some((frame, used))) => {
                conn.inbuf.drain(..used);
                Step::Frame(frame)
            }
            Err(e) => Step::FrameFatal(e),
        },
        Mode::Legacy(scan) => {
            if conn.legacy_waiting {
                return Step::Blocked;
            }
            match scan.advance(&conn.inbuf) {
                Ok(None) => Step::Idle,
                Ok(Some(len)) => {
                    let raw: Vec<u8> = conn.inbuf.drain(..len).collect();
                    *scan = LegacyScan::default();
                    Step::Legacy(raw)
                }
                Err(msg) => Step::LegacyFatal(msg),
            }
        }
    }
}

/// Submits (or resubmits) admitted work to the engine.
fn try_submit(engine: &Engine, work: &PendingWork) -> Result<JobId, EngineError> {
    match work {
        PendingWork::Inline(request) => engine.submit(request.clone()),
        PendingWork::Prepared {
            handle,
            config,
            seed,
        } => engine.submit_prepared(*handle, config.clone(), *seed),
    }
}

fn clamp_u16(v: usize) -> u16 {
    u16::try_from(v).unwrap_or(u16::MAX)
}

/// The reactor: all connection state, owned by its one thread.
struct Reactor {
    engine: Arc<Engine>,
    cfg: ReactorConfig,
    epoll: Epoll,
    listener: TcpListener,
    wake_rx: UnixStream,
    stop: Arc<AtomicBool>,
    wire: Arc<WireStats>,
    completions: Arc<CompletionQueue>,
    conns: BTreeMap<u64, Conn>,
    next_token: u64,
    /// Connections with (possibly) new response bytes this loop pass.
    touched: Vec<u64>,
}

/// Binds `addr` and serves the engine through the epoll reactor until
/// the handle is shut down. [`crate::serve`] is this with default
/// configuration; use this entry point for the admission-control
/// knobs.
pub fn serve_reactor(
    engine: Arc<Engine>,
    addr: impl ToSocketAddrs,
    config: ReactorConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOK_LISTENER)?;
    epoll.add(wake_rx.as_raw_fd(), sys::EPOLLIN, TOK_WAKE)?;
    let stop = Arc::new(AtomicBool::new(false));
    let wire = Arc::new(WireStats::default());
    let completions = Arc::new(CompletionQueue {
        completions: RankedMutex::new(Rank::Wire, Vec::new()),
        wake: wake_tx.try_clone()?,
    });
    let reactor = Reactor {
        engine,
        cfg: config,
        epoll,
        listener,
        wake_rx,
        stop: Arc::clone(&stop),
        wire: Arc::clone(&wire),
        completions,
        conns: BTreeMap::new(),
        next_token: FIRST_CONN_TOKEN,
        touched: Vec::new(),
    };
    let thread = std::thread::Builder::new()
        .name("hcc-engine-reactor".to_string())
        .spawn(move || reactor.run())?;
    Ok(ServerHandle::for_reactor(addr, stop, wake_tx, thread, wire))
}

impl Reactor {
    fn run(mut self) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let mut last_sweep = Instant::now();
        while !self.stop.load(Ordering::Acquire) {
            let n = match self.epoll.wait(&mut events, 500) {
                Ok(n) => n,
                Err(_) => break,
            };
            for ev in events.iter().take(n) {
                let token = ev.data;
                let bits = ev.events;
                match token {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKE => self.drain_wake(),
                    token => {
                        if bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR)
                            != 0
                        {
                            self.handle_readable(token);
                        }
                        if bits & sys::EPOLLOUT != 0 {
                            self.touched.push(token);
                        }
                    }
                }
            }
            self.drain_completions();
            if last_sweep.elapsed() >= SWEEP_EVERY {
                self.sweep_idle();
                last_sweep = Instant::now();
            }
            self.flush_touched();
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.register_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                // Transient accept failures (EMFILE etc.): epoll is
                // level-triggered, so the pending connection re-fires
                // next round; no busy spin.
                Err(_) => return,
            }
        }
    }

    fn register_conn(&mut self, mut stream: TcpStream) {
        if self.conns.len() >= self.cfg.max_connections {
            self.wire.rejected.fetch_add(1, Ordering::Relaxed);
            let max = self.cfg.max_connections;
            // Same line the blocking server emits; framed clients see
            // the connection die during their handshake.
            let _ = writeln!(stream, "ERR server busy ({max} connections)");
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Responses are small and latency-sensitive; never Nagle them.
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        if self
            .epoll
            .add(stream.as_raw_fd(), sys::EPOLLIN | sys::EPOLLRDHUP, token)
            .is_err()
        {
            return;
        }
        self.wire.accepted.fetch_add(1, Ordering::Relaxed);
        self.wire.active.fetch_add(1, Ordering::Relaxed);
        self.conns.insert(token, Conn::new(stream));
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn handle_readable(&mut self, token: u64) {
        let mut buf = [0u8; 64 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.idle_strikes = 0;
                    conn.inbuf.extend_from_slice(buf.get(..n).unwrap_or(&[]));
                    self.wire.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                    // Process after every chunk so pipelined requests
                    // are consumed as they complete instead of
                    // accumulating in the input buffer.
                    self.process_conn(token);
                    self.touched.push(token);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    /// Decodes and dispatches every complete request currently
    /// buffered on `token`.
    fn process_conn(&mut self, token: u64) {
        loop {
            let max_frame = self.cfg.max_frame;
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.close_after_flush {
                return;
            }
            match next_step(conn, &self.wire, max_frame) {
                Step::Idle => {
                    // A request that can never complete within the
                    // buffer bound is a fatal framing problem (framed
                    // streams bound this earlier via the header's
                    // declared length).
                    let limit = match conn.mode {
                        Mode::Framed => HEADER_LEN.saturating_add(max_frame as usize),
                        _ => MAX_SECTION_BYTES,
                    };
                    if conn.inbuf.len() > limit {
                        self.push_bytes(
                            token,
                            b"ERR request exceeds the server's buffer; closing connection\n"
                                .to_vec(),
                        );
                        self.set_close(token);
                    }
                    return;
                }
                Step::Blocked => return,
                Step::Frame(frame) => self.handle_frame(token, frame),
                Step::Legacy(raw) => self.handle_legacy(token, raw),
                Step::FrameFatal(e) => {
                    let code = match e {
                        FrameError::BadVersion(_) => E_VERSION,
                        _ => E_PROTO,
                    };
                    self.push_frame(token, error_frame(0, code, &e.to_string()));
                    self.set_close(token);
                    return;
                }
                Step::LegacyFatal(msg) => {
                    self.push_bytes(token, format!("ERR {}\n", one_line(&msg)).into_bytes());
                    self.set_close(token);
                    return;
                }
            }
        }
    }

    /// Dispatches one framed request.
    fn handle_frame(&mut self, token: u64, f: Frame) {
        self.wire.frames_in.fetch_add(1, Ordering::Relaxed);
        let engine = Arc::clone(&self.engine);
        let rid = f.request_id;
        let hello_done = self
            .conns
            .get(&token)
            .map(|c| c.hello_done)
            .unwrap_or(false);
        if !hello_done {
            if f.ftype != T_HELLO {
                self.push_frame(
                    token,
                    error_frame(
                        rid,
                        E_PROTO,
                        "HELLO must be the first frame on a connection",
                    ),
                );
                self.set_close(token);
                return;
            }
            // Version negotiation happened at the header level: a
            // HELLO with an unsupported version never decodes, and the
            // client learns the server's version from the E_VERSION
            // error. Reaching here means the versions agree.
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.hello_done = true;
            }
            let limits = HelloLimits {
                max_frame: self.cfg.max_frame,
                interactive_inflight: clamp_u16(self.cfg.interactive_inflight),
                bulk_inflight: clamp_u16(self.cfg.bulk_inflight),
                park_capacity: clamp_u16(self.cfg.park_capacity),
            };
            self.push_frame(token, hello_ok_frame(rid, &limits));
            return;
        }
        match f.ftype {
            T_HELLO => self.push_frame(token, error_frame(rid, E_PROTO, "duplicate HELLO")),
            T_PING => self.push_frame(token, Frame::empty(T_PONG, rid)),
            T_STATS => {
                let line = format_stats(
                    engine.config().workers,
                    engine.queue_len(),
                    engine.prepared_len(),
                    &engine.stats(),
                );
                self.push_frame(token, ok_text_frame(rid, &line));
            }
            T_METRICS => {
                let mut text = engine.telemetry().to_prometheus();
                text.push_str(&self.wire.snapshot().to_prometheus());
                self.push_frame(token, ok_text_frame(rid, &text));
            }
            T_UNPREPARE => {
                let reply = match parse_unprepare(&f.payload)
                    .and_then(|text| text.parse::<DatasetHandle>())
                {
                    Err(e) => error_frame(rid, E_PROTO, &one_line(&e)),
                    Ok(handle) => match engine.unprepare(handle) {
                        Ok(refs) => ok_text_frame(rid, &format!("refs={refs}")),
                        Err(e) => error_frame(rid, E_REJECTED, &one_line(&e.to_string())),
                    },
                };
                self.push_frame(token, reply);
            }
            T_PREPARE => {
                let reply = match parse_prepare(&f.payload) {
                    Err(e) => error_frame(rid, E_PROTO, &one_line(&e)),
                    Ok([h, g, ent]) => match load_dataset(&h, &g, &ent) {
                        Err(e) => error_frame(rid, E_PROTO, &one_line(&e)),
                        Ok((hierarchy, data)) => match engine.prepare(hierarchy, data) {
                            Ok(handle) => ok_text_frame(rid, &handle.to_string()),
                            Err(e) => error_frame(rid, E_REJECTED, &one_line(&e.to_string())),
                        },
                    },
                };
                self.push_frame(token, reply);
            }
            T_DERIVE | T_APPEND => {
                let append = f.ftype == T_APPEND;
                let reply = match parse_derive(&f.payload) {
                    Err(e) => error_frame(rid, E_PROTO, &one_line(&e)),
                    Ok((parent, delta_csv)) => {
                        let derived = parent
                            .parse::<DatasetHandle>()
                            .and_then(|parent| {
                                DatasetDelta::from_csv(&delta_csv)
                                    .map(|delta| (parent, delta))
                                    .map_err(|e| e.to_string())
                            })
                            .and_then(|(parent, delta)| {
                                if append {
                                    engine.append(parent, &delta)
                                } else {
                                    engine.derive(parent, &delta)
                                }
                                .map_err(|e| e.to_string())
                            });
                        match derived {
                            Ok(handle) => ok_text_frame(rid, &handle.to_string()),
                            Err(e) => error_frame(rid, E_REJECTED, &one_line(&e)),
                        }
                    }
                };
                self.push_frame(token, reply);
            }
            T_SUBMIT => self.handle_submit(token, f),
            T_GOODBYE => {
                self.push_frame(token, ok_text_frame(rid, "BYE"));
                self.set_close(token);
            }
            other => self.push_frame(
                token,
                error_frame(rid, E_PROTO, &format!("unknown frame type 0x{other:02X}")),
            ),
        }
    }

    /// Parses a framed `SUBMIT` and runs it through admission control.
    fn handle_submit(&mut self, token: u64, f: Frame) {
        let rid = f.request_id;
        let bulk = f.flags & FLAG_BULK != 0;
        let (params, tables) = match parse_submit(&f.payload) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.push_frame(token, error_frame(rid, E_PROTO, &one_line(&e)));
                return;
            }
        };
        let config = match submit_config(&params) {
            Ok(config) => config,
            Err(e) => {
                self.push_frame(token, error_frame(rid, E_PROTO, &one_line(&e)));
                return;
            }
        };
        let work = if let Some(handle) = params.handle {
            if tables.is_some() {
                self.push_frame(
                    token,
                    error_frame(rid, E_PROTO, "SUBMIT with handle= takes no data sections"),
                );
                return;
            }
            PendingWork::Prepared {
                handle,
                config,
                seed: params.seed,
            }
        } else {
            let Some([h, g, ent]) = tables else {
                self.push_frame(
                    token,
                    error_frame(
                        rid,
                        E_PROTO,
                        "SUBMIT needs HIERARCHY, GROUPS, and ENTITIES tables (or a handle=)",
                    ),
                );
                return;
            };
            // Parsing/aggregation happens on the reactor thread: a
            // deliberate tradeoff keeping job identity (and the cache
            // key) computed exactly as the blocking path does. Heavy
            // repeat traffic should PREPARE once and submit by handle.
            match load_dataset(&h, &g, &ent) {
                Ok((hierarchy, data)) => {
                    PendingWork::Inline(ReleaseRequest::new(hierarchy, data, config, params.seed))
                }
                Err(e) => {
                    self.push_frame(token, error_frame(rid, E_PROTO, &one_line(&e)));
                    return;
                }
            }
        };
        self.admit(
            token,
            Pending {
                request_id: rid,
                bulk,
                work,
            },
        );
    }

    /// Admission control for one framed submit: lane quota → engine
    /// queue → park buffer → structured backpressure.
    fn admit(&mut self, token: u64, pending: Pending) {
        let engine = Arc::clone(&self.engine);
        let (at_quota, park_room, queued) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let at_quota = if pending.bulk {
                conn.inflight_bulk >= self.cfg.bulk_inflight
            } else {
                conn.inflight_interactive >= self.cfg.interactive_inflight
            };
            (
                at_quota,
                conn.parked.len() < self.cfg.park_capacity,
                u32::try_from(conn.parked.len()).unwrap_or(u32::MAX),
            )
        };
        if at_quota {
            if park_room {
                self.park(token, pending);
            } else {
                self.shed(token, &pending, B_QUOTA, queued);
            }
            return;
        }
        match try_submit(&engine, &pending.work) {
            Ok(id) => self.track(token, id, pending),
            Err(EngineError::QueueFull { .. }) => {
                if park_room {
                    self.park(token, pending);
                } else {
                    self.shed(token, &pending, B_QUEUE, queued);
                }
            }
            Err(e @ EngineError::BudgetExhausted { .. }) => self.push_frame(
                token,
                error_frame(pending.request_id, E_BUDGET, &one_line(&e.to_string())),
            ),
            Err(e) => self.push_frame(
                token,
                error_frame(pending.request_id, E_REJECTED, &one_line(&e.to_string())),
            ),
        }
    }

    fn park(&mut self, token: u64, pending: Pending) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.parked.push_back(pending);
            self.wire.parked.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sheds one request with a structured backpressure frame.
    fn shed(&mut self, token: u64, pending: &Pending, code: u8, queued: u32) {
        self.wire.backpressure.fetch_add(1, Ordering::Relaxed);
        let msg = match code {
            B_QUOTA => "per-connection lane quota and park buffer full",
            _ => "engine queue and park buffer full",
        };
        self.push_frame(
            token,
            busy_frame(pending.request_id, code, BUSY_RETRY_MS, queued, msg),
        );
    }

    /// Records a submitted job and subscribes its completion.
    fn track(&mut self, token: u64, id: JobId, pending: Pending) {
        let request_id = pending.request_id;
        let bulk = pending.bulk;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.inflight.insert(request_id, bulk);
            if bulk {
                conn.inflight_bulk += 1;
            } else {
                conn.inflight_interactive += 1;
            }
        }
        let queue = Arc::clone(&self.completions);
        let subscribed = self.engine.on_finish(id, move |job, status| {
            queue.push(Completion {
                token,
                request_id,
                job,
                kind: CompletionKind::Framed,
                status,
            });
        });
        if let Err(e) = subscribed {
            // Unreachable right after a successful submit; keep the
            // books straight anyway.
            self.untrack(token, request_id);
            self.push_frame(
                token,
                error_frame(request_id, E_REJECTED, &one_line(&e.to_string())),
            );
        }
    }

    /// Removes one in-flight entry, returning its lane.
    fn untrack(&mut self, token: u64, request_id: u64) -> Option<bool> {
        let conn = self.conns.get_mut(&token)?;
        let bulk = conn.inflight.remove(&request_id)?;
        if bulk {
            conn.inflight_bulk = conn.inflight_bulk.saturating_sub(1);
        } else {
            conn.inflight_interactive = conn.inflight_interactive.saturating_sub(1);
        }
        Some(bulk)
    }

    /// Delivers finished jobs to their connections, then re-admits
    /// parked requests into the freed capacity.
    fn drain_completions(&mut self) {
        let drained = self.completions.drain();
        if drained.is_empty() {
            return;
        }
        for c in drained {
            match c.kind {
                CompletionKind::Framed => {
                    if self.untrack(c.token, c.request_id).is_none() {
                        // Connection closed while the job ran; the
                        // result stays queryable via the engine.
                        continue;
                    }
                    let reply = match c.status {
                        JobStatus::Done { result, from_cache } => {
                            let rows = u32::try_from(result.rows).unwrap_or(u32::MAX);
                            result_frame(c.request_id, from_cache, rows, &result.csv)
                        }
                        JobStatus::Failed(msg) => {
                            error_frame(c.request_id, E_FAILED, &one_line(&msg))
                        }
                        // Watchers only fire on terminal states.
                        JobStatus::Queued | JobStatus::Running => continue,
                    };
                    self.push_frame(c.token, reply);
                }
                CompletionKind::LegacyWait => {
                    let Some(conn) = self.conns.get_mut(&c.token) else {
                        continue;
                    };
                    conn.legacy_waiting = false;
                    let reply = render_wait_reply(wait_outcome(c.job, c.status));
                    self.push_bytes(c.token, reply);
                    // Resume any requests pipelined behind the WAIT.
                    self.process_conn(c.token);
                }
            }
        }
        self.drain_parked();
    }

    /// Re-admits parked requests after completions free capacity.
    /// Interactive lanes drain before bulk lanes, round-robin across
    /// connections; a full engine queue stops the whole pass.
    fn drain_parked(&mut self) {
        let engine = Arc::clone(&self.engine);
        for bulk_pass in [false, true] {
            let tokens: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| c.parked.iter().any(|p| p.bulk == bulk_pass))
                .map(|(t, _)| *t)
                .collect();
            for token in tokens {
                loop {
                    let pending = {
                        let Some(conn) = self.conns.get_mut(&token) else {
                            break;
                        };
                        let headroom = if bulk_pass {
                            self.cfg.bulk_inflight.saturating_sub(conn.inflight_bulk)
                        } else {
                            self.cfg
                                .interactive_inflight
                                .saturating_sub(conn.inflight_interactive)
                        };
                        if headroom == 0 {
                            break;
                        }
                        let Some(pos) = conn.parked.iter().position(|p| p.bulk == bulk_pass) else {
                            break;
                        };
                        match conn.parked.remove(pos) {
                            Some(p) => p,
                            None => break,
                        }
                    };
                    self.wire.parked.fetch_sub(1, Ordering::Relaxed);
                    match try_submit(&engine, &pending.work) {
                        Ok(id) => {
                            self.track(token, id, pending);
                            self.touched.push(token);
                        }
                        Err(EngineError::QueueFull { .. }) => {
                            // Still no queue slot: put it back and stop
                            // the whole drain until the next completion.
                            self.wire.parked.fetch_add(1, Ordering::Relaxed);
                            if let Some(conn) = self.conns.get_mut(&token) {
                                conn.parked.push_front(pending);
                            }
                            return;
                        }
                        Err(e) => {
                            let code = match e {
                                EngineError::BudgetExhausted { .. } => E_BUDGET,
                                _ => E_REJECTED,
                            };
                            self.push_frame(
                                token,
                                error_frame(pending.request_id, code, &one_line(&e.to_string())),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Dispatches one complete legacy request through the shared
    /// line-protocol dispatch.
    fn handle_legacy(&mut self, token: u64, raw: Vec<u8>) {
        let engine = Arc::clone(&self.engine);
        let line_end = raw
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| i + 1)
            .unwrap_or(raw.len());
        let (line_bytes, rest) = raw.split_at(line_end);
        let mut line_vec = line_bytes.to_vec();
        while matches!(line_vec.last(), Some(&(b'\n' | b'\r'))) {
            line_vec.pop();
        }
        let Ok(line) = String::from_utf8(line_vec) else {
            // The strict reader of the blocking path treats non-UTF-8
            // as a transport error and drops the connection; match it.
            self.close_conn(token);
            return;
        };
        let mut payload = io::Cursor::new(rest);
        match dispatch_legacy(&engine, &line, &mut payload, Some(&self.wire)) {
            Ok(LegacyOutcome::Reply(bytes)) => self.push_bytes(token, bytes),
            Ok(LegacyOutcome::Close(bytes)) => {
                self.push_bytes(token, bytes);
                self.set_close(token);
            }
            Ok(LegacyOutcome::Wait(id)) => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.legacy_waiting = true;
                }
                let queue = Arc::clone(&self.completions);
                let subscribed = engine.on_finish(id, move |job, status| {
                    queue.push(Completion {
                        token,
                        request_id: 0,
                        job,
                        kind: CompletionKind::LegacyWait,
                        status,
                    });
                });
                if let Err(e) = subscribed {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.legacy_waiting = false;
                    }
                    self.push_bytes(token, render_wait_reply(Err(e.to_string())));
                }
            }
            // The scanner guaranteed a complete request, so an I/O
            // error here means the payload was internally inconsistent
            // beyond recovery; drop the connection like the blocking
            // path would.
            Err(_) => self.close_conn(token),
        }
    }

    /// Closes connections idle past the read timeout with nothing in
    /// flight (in-flight work exempts a connection: the timer guards
    /// slots against idle peers, not against slow jobs).
    fn sweep_idle(&mut self) {
        let Some(timeout) = self.cfg.read_timeout else {
            return;
        };
        let mut idle: Vec<(u64, bool)> = Vec::new();
        for (&token, conn) in self.conns.iter_mut() {
            let quiet = !conn.close_after_flush
                && conn.inflight.is_empty()
                && conn.parked.is_empty()
                && !conn.legacy_waiting
                && conn.last_activity.elapsed() >= timeout;
            if !quiet {
                conn.idle_strikes = 0;
                continue;
            }
            conn.idle_strikes = conn.idle_strikes.saturating_add(1);
            // Two strikes before closing: with sweeps every
            // `SWEEP_EVERY`, a peer observed idle once gets a full
            // sweep period of grace. A loaded host can starve a live
            // client past a short timeout between two of its requests;
            // only a peer quiet across consecutive sweeps is treated
            // as gone.
            if conn.idle_strikes >= 2 {
                idle.push((token, matches!(conn.mode, Mode::Framed)));
            }
        }
        for (token, framed) in idle {
            if framed {
                self.push_frame(
                    token,
                    error_frame(0, E_TIMEOUT, "idle timeout; closing connection"),
                );
            } else {
                self.push_bytes(token, b"ERR idle timeout; closing connection\n".to_vec());
            }
            self.set_close(token);
        }
    }

    /// Appends one response frame to a connection's output buffer.
    fn push_frame(&mut self, token: u64, frame: Frame) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        encode_frame(&mut conn.outbuf, &frame);
        self.wire.frames_out.fetch_add(1, Ordering::Relaxed);
        self.touched.push(token);
    }

    /// Appends raw legacy-protocol response bytes.
    fn push_bytes(&mut self, token: u64, bytes: Vec<u8>) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.outbuf.extend_from_slice(&bytes);
        self.touched.push(token);
    }

    fn set_close(&mut self, token: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.close_after_flush = true;
        }
    }

    /// Flushes every connection touched since the last pass.
    fn flush_touched(&mut self) {
        let mut tokens = std::mem::take(&mut self.touched);
        tokens.sort_unstable();
        tokens.dedup();
        for token in tokens {
            self.flush_conn(token);
        }
    }

    /// Writes as much buffered output as the socket accepts, managing
    /// `EPOLLOUT` interest and deferred closes.
    fn flush_conn(&mut self, token: u64) {
        enum After {
            Nothing,
            Close,
            Modify(i32, u32),
        }
        let mut wrote = 0u64;
        let after = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut failed = false;
            loop {
                let pending = match conn.outbuf.get(conn.out_at..) {
                    Some(p) if !p.is_empty() => p,
                    _ => break,
                };
                match conn.stream.write(pending) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_at += n;
                        wrote += n as u64;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                After::Close
            } else if conn.out_at >= conn.outbuf.len() {
                conn.outbuf.clear();
                conn.out_at = 0;
                if conn.close_after_flush {
                    After::Close
                } else if conn.wants_writable {
                    conn.wants_writable = false;
                    After::Modify(conn.stream.as_raw_fd(), sys::EPOLLIN | sys::EPOLLRDHUP)
                } else {
                    After::Nothing
                }
            } else {
                // Partial write: drop the sent prefix once it is large
                // enough to matter, enforce the slow-reader bound, and
                // subscribe for writability.
                if conn.out_at > (1 << 20) {
                    conn.outbuf.drain(..conn.out_at);
                    conn.out_at = 0;
                }
                if conn.outbuf.len().saturating_sub(conn.out_at) > OUTBUF_CAP {
                    After::Close
                } else if !conn.wants_writable {
                    conn.wants_writable = true;
                    After::Modify(
                        conn.stream.as_raw_fd(),
                        sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLOUT,
                    )
                } else {
                    After::Nothing
                }
            }
        };
        if wrote > 0 {
            self.wire.bytes_out.fetch_add(wrote, Ordering::Relaxed);
        }
        match after {
            After::Nothing => {}
            After::Close => self.close_conn(token),
            After::Modify(fd, events) => {
                if self.epoll.modify(fd, events, token).is_err() {
                    self.close_conn(token);
                }
            }
        }
    }

    /// Tears down one connection. In-flight jobs keep running; their
    /// completions find the connection gone and are dropped (results
    /// stay queryable through the engine).
    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.epoll.delete(conn.stream.as_raw_fd());
            self.wire.active.fetch_sub(1, Ordering::Relaxed);
            let parked = conn.parked.len() as u64;
            if parked > 0 {
                self.wire.parked.fetch_sub(parked, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_scan_one_line_commands() {
        let mut scan = LegacyScan::default();
        assert_eq!(scan.advance(b"PING"), Ok(None));
        assert_eq!(scan.advance(b"PING\nSTATS\n"), Ok(Some(5)));
    }

    #[test]
    fn legacy_scan_sectioned_request_incrementally() {
        let req = b"SUBMIT epsilon=1\nHIERARCHY 2\na\nb\nEND\n";
        let mut scan = LegacyScan::default();
        // Feed byte by byte: the scanner must never re-consume lines.
        for cut in 0..req.len() {
            assert_eq!(scan.advance(&req[..cut]), Ok(None), "cut at {cut}");
        }
        assert_eq!(scan.advance(req), Ok(Some(req.len())));
    }

    #[test]
    fn legacy_scan_rejects_bad_section_headers() {
        let mut scan = LegacyScan::default();
        let err = scan
            .advance(b"SUBMIT epsilon=1\nHIERARCHY lots\n")
            .unwrap_err();
        assert!(err.contains("unparseable section header"), "{err}");

        let mut scan = LegacyScan::default();
        let err = scan.advance(b"PREPARE\nGROUPS 99999999999\n").unwrap_err();
        assert!(err.contains("declares"), "{err}");
    }

    #[test]
    fn legacy_scan_handles_pipelined_requests() {
        let buf = b"PING\nSTATS\n";
        let mut scan = LegacyScan::default();
        let first = scan.advance(buf).unwrap().unwrap();
        assert_eq!(first, 5);
        // Caller drains the consumed prefix and resets the scanner.
        let mut scan = LegacyScan::default();
        assert_eq!(scan.advance(&buf[first..]), Ok(Some(6)));
    }

    #[test]
    fn clamp_u16_saturates() {
        assert_eq!(clamp_u16(7), 7);
        assert_eq!(clamp_u16(1 << 20), u16::MAX);
    }
}
