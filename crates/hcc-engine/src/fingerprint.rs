//! Request fingerprinting for the result cache and the prepared-
//! dataset registry.
//!
//! Two [`ReleaseRequest`](crate::ReleaseRequest)s produce the same
//! release exactly when their hierarchy, sensitive data, release
//! configuration, and master seed agree (the release is a pure
//! function of those four — thread counts do not enter). The cache
//! therefore keys on a 128-bit FNV-1a digest of that tuple.
//!
//! The digest is computed in two stages so that prepared datasets can
//! amortize it: [`dataset_fingerprint`] digests the (large) hierarchy
//! and per-node histograms once, and [`request_fingerprint`] folds
//! that digest together with the (tiny) config and seed. An ε-sweep
//! over a prepared handle therefore pays the expensive data walk
//! exactly once; inline submissions compose the same two stages, so
//! the two paths share cache entries for identical requests.
//!
//! Worker-thread counts and parallelism settings are deliberately
//! *excluded*: they never change the released bytes.

use hcc_consistency::{HierarchicalCounts, MergeStrategy, TopDownConfig};
use hcc_hierarchy::Hierarchy;

/// 128-bit FNV-1a, wide enough that accidental collisions between
/// distinct requests are not a practical concern for an in-memory
/// cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Separates variable-length fields so `("ab","c")` and
    /// `("a","bc")` digest differently.
    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }
}

/// Digests the *data* half of a request — hierarchy shape and names
/// plus every node histogram. This is the expensive walk (linear in
/// hierarchy size × histogram width); prepared-dataset handles are
/// exactly this digest, computed once at `PREPARE` time.
pub fn dataset_fingerprint(hierarchy: &Hierarchy, data: &HierarchicalCounts) -> Fingerprint {
    let mut h = Fnv128::new();
    // Hierarchy: node count, then per node its name and parent index.
    h.write_u64(hierarchy.num_nodes() as u64);
    for node in hierarchy.iter() {
        h.write_str(hierarchy.name(node));
        h.write_u64(match hierarchy.parent(node) {
            Some(p) => p.index() as u64,
            None => u64::MAX,
        });
    }
    // Data: each node's dense histogram (length-prefixed).
    for node in hierarchy.iter() {
        let cells = data.node(node).as_slice();
        h.write_u64(cells.len() as u64);
        for &c in cells {
            h.write_u64(c);
        }
    }
    Fingerprint(h.0)
}

/// Digests the *request* half on top of a dataset digest: the
/// output-relevant parts of the config (budget, merge strategy, and
/// the method at each of the hierarchy's `levels`) plus the master
/// seed. Cheap — O(levels) — so submissions by prepared handle pay
/// nearly nothing for their cache key.
pub fn request_fingerprint(
    dataset: Fingerprint,
    levels: usize,
    cfg: &TopDownConfig,
    seed: u64,
) -> Fingerprint {
    let mut h = Fnv128::new();
    h.write(&dataset.0.to_le_bytes());
    h.write_u64(cfg.epsilon().to_bits());
    h.write_u64(match cfg.merge() {
        MergeStrategy::WeightedAverage => 0,
        MergeStrategy::PlainAverage => 1,
    });
    h.write_u64(levels as u64);
    for l in 0..levels {
        use hcc_consistency::LevelMethod::*;
        let (tag, bound) = match cfg.method_for_level(l) {
            Cumulative { bound } => (0u64, bound),
            CumulativeL2 { bound } => (1, bound),
            Unattributed => (2, 0),
            Naive { bound } => (3, bound),
            Adaptive { bound } => (4, bound),
        };
        h.write_u64(tag);
        h.write_u64(bound);
    }
    h.write_u64(seed);
    Fingerprint(h.0)
}

/// Digests a full release request: hierarchy shape and names, every
/// node histogram, the output-relevant parts of the config, and the
/// master seed. Composes [`dataset_fingerprint`] and
/// [`request_fingerprint`], so an inline submission and a prepared-
/// handle submission of the same request share one cache key.
pub fn fingerprint(
    hierarchy: &Hierarchy,
    data: &HierarchicalCounts,
    cfg: &TopDownConfig,
    seed: u64,
) -> Fingerprint {
    request_fingerprint(
        dataset_fingerprint(hierarchy, data),
        hierarchy.num_levels(),
        cfg,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_consistency::LevelMethod;
    use hcc_core::CountOfCounts;
    use hcc_hierarchy::HierarchyBuilder;

    fn case(names: [&str; 2], sizes: [u64; 3]) -> (Hierarchy, HierarchicalCounts) {
        let mut b = HierarchyBuilder::new("root");
        let a = b.add_child(Hierarchy::ROOT, names[0]);
        let c = b.add_child(Hierarchy::ROOT, names[1]);
        let h = b.build();
        let d = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (a, CountOfCounts::from_group_sizes(sizes)),
                (c, CountOfCounts::from_group_sizes([2, 2])),
            ],
        )
        .unwrap();
        (h, d)
    }

    #[test]
    fn identical_requests_collide_and_any_field_change_separates() {
        let (h, d) = case(["a", "b"], [1, 2, 3]);
        let cfg = TopDownConfig::new(1.0);
        let base = fingerprint(&h, &d, &cfg, 7);
        assert_eq!(base, fingerprint(&h, &d, &cfg, 7));

        // Seed.
        assert_ne!(base, fingerprint(&h, &d, &cfg, 8));
        // Budget.
        assert_ne!(base, fingerprint(&h, &d, &TopDownConfig::new(2.0), 7));
        // Method.
        let hg = TopDownConfig::new(1.0).with_method(LevelMethod::Unattributed);
        assert_ne!(base, fingerprint(&h, &d, &hg, 7));
        // Merge strategy.
        let plain = TopDownConfig::new(1.0).with_merge(MergeStrategy::PlainAverage);
        assert_ne!(base, fingerprint(&h, &d, &plain, 7));
        // Data.
        let (h2, d2) = case(["a", "b"], [1, 2, 4]);
        assert_ne!(base, fingerprint(&h2, &d2, &cfg, 7));
        // Region names.
        let (h3, d3) = case(["a", "x"], [1, 2, 3]);
        assert_ne!(base, fingerprint(&h3, &d3, &cfg, 7));
    }

    #[test]
    fn prepared_and_inline_keys_coincide() {
        // The two-stage digest must reproduce the one-shot digest:
        // that is what lets submissions by prepared handle share cache
        // entries with inline submissions of the same data.
        let (h, d) = case(["a", "b"], [1, 2, 3]);
        let cfg = TopDownConfig::new(1.0);
        let ds = dataset_fingerprint(&h, &d);
        assert_eq!(
            request_fingerprint(ds, h.num_levels(), &cfg, 7),
            fingerprint(&h, &d, &cfg, 7)
        );
        // The dataset digest ignores config and seed entirely.
        assert_eq!(ds, dataset_fingerprint(&h, &d));
        assert_ne!(
            request_fingerprint(ds, h.num_levels(), &cfg, 7),
            request_fingerprint(ds, h.num_levels(), &cfg, 8)
        );
    }

    #[test]
    fn parallelism_does_not_enter_the_fingerprint() {
        let (h, d) = case(["a", "b"], [1, 2, 3]);
        let one = TopDownConfig::new(1.0).with_parallelism(1);
        let eight = TopDownConfig::new(1.0).with_parallelism(8);
        assert_eq!(fingerprint(&h, &d, &one, 7), fingerprint(&h, &d, &eight, 7));
    }
}
