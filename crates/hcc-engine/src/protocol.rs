//! The line-delimited wire protocol spoken by the server
//! ([`crate::serve`]) and the [`Client`](crate::Client).
//!
//! Every request starts with one ASCII command line; bulk payloads
//! (CSV tables) follow as line-count-prefixed sections so no escaping
//! is ever needed:
//!
//! ```text
//! PING                      → PONG
//! STATS                     → one STATS key=value line; the exact
//!                             format is pinned by the doctest of
//!                             [`format_stats`], the formatter the
//!                             server itself calls — see there for a
//!                             field-by-field example
//! METRICS                   → METRICS <n>, then n lines of
//!                             Prometheus text exposition, then END
//! TRACE                     → TRACE <n>, then n span lines
//!                             (worker,kind,job,task,start_ns,end_ns —
//!                             the scheduler's span recorder, drained),
//!                             then END
//! SUBMIT epsilon=1.0 method=hc bound=100000 seed=42
//! HIERARCHY <n>             (then n raw CSV lines)
//! GROUPS <n>                (then n raw CSV lines)
//! ENTITIES <n>              (then n raw CSV lines)
//! END                       → OK job-0 | ERR <message>
//! PREPARE                   (same three sections + END)
//!                           → OK ds-<32 hex> | ERR <message>
//! SUBMIT epsilon=1.0 handle=ds-<32 hex> seed=42
//! END                       → OK job-1 | ERR <message>
//!                             (no sections: the dataset was loaded
//!                              and aggregated once at PREPARE time)
//! UNPREPARE ds-<32 hex>     → OK refs=<still held> | ERR <message>
//! DERIVE ds-<32 hex>        (then one DELTA section + END)
//! DELTA <n>                 (n delta CSV lines:
//!                            op,region,size,new_size,count)
//! END                       → OK ds-<32 hex of derived> | ERR <message>
//! APPEND ds-<32 hex>        like DERIVE, but also drops one
//!                           reference on the parent handle — the
//!                           rolling-update flow
//! STATUS job-0              → QUEUED | RUNNING | DONE rows=17 cached=0
//!                             | FAILED <message> | ERR <message>
//! WAIT job-0                → (blocks) RELEASE <n> cached=0|1,
//!                             then n CSV lines, then END
//! FETCH job-0               → like WAIT but ERR if not finished
//! QUIT                      → BYE, connection closes
//! ```
//!
//! Responses are single lines except `RELEASE`, which frames the CSV
//! the same way submissions do. Error messages are flattened to one
//! line.
//!
//! `PREPARE` registers the dataset under a content-addressed handle
//! (see [`crate::registry`]); an ε-sweep then submits by handle on
//! one connection and the server never re-parses the tables.
//!
//! `DERIVE` moves a prepared dataset forward by a
//! [`hcc_data::DatasetDelta`] without re-shipping or re-parsing any
//! table: the server applies the delta to the in-memory parent in
//! O(delta · depth) and registers the result under its own
//! content-addressed handle (equal, by fingerprint chaining, to what
//! a cold `PREPARE` of the post-delta tables would return). `APPEND`
//! is `DERIVE` plus dropping one reference on the parent.
//!
//! `METRICS` serves the engine's telemetry snapshot
//! ([`crate::telemetry`]) as Prometheus-style text exposition —
//! counters, gauges, latency histograms, and derived p50/p95/p99
//! quantiles. `TRACE` drains the span recorder (enabled with
//! `hcc serve --trace N`); each line parses with
//! [`SpanEvent::from_wire_line`](crate::telemetry::SpanEvent) and the
//! set renders to Chrome-trace JSON with
//! [`chrome_trace_json`](crate::telemetry::chrome_trace_json).

use std::io::{self, BufRead, Write};

use hcc_consistency::LevelMethod;

use crate::engine::EngineStats;
use crate::registry::DatasetHandle;

/// Stable machine-readable marker prefixing *retryable* rejections
/// (the bounded job queue is at capacity): the server emits
/// `ERR busy: <prose>` and clients key their backpressure handling on
/// this token, never on the human-readable prose after it.
pub const BUSY: &str = "busy:";

/// Renders the one-line `STATS` reply — the single source of truth
/// for its format, called by the server and pinned (field by field)
/// by this doctest, so the module documentation above can never drift
/// from what the wire actually carries again:
///
/// ```
/// use hcc_engine::protocol::format_stats;
/// use hcc_engine::EngineStats;
///
/// let stats = EngineStats {
///     submitted: 3,
///     completed: 2,
///     failed: 1,
///     cache_hits: 1,
///     cache_misses: 2,
///     prepared: 1,
///     derived: 1,
///     tasks_executed: 8,
///     tasks_stolen: 4,
/// };
/// assert_eq!(
///     format_stats(2, 0, 1, &stats),
///     "STATS workers=2 queued=0 submitted=3 completed=2 failed=1 \
///      cache_hits=1 cache_misses=2 prepared=1 derived=1 \
///      prepared_datasets=1 tasks_executed=8 tasks_stolen=4"
/// );
/// ```
pub fn format_stats(
    workers: usize,
    queued: usize,
    prepared_datasets: usize,
    stats: &EngineStats,
) -> String {
    format!(
        "STATS workers={workers} queued={queued} submitted={} completed={} failed={} \
         cache_hits={} cache_misses={} prepared={} derived={} \
         prepared_datasets={prepared_datasets} tasks_executed={} tasks_stolen={}",
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.cache_hits,
        stats.cache_misses,
        stats.prepared,
        stats.derived,
        stats.tasks_executed,
        stats.tasks_stolen
    )
}

/// Maps a wire method name + bound to the estimator selection — the
/// single source of truth for which method names the protocol admits.
pub fn level_method(method: &str, bound: u64) -> Result<LevelMethod, String> {
    match method {
        "hc" => Ok(LevelMethod::Cumulative { bound }),
        "hc-l2" => Ok(LevelMethod::CumulativeL2 { bound }),
        "hg" => Ok(LevelMethod::Unattributed),
        "naive" => Ok(LevelMethod::Naive { bound }),
        "adaptive" => Ok(LevelMethod::Adaptive { bound }),
        other => Err(format!(
            "unknown method {other:?} (hc|hc-l2|hg|naive|adaptive)"
        )),
    }
}

/// The release parameters carried on a `SUBMIT` line.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitParams {
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// Estimator selection: `hc`, `hc-l2`, `hg`, `naive`, or
    /// `adaptive`.
    pub method: String,
    /// Public group-size bound `K`.
    pub bound: u64,
    /// Master RNG seed.
    pub seed: u64,
    /// Prepared-dataset handle. When set, the submission carries no
    /// CSV sections — the server resolves the handle against its
    /// registry instead of re-parsing tables.
    pub handle: Option<DatasetHandle>,
}

impl Default for SubmitParams {
    fn default() -> Self {
        Self {
            epsilon: 1.0,
            method: "hc".to_string(),
            bound: 100_000,
            seed: 42,
            handle: None,
        }
    }
}

impl SubmitParams {
    /// Renders the `key=value` tail of a `SUBMIT` line.
    pub fn encode(&self) -> String {
        let mut line = format!(
            "epsilon={} method={} bound={} seed={}",
            self.epsilon, self.method, self.bound, self.seed
        );
        if let Some(handle) = self.handle {
            line.push_str(&format!(" handle={handle}"));
        }
        line
    }

    /// Parses the `key=value` tokens of a `SUBMIT` line; `epsilon` is
    /// required, everything else defaults.
    pub fn decode(tail: &str) -> Result<Self, String> {
        let mut params = Self::default();
        let mut saw_epsilon = false;
        for token in tail.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {token:?}"))?;
            match key {
                "epsilon" => {
                    params.epsilon = value
                        .parse()
                        .map_err(|_| format!("epsilon: cannot parse {value:?}"))?;
                    saw_epsilon = true;
                }
                "method" => {
                    level_method(value, 0)?;
                    params.method = value.to_string();
                }
                "bound" => {
                    params.bound = value
                        .parse()
                        .map_err(|_| format!("bound: cannot parse {value:?}"))?;
                }
                "seed" => {
                    params.seed = value
                        .parse()
                        .map_err(|_| format!("seed: cannot parse {value:?}"))?;
                }
                "handle" => {
                    params.handle = Some(value.parse()?);
                }
                other => return Err(format!("unknown parameter {other:?}")),
            }
        }
        if !saw_epsilon {
            return Err("missing required parameter epsilon".to_string());
        }
        if !(params.epsilon.is_finite() && params.epsilon > 0.0) {
            // The noise mechanisms assert this; reject at the wire so a
            // bad request cannot panic an engine worker.
            return Err(format!(
                "epsilon must be positive and finite, got {}",
                params.epsilon
            ));
        }
        Ok(params)
    }
}

/// Reads one `\n`-terminated line, trimming the terminator; `None` at
/// EOF.
pub fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Writes a text block as a `<label> <n>` header plus `n` raw lines.
pub fn write_section(w: &mut impl Write, label: &str, text: &str) -> io::Result<()> {
    let lines: Vec<&str> = text.lines().collect();
    writeln!(w, "{label} {}", lines.len())?;
    for l in &lines {
        writeln!(w, "{l}")?;
    }
    Ok(())
}

/// Reads the `n` raw lines of a section announced as `<label> n`,
/// reassembling the original text (`\n`-joined, trailing newline).
///
/// `max_bytes` caps the reassembled size: declared lengths come from
/// the peer, so a server must bound how much one section may ask it
/// to buffer. Exceeding the cap is an [`io::ErrorKind::InvalidData`]
/// error — the remaining payload is unread, so the caller should drop
/// the connection.
pub fn read_section_body(
    reader: &mut impl BufRead,
    lines: usize,
    max_bytes: usize,
) -> io::Result<String> {
    let mut text = String::new();
    for _ in 0..lines {
        match read_line(reader)? {
            Some(l) => {
                if text.len() + l.len() + 1 > max_bytes {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("section exceeds the {max_bytes}-byte limit"),
                    ));
                }
                text.push_str(&l);
                text.push('\n');
            }
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-section",
                ))
            }
        }
    }
    Ok(text)
}

/// Flattens a multi-line error message onto one protocol line.
pub fn one_line(msg: &str) -> String {
    msg.replace(['\n', '\r'], "; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn params_round_trip() {
        let p = SubmitParams {
            epsilon: 0.5,
            method: "adaptive".into(),
            bound: 1234,
            seed: 9,
            handle: None,
        };
        assert_eq!(SubmitParams::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn handle_param_round_trips_and_validates() {
        let p = SubmitParams {
            handle: Some("ds-000000000000000000000000deadbeef".parse().unwrap()),
            ..SubmitParams::default()
        };
        let line = p.encode();
        assert!(line.contains("handle=ds-"), "{line}");
        assert_eq!(SubmitParams::decode(&line).unwrap(), p);
        assert!(SubmitParams::decode("epsilon=1").unwrap().handle.is_none());
        let err = SubmitParams::decode("epsilon=1 handle=nope").unwrap_err();
        assert!(err.contains("malformed dataset handle"), "{err}");
    }

    #[test]
    fn params_defaults_and_errors() {
        let p = SubmitParams::decode("epsilon=2").unwrap();
        assert_eq!(p.method, "hc");
        assert_eq!(p.bound, 100_000);
        assert_eq!(p.seed, 42);
        assert!(SubmitParams::decode("").unwrap_err().contains("epsilon"));
        assert!(SubmitParams::decode("epsilon=1 method=bogus").is_err());
        assert!(SubmitParams::decode("epsilon=1 what=no").is_err());
        assert!(SubmitParams::decode("epsilon=abc").is_err());
        // Degenerate budgets are rejected at the wire, not asserted in
        // a worker thread.
        for eps in ["0", "-1", "NaN", "inf"] {
            let err = SubmitParams::decode(&format!("epsilon={eps}")).unwrap_err();
            assert!(err.contains("positive and finite"), "{eps}: {err}");
        }
    }

    #[test]
    fn sections_round_trip() {
        let text = "a,b\nc,d\n";
        let mut buf = Vec::new();
        write_section(&mut buf, "GROUPS", text).unwrap();
        let mut r = BufReader::new(&buf[..]);
        let header = read_line(&mut r).unwrap().unwrap();
        assert_eq!(header, "GROUPS 2");
        assert_eq!(read_section_body(&mut r, 2, 1 << 20).unwrap(), text);
    }

    #[test]
    fn oversized_section_is_rejected() {
        let mut buf = Vec::new();
        write_section(&mut buf, "GROUPS", "aaaa,bbbb\ncccc,dddd\n").unwrap();
        let mut r = BufReader::new(&buf[..]);
        let _header = read_line(&mut r).unwrap().unwrap();
        let err = read_section_body(&mut r, 2, 12).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_section_is_an_error() {
        let mut r = BufReader::new(&b"only,one\n"[..]);
        assert!(read_section_body(&mut r, 2, 1 << 20).is_err());
    }
}
