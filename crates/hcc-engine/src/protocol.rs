//! The wire protocols spoken by the server.
//!
//! Two protocols share the listening port: the binary framed protocol
//! ([`frame`], spoken by [`MuxClient`](crate::MuxClient) — length-
//! prefixed frames with request ids, pipelining, and out-of-order
//! responses; see `docs/protocol.md`), and the legacy line protocol
//! below (spoken by [`Client`](crate::Client)). The reactor server
//! ([`crate::serve`]) auto-detects which one a connection speaks from
//! its first byte: framed traffic starts with the non-ASCII magic byte
//! [`frame::MAGIC`], legacy commands with an uppercase ASCII letter.
//!
//! Every request starts with one ASCII command line; bulk payloads
//! (CSV tables) follow as line-count-prefixed sections so no escaping
//! is ever needed:
//!
//! ```text
//! PING                      → PONG
//! STATS                     → one STATS key=value line; the exact
//!                             format is pinned by the doctest of
//!                             [`format_stats`], the formatter the
//!                             server itself calls — see there for a
//!                             field-by-field example
//! METRICS                   → METRICS <n>, then n lines of
//!                             Prometheus text exposition, then END
//! TRACE                     → TRACE <n>, then n span lines
//!                             (worker,kind,job,task,start_ns,end_ns —
//!                             the scheduler's span recorder, drained),
//!                             then END
//! SUBMIT epsilon=1.0 method=hc bound=100000 seed=42
//! HIERARCHY <n>             (then n raw CSV lines)
//! GROUPS <n>                (then n raw CSV lines)
//! ENTITIES <n>              (then n raw CSV lines)
//! END                       → OK job-0 | ERR <message>
//! PREPARE                   (same three sections + END)
//!                           → OK ds-<32 hex> | ERR <message>
//! SUBMIT epsilon=1.0 handle=ds-<32 hex> seed=42
//! END                       → OK job-1 | ERR <message>
//!                             (no sections: the dataset was loaded
//!                              and aggregated once at PREPARE time)
//! UNPREPARE ds-<32 hex>     → OK refs=<still held> | ERR <message>
//! DERIVE ds-<32 hex>        (then one DELTA section + END)
//! DELTA <n>                 (n delta CSV lines:
//!                            op,region,size,new_size,count)
//! END                       → OK ds-<32 hex of derived> | ERR <message>
//! APPEND ds-<32 hex>        like DERIVE, but also drops one
//!                           reference on the parent handle — the
//!                           rolling-update flow
//! STATUS job-0              → QUEUED | RUNNING | DONE rows=17 cached=0
//!                             | FAILED <message> | ERR <message>
//! WAIT job-0                → (blocks) RELEASE <n> cached=0|1,
//!                             then n CSV lines, then END
//! FETCH job-0               → like WAIT but ERR if not finished
//! QUIT                      → BYE, connection closes
//! ```
//!
//! Responses are single lines except `RELEASE`, which frames the CSV
//! the same way submissions do. Error messages are flattened to one
//! line.
//!
//! `PREPARE` registers the dataset under a content-addressed handle
//! (see [`crate::registry`]); an ε-sweep then submits by handle on
//! one connection and the server never re-parses the tables.
//!
//! `DERIVE` moves a prepared dataset forward by a
//! [`hcc_data::DatasetDelta`] without re-shipping or re-parsing any
//! table: the server applies the delta to the in-memory parent in
//! O(delta · depth) and registers the result under its own
//! content-addressed handle (equal, by fingerprint chaining, to what
//! a cold `PREPARE` of the post-delta tables would return). `APPEND`
//! is `DERIVE` plus dropping one reference on the parent.
//!
//! `METRICS` serves the engine's telemetry snapshot
//! ([`crate::telemetry`]) as Prometheus-style text exposition —
//! counters, gauges, latency histograms, and derived p50/p95/p99
//! quantiles. `TRACE` drains the span recorder (enabled with
//! `hcc serve --trace N`); each line parses with
//! [`SpanEvent::from_wire_line`](crate::telemetry::SpanEvent) and the
//! set renders to Chrome-trace JSON with
//! [`chrome_trace_json`](crate::telemetry::chrome_trace_json).

use std::io::{self, BufRead, Write};

use hcc_consistency::LevelMethod;

use crate::engine::EngineStats;
use crate::registry::DatasetHandle;

/// Stable machine-readable marker prefixing *retryable* rejections
/// (the bounded job queue is at capacity): the server emits
/// `ERR busy: <prose>` and clients key their backpressure handling on
/// this token, never on the human-readable prose after it.
pub const BUSY: &str = "busy:";

/// Stable machine-readable marker prefixing *privacy-budget*
/// rejections: the server emits `ERR budget: <prose>` when admitting
/// the submission would push its dataset's cumulative ε past the
/// configured cap. Unlike [`BUSY`], this is **not** retryable with
/// the same request — the budget does not come back.
pub const BUDGET: &str = "budget:";

/// Renders the one-line `STATS` reply — the single source of truth
/// for its format, called by the server and pinned (field by field)
/// by this doctest, so the module documentation above can never drift
/// from what the wire actually carries again:
///
/// ```
/// use hcc_engine::protocol::format_stats;
/// use hcc_engine::EngineStats;
///
/// let stats = EngineStats {
///     submitted: 3,
///     completed: 2,
///     failed: 1,
///     cache_hits: 1,
///     cache_misses: 2,
///     prepared: 1,
///     derived: 1,
///     tasks_executed: 8,
///     tasks_stolen: 4,
/// };
/// assert_eq!(
///     format_stats(2, 0, 1, &stats),
///     "STATS workers=2 queued=0 submitted=3 completed=2 failed=1 \
///      cache_hits=1 cache_misses=2 prepared=1 derived=1 \
///      prepared_datasets=1 tasks_executed=8 tasks_stolen=4"
/// );
/// ```
pub fn format_stats(
    workers: usize,
    queued: usize,
    prepared_datasets: usize,
    stats: &EngineStats,
) -> String {
    format!(
        "STATS workers={workers} queued={queued} submitted={} completed={} failed={} \
         cache_hits={} cache_misses={} prepared={} derived={} \
         prepared_datasets={prepared_datasets} tasks_executed={} tasks_stolen={}",
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.cache_hits,
        stats.cache_misses,
        stats.prepared,
        stats.derived,
        stats.tasks_executed,
        stats.tasks_stolen
    )
}

/// Maps a wire method name + bound to the estimator selection — the
/// single source of truth for which method names the protocol admits.
pub fn level_method(method: &str, bound: u64) -> Result<LevelMethod, String> {
    match method {
        "hc" => Ok(LevelMethod::Cumulative { bound }),
        "hc-l2" => Ok(LevelMethod::CumulativeL2 { bound }),
        "hg" => Ok(LevelMethod::Unattributed),
        "naive" => Ok(LevelMethod::Naive { bound }),
        "adaptive" => Ok(LevelMethod::Adaptive { bound }),
        other => Err(format!(
            "unknown method {other:?} (hc|hc-l2|hg|naive|adaptive)"
        )),
    }
}

/// The release parameters carried on a `SUBMIT` line.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitParams {
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// Estimator selection: `hc`, `hc-l2`, `hg`, `naive`, or
    /// `adaptive`.
    pub method: String,
    /// Public group-size bound `K`.
    pub bound: u64,
    /// Master RNG seed.
    pub seed: u64,
    /// Prepared-dataset handle. When set, the submission carries no
    /// CSV sections — the server resolves the handle against its
    /// registry instead of re-parsing tables.
    pub handle: Option<DatasetHandle>,
}

impl Default for SubmitParams {
    fn default() -> Self {
        Self {
            epsilon: 1.0,
            method: "hc".to_string(),
            bound: 100_000,
            seed: 42,
            handle: None,
        }
    }
}

impl SubmitParams {
    /// Renders the `key=value` tail of a `SUBMIT` line.
    pub fn encode(&self) -> String {
        let mut line = format!(
            "epsilon={} method={} bound={} seed={}",
            self.epsilon, self.method, self.bound, self.seed
        );
        if let Some(handle) = self.handle {
            line.push_str(&format!(" handle={handle}"));
        }
        line
    }

    /// Parses the `key=value` tokens of a `SUBMIT` line; `epsilon` is
    /// required, everything else defaults.
    pub fn decode(tail: &str) -> Result<Self, String> {
        let mut params = Self::default();
        let mut saw_epsilon = false;
        for token in tail.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {token:?}"))?;
            match key {
                "epsilon" => {
                    params.epsilon = value
                        .parse()
                        .map_err(|_| format!("epsilon: cannot parse {value:?}"))?;
                    saw_epsilon = true;
                }
                "method" => {
                    level_method(value, 0)?;
                    params.method = value.to_string();
                }
                "bound" => {
                    params.bound = value
                        .parse()
                        .map_err(|_| format!("bound: cannot parse {value:?}"))?;
                }
                "seed" => {
                    params.seed = value
                        .parse()
                        .map_err(|_| format!("seed: cannot parse {value:?}"))?;
                }
                "handle" => {
                    params.handle = Some(value.parse()?);
                }
                other => return Err(format!("unknown parameter {other:?}")),
            }
        }
        if !saw_epsilon {
            return Err("missing required parameter epsilon".to_string());
        }
        if !(params.epsilon.is_finite() && params.epsilon > 0.0) {
            // The noise mechanisms assert this; reject at the wire so a
            // bad request cannot panic an engine worker.
            return Err(format!(
                "epsilon must be positive and finite, got {}",
                params.epsilon
            ));
        }
        Ok(params)
    }
}

/// Reads one `\n`-terminated line, trimming the terminator; `None` at
/// EOF.
pub fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Writes a text block as a `<label> <n>` header plus `n` raw lines.
pub fn write_section(w: &mut impl Write, label: &str, text: &str) -> io::Result<()> {
    let lines: Vec<&str> = text.lines().collect();
    writeln!(w, "{label} {}", lines.len())?;
    for l in &lines {
        writeln!(w, "{l}")?;
    }
    Ok(())
}

/// Reads the `n` raw lines of a section announced as `<label> n`,
/// reassembling the original text (`\n`-joined, trailing newline).
///
/// `max_bytes` caps the reassembled size: declared lengths come from
/// the peer, so a server must bound how much one section may ask it
/// to buffer. Exceeding the cap is an [`io::ErrorKind::InvalidData`]
/// error — the remaining payload is unread, so the caller should drop
/// the connection.
pub fn read_section_body(
    reader: &mut impl BufRead,
    lines: usize,
    max_bytes: usize,
) -> io::Result<String> {
    let mut text = String::new();
    for _ in 0..lines {
        match read_line(reader)? {
            Some(l) => {
                if text.len() + l.len() + 1 > max_bytes {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("section exceeds the {max_bytes}-byte limit"),
                    ));
                }
                text.push_str(&l);
                text.push('\n');
            }
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-section",
                ))
            }
        }
    }
    Ok(text)
}

/// Flattens a multi-line error message onto one protocol line.
pub fn one_line(msg: &str) -> String {
    msg.replace(['\n', '\r'], "; ")
}

pub mod frame {
    //! The binary framed protocol (version 1) spoken by the reactor
    //! server ([`crate::serve`]) and the [`MuxClient`](crate::MuxClient).
    //!
    //! Every frame is a 16-byte little-endian header followed by the
    //! payload:
    //!
    //! ```text
    //! offset  size  field
    //! 0       1     magic (0xFA — outside ASCII, so the first byte of a
    //!               connection distinguishes framed from legacy
    //!               line-protocol clients)
    //! 1       1     protocol version (currently 1)
    //! 2       1     frame type
    //! 3       1     flags (bit 0: bulk lane)
    //! 4       4     payload length, u32 LE
    //! 8       8     request id, u64 LE (echoed on the response)
    //! 16      len   payload
    //! ```
    //!
    //! Requests carry client-chosen request ids; responses echo them, so
    //! many requests can be pipelined on one connection and answered out
    //! of order. The full specification (payload layouts, version
    //! negotiation, backpressure semantics) lives in `docs/protocol.md`.
    //!
    //! Decoding is incremental and never panics: a truncated buffer
    //! yields `Ok(None)` (read more bytes), while a bad magic byte, an
    //! unsupported version, or an oversized declared length yields a
    //! typed [`FrameError`] — the connection is desynchronized beyond
    //! repair only in those cases. A *malformed payload* inside a
    //! well-framed frame is recoverable: the frame boundary is known, so
    //! the server answers with an [`T_ERROR`] frame and keeps the
    //! connection.

    use std::io::{self, Read, Write};

    use super::SubmitParams;

    /// First byte of every frame. Deliberately a non-ASCII value: legacy
    /// line-protocol commands start with an uppercase ASCII letter, so
    /// the first byte received on a connection tells the server which
    /// protocol the client speaks.
    pub const MAGIC: u8 = 0xFA;
    /// Protocol version this build speaks.
    pub const VERSION: u8 = 1;
    /// Bytes in a frame header.
    pub const HEADER_LEN: usize = 16;
    /// Flag bit 0: route this request on the bulk lane (sweeps) rather
    /// than the interactive lane (see the reactor's admission control,
    /// `docs/protocol.md`).
    pub const FLAG_BULK: u8 = 0b0000_0001;
    /// Default cap on one frame's payload (256 MiB).
    pub const DEFAULT_MAX_FRAME: u32 = 1 << 28;

    /// Request: must be the first frame on a connection; negotiates the
    /// protocol version. Empty payload.
    pub const T_HELLO: u8 = 0x01;
    /// Request: health check. Empty payload.
    pub const T_PING: u8 = 0x02;
    /// Request: the one-line engine stats summary. Empty payload.
    pub const T_STATS: u8 = 0x03;
    /// Request: Prometheus text exposition. Empty payload.
    pub const T_METRICS: u8 = 0x04;
    /// Request: submit a release job (inline tables or by handle).
    pub const T_SUBMIT: u8 = 0x05;
    /// Request: register a prepared dataset from three inline tables.
    pub const T_PREPARE: u8 = 0x06;
    /// Request: derive a prepared dataset by a delta.
    pub const T_DERIVE: u8 = 0x07;
    /// Request: derive + drop one parent reference (rolling update).
    pub const T_APPEND: u8 = 0x08;
    /// Request: drop one reference on a prepared dataset.
    pub const T_UNPREPARE: u8 = 0x09;
    /// Request: orderly goodbye; the server flushes and closes.
    pub const T_GOODBYE: u8 = 0x0A;

    /// Response to [`T_HELLO`]: the server's limits and quotas.
    pub const T_HELLO_OK: u8 = 0x81;
    /// Response to [`T_PING`].
    pub const T_PONG: u8 = 0x82;
    /// Response carrying one line / small text (stats, metrics, handles).
    pub const T_OK_TEXT: u8 = 0x83;
    /// Response carrying a finished release.
    pub const T_RESULT: u8 = 0x84;
    /// Backpressure: the request was shed, retry later (see payload).
    pub const T_BUSY: u8 = 0x85;
    /// The request failed; payload is a code byte plus a message.
    pub const T_ERROR: u8 = 0x86;

    /// [`T_ERROR`] code: malformed request payload.
    pub const E_PROTO: u8 = 1;
    /// [`T_ERROR`] code: unsupported protocol version in `HELLO`.
    pub const E_VERSION: u8 = 2;
    /// [`T_ERROR`] code: the engine rejected the request.
    pub const E_REJECTED: u8 = 3;
    /// [`T_ERROR`] code: the job ran and failed.
    pub const E_FAILED: u8 = 4;
    /// [`T_ERROR`] code: the connection idled past the server's read
    /// timeout with nothing in flight and is being closed.
    pub const E_TIMEOUT: u8 = 5;
    /// [`T_ERROR`] code: the submission would push its dataset's
    /// cumulative privacy spend past the server's budget cap. Not
    /// retryable — unlike `T_BUSY`, waiting does not help.
    pub const E_BUDGET: u8 = 6;
    /// [`T_BUSY`] code: the engine's bounded job queue (and this
    /// connection's park buffer) are full.
    pub const B_QUEUE: u8 = 1;
    /// [`T_BUSY`] code: this connection's per-lane in-flight quota (and
    /// its park buffer) are full.
    pub const B_QUOTA: u8 = 2;

    /// Why a buffer failed to decode as a frame.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum FrameError {
        /// The first byte is not [`MAGIC`].
        BadMagic(u8),
        /// The header declares an unsupported protocol version.
        BadVersion(u8),
        /// The header declares a payload larger than the configured cap.
        Oversized {
            /// Declared payload length.
            len: u32,
            /// The configured cap it exceeds.
            max: u32,
        },
        /// The buffer is structurally broken (e.g. shorter than a
        /// header where one was promised).
        Malformed(String),
    }

    impl std::fmt::Display for FrameError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                FrameError::BadMagic(b) => {
                    write!(f, "bad frame magic 0x{b:02X} (expected 0x{MAGIC:02X})")
                }
                FrameError::BadVersion(v) => {
                    write!(
                        f,
                        "unsupported protocol version {v} (this server speaks {VERSION})"
                    )
                }
                FrameError::Oversized { len, max } => {
                    write!(f, "frame declares a {len}-byte payload (limit {max})")
                }
                FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            }
        }
    }

    impl std::error::Error for FrameError {}

    /// One decoded frame: type, flags, request id, raw payload.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Frame {
        /// Frame type (`T_*`).
        pub ftype: u8,
        /// Flag bits ([`FLAG_BULK`]).
        pub flags: u8,
        /// Client-chosen request id, echoed on responses.
        pub request_id: u64,
        /// Raw payload bytes.
        pub payload: Vec<u8>,
    }

    impl Frame {
        /// A payload-less frame.
        pub fn empty(ftype: u8, request_id: u64) -> Frame {
            Frame {
                ftype,
                flags: 0,
                request_id,
                payload: Vec::new(),
            }
        }
    }

    /// Appends the wire encoding of `frame` to `out`.
    pub fn encode_frame(out: &mut Vec<u8>, frame: &Frame) {
        let len = u32::try_from(frame.payload.len());
        // A >4 GiB payload cannot be framed; this is a programming
        // error on the sending side, not peer input.
        assert!(len.is_ok(), "frame payload exceeds u32::MAX bytes");
        out.push(MAGIC);
        out.push(VERSION);
        out.push(frame.ftype);
        out.push(frame.flags);
        out.extend_from_slice(&len.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&frame.request_id.to_le_bytes());
        out.extend_from_slice(&frame.payload);
    }

    fn u32_at(buf: &[u8], at: usize) -> Option<u32> {
        let bytes: [u8; 4] = buf.get(at..at.checked_add(4)?)?.try_into().ok()?;
        Some(u32::from_le_bytes(bytes))
    }

    fn u64_at(buf: &[u8], at: usize) -> Option<u64> {
        let bytes: [u8; 8] = buf.get(at..at.checked_add(8)?)?.try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }

    /// A parsed frame header (the first [`HEADER_LEN`] bytes).
    #[derive(Clone, Copy, Debug)]
    pub struct Header {
        /// Protocol version byte.
        pub version: u8,
        /// Frame type (`T_*`).
        pub ftype: u8,
        /// Flag bits.
        pub flags: u8,
        /// Declared payload length.
        pub len: u32,
        /// Request id.
        pub request_id: u64,
    }

    /// Parses and validates the header at the front of `buf` (which
    /// must hold at least [`HEADER_LEN`] bytes). Checks magic, version,
    /// and the payload cap — everything knowable without the payload.
    pub fn parse_header(buf: &[u8], max_payload: u32) -> Result<Header, FrameError> {
        let magic = buf.first().copied().unwrap_or(0);
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Malformed(format!(
                "header needs {HEADER_LEN} bytes, got {}",
                buf.len()
            )));
        }
        let version = buf.get(1).copied().unwrap_or(0);
        if version != VERSION {
            return Err(FrameError::BadVersion(version));
        }
        let len = u32_at(buf, 4).unwrap_or(0);
        if len > max_payload {
            return Err(FrameError::Oversized {
                len,
                max: max_payload,
            });
        }
        Ok(Header {
            version,
            ftype: buf.get(2).copied().unwrap_or(0),
            flags: buf.get(3).copied().unwrap_or(0),
            len,
            request_id: u64_at(buf, 8).unwrap_or(0),
        })
    }

    /// Incremental decode: tries to decode one frame from the front of
    /// `buf`. Returns `Ok(None)` when more bytes are needed, and
    /// `Ok(Some((frame, consumed)))` once a full frame is buffered.
    /// Never panics on any input.
    pub fn decode_frame(
        buf: &[u8],
        max_payload: u32,
    ) -> Result<Option<(Frame, usize)>, FrameError> {
        let Some(&magic) = buf.first() else {
            return Ok(None);
        };
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let header = parse_header(buf, max_payload)?;
        let total = HEADER_LEN + header.len as usize;
        let Some(payload) = buf.get(HEADER_LEN..total) else {
            return Ok(None);
        };
        Ok(Some((
            Frame {
                ftype: header.ftype,
                flags: header.flags,
                request_id: header.request_id,
                payload: payload.to_vec(),
            },
            total,
        )))
    }

    /// Writes one frame to a blocking stream.
    pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
        let mut buf = Vec::with_capacity(HEADER_LEN + frame.payload.len());
        encode_frame(&mut buf, frame);
        w.write_all(&buf)
    }

    /// Reads one frame from a blocking stream, validating the header
    /// against `max_payload`. Frame errors surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_frame(r: &mut impl Read, max_payload: u32) -> io::Result<Frame> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        let header = parse_header(&header, max_payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut payload = vec![0u8; header.len as usize];
        r.read_exact(&mut payload)?;
        Ok(Frame {
            ftype: header.ftype,
            flags: header.flags,
            request_id: header.request_id,
            payload,
        })
    }

    /// Bounds-checked little-endian payload reader; every accessor
    /// returns a `String` error instead of panicking, so peer-shaped
    /// bytes can never take down a connection handler.
    pub struct Cur<'a> {
        buf: &'a [u8],
        at: usize,
    }

    impl<'a> Cur<'a> {
        /// Starts reading `buf` from the front.
        pub fn new(buf: &'a [u8]) -> Cur<'a> {
            Cur { buf, at: 0 }
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            let end = self
                .at
                .checked_add(n)
                .ok_or_else(|| "payload length overflow".to_string())?;
            let bytes = self.buf.get(self.at..end).ok_or_else(|| {
                format!("payload truncated at byte {} (wanted {n} more)", self.at)
            })?;
            self.at = end;
            Ok(bytes)
        }

        /// Reads one byte.
        pub fn u8(&mut self) -> Result<u8, String> {
            Ok(self.take(1)?.first().copied().unwrap_or(0))
        }

        /// Reads a little-endian u16.
        pub fn u16(&mut self) -> Result<u16, String> {
            let bytes: [u8; 2] = self.take(2)?.try_into().map_err(|_| "u16".to_string())?;
            Ok(u16::from_le_bytes(bytes))
        }

        /// Reads a little-endian u32.
        pub fn u32(&mut self) -> Result<u32, String> {
            let bytes: [u8; 4] = self.take(4)?.try_into().map_err(|_| "u32".to_string())?;
            Ok(u32::from_le_bytes(bytes))
        }

        /// Reads a u16-length-prefixed UTF-8 string.
        pub fn str_u16(&mut self) -> Result<String, String> {
            let len = self.u16()? as usize;
            let bytes = self.take(len)?;
            String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_string())
        }

        /// Reads a u32-length-prefixed UTF-8 blob.
        pub fn blob_u32(&mut self) -> Result<String, String> {
            let len = self.u32()? as usize;
            let bytes = self.take(len)?;
            String::from_utf8(bytes.to_vec()).map_err(|_| "blob is not UTF-8".to_string())
        }

        /// Consumes the rest of the payload as UTF-8 text.
        pub fn rest_str(&mut self) -> Result<String, String> {
            let bytes = self.buf.get(self.at..).unwrap_or(&[]);
            self.at = self.buf.len();
            String::from_utf8(bytes.to_vec()).map_err(|_| "text is not UTF-8".to_string())
        }

        /// Asserts the payload is fully consumed (trailing garbage is a
        /// malformed request).
        pub fn done(&self) -> Result<(), String> {
            if self.at == self.buf.len() {
                Ok(())
            } else {
                Err(format!(
                    "{} trailing bytes after the payload",
                    self.buf.len() - self.at
                ))
            }
        }
    }

    fn push_str_u16(out: &mut Vec<u8>, s: &str) {
        let len = u16::try_from(s.len());
        assert!(len.is_ok(), "u16-prefixed string exceeds 64 KiB");
        out.extend_from_slice(&len.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }

    fn push_blob_u32(out: &mut Vec<u8>, s: &str) {
        let len = u32::try_from(s.len());
        assert!(len.is_ok(), "u32-prefixed blob exceeds u32::MAX bytes");
        out.extend_from_slice(&len.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }

    /// Builds a [`T_SUBMIT`] frame: the encoded [`SubmitParams`] plus
    /// either three inline CSV tables or none (handle submission).
    pub fn submit_frame(
        request_id: u64,
        params: &SubmitParams,
        tables: Option<[&str; 3]>,
        bulk: bool,
    ) -> Frame {
        let mut payload = Vec::new();
        push_str_u16(&mut payload, &params.encode());
        match tables {
            Some([h, g, e]) => {
                push_blob_u32(&mut payload, h);
                push_blob_u32(&mut payload, g);
                push_blob_u32(&mut payload, e);
            }
            None => {
                for _ in 0..3 {
                    payload.extend_from_slice(&0u32.to_le_bytes());
                }
            }
        }
        Frame {
            ftype: T_SUBMIT,
            flags: if bulk { FLAG_BULK } else { 0 },
            request_id,
            payload,
        }
    }

    /// Parses a [`T_SUBMIT`] payload back into params + optional inline
    /// tables (`None` when all three table blobs are empty — a handle
    /// submission).
    pub fn parse_submit(payload: &[u8]) -> Result<(SubmitParams, Option<[String; 3]>), String> {
        let mut cur = Cur::new(payload);
        let params = SubmitParams::decode(&cur.str_u16()?)?;
        let h = cur.blob_u32()?;
        let g = cur.blob_u32()?;
        let e = cur.blob_u32()?;
        cur.done()?;
        let tables = match (h.is_empty(), g.is_empty(), e.is_empty()) {
            (true, true, true) => None,
            (false, false, false) => Some([h, g, e]),
            _ => {
                return Err("SUBMIT needs all three tables inline, or none with handle=".to_string())
            }
        };
        Ok((params, tables))
    }

    /// Builds a [`T_PREPARE`] frame from three inline CSV tables.
    pub fn prepare_frame(request_id: u64, tables: [&str; 3]) -> Frame {
        let mut payload = Vec::new();
        for t in tables {
            push_blob_u32(&mut payload, t);
        }
        Frame {
            ftype: T_PREPARE,
            flags: 0,
            request_id,
            payload,
        }
    }

    /// Parses a [`T_PREPARE`] payload into the three CSV tables.
    pub fn parse_prepare(payload: &[u8]) -> Result<[String; 3], String> {
        let mut cur = Cur::new(payload);
        let h = cur.blob_u32()?;
        let g = cur.blob_u32()?;
        let e = cur.blob_u32()?;
        cur.done()?;
        Ok([h, g, e])
    }

    /// Builds a [`T_DERIVE`]/[`T_APPEND`] frame: the parent handle plus
    /// the delta CSV.
    pub fn derive_frame(request_id: u64, ftype: u8, parent: &str, delta_csv: &str) -> Frame {
        let mut payload = Vec::new();
        push_str_u16(&mut payload, parent);
        push_blob_u32(&mut payload, delta_csv);
        Frame {
            ftype,
            flags: 0,
            request_id,
            payload,
        }
    }

    /// Parses a [`T_DERIVE`]/[`T_APPEND`] payload into (parent handle
    /// text, delta CSV).
    pub fn parse_derive(payload: &[u8]) -> Result<(String, String), String> {
        let mut cur = Cur::new(payload);
        let parent = cur.str_u16()?;
        let delta = cur.blob_u32()?;
        cur.done()?;
        Ok((parent, delta))
    }

    /// Builds a [`T_UNPREPARE`] frame carrying the handle to release.
    pub fn unprepare_frame(request_id: u64, handle: &str) -> Frame {
        let mut payload = Vec::new();
        push_str_u16(&mut payload, handle);
        Frame {
            ftype: T_UNPREPARE,
            flags: 0,
            request_id,
            payload,
        }
    }

    /// Parses a [`T_UNPREPARE`] payload into the handle text.
    pub fn parse_unprepare(payload: &[u8]) -> Result<String, String> {
        let mut cur = Cur::new(payload);
        let handle = cur.str_u16()?;
        cur.done()?;
        Ok(handle)
    }

    /// Builds a [`T_HELLO_OK`] response advertising the server limits.
    pub fn hello_ok_frame(request_id: u64, limits: &HelloLimits) -> Frame {
        let mut payload = Vec::new();
        payload.extend_from_slice(&limits.max_frame.to_le_bytes());
        payload.extend_from_slice(&limits.interactive_inflight.to_le_bytes());
        payload.extend_from_slice(&limits.bulk_inflight.to_le_bytes());
        payload.extend_from_slice(&limits.park_capacity.to_le_bytes());
        Frame {
            ftype: T_HELLO_OK,
            flags: 0,
            request_id,
            payload,
        }
    }

    /// Server limits advertised in [`T_HELLO_OK`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct HelloLimits {
        /// Largest payload the server will accept in one frame.
        pub max_frame: u32,
        /// Interactive-lane in-flight quota per connection.
        pub interactive_inflight: u16,
        /// Bulk-lane in-flight quota per connection.
        pub bulk_inflight: u16,
        /// Requests parked per connection before `BUSY` is shed.
        pub park_capacity: u16,
    }

    /// Parses a [`T_HELLO_OK`] payload.
    pub fn parse_hello_ok(payload: &[u8]) -> Result<HelloLimits, String> {
        let mut cur = Cur::new(payload);
        let limits = HelloLimits {
            max_frame: cur.u32()?,
            interactive_inflight: cur.u16()?,
            bulk_inflight: cur.u16()?,
            park_capacity: cur.u16()?,
        };
        cur.done()?;
        Ok(limits)
    }

    /// Builds a [`T_RESULT`] response carrying a finished release.
    pub fn result_frame(request_id: u64, from_cache: bool, rows: u32, csv: &str) -> Frame {
        let mut payload = Vec::with_capacity(5 + csv.len());
        payload.push(u8::from(from_cache));
        payload.extend_from_slice(&rows.to_le_bytes());
        payload.extend_from_slice(csv.as_bytes());
        Frame {
            ftype: T_RESULT,
            flags: 0,
            request_id,
            payload,
        }
    }

    /// A parsed [`T_RESULT`] payload.
    #[derive(Clone, Debug, PartialEq)]
    pub struct WireResult {
        /// Whether the server's result cache served it.
        pub from_cache: bool,
        /// Data rows in the CSV (excluding the header).
        pub rows: u32,
        /// The release CSV, exactly as released.
        pub csv: String,
    }

    /// Parses a [`T_RESULT`] payload.
    pub fn parse_result(payload: &[u8]) -> Result<WireResult, String> {
        let mut cur = Cur::new(payload);
        let from_cache = cur.u8()? != 0;
        let rows = cur.u32()?;
        let csv = cur.rest_str()?;
        Ok(WireResult {
            from_cache,
            rows,
            csv,
        })
    }

    /// Builds a [`T_OK_TEXT`] response.
    pub fn ok_text_frame(request_id: u64, text: &str) -> Frame {
        Frame {
            ftype: T_OK_TEXT,
            flags: 0,
            request_id,
            payload: text.as_bytes().to_vec(),
        }
    }

    /// Builds a [`T_ERROR`] response (`E_*` code + message).
    pub fn error_frame(request_id: u64, code: u8, msg: &str) -> Frame {
        let mut payload = Vec::with_capacity(1 + msg.len());
        payload.push(code);
        payload.extend_from_slice(msg.as_bytes());
        Frame {
            ftype: T_ERROR,
            flags: 0,
            request_id,
            payload,
        }
    }

    /// Parses a [`T_ERROR`] payload into (code, message).
    pub fn parse_error(payload: &[u8]) -> (u8, String) {
        let mut cur = Cur::new(payload);
        let code = cur.u8().unwrap_or(0);
        let msg = cur.rest_str().unwrap_or_else(|e| e);
        (code, msg)
    }

    /// Builds a [`T_BUSY`] backpressure response.
    pub fn busy_frame(request_id: u64, code: u8, retry_ms: u32, queued: u32, msg: &str) -> Frame {
        let mut payload = Vec::with_capacity(9 + msg.len());
        payload.push(code);
        payload.extend_from_slice(&retry_ms.to_le_bytes());
        payload.extend_from_slice(&queued.to_le_bytes());
        payload.extend_from_slice(msg.as_bytes());
        Frame {
            ftype: T_BUSY,
            flags: 0,
            request_id,
            payload,
        }
    }

    /// A parsed [`T_BUSY`] payload.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct BusyInfo {
        /// Which bound was hit (`B_*`).
        pub code: u8,
        /// Server's retry hint, in milliseconds.
        pub retry_ms: u32,
        /// How many requests this connection had parked when the shed
        /// happened.
        pub queued: u32,
        /// Human-readable explanation.
        pub msg: String,
    }

    /// Parses a [`T_BUSY`] payload.
    pub fn parse_busy(payload: &[u8]) -> Result<BusyInfo, String> {
        let mut cur = Cur::new(payload);
        Ok(BusyInfo {
            code: cur.u8()?,
            retry_ms: cur.u32()?,
            queued: cur.u32()?,
            msg: cur.rest_str()?,
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn frame_round_trips() {
            let f = submit_frame(
                7,
                &SubmitParams::default(),
                Some(["h\n", "g\n", "e\n"]),
                true,
            );
            let mut buf = Vec::new();
            encode_frame(&mut buf, &f);
            let (decoded, used) = decode_frame(&buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(decoded, f);
            let (params, tables) = parse_submit(&decoded.payload).unwrap();
            assert_eq!(params, SubmitParams::default());
            assert_eq!(
                tables,
                Some(["h\n".to_string(), "g\n".to_string(), "e\n".to_string()])
            );
        }

        #[test]
        fn truncated_frames_need_more_bytes_never_error() {
            let f = result_frame(3, true, 2, "region,level\na,0\nb,0\n");
            let mut buf = Vec::new();
            encode_frame(&mut buf, &f);
            // Every strict prefix decodes to "need more", never an error
            // and never a panic.
            for cut in 0..buf.len() {
                let out = decode_frame(&buf[..cut], DEFAULT_MAX_FRAME);
                assert_eq!(out, Ok(None), "prefix of {cut} bytes");
            }
            assert!(decode_frame(&buf, DEFAULT_MAX_FRAME).unwrap().is_some());
        }

        #[test]
        fn bad_magic_is_detected_on_the_first_byte() {
            assert_eq!(
                decode_frame(b"PING\n", DEFAULT_MAX_FRAME),
                Err(FrameError::BadMagic(b'P'))
            );
        }

        #[test]
        fn version_mismatch_is_a_typed_error() {
            let mut buf = Vec::new();
            encode_frame(&mut buf, &Frame::empty(T_HELLO, 1));
            buf[1] = 9;
            assert_eq!(
                decode_frame(&buf, DEFAULT_MAX_FRAME),
                Err(FrameError::BadVersion(9))
            );
        }

        #[test]
        fn oversized_declared_length_is_rejected_before_buffering() {
            let mut buf = Vec::new();
            encode_frame(&mut buf, &Frame::empty(T_PING, 1));
            buf[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
            assert_eq!(
                decode_frame(&buf, 1 << 20),
                Err(FrameError::Oversized {
                    len: u32::MAX,
                    max: 1 << 20
                })
            );
        }

        #[test]
        fn malformed_payloads_error_never_panic() {
            // Adversarial: parse every payload parser against random-ish
            // deterministic garbage and truncations of valid payloads.
            let valid = submit_frame(1, &SubmitParams::default(), None, false).payload;
            for cut in 0..valid.len() {
                let _ = parse_submit(&valid[..cut]);
            }
            let mut junk = Vec::new();
            let mut x: u64 = 0x9E3779B97F4A7C15;
            for _ in 0..4096 {
                x = x.wrapping_mul(0xD1342543DE82EF95).wrapping_add(1);
                junk.push((x >> 56) as u8);
            }
            for start in 0..64 {
                let body = &junk[start..];
                let _ = parse_submit(body);
                let _ = parse_prepare(body);
                let _ = parse_derive(body);
                let _ = parse_hello_ok(body);
                let _ = parse_result(body);
                let _ = parse_busy(body);
                let _ = parse_error(body);
                let _ = decode_frame(body, DEFAULT_MAX_FRAME);
            }
        }

        #[test]
        fn mixed_table_presence_is_rejected() {
            let mut payload = Vec::new();
            push_str_u16(&mut payload, "epsilon=1");
            push_blob_u32(&mut payload, "h\n");
            push_blob_u32(&mut payload, "");
            push_blob_u32(&mut payload, "e\n");
            let err = parse_submit(&payload).unwrap_err();
            assert!(err.contains("all three tables"), "{err}");
        }

        #[test]
        fn trailing_garbage_is_malformed() {
            let mut f = prepare_frame(1, ["h\n", "g\n", "e\n"]);
            f.payload.push(0xFF);
            assert!(parse_prepare(&f.payload).is_err());
        }

        #[test]
        fn busy_and_error_round_trip() {
            let b = busy_frame(9, B_QUOTA, 50, 3, "bulk lane at quota");
            let info = parse_busy(&b.payload).unwrap();
            assert_eq!(info.code, B_QUOTA);
            assert_eq!(info.retry_ms, 50);
            assert_eq!(info.queued, 3);
            assert_eq!(info.msg, "bulk lane at quota");
            let e = error_frame(9, E_REJECTED, "queue full");
            assert_eq!(
                parse_error(&e.payload),
                (E_REJECTED, "queue full".to_string())
            );
        }

        #[test]
        fn blocking_read_write_round_trip() {
            let f = derive_frame(5, T_APPEND, "ds-00", "add,a,1,2,3\n");
            let mut buf = Vec::new();
            write_frame(&mut buf, &f).unwrap();
            let mut r = &buf[..];
            assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn params_round_trip() {
        let p = SubmitParams {
            epsilon: 0.5,
            method: "adaptive".into(),
            bound: 1234,
            seed: 9,
            handle: None,
        };
        assert_eq!(SubmitParams::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn handle_param_round_trips_and_validates() {
        let p = SubmitParams {
            handle: Some("ds-000000000000000000000000deadbeef".parse().unwrap()),
            ..SubmitParams::default()
        };
        let line = p.encode();
        assert!(line.contains("handle=ds-"), "{line}");
        assert_eq!(SubmitParams::decode(&line).unwrap(), p);
        assert!(SubmitParams::decode("epsilon=1").unwrap().handle.is_none());
        let err = SubmitParams::decode("epsilon=1 handle=nope").unwrap_err();
        assert!(err.contains("malformed dataset handle"), "{err}");
    }

    #[test]
    fn params_defaults_and_errors() {
        let p = SubmitParams::decode("epsilon=2").unwrap();
        assert_eq!(p.method, "hc");
        assert_eq!(p.bound, 100_000);
        assert_eq!(p.seed, 42);
        assert!(SubmitParams::decode("").unwrap_err().contains("epsilon"));
        assert!(SubmitParams::decode("epsilon=1 method=bogus").is_err());
        assert!(SubmitParams::decode("epsilon=1 what=no").is_err());
        assert!(SubmitParams::decode("epsilon=abc").is_err());
        // Degenerate budgets are rejected at the wire, not asserted in
        // a worker thread.
        for eps in ["0", "-1", "NaN", "inf"] {
            let err = SubmitParams::decode(&format!("epsilon={eps}")).unwrap_err();
            assert!(err.contains("positive and finite"), "{eps}: {err}");
        }
    }

    #[test]
    fn sections_round_trip() {
        let text = "a,b\nc,d\n";
        let mut buf = Vec::new();
        write_section(&mut buf, "GROUPS", text).unwrap();
        let mut r = BufReader::new(&buf[..]);
        let header = read_line(&mut r).unwrap().unwrap();
        assert_eq!(header, "GROUPS 2");
        assert_eq!(read_section_body(&mut r, 2, 1 << 20).unwrap(), text);
    }

    #[test]
    fn oversized_section_is_rejected() {
        let mut buf = Vec::new();
        write_section(&mut buf, "GROUPS", "aaaa,bbbb\ncccc,dddd\n").unwrap();
        let mut r = BufReader::new(&buf[..]);
        let _header = read_line(&mut r).unwrap().unwrap();
        let err = read_section_body(&mut r, 2, 12).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_section_is_an_error() {
        let mut r = BufReader::new(&b"only,one\n"[..]);
        assert!(read_section_body(&mut r, 2, 1 << 20).is_err());
    }
}
