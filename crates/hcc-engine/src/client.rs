//! Blocking TCP client for the engine server.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::job::JobId;
use crate::protocol::{read_line, read_section_body, write_section, SubmitParams};

/// A release fetched over the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct FetchedRelease {
    /// The `region,level,size,count` CSV, exactly as released.
    pub csv: String,
    /// Whether the server's result cache served it.
    pub from_cache: bool,
}

/// One connection to an engine server; every method is a blocking
/// request/response exchange.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server started with [`crate::serve`] or
    /// `hcc serve`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn request_line(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Health check.
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(self.request_line("PING")? == "PONG")
    }

    /// The server's `STATS` line (workers, queue depth, counters).
    pub fn stats(&mut self) -> io::Result<String> {
        self.request_line("STATS")
    }

    /// Submits a release job from raw CSV tables, returning its id.
    pub fn submit(
        &mut self,
        params: &SubmitParams,
        hierarchy_csv: &str,
        groups_csv: &str,
        entities_csv: &str,
    ) -> io::Result<Result<JobId, String>> {
        writeln!(self.writer, "SUBMIT {}", params.encode())?;
        write_section(&mut self.writer, "HIERARCHY", hierarchy_csv)?;
        write_section(&mut self.writer, "GROUPS", groups_csv)?;
        write_section(&mut self.writer, "ENTITIES", entities_csv)?;
        writeln!(self.writer, "END")?;
        self.writer.flush()?;
        let reply = read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Ok(match reply.split_once(' ') {
            Some(("OK", id)) => id.parse().map_err(|e: String| e),
            Some(("ERR", msg)) => Err(msg.to_string()),
            _ => Err(format!("unexpected reply {reply:?}")),
        })
    }

    /// One-line job status, e.g. `QUEUED` or `DONE rows=12 cached=0`.
    pub fn status(&mut self, id: JobId) -> io::Result<String> {
        self.request_line(&format!("STATUS {id}"))
    }

    /// Blocks until the job finishes and downloads the release.
    pub fn wait(&mut self, id: JobId) -> io::Result<Result<FetchedRelease, String>> {
        self.fetch_with(id, "WAIT")
    }

    /// Downloads a finished release without blocking on computation.
    pub fn fetch(&mut self, id: JobId) -> io::Result<Result<FetchedRelease, String>> {
        self.fetch_with(id, "FETCH")
    }

    fn fetch_with(&mut self, id: JobId, cmd: &str) -> io::Result<Result<FetchedRelease, String>> {
        let reply = self.request_line(&format!("{cmd} {id}"))?;
        let Some(("RELEASE", tail)) = reply.split_once(' ') else {
            return Ok(Err(reply
                .strip_prefix("ERR ")
                .unwrap_or(&reply)
                .to_string()));
        };
        let (lines, cached) = match tail.split_once(' ') {
            Some((n, c)) => (n, c.strip_prefix("cached=").unwrap_or("0")),
            None => (tail, "0"),
        };
        let lines: usize = lines.parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad RELEASE header {reply:?}"),
            )
        })?;
        // The client trusts its own server for release sizes; cap at
        // a level no legitimate release exceeds.
        let csv = read_section_body(&mut self.reader, lines, 1 << 32)?;
        match read_line(&mut self.reader)? {
            Some(end) if end == "END" => {}
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected END, got {other:?}"),
                ))
            }
        }
        Ok(Ok(FetchedRelease {
            csv,
            from_cache: cached == "1",
        }))
    }

    /// Says goodbye and closes the connection.
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.request_line("QUIT")?;
        Ok(())
    }
}
