//! Blocking TCP client for the engine server.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::job::JobId;
use crate::protocol::{read_line, read_section_body, write_section, SubmitParams};
use crate::registry::DatasetHandle;
use crate::telemetry::SpanEvent;

/// A release fetched over the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct FetchedRelease {
    /// The `region,level,size,count` CSV, exactly as released.
    pub csv: String,
    /// Whether the server's result cache served it.
    pub from_cache: bool,
}

/// One connection to an engine server; every method is a blocking
/// request/response exchange.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Splits an `OK <tail>` / `ERR <message>` reply line, delegating the
/// OK tail to `ok` and passing errors (or unrecognisable replies)
/// through as `Err`.
fn parse_reply<T>(reply: &str, ok: impl FnOnce(&str) -> Result<T, String>) -> Result<T, String> {
    match reply.split_once(' ') {
        Some(("OK", tail)) => ok(tail),
        Some(("ERR", msg)) => Err(msg.to_string()),
        _ => Err(format!("unexpected reply {reply:?}")),
    }
}

impl Client {
    /// Connects to a server started with [`crate::serve`] or
    /// `hcc serve`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn request_line(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// Reads the single reply line of the request just flushed.
    fn read_reply(&mut self) -> io::Result<String> {
        read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Health check.
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(self.request_line("PING")? == "PONG")
    }

    /// The server's `STATS` line (workers, queue depth, counters).
    pub fn stats(&mut self) -> io::Result<String> {
        self.request_line("STATS")
    }

    /// Downloads the server's telemetry snapshot as Prometheus-style
    /// text exposition (the `METRICS` verb): counters, gauges,
    /// latency histograms, and derived p50/p95/p99 quantiles.
    pub fn metrics(&mut self) -> io::Result<String> {
        let reply = self.request_line("METRICS")?;
        let lines = Self::framed_len(&reply, "METRICS")?;
        let text = read_section_body(&mut self.reader, lines, 1 << 26)?;
        self.expect_end()?;
        Ok(text)
    }

    /// Drains the server's span recorder (the `TRACE` verb),
    /// returning the recorded scheduler spans. Empty unless the
    /// server was started with tracing enabled (`hcc serve
    /// --trace N`). Draining is destructive: each span is returned
    /// once.
    pub fn trace(&mut self) -> io::Result<Vec<SpanEvent>> {
        let reply = self.request_line("TRACE")?;
        let count = Self::framed_len(&reply, "TRACE")?;
        let body = read_section_body(&mut self.reader, count, 1 << 28)?;
        self.expect_end()?;
        body.lines()
            .map(|line| {
                SpanEvent::from_wire_line(line).map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("bad span line: {e}"))
                })
            })
            .collect()
    }

    /// Parses the `<verb> <n>` header of a framed reply.
    fn framed_len(reply: &str, verb: &str) -> io::Result<usize> {
        reply
            .strip_prefix(verb)
            .and_then(|tail| tail.trim().parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected `{verb} <n>`, got {reply:?}"),
                )
            })
    }

    /// Consumes the `END` line closing a framed reply.
    fn expect_end(&mut self) -> io::Result<()> {
        match read_line(&mut self.reader)? {
            Some(end) if end == "END" => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected END, got {other:?}"),
            )),
        }
    }

    /// Submits a release job from raw CSV tables, returning its id.
    pub fn submit(
        &mut self,
        params: &SubmitParams,
        hierarchy_csv: &str,
        groups_csv: &str,
        entities_csv: &str,
    ) -> io::Result<Result<JobId, String>> {
        writeln!(self.writer, "SUBMIT {}", params.encode())?;
        write_section(&mut self.writer, "HIERARCHY", hierarchy_csv)?;
        write_section(&mut self.writer, "GROUPS", groups_csv)?;
        write_section(&mut self.writer, "ENTITIES", entities_csv)?;
        writeln!(self.writer, "END")?;
        self.writer.flush()?;
        let reply = self.read_reply()?;
        Ok(parse_reply(&reply, |id| id.parse()))
    }

    /// Registers the three CSV tables as a prepared dataset on the
    /// server, returning its content-addressed handle. Subsequent
    /// [`Client::submit_prepared`] calls reference the handle and skip
    /// shipping + re-parsing the tables entirely.
    pub fn prepare(
        &mut self,
        hierarchy_csv: &str,
        groups_csv: &str,
        entities_csv: &str,
    ) -> io::Result<Result<DatasetHandle, String>> {
        writeln!(self.writer, "PREPARE")?;
        write_section(&mut self.writer, "HIERARCHY", hierarchy_csv)?;
        write_section(&mut self.writer, "GROUPS", groups_csv)?;
        write_section(&mut self.writer, "ENTITIES", entities_csv)?;
        writeln!(self.writer, "END")?;
        self.writer.flush()?;
        let reply = self.read_reply()?;
        Ok(parse_reply(&reply, |handle| handle.parse()))
    }

    /// Derives a new prepared dataset on the server by applying
    /// `delta` to the prepared dataset `parent`, returning the derived
    /// content-addressed handle. No table is re-shipped or re-parsed —
    /// only the delta CSV travels, and the server re-aggregates just
    /// the touched root-to-leaf paths (see [`crate::Engine::derive`]).
    /// The parent stays registered with its references intact.
    pub fn derive(
        &mut self,
        parent: DatasetHandle,
        delta: &hcc_data::DatasetDelta,
    ) -> io::Result<Result<DatasetHandle, String>> {
        self.derive_with(parent, delta, "DERIVE")
    }

    /// Rolling-update variant of [`Client::derive`]: the server also
    /// drops one reference on `parent`, so repeatedly appending
    /// deltas holds one registry slot rather than a growing chain.
    pub fn append(
        &mut self,
        parent: DatasetHandle,
        delta: &hcc_data::DatasetDelta,
    ) -> io::Result<Result<DatasetHandle, String>> {
        self.derive_with(parent, delta, "APPEND")
    }

    fn derive_with(
        &mut self,
        parent: DatasetHandle,
        delta: &hcc_data::DatasetDelta,
        cmd: &str,
    ) -> io::Result<Result<DatasetHandle, String>> {
        writeln!(self.writer, "{cmd} {parent}")?;
        write_section(&mut self.writer, "DELTA", &delta.to_csv())?;
        writeln!(self.writer, "END")?;
        self.writer.flush()?;
        let reply = self.read_reply()?;
        Ok(parse_reply(&reply, |handle| handle.parse()))
    }

    /// Drops one reference to a prepared dataset; returns how many
    /// references the server still holds.
    pub fn unprepare(&mut self, handle: DatasetHandle) -> io::Result<Result<u64, String>> {
        let reply = self.request_line(&format!("UNPREPARE {handle}"))?;
        Ok(parse_reply(&reply, |tail| {
            tail.strip_prefix("refs=")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("unexpected reply tail {tail:?}"))
        }))
    }

    /// Submits a release of a prepared dataset — no CSV payload is
    /// shipped; any `handle` already inside `params` is overridden.
    pub fn submit_prepared(
        &mut self,
        params: &SubmitParams,
        handle: DatasetHandle,
    ) -> io::Result<Result<JobId, String>> {
        let params = SubmitParams {
            handle: Some(handle),
            ..params.clone()
        };
        writeln!(self.writer, "SUBMIT {}", params.encode())?;
        writeln!(self.writer, "END")?;
        self.writer.flush()?;
        let reply = self.read_reply()?;
        Ok(parse_reply(&reply, |id| id.parse()))
    }

    /// Batch-submits an ε grid over one prepared handle on this
    /// connection, then streams the finished releases back in grid
    /// order, invoking `each` as every ε completes. Submissions are
    /// enqueued as fast as the server accepts them, so the sweep runs
    /// with full worker-pool parallelism; when the server's bounded
    /// queue pushes back, the client drains its oldest in-flight
    /// point (delivering its result) and retries, so grids larger
    /// than the server queue still complete.
    pub fn sweep(
        &mut self,
        base: &SubmitParams,
        handle: DatasetHandle,
        epsilons: &[f64],
        mut each: impl FnMut(f64, Result<FetchedRelease, String>),
    ) -> io::Result<()> {
        // Every point's outcome is buffered (a job id or a hard
        // rejection) and delivered strictly in grid order — callers
        // label results positionally, so even a failed submission
        // must not jump the queue ahead of older in-flight successes.
        let mut in_flight: std::collections::VecDeque<(f64, Result<JobId, String>)> =
            std::collections::VecDeque::new();
        for &epsilon in epsilons {
            let params = SubmitParams {
                epsilon,
                ..base.clone()
            };
            loop {
                match self.submit_prepared(&params, handle)? {
                    Ok(id) => {
                        in_flight.push_back((epsilon, Ok(id)));
                        break;
                    }
                    // Retryable rejection (stable `busy:` wire token,
                    // never matched on prose): drain our oldest
                    // in-flight point and retry — or, when *other*
                    // clients saturate the queue and we hold nothing
                    // to drain, back off briefly and retry, like the
                    // blocking WAIT this method is built on.
                    Err(e) if e.starts_with(crate::protocol::BUSY) => match in_flight.pop_front() {
                        Some((done_eps, Ok(id))) => each(done_eps, self.wait(id)?),
                        Some((done_eps, Err(failed))) => each(done_eps, Err(failed)),
                        None => std::thread::sleep(std::time::Duration::from_millis(50)),
                    },
                    Err(e) => {
                        in_flight.push_back((epsilon, Err(e)));
                        break;
                    }
                }
            }
        }
        for (epsilon, outcome) in in_flight {
            match outcome {
                Ok(id) => each(epsilon, self.wait(id)?),
                Err(e) => each(epsilon, Err(e)),
            }
        }
        Ok(())
    }

    /// One-line job status, e.g. `QUEUED` or `DONE rows=12 cached=0`.
    pub fn status(&mut self, id: JobId) -> io::Result<String> {
        self.request_line(&format!("STATUS {id}"))
    }

    /// Blocks until the job finishes and downloads the release.
    pub fn wait(&mut self, id: JobId) -> io::Result<Result<FetchedRelease, String>> {
        self.fetch_with(id, "WAIT")
    }

    /// Downloads a finished release without blocking on computation.
    pub fn fetch(&mut self, id: JobId) -> io::Result<Result<FetchedRelease, String>> {
        self.fetch_with(id, "FETCH")
    }

    fn fetch_with(&mut self, id: JobId, cmd: &str) -> io::Result<Result<FetchedRelease, String>> {
        let reply = self.request_line(&format!("{cmd} {id}"))?;
        let Some(("RELEASE", tail)) = reply.split_once(' ') else {
            return Ok(Err(reply
                .strip_prefix("ERR ")
                .unwrap_or(&reply)
                .to_string()));
        };
        let (lines, cached) = match tail.split_once(' ') {
            Some((n, c)) => (n, c.strip_prefix("cached=").unwrap_or("0")),
            None => (tail, "0"),
        };
        let lines: usize = lines.parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad RELEASE header {reply:?}"),
            )
        })?;
        // The client trusts its own server for release sizes; cap at
        // a level no legitimate release exceeds.
        let csv = read_section_body(&mut self.reader, lines, 1 << 32)?;
        self.expect_end()?;
        Ok(Ok(FetchedRelease {
            csv,
            from_cache: cached == "1",
        }))
    }

    /// Says goodbye and closes the connection.
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.request_line("QUIT")?;
        Ok(())
    }
}
