//! TCP clients for the engine server: [`Client`] speaks the legacy
//! line protocol (one blocking request/response at a time);
//! [`MuxClient`] speaks the versioned framed protocol and pipelines —
//! many requests may be in flight on one connection, with responses
//! matched back by request id in whatever order the server finishes
//! them.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::job::JobId;
use crate::protocol::frame::{
    self, parse_busy, parse_error, parse_hello_ok, parse_result, read_frame, Frame, HelloLimits,
    T_BUSY, T_ERROR, T_GOODBYE, T_HELLO, T_HELLO_OK, T_METRICS, T_OK_TEXT, T_PING, T_PONG,
    T_RESULT, T_STATS,
};
use crate::protocol::{read_line, read_section_body, write_section, SubmitParams};
use crate::registry::DatasetHandle;
use crate::telemetry::SpanEvent;

/// A release fetched over the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct FetchedRelease {
    /// The `region,level,size,count` CSV, exactly as released.
    pub csv: String,
    /// Whether the server's result cache served it.
    pub from_cache: bool,
}

/// How a client reacts to `BUSY` backpressure: bounded exponential
/// backoff seeded from the server's retry hint, with deterministic
/// jitter (no ambient entropy — two clients built with the same seed
/// sleep the same schedule).
///
/// Attempt `n` sleeps `min(hint << n, max_delay_ms)` plus a jitter of
/// up to a quarter of that, then resubmits; after `max_attempts`
/// sheds the request fails with the server's `busy:` text instead of
/// retrying forever. [`RetryPolicy::disabled`] (the CLI's
/// `--no-retry`) surfaces the first shed immediately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many sheds are retried before giving up (0 = fail on the
    /// first `BUSY`).
    pub max_attempts: u32,
    /// Ceiling on any single backoff sleep, in milliseconds.
    pub max_delay_ms: u32,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            max_delay_ms: 2_000,
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// Never retry: the first `BUSY` shed is surfaced to the caller.
    pub fn disabled() -> Self {
        Self {
            max_attempts: 0,
            ..Self::default()
        }
    }

    /// The bounded, jittered sleep before retry number `attempt`
    /// (0-based), given the server's `retry_ms` hint. Pure: the same
    /// (policy, attempt, hint) always yields the same delay.
    pub fn delay_ms(&self, attempt: u32, hint_ms: u32) -> u32 {
        let base = u64::from(hint_ms.max(1))
            .saturating_mul(1u64 << attempt.min(16))
            .min(u64::from(self.max_delay_ms));
        // splitmix-style scramble keyed by (seed, attempt): spreads
        // synchronized clients without consulting a clock or OS RNG.
        let mut x = self
            .jitter_seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let jitter = x % (base / 4 + 1);
        u32::try_from(
            base.saturating_add(jitter)
                .min(u64::from(self.max_delay_ms)),
        )
        .unwrap_or(self.max_delay_ms)
    }

    /// The failure text reported when every allowed retry was shed.
    fn exhausted(&self, last: &str) -> String {
        format!(
            "{} server backpressure persisted after {} retries: {last}",
            crate::protocol::BUSY,
            self.max_attempts
        )
    }
}

/// One connection to an engine server; every method is a blocking
/// request/response exchange.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    retry: RetryPolicy,
}

/// Splits an `OK <tail>` / `ERR <message>` reply line, delegating the
/// OK tail to `ok` and passing errors (or unrecognisable replies)
/// through as `Err`.
fn parse_reply<T>(reply: &str, ok: impl FnOnce(&str) -> Result<T, String>) -> Result<T, String> {
    match reply.split_once(' ') {
        Some(("OK", tail)) => ok(tail),
        Some(("ERR", msg)) => Err(msg.to_string()),
        _ => Err(format!("unexpected reply {reply:?}")),
    }
}

impl Client {
    /// Connects to a server started with [`crate::serve`] or
    /// `hcc serve`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            retry: RetryPolicy::default(),
        })
    }

    /// Replaces the `BUSY` backoff policy (see [`RetryPolicy`]).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    fn request_line(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// Reads the single reply line of the request just flushed.
    fn read_reply(&mut self) -> io::Result<String> {
        read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Health check.
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(self.request_line("PING")? == "PONG")
    }

    /// The server's `STATS` line (workers, queue depth, counters).
    pub fn stats(&mut self) -> io::Result<String> {
        self.request_line("STATS")
    }

    /// Downloads the server's telemetry snapshot as Prometheus-style
    /// text exposition (the `METRICS` verb): counters, gauges,
    /// latency histograms, and derived p50/p95/p99 quantiles.
    pub fn metrics(&mut self) -> io::Result<String> {
        let reply = self.request_line("METRICS")?;
        let lines = Self::framed_len(&reply, "METRICS")?;
        let text = read_section_body(&mut self.reader, lines, 1 << 26)?;
        self.expect_end()?;
        Ok(text)
    }

    /// Drains the server's span recorder (the `TRACE` verb),
    /// returning the recorded scheduler spans. Empty unless the
    /// server was started with tracing enabled (`hcc serve
    /// --trace N`). Draining is destructive: each span is returned
    /// once.
    pub fn trace(&mut self) -> io::Result<Vec<SpanEvent>> {
        let reply = self.request_line("TRACE")?;
        let count = Self::framed_len(&reply, "TRACE")?;
        let body = read_section_body(&mut self.reader, count, 1 << 28)?;
        self.expect_end()?;
        body.lines()
            .map(|line| {
                SpanEvent::from_wire_line(line).map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("bad span line: {e}"))
                })
            })
            .collect()
    }

    /// Parses the `<verb> <n>` header of a framed reply.
    fn framed_len(reply: &str, verb: &str) -> io::Result<usize> {
        reply
            .strip_prefix(verb)
            .and_then(|tail| tail.trim().parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected `{verb} <n>`, got {reply:?}"),
                )
            })
    }

    /// Consumes the `END` line closing a framed reply.
    fn expect_end(&mut self) -> io::Result<()> {
        match read_line(&mut self.reader)? {
            Some(end) if end == "END" => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected END, got {other:?}"),
            )),
        }
    }

    /// Submits a release job from raw CSV tables, returning its id.
    pub fn submit(
        &mut self,
        params: &SubmitParams,
        hierarchy_csv: &str,
        groups_csv: &str,
        entities_csv: &str,
    ) -> io::Result<Result<JobId, String>> {
        writeln!(self.writer, "SUBMIT {}", params.encode())?;
        write_section(&mut self.writer, "HIERARCHY", hierarchy_csv)?;
        write_section(&mut self.writer, "GROUPS", groups_csv)?;
        write_section(&mut self.writer, "ENTITIES", entities_csv)?;
        writeln!(self.writer, "END")?;
        self.writer.flush()?;
        let reply = self.read_reply()?;
        Ok(parse_reply(&reply, |id| id.parse()))
    }

    /// Registers the three CSV tables as a prepared dataset on the
    /// server, returning its content-addressed handle. Subsequent
    /// [`Client::submit_prepared`] calls reference the handle and skip
    /// shipping + re-parsing the tables entirely.
    pub fn prepare(
        &mut self,
        hierarchy_csv: &str,
        groups_csv: &str,
        entities_csv: &str,
    ) -> io::Result<Result<DatasetHandle, String>> {
        writeln!(self.writer, "PREPARE")?;
        write_section(&mut self.writer, "HIERARCHY", hierarchy_csv)?;
        write_section(&mut self.writer, "GROUPS", groups_csv)?;
        write_section(&mut self.writer, "ENTITIES", entities_csv)?;
        writeln!(self.writer, "END")?;
        self.writer.flush()?;
        let reply = self.read_reply()?;
        Ok(parse_reply(&reply, |handle| handle.parse()))
    }

    /// Derives a new prepared dataset on the server by applying
    /// `delta` to the prepared dataset `parent`, returning the derived
    /// content-addressed handle. No table is re-shipped or re-parsed —
    /// only the delta CSV travels, and the server re-aggregates just
    /// the touched root-to-leaf paths (see [`crate::Engine::derive`]).
    /// The parent stays registered with its references intact.
    pub fn derive(
        &mut self,
        parent: DatasetHandle,
        delta: &hcc_data::DatasetDelta,
    ) -> io::Result<Result<DatasetHandle, String>> {
        self.derive_with(parent, delta, "DERIVE")
    }

    /// Rolling-update variant of [`Client::derive`]: the server also
    /// drops one reference on `parent`, so repeatedly appending
    /// deltas holds one registry slot rather than a growing chain.
    pub fn append(
        &mut self,
        parent: DatasetHandle,
        delta: &hcc_data::DatasetDelta,
    ) -> io::Result<Result<DatasetHandle, String>> {
        self.derive_with(parent, delta, "APPEND")
    }

    fn derive_with(
        &mut self,
        parent: DatasetHandle,
        delta: &hcc_data::DatasetDelta,
        cmd: &str,
    ) -> io::Result<Result<DatasetHandle, String>> {
        writeln!(self.writer, "{cmd} {parent}")?;
        write_section(&mut self.writer, "DELTA", &delta.to_csv())?;
        writeln!(self.writer, "END")?;
        self.writer.flush()?;
        let reply = self.read_reply()?;
        Ok(parse_reply(&reply, |handle| handle.parse()))
    }

    /// Drops one reference to a prepared dataset; returns how many
    /// references the server still holds.
    pub fn unprepare(&mut self, handle: DatasetHandle) -> io::Result<Result<u64, String>> {
        let reply = self.request_line(&format!("UNPREPARE {handle}"))?;
        Ok(parse_reply(&reply, |tail| {
            tail.strip_prefix("refs=")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("unexpected reply tail {tail:?}"))
        }))
    }

    /// Submits a release of a prepared dataset — no CSV payload is
    /// shipped; any `handle` already inside `params` is overridden.
    pub fn submit_prepared(
        &mut self,
        params: &SubmitParams,
        handle: DatasetHandle,
    ) -> io::Result<Result<JobId, String>> {
        let params = SubmitParams {
            handle: Some(handle),
            ..params.clone()
        };
        writeln!(self.writer, "SUBMIT {}", params.encode())?;
        writeln!(self.writer, "END")?;
        self.writer.flush()?;
        let reply = self.read_reply()?;
        Ok(parse_reply(&reply, |id| id.parse()))
    }

    /// Batch-submits an ε grid over one prepared handle on this
    /// connection, then streams the finished releases back in grid
    /// order, invoking `each` as every ε completes. Submissions are
    /// enqueued as fast as the server accepts them, so the sweep runs
    /// with full worker-pool parallelism; when the server's bounded
    /// queue pushes back, the client drains its oldest in-flight
    /// point (delivering its result) and retries, so grids larger
    /// than the server queue still complete.
    pub fn sweep(
        &mut self,
        base: &SubmitParams,
        handle: DatasetHandle,
        epsilons: &[f64],
        mut each: impl FnMut(f64, Result<FetchedRelease, String>),
    ) -> io::Result<()> {
        // Every point's outcome is buffered (a job id or a hard
        // rejection) and delivered strictly in grid order — callers
        // label results positionally, so even a failed submission
        // must not jump the queue ahead of older in-flight successes.
        let mut in_flight: std::collections::VecDeque<(f64, Result<JobId, String>)> =
            std::collections::VecDeque::new();
        for &epsilon in epsilons {
            let params = SubmitParams {
                epsilon,
                ..base.clone()
            };
            // Backoff attempts only count when we hold nothing to
            // drain — draining an in-flight point makes progress and
            // resets the clock.
            let mut backoffs = 0u32;
            loop {
                match self.submit_prepared(&params, handle)? {
                    Ok(id) => {
                        in_flight.push_back((epsilon, Ok(id)));
                        break;
                    }
                    // Retryable rejection (stable `busy:` wire token,
                    // never matched on prose): drain our oldest
                    // in-flight point and retry — or, when *other*
                    // clients saturate the queue and we hold nothing
                    // to drain, back off with the bounded jittered
                    // policy and retry, failing the point once the
                    // attempts run out.
                    Err(e) if e.starts_with(crate::protocol::BUSY) => match in_flight.pop_front() {
                        Some((done_eps, Ok(id))) => {
                            backoffs = 0;
                            each(done_eps, self.wait(id)?);
                        }
                        Some((done_eps, Err(failed))) => {
                            backoffs = 0;
                            each(done_eps, Err(failed));
                        }
                        None => {
                            if backoffs >= self.retry.max_attempts {
                                in_flight.push_back((epsilon, Err(self.retry.exhausted(&e))));
                                break;
                            }
                            let delay = self.retry.delay_ms(backoffs, 50);
                            backoffs += 1;
                            std::thread::sleep(std::time::Duration::from_millis(u64::from(delay)));
                        }
                    },
                    Err(e) => {
                        in_flight.push_back((epsilon, Err(e)));
                        break;
                    }
                }
            }
        }
        for (epsilon, outcome) in in_flight {
            match outcome {
                Ok(id) => each(epsilon, self.wait(id)?),
                Err(e) => each(epsilon, Err(e)),
            }
        }
        Ok(())
    }

    /// One-line job status, e.g. `QUEUED` or `DONE rows=12 cached=0`.
    pub fn status(&mut self, id: JobId) -> io::Result<String> {
        self.request_line(&format!("STATUS {id}"))
    }

    /// Blocks until the job finishes and downloads the release.
    pub fn wait(&mut self, id: JobId) -> io::Result<Result<FetchedRelease, String>> {
        self.fetch_with(id, "WAIT")
    }

    /// Downloads a finished release without blocking on computation.
    pub fn fetch(&mut self, id: JobId) -> io::Result<Result<FetchedRelease, String>> {
        self.fetch_with(id, "FETCH")
    }

    fn fetch_with(&mut self, id: JobId, cmd: &str) -> io::Result<Result<FetchedRelease, String>> {
        let reply = self.request_line(&format!("{cmd} {id}"))?;
        let Some(("RELEASE", tail)) = reply.split_once(' ') else {
            return Ok(Err(reply
                .strip_prefix("ERR ")
                .unwrap_or(&reply)
                .to_string()));
        };
        let (lines, cached) = match tail.split_once(' ') {
            Some((n, c)) => (n, c.strip_prefix("cached=").unwrap_or("0")),
            None => (tail, "0"),
        };
        let lines: usize = lines.parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad RELEASE header {reply:?}"),
            )
        })?;
        // The client trusts its own server for release sizes; cap at
        // a level no legitimate release exceeds.
        let csv = read_section_body(&mut self.reader, lines, 1 << 32)?;
        self.expect_end()?;
        Ok(Ok(FetchedRelease {
            csv,
            from_cache: cached == "1",
        }))
    }

    /// Says goodbye and closes the connection.
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.request_line("QUIT")?;
        Ok(())
    }
}

/// One ε-grid point's outcome from [`MuxClient::sweep`], in grid
/// order.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The grid point's privacy budget.
    pub epsilon: f64,
    /// The fetched release, or the server's rejection/failure text.
    pub outcome: Result<FetchedRelease, String>,
}

/// Multiplexed framed-protocol client: one connection, many requests
/// in flight, responses matched by request id.
///
/// Where [`Client`] pays a full round trip per request, `MuxClient`
/// writes a whole batch of frames back-to-back and collects the
/// responses as the server finishes them — on a sweep this collapses
/// `n` round trips into roughly one. Structured [`frame::T_BUSY`]
/// backpressure is honoured transparently: shed submits are
/// resubmitted after the server's retry hint.
pub struct MuxClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    limits: HelloLimits,
    /// Responses read while looking for a different request id.
    stash: VecDeque<Frame>,
    retry: RetryPolicy,
}

/// Response-size cap: a client trusts its own server, and release CSVs
/// can be large.
const CLIENT_MAX_FRAME: u32 = u32::MAX;

impl MuxClient {
    /// Connects and performs the `HELLO` handshake, learning the
    /// server's advertised limits.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = MuxClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 1,
            limits: HelloLimits {
                max_frame: frame::DEFAULT_MAX_FRAME,
                interactive_inflight: 1,
                bulk_inflight: 1,
                park_capacity: 0,
            },
            stash: VecDeque::new(),
            retry: RetryPolicy::default(),
        };
        let rid = client.send(|rid| Frame::empty(T_HELLO, rid))?;
        let reply = client.recv_for(rid)?;
        match reply.ftype {
            T_HELLO_OK => {
                client.limits = parse_hello_ok(&reply.payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                Ok(client)
            }
            T_ERROR => {
                let (_, msg) = parse_error(&reply.payload);
                Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("handshake rejected: {msg}"),
                ))
            }
            other => Err(unexpected_frame(other)),
        }
    }

    /// The limits the server advertised during the handshake.
    pub fn limits(&self) -> HelloLimits {
        self.limits
    }

    /// Replaces the `BUSY` backoff policy (see [`RetryPolicy`]).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builds a frame with a fresh request id and writes it out.
    fn send(&mut self, build: impl FnOnce(u64) -> Frame) -> io::Result<u64> {
        let rid = self.next_id;
        self.next_id += 1;
        let f = build(rid);
        frame::write_frame(&mut self.writer, &f)?;
        Ok(rid)
    }

    /// Reads the next response frame (stashed frames first).
    fn recv_any(&mut self) -> io::Result<Frame> {
        if let Some(f) = self.stash.pop_front() {
            return Ok(f);
        }
        read_frame(&mut self.reader, CLIENT_MAX_FRAME)
    }

    /// Reads until the response for `rid` arrives, stashing any
    /// out-of-band responses for other in-flight requests.
    fn recv_for(&mut self, rid: u64) -> io::Result<Frame> {
        if let Some(pos) = self.stash.iter().position(|f| f.request_id == rid) {
            if let Some(f) = self.stash.remove(pos) {
                return Ok(f);
            }
        }
        loop {
            let f = read_frame(&mut self.reader, CLIENT_MAX_FRAME)?;
            if f.request_id == rid {
                return Ok(f);
            }
            self.stash.push_back(f);
        }
    }

    /// One request/response exchange resolving to `OK <text>`-style
    /// replies.
    fn rpc_text(&mut self, build: impl FnOnce(u64) -> Frame) -> io::Result<Result<String, String>> {
        let rid = self.send(build)?;
        let reply = self.recv_for(rid)?;
        match reply.ftype {
            T_OK_TEXT => Ok(Ok(String::from_utf8_lossy(&reply.payload).into_owned())),
            T_ERROR => {
                let (_, msg) = parse_error(&reply.payload);
                Ok(Err(msg))
            }
            other => Err(unexpected_frame(other)),
        }
    }

    /// Health check.
    pub fn ping(&mut self) -> io::Result<bool> {
        let rid = self.send(|rid| Frame::empty(T_PING, rid))?;
        Ok(self.recv_for(rid)?.ftype == T_PONG)
    }

    /// The server's `STATS` line (workers, queue depth, counters).
    pub fn stats(&mut self) -> io::Result<String> {
        self.rpc_text(|rid| Frame::empty(T_STATS, rid))?
            .map_err(io::Error::other)
    }

    /// The server's Prometheus-style metrics text, wire counters
    /// included.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.rpc_text(|rid| Frame::empty(T_METRICS, rid))?
            .map_err(io::Error::other)
    }

    /// Registers the three CSV tables as a prepared dataset (see
    /// [`Client::prepare`]).
    pub fn prepare(
        &mut self,
        hierarchy_csv: &str,
        groups_csv: &str,
        entities_csv: &str,
    ) -> io::Result<Result<DatasetHandle, String>> {
        let tables = [hierarchy_csv, groups_csv, entities_csv];
        let reply = self.rpc_text(|rid| frame::prepare_frame(rid, tables))?;
        Ok(reply.and_then(|text| text.parse()))
    }

    /// Derives a prepared dataset by applying `delta` to `parent`
    /// (see [`Client::derive`]).
    pub fn derive(
        &mut self,
        parent: DatasetHandle,
        delta: &hcc_data::DatasetDelta,
    ) -> io::Result<Result<DatasetHandle, String>> {
        let csv = delta.to_csv();
        let parent = parent.to_string();
        let reply =
            self.rpc_text(|rid| frame::derive_frame(rid, frame::T_DERIVE, &parent, &csv))?;
        Ok(reply.and_then(|text| text.parse()))
    }

    /// Rolling-update variant of [`MuxClient::derive`] (see
    /// [`Client::append`]).
    pub fn append(
        &mut self,
        parent: DatasetHandle,
        delta: &hcc_data::DatasetDelta,
    ) -> io::Result<Result<DatasetHandle, String>> {
        let csv = delta.to_csv();
        let parent = parent.to_string();
        let reply =
            self.rpc_text(|rid| frame::derive_frame(rid, frame::T_APPEND, &parent, &csv))?;
        Ok(reply.and_then(|text| text.parse()))
    }

    /// Drops one reference to a prepared dataset; returns how many
    /// references the server still holds.
    pub fn unprepare(&mut self, handle: DatasetHandle) -> io::Result<Result<u64, String>> {
        let handle = handle.to_string();
        let reply = self.rpc_text(|rid| frame::unprepare_frame(rid, &handle))?;
        Ok(reply.and_then(|text| {
            text.strip_prefix("refs=")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("unexpected reply {text:?}"))
        }))
    }

    /// Submits one release from raw CSV tables and blocks until its
    /// result frame arrives. `BUSY` sheds are retried after the
    /// server's hint.
    pub fn submit_release(
        &mut self,
        params: &SubmitParams,
        hierarchy_csv: &str,
        groups_csv: &str,
        entities_csv: &str,
    ) -> io::Result<Result<FetchedRelease, String>> {
        let tables = Some([hierarchy_csv, groups_csv, entities_csv]);
        let mut attempt = 0u32;
        loop {
            let rid = self.send(|rid| frame::submit_frame(rid, params, tables, false))?;
            match self.await_submit(rid)? {
                SubmitOutcome::Done(outcome) => return Ok(outcome),
                SubmitOutcome::Busy(retry_ms) => {
                    if attempt >= self.retry.max_attempts {
                        return Ok(Err(self.retry.exhausted(&format!("retry in {retry_ms}ms"))));
                    }
                    let delay = self.retry.delay_ms(attempt, retry_ms);
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(u64::from(delay)));
                }
            }
        }
    }

    /// Submits one release of a prepared dataset and blocks until its
    /// result frame arrives.
    pub fn submit_prepared(
        &mut self,
        params: &SubmitParams,
        handle: DatasetHandle,
    ) -> io::Result<Result<FetchedRelease, String>> {
        let params = SubmitParams {
            handle: Some(handle),
            ..params.clone()
        };
        let mut attempt = 0u32;
        loop {
            let rid = self.send(|rid| frame::submit_frame(rid, &params, None, false))?;
            match self.await_submit(rid)? {
                SubmitOutcome::Done(outcome) => return Ok(outcome),
                SubmitOutcome::Busy(retry_ms) => {
                    if attempt >= self.retry.max_attempts {
                        return Ok(Err(self.retry.exhausted(&format!("retry in {retry_ms}ms"))));
                    }
                    let delay = self.retry.delay_ms(attempt, retry_ms);
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(u64::from(delay)));
                }
            }
        }
    }

    /// Resolves one in-flight submit's response frame.
    fn await_submit(&mut self, rid: u64) -> io::Result<SubmitOutcome> {
        let reply = self.recv_for(rid)?;
        Ok(match reply.ftype {
            T_RESULT => {
                let parsed = parse_result(&reply.payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                SubmitOutcome::Done(Ok(FetchedRelease {
                    csv: parsed.csv,
                    from_cache: parsed.from_cache,
                }))
            }
            T_ERROR => {
                let (_, msg) = parse_error(&reply.payload);
                SubmitOutcome::Done(Err(msg))
            }
            T_BUSY => {
                let busy = parse_busy(&reply.payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                SubmitOutcome::Busy(busy.retry_ms)
            }
            other => return Err(unexpected_frame(other)),
        })
    }

    /// Pipelined ε-sweep over one prepared handle: every grid point's
    /// submit frame is written before any response is read, so the
    /// sweep costs roughly one round trip instead of one per point.
    /// Results return in grid order regardless of completion order;
    /// `BUSY` sheds resubmit after the server's retry hint. Points
    /// beyond the first are submitted on the bulk lane, keeping a big
    /// sweep from starving the connection's interactive quota.
    pub fn sweep(
        &mut self,
        base: &SubmitParams,
        handle: DatasetHandle,
        epsilons: &[f64],
    ) -> io::Result<Vec<SweepPoint>> {
        let mut outcomes: Vec<Option<Result<FetchedRelease, String>>> =
            epsilons.iter().map(|_| None).collect();
        // Per-point shed count: the backoff ladder climbs point by
        // point, so one hot grid entry cannot exhaust its neighbours.
        let mut attempts: Vec<u32> = epsilons.iter().map(|_| 0).collect();
        // request id → grid index
        let mut pending: Vec<(u64, usize)> = Vec::with_capacity(epsilons.len());
        for (idx, &epsilon) in epsilons.iter().enumerate() {
            let params = SubmitParams {
                epsilon,
                handle: Some(handle),
                ..base.clone()
            };
            let rid = self.send(|rid| frame::submit_frame(rid, &params, None, idx > 0))?;
            pending.push((rid, idx));
        }
        let mut done = 0usize;
        while done < epsilons.len() {
            let reply = self.recv_any()?;
            let Some(pos) = pending.iter().position(|&(rid, _)| rid == reply.request_id) else {
                // A response for nothing we sent (e.g. a server-side
                // idle notice) — fatal for the sweep.
                return Err(unexpected_frame(reply.ftype));
            };
            let (_, idx) = pending.swap_remove(pos);
            match reply.ftype {
                T_RESULT => {
                    let parsed = parse_result(&reply.payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    if let Some(slot) = outcomes.get_mut(idx) {
                        *slot = Some(Ok(FetchedRelease {
                            csv: parsed.csv,
                            from_cache: parsed.from_cache,
                        }));
                    }
                    done += 1;
                }
                T_ERROR => {
                    let (_, msg) = parse_error(&reply.payload);
                    if let Some(slot) = outcomes.get_mut(idx) {
                        *slot = Some(Err(msg));
                    }
                    done += 1;
                }
                T_BUSY => {
                    let busy = parse_busy(&reply.payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    let attempt = attempts.get(idx).copied().unwrap_or(0);
                    if attempt >= self.retry.max_attempts {
                        if let Some(slot) = outcomes.get_mut(idx) {
                            *slot = Some(Err(self
                                .retry
                                .exhausted(&format!("retry in {}ms", busy.retry_ms))));
                        }
                        done += 1;
                        continue;
                    }
                    if let Some(a) = attempts.get_mut(idx) {
                        *a += 1;
                    }
                    let delay = self.retry.delay_ms(attempt, busy.retry_ms);
                    std::thread::sleep(Duration::from_millis(u64::from(delay)));
                    let params = SubmitParams {
                        epsilon: epsilons.get(idx).copied().unwrap_or(base.epsilon),
                        handle: Some(handle),
                        ..base.clone()
                    };
                    let rid = self.send(|rid| frame::submit_frame(rid, &params, None, idx > 0))?;
                    pending.push((rid, idx));
                }
                other => return Err(unexpected_frame(other)),
            }
        }
        Ok(epsilons
            .iter()
            .zip(outcomes)
            .map(|(&epsilon, outcome)| SweepPoint {
                epsilon,
                outcome: outcome.unwrap_or_else(|| Err("sweep point never resolved".to_string())),
            })
            .collect())
    }

    /// Says goodbye and closes the connection.
    pub fn quit(mut self) -> io::Result<()> {
        let rid = self.send(|rid| Frame::empty(T_GOODBYE, rid))?;
        let _ = self.recv_for(rid)?;
        Ok(())
    }
}

/// A submit's response frame, resolved.
enum SubmitOutcome {
    Done(Result<FetchedRelease, String>),
    Busy(u32),
}

fn unexpected_frame(ftype: u8) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response frame type 0x{ftype:02X}"),
    )
}
