//! Golden bit-identity suite for the estimation hot path.
//!
//! The PR-5 workspace/flat-PAV/batched-noise optimizations must not
//! change a single released byte: for three fixed seeds × {Hc, Hg} ×
//! {1, 4} threads, the release CSV must hash to the value captured
//! from `top_down_release` **before** the refactor (the seed-style
//! per-node-allocation pipeline). A changed hash here means an
//! optimization altered the RNG draw order or the post-processing
//! arithmetic — a correctness bug, not a perf regression.

use std::sync::Arc;

use hcc_consistency::{to_csv, top_down_release, HierarchicalCounts, LevelMethod, TopDownConfig};
use hcc_core::CountOfCounts;
use hcc_engine::parallel_release;
use hcc_hierarchy::{Hierarchy, HierarchyBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a 64-bit; dependency-free and stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic 3-level dataset (nation → 3 states → 3 counties
/// each) with mixed dense/sparse leaf histograms, including size-0
/// groups and sizes near the truncation bound.
fn dataset() -> (Arc<Hierarchy>, Arc<HierarchicalCounts>) {
    let mut b = HierarchyBuilder::new("nation");
    let mut leaves = Vec::new();
    for s in 0..3 {
        let state = b.add_child(Hierarchy::ROOT, format!("s{s}"));
        for c in 0..3 {
            leaves.push(b.add_child(state, format!("s{s}c{c}")));
        }
    }
    let h = b.build();
    let data = HierarchicalCounts::from_leaves(
        &h,
        leaves
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                (
                    l,
                    CountOfCounts::from_group_sizes(
                        (0..40u64).map(|k| (k * (i as u64 + 2) * 7) % 90),
                    ),
                )
            })
            .collect(),
    )
    .unwrap();
    (Arc::new(h), Arc::new(data))
}

/// Golden FNV-1a hashes of the release CSV, captured from
/// `top_down_release` on the pre-refactor pipeline (per-node
/// allocations, per-element median heaps, per-draw `ln` noise setup).
/// One entry per (seed, method); the release is thread-count
/// invariant, so every thread count must reproduce the same hash.
const GOLDEN: &[(u64, &str, u64)] = &[
    (101, "hc", 0x4ca65581ed11bfd7),
    (202, "hc", 0x2388c65e4b3addce),
    (303, "hc", 0x4b1a5ca14795755e),
    (101, "hg", 0x4d8bf2b488a2e686),
    (202, "hg", 0x2e8d5082358b256b),
    (303, "hg", 0x150c11768652f808),
];

fn method_for(name: &str) -> LevelMethod {
    match name {
        "hc" => LevelMethod::Cumulative { bound: 128 },
        "hg" => LevelMethod::Unattributed,
        other => panic!("unknown method {other}"),
    }
}

#[test]
fn release_csv_hashes_match_pre_refactor_goldens() {
    let (h, d) = dataset();
    for &(seed, method, want) in GOLDEN {
        let cfg = TopDownConfig::new(1.0).with_method(method_for(method));
        // Reference path: the direct single-threaded release.
        let mut rng = StdRng::seed_from_u64(seed);
        let direct = top_down_release(&h, &d, &cfg, &mut rng).unwrap();
        let csv = to_csv(&h, &direct);
        let got = fnv1a64(csv.as_bytes());
        assert_eq!(
            got, want,
            "seed {seed} method {method}: top_down_release CSV hash \
             {got:#018x} != golden {want:#018x} — an optimization changed \
             released bytes"
        );
        // The engine executor at 1 and 4 threads (one workspace per
        // worker) must release the very same bytes.
        for threads in [1usize, 4] {
            let rel = parallel_release(&h, &d, &cfg, seed, threads).unwrap();
            let csv = to_csv(&h, &rel);
            let got = fnv1a64(csv.as_bytes());
            assert_eq!(
                got, want,
                "seed {seed} method {method} threads {threads}: \
                 parallel_release diverged from the golden hash"
            );
        }
    }
}

/// Regenerates the golden table: `cargo test -p hcc-engine --test
/// golden_release -- --ignored --nocapture print_golden_hashes`.
/// Only legitimate after a PR that *intends* to change released bytes
/// (e.g. a new noise distribution) — never to paper over an
/// optimization diff.
#[test]
#[ignore]
fn print_golden_hashes() {
    let (h, d) = dataset();
    for method in ["hc", "hg"] {
        for seed in [101u64, 202, 303] {
            let cfg = TopDownConfig::new(1.0).with_method(method_for(method));
            let mut rng = StdRng::seed_from_u64(seed);
            let rel = top_down_release(&h, &d, &cfg, &mut rng).unwrap();
            let hash = fnv1a64(to_csv(&h, &rel).as_bytes());
            println!("    ({seed}, {method:?}, {hash:#018x}),");
        }
    }
}
