//! Golden bit-identity suite for the estimation hot path and the
//! engine's work-stealing scheduler.
//!
//! The PR-5 workspace/flat-PAV/batched-noise optimizations must not
//! change a single released byte: for three fixed seeds × {Hc, Hg},
//! the release CSV must hash to the value captured from
//! `top_down_release` **before** the refactor (the seed-style
//! per-node-allocation pipeline). A changed hash here means an
//! optimization altered the RNG draw order or the post-processing
//! arithmetic — a correctness bug, not a perf regression.
//!
//! The engine layer extends the same pin across scheduling: single
//! jobs and 8-job batches through [`Engine`] at {1, 2, 4, 8} workers
//! (full oversubscription contention forced via
//! `with_active_limit(workers)`) must reproduce the identical hashes,
//! making "bit-identical under stealing" a checked invariant. CI also
//! runs the suite pinned to one worker count per lane via
//! `HCC_SCHED_WORKERS`, so races that only reproduce under a
//! particular contention level get their own run.

use std::sync::Arc;

use hcc_consistency::{to_csv, top_down_release, HierarchicalCounts, LevelMethod, TopDownConfig};
use hcc_core::CountOfCounts;
use hcc_engine::{parallel_release, Engine, EngineConfig, ReleaseRequest};
use hcc_hierarchy::{Hierarchy, HierarchyBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a 64-bit; dependency-free and stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic 3-level dataset (nation → 3 states → 3 counties
/// each) with mixed dense/sparse leaf histograms, including size-0
/// groups and sizes near the truncation bound.
fn dataset() -> (Arc<Hierarchy>, Arc<HierarchicalCounts>) {
    let mut b = HierarchyBuilder::new("nation");
    let mut leaves = Vec::new();
    for s in 0..3 {
        let state = b.add_child(Hierarchy::ROOT, format!("s{s}"));
        for c in 0..3 {
            leaves.push(b.add_child(state, format!("s{s}c{c}")));
        }
    }
    let h = b.build();
    let data = HierarchicalCounts::from_leaves(
        &h,
        leaves
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                (
                    l,
                    CountOfCounts::from_group_sizes(
                        (0..40u64).map(|k| (k * (i as u64 + 2) * 7) % 90),
                    ),
                )
            })
            .collect(),
    )
    .unwrap();
    (Arc::new(h), Arc::new(data))
}

/// Golden FNV-1a hashes of the release CSV, captured from
/// `top_down_release` on the pre-refactor pipeline (per-node
/// allocations, per-element median heaps, per-draw `ln` noise setup).
/// One entry per (seed, method); the release is thread-count
/// invariant, so every thread count must reproduce the same hash.
const GOLDEN: &[(u64, &str, u64)] = &[
    (101, "hc", 0x4ca65581ed11bfd7),
    (202, "hc", 0x2388c65e4b3addce),
    (303, "hc", 0x4b1a5ca14795755e),
    (101, "hg", 0x4d8bf2b488a2e686),
    (202, "hg", 0x2e8d5082358b256b),
    (303, "hg", 0x150c11768652f808),
];

fn method_for(name: &str) -> LevelMethod {
    match name {
        "hc" => LevelMethod::Cumulative { bound: 128 },
        "hg" => LevelMethod::Unattributed,
        other => panic!("unknown method {other}"),
    }
}

/// Worker counts under test: all of {1, 2, 4, 8} by default, or the
/// single count named by `HCC_SCHED_WORKERS` (the CI contention
/// lanes).
fn worker_counts() -> Vec<usize> {
    match std::env::var("HCC_SCHED_WORKERS") {
        Ok(v) => vec![v
            .parse()
            .expect("HCC_SCHED_WORKERS must be a positive integer")],
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// An engine whose scheduler really runs `workers`-way contention:
/// the result cache is off (every submission must compute) and the
/// compute gate is widened to `workers` so even a single-core host
/// time-slices that many interleaved estimation working sets.
fn contended_engine(workers: usize) -> Engine {
    Engine::start(
        EngineConfig::default()
            .with_workers(workers)
            .with_active_limit(workers)
            .with_cache_capacity(0),
    )
}

#[test]
fn release_csv_hashes_match_pre_refactor_goldens() {
    let (h, d) = dataset();
    for &(seed, method, want) in GOLDEN {
        let cfg = TopDownConfig::new(1.0).with_method(method_for(method));
        // Reference path: the direct single-threaded release.
        let mut rng = StdRng::seed_from_u64(seed);
        let direct = top_down_release(&h, &d, &cfg, &mut rng).unwrap();
        let csv = to_csv(&h, &direct);
        let got = fnv1a64(csv.as_bytes());
        assert_eq!(
            got, want,
            "seed {seed} method {method}: top_down_release CSV hash \
             {got:#018x} != golden {want:#018x} — an optimization changed \
             released bytes"
        );
        // The engine executor at 1 and 4 threads (one workspace per
        // worker) must release the very same bytes.
        for threads in [1usize, 4] {
            let rel = parallel_release(&h, &d, &cfg, seed, threads).unwrap();
            let csv = to_csv(&h, &rel);
            let got = fnv1a64(csv.as_bytes());
            assert_eq!(
                got, want,
                "seed {seed} method {method} threads {threads}: \
                 parallel_release diverged from the golden hash"
            );
        }
    }
}

/// Single jobs through the work-stealing engine: every worker count
/// in {1, 2, 4, 8} must release the exact pre-refactor bytes for all
/// 3 seeds × {Hc, Hg}. New coverage for this PR: the 2- and 8-worker
/// columns, and the engine path itself (subtree tasks interleaved
/// across per-worker deques instead of a per-job thread pool).
#[test]
fn engine_single_jobs_match_goldens_at_every_worker_count() {
    let (h, d) = dataset();
    for &workers in &worker_counts() {
        let mut engine = contended_engine(workers);
        for &(seed, method, want) in GOLDEN {
            let cfg = TopDownConfig::new(1.0).with_method(method_for(method));
            let id = engine
                .submit(ReleaseRequest::new(
                    Arc::clone(&h),
                    Arc::clone(&d),
                    cfg,
                    seed,
                ))
                .unwrap();
            let (result, _) = engine.wait(id).unwrap();
            let got = fnv1a64(result.csv.as_bytes());
            assert_eq!(
                got, want,
                "seed {seed} method {method} workers {workers}: engine \
                 release diverged from the golden hash"
            );
        }
        engine.shutdown();
    }
}

/// 8-job batches in flight at once: node tasks from all eight jobs
/// interleave on the same deques (and get stolen across workers), yet
/// each job's CSV must still hash to its serial value. Seeds 101-303
/// are pinned by the golden table; 404-808 are checked against a live
/// `top_down_release` oracle computed up front.
#[test]
fn engine_8_job_batches_match_goldens_at_every_worker_count() {
    const BATCH_SEEDS: [u64; 8] = [101, 202, 303, 404, 505, 606, 707, 808];
    let (h, d) = dataset();
    for method in ["hc", "hg"] {
        let cfg = TopDownConfig::new(1.0).with_method(method_for(method));
        let want: Vec<u64> = BATCH_SEEDS
            .iter()
            .map(|&seed| {
                GOLDEN
                    .iter()
                    .find(|&&(s, m, _)| s == seed && m == method)
                    .map(|&(_, _, hash)| hash)
                    .unwrap_or_else(|| {
                        let mut rng = StdRng::seed_from_u64(seed);
                        let rel = top_down_release(&h, &d, &cfg, &mut rng).unwrap();
                        fnv1a64(to_csv(&h, &rel).as_bytes())
                    })
            })
            .collect();
        for &workers in &worker_counts() {
            let mut engine = contended_engine(workers);
            let ids: Vec<_> = BATCH_SEEDS
                .iter()
                .map(|&seed| {
                    engine
                        .submit(ReleaseRequest::new(
                            Arc::clone(&h),
                            Arc::clone(&d),
                            cfg.clone(),
                            seed,
                        ))
                        .unwrap()
                })
                .collect();
            for (i, id) in ids.into_iter().enumerate() {
                let (result, _) = engine.wait(id).unwrap();
                let got = fnv1a64(result.csv.as_bytes());
                assert_eq!(
                    got, want[i],
                    "seed {} method {method} workers {workers}: batched \
                     engine release diverged from its serial hash",
                    BATCH_SEEDS[i]
                );
            }
            engine.shutdown();
        }
    }
}

/// Regenerates the golden table: `cargo test -p hcc-engine --test
/// golden_release -- --ignored --nocapture print_golden_hashes`.
/// Only legitimate after a PR that *intends* to change released bytes
/// (e.g. a new noise distribution) — never to paper over an
/// optimization diff.
#[test]
#[ignore]
fn print_golden_hashes() {
    let (h, d) = dataset();
    for method in ["hc", "hg"] {
        for seed in [101u64, 202, 303] {
            let cfg = TopDownConfig::new(1.0).with_method(method_for(method));
            let mut rng = StdRng::seed_from_u64(seed);
            let rel = top_down_release(&h, &d, &cfg, &mut rng).unwrap();
            let hash = fnv1a64(to_csv(&h, &rel).as_bytes());
            println!("    ({seed}, {method:?}, {hash:#018x}),");
        }
    }
}
