//! Sum-preserving integer rounding.
//!
//! Two places in the paper need fractional vectors turned into
//! integers without disturbing a known total:
//!
//! * Section 4.1 — after the naive method's simplex projection:
//!   "set `r = G − Σ ⌊Ĥ[i]⌋`, round the cells with the `r` largest
//!   fractional parts up, and round the rest down";
//! * footnote 10 — apportioning `r` parent groups across children in
//!   proportion to their unmatched counts, "rounding up the `r_i` with
//!   the `k` largest fractional parts".
//!
//! Both are the largest-remainder method, implemented here once.

/// Rounds a non-negative fractional vector to integers summing to
/// exactly `target`, by the largest-remainder rule. Negative inputs
/// are clamped to zero before rounding.
///
/// If even rounding everything up cannot reach `target` (or rounding
/// everything down still overshoots), the residual is added to (or
/// removed from) the largest cells; this keeps the function total for
/// noisy inputs whose sum drifted from `target`.
pub fn round_preserving_sum(x: &[f64], target: u64) -> Vec<u64> {
    assert!(
        x.iter().all(|v| v.is_finite()),
        "cannot round non-finite values"
    );
    let mut out: Vec<u64> = Vec::with_capacity(x.len());
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(x.len());
    let mut floor_sum: u64 = 0;
    for (i, &v) in x.iter().enumerate() {
        let v = v.max(0.0);
        let f = v.floor();
        floor_sum += f as u64;
        out.push(f as u64);
        fracs.push((v - f, i));
    }
    if floor_sum <= target {
        let mut r = target - floor_sum;
        // Round up the r largest fractional parts first; if r exceeds
        // the cell count, loop (adds ⌈r/n⌉-ish to the front cells).
        fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        while r > 0 {
            for &(_, i) in &fracs {
                if r == 0 {
                    break;
                }
                out[i] += 1;
                r -= 1;
            }
            if fracs.is_empty() {
                break;
            }
        }
    } else {
        let mut r = floor_sum - target;
        // Overshoot: decrement cells, preferring the smallest
        // fractional parts (they were "least entitled" to their floor)
        // among strictly positive cells.
        fracs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        while r > 0 {
            let mut progressed = false;
            for &(_, i) in &fracs {
                if r == 0 {
                    break;
                }
                if out[i] > 0 {
                    out[i] -= 1;
                    r -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }
    out
}

/// Largest-remainder apportionment: splits `total` into integer parts
/// proportional to `weights` (footnote 10 of the paper). The result
/// sums to exactly `total`; zero-weight entries receive zero unless
/// every weight is zero, in which case the split is as even as
/// possible.
pub fn apportion(total: u64, weights: &[u64]) -> Vec<u64> {
    if weights.is_empty() {
        assert_eq!(total, 0, "cannot apportion a positive total to nobody");
        return Vec::new();
    }
    let wsum: u64 = weights.iter().sum();
    if wsum == 0 {
        // Degenerate: spread evenly.
        let n = weights.len() as u64;
        let base = total / n;
        let extra = (total % n) as usize;
        return (0..weights.len())
            .map(|i| base + u64::from(i < extra))
            .collect();
    }
    let mut out: Vec<u64> = Vec::with_capacity(weights.len());
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        // Integer arithmetic for the quotient to stay exact at scale.
        let q = (total as u128 * w as u128) / wsum as u128;
        let rem = (total as u128 * w as u128) % wsum as u128;
        out.push(q as u64);
        assigned += q as u64;
        fracs.push((rem as f64 / wsum as f64, i));
    }
    let mut r = total - assigned;
    fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    for &(_, i) in &fracs {
        if r == 0 {
            break;
        }
        // Only entries with a positive weight carry a remainder > 0,
        // but guard anyway so zero-weight cells never receive mass.
        if weights[i] > 0 {
            out[i] += 1;
            r -= 1;
        }
    }
    debug_assert_eq!(out.iter().sum::<u64>(), total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_integers_pass_through() {
        assert_eq!(round_preserving_sum(&[1.0, 2.0, 3.0], 6), vec![1, 2, 3]);
    }

    #[test]
    fn largest_fractions_round_up() {
        // Fractions 0.9 and 0.6 are the two largest; target needs 2 ups.
        let x = [0.9, 1.6, 2.1];
        assert_eq!(round_preserving_sum(&x, 5), vec![1, 2, 2]);
    }

    #[test]
    fn negative_values_clamped() {
        assert_eq!(round_preserving_sum(&[-3.0, 2.0], 2), vec![0, 2]);
    }

    #[test]
    fn overshoot_is_trimmed() {
        // Floors sum to 7 but target is 5.
        let x = [3.0, 4.0];
        let out = round_preserving_sum(&x, 5);
        assert_eq!(out.iter().sum::<u64>(), 5);
    }

    #[test]
    fn undershoot_is_topped_up_beyond_fractions() {
        // Floors sum to 0, no fractions, but target is 3.
        let out = round_preserving_sum(&[0.0, 0.0], 3);
        assert_eq!(out.iter().sum::<u64>(), 3);
    }

    #[test]
    fn all_zero_cells_cannot_absorb_overshoot() {
        let out = round_preserving_sum(&[0.0, 0.0], 0);
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn apportion_proportional_split() {
        // Paper's example: 300 parent groups over children with 200,
        // 100, 100 — wait, the paper splits |Gt|=300 when children
        // have 400 total; here 200:100:100 gets 50%:25%:25%.
        assert_eq!(apportion(300, &[200, 100, 100]), vec![150, 75, 75]);
    }

    #[test]
    fn apportion_rounds_by_largest_remainder() {
        // 10 split 1:1:1 → 4,3,3 (first gets the remainder).
        let out = apportion(10, &[1, 1, 1]);
        assert_eq!(out.iter().sum::<u64>(), 10);
        assert!(out.iter().all(|&v| v == 3 || v == 4));
    }

    #[test]
    fn apportion_zero_weights_even_split() {
        assert_eq!(apportion(5, &[0, 0]), vec![3, 2]);
    }

    #[test]
    fn apportion_zero_weight_entry_gets_nothing() {
        let out = apportion(7, &[0, 7]);
        assert_eq!(out, vec![0, 7]);
    }

    #[test]
    #[should_panic(expected = "to nobody")]
    fn apportion_empty_with_total_panics() {
        let _ = apportion(1, &[]);
    }

    proptest! {
        #[test]
        fn round_preserving_sum_hits_target(
            x in prop::collection::vec(-5.0f64..50.0, 1..30),
            target in 0u64..500,
        ) {
            let out = round_preserving_sum(&x, target);
            prop_assert_eq!(out.iter().sum::<u64>(), target);
            prop_assert_eq!(out.len(), x.len());
        }

        #[test]
        fn rounding_moves_each_cell_less_than_one_when_sum_matches(
            fracs in prop::collection::vec(0.0f64..1.0, 1..20),
        ) {
            // Build x whose sum is an integer, then check |out - x| < 1
            // cell-wise (the defining property of largest-remainder).
            let s: f64 = fracs.iter().sum();
            let target = s.round() as u64;
            let adjust = (target as f64 - s) / fracs.len() as f64;
            let x: Vec<f64> = fracs.iter().map(|f| (f + adjust).max(0.0)).collect();
            let xs: f64 = x.iter().sum();
            prop_assume!((xs - target as f64).abs() < 1e-9);
            let out = round_preserving_sum(&x, target);
            for (o, v) in out.iter().zip(x.iter()) {
                prop_assert!((*o as f64 - v).abs() < 1.0 + 1e-9);
            }
        }

        #[test]
        fn apportion_sums_and_bounds(
            weights in prop::collection::vec(0u64..1000, 1..20),
            total in 0u64..10_000,
        ) {
            let out = apportion(total, &weights);
            prop_assert_eq!(out.iter().sum::<u64>(), total);
            let wsum: u64 = weights.iter().sum();
            if wsum > 0 {
                for (o, &w) in out.iter().zip(weights.iter()) {
                    let exact = total as f64 * w as f64 / wsum as f64;
                    prop_assert!((*o as f64 - exact).abs() < 1.0 + 1e-9,
                        "cell got {} but exact share is {}", o, exact);
                }
            }
        }
    }
}
