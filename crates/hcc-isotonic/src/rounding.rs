//! Sum-preserving integer rounding.
//!
//! Two places in the paper need fractional vectors turned into
//! integers without disturbing a known total:
//!
//! * Section 4.1 — after the naive method's simplex projection:
//!   "set `r = G − Σ ⌊Ĥ[i]⌋`, round the cells with the `r` largest
//!   fractional parts up, and round the rest down";
//! * footnote 10 — apportioning `r` parent groups across children in
//!   proportion to their unmatched counts, "rounding up the `r_i` with
//!   the `k` largest fractional parts".
//!
//! Both are the largest-remainder method, implemented here once.

/// Rounds a fractional vector to integers summing to exactly
/// `target`, by the largest-remainder rule. Inputs are explicitly
/// clamped into the representable range first: negative fits round to
/// zero (their deficit is redistributed across the other cells) and
/// values beyond `u64::MAX` saturate.
///
/// If even rounding everything up cannot reach `target` (or rounding
/// everything down still overshoots), the residual is spread evenly
/// over the cells, largest fractional parts first; this keeps the
/// function total for noisy inputs whose sum drifted from `target`.
///
/// Both `target` and the cell magnitudes are treated as untrusted
/// (census-scale `K × counts` flows through here): the floor sum
/// accumulates in `u128` so it cannot wrap, and redistribution is
/// done in bulk arithmetic — the cost is `O(n log n)`, never
/// `O(target)`.
pub fn round_preserving_sum(x: &[f64], target: u64) -> Vec<u64> {
    assert!(
        x.iter().all(|v| v.is_finite()),
        "cannot round non-finite values"
    );
    let mut out: Vec<u64> = Vec::with_capacity(x.len());
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(x.len());
    let mut floor_sum: u128 = 0;
    for (i, &v) in x.iter().enumerate() {
        let v = v.max(0.0);
        let f = v.floor();
        // The `as u64` cast saturates at u64::MAX; accumulate from the
        // saturated cell value (not the raw float, whose nearest f64
        // above u64::MAX is 2^64) so `floor_sum` always equals the sum
        // of `out` exactly.
        let cell = f as u64;
        floor_sum += u128::from(cell);
        out.push(cell);
        fracs.push((v - f, i));
    }
    if floor_sum <= u128::from(target) {
        let mut r = u128::from(target) - floor_sum;
        if !fracs.is_empty() && r > 0 {
            // Round up the r largest fractional parts; if r exceeds the
            // cell count, every cell takes an equal extra share (the
            // closed form of handing out one unit per cell per pass).
            fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
            let n = fracs.len() as u128;
            // r ≤ target ≤ u64::MAX, so both quotient and remainder fit.
            let base = (r / n) as u64;
            let extra = (r % n) as usize;
            for (k, &(_, i)) in fracs.iter().enumerate() {
                out[i] += base + u64::from(k < extra);
            }
            r = 0;
        }
        debug_assert!(r == 0 || fracs.is_empty());
    } else {
        let mut r = floor_sum - u128::from(target);
        // Overshoot: drain cells evenly, preferring the smallest
        // fractional parts (they were "least entitled" to their floor)
        // among strictly positive cells. Each pass removes an equal
        // share per positive cell; a cell that empties shrinks the
        // next pass, so this terminates in at most n + 1 passes.
        fracs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        while r > 0 {
            let positive: Vec<usize> = fracs
                .iter()
                .map(|&(_, i)| i)
                .filter(|&i| out[i] > 0)
                .collect();
            if positive.is_empty() {
                break;
            }
            let p = positive.len() as u128;
            if r < p {
                for &i in positive.iter().take(r as usize) {
                    out[i] -= 1;
                }
                r = 0;
            } else {
                let share = r / p;
                for &i in &positive {
                    let take = u128::from(out[i]).min(share);
                    out[i] -= take as u64;
                    r -= take;
                }
            }
        }
    }
    out
}

/// Largest-remainder apportionment: splits `total` into integer parts
/// proportional to `weights` (footnote 10 of the paper). The result
/// sums to exactly `total`; zero-weight entries receive zero unless
/// every weight is zero, in which case the split is as even as
/// possible.
pub fn apportion(total: u64, weights: &[u64]) -> Vec<u64> {
    if weights.is_empty() {
        assert_eq!(total, 0, "cannot apportion a positive total to nobody");
        return Vec::new();
    }
    // Weights are untrusted run counts — their sum can exceed u64.
    let wsum: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if wsum == 0 {
        // Degenerate: spread evenly.
        let n = weights.len() as u64;
        let base = total / n;
        let extra = (total % n) as usize;
        return (0..weights.len())
            .map(|i| base + u64::from(i < extra))
            .collect();
    }
    let mut out: Vec<u64> = Vec::with_capacity(weights.len());
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        // Integer arithmetic for the quotient to stay exact at scale.
        let q = (total as u128 * w as u128) / wsum;
        let rem = (total as u128 * w as u128) % wsum;
        out.push(q as u64);
        assigned += q as u64;
        fracs.push((rem as f64 / wsum as f64, i));
    }
    let mut r = total - assigned;
    fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    for &(_, i) in &fracs {
        if r == 0 {
            break;
        }
        // Only entries with a positive weight carry a remainder > 0,
        // but guard anyway so zero-weight cells never receive mass.
        if weights[i] > 0 {
            out[i] += 1;
            r -= 1;
        }
    }
    debug_assert_eq!(out.iter().sum::<u64>(), total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_integers_pass_through() {
        assert_eq!(round_preserving_sum(&[1.0, 2.0, 3.0], 6), vec![1, 2, 3]);
    }

    #[test]
    fn largest_fractions_round_up() {
        // Fractions 0.9 and 0.6 are the two largest; target needs 2 ups.
        let x = [0.9, 1.6, 2.1];
        assert_eq!(round_preserving_sum(&x, 5), vec![1, 2, 2]);
    }

    #[test]
    fn negative_values_clamped() {
        assert_eq!(round_preserving_sum(&[-3.0, 2.0], 2), vec![0, 2]);
    }

    #[test]
    fn overshoot_is_trimmed() {
        // Floors sum to 7 but target is 5.
        let x = [3.0, 4.0];
        let out = round_preserving_sum(&x, 5);
        assert_eq!(out.iter().sum::<u64>(), 5);
    }

    #[test]
    fn undershoot_is_topped_up_beyond_fractions() {
        // Floors sum to 0, no fractions, but target is 3.
        let out = round_preserving_sum(&[0.0, 0.0], 3);
        assert_eq!(out.iter().sum::<u64>(), 3);
    }

    #[test]
    fn all_zero_cells_cannot_absorb_overshoot() {
        let out = round_preserving_sum(&[0.0, 0.0], 0);
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn all_negative_input_redistributes_the_full_target() {
        // Regression: negative fits must be clamped *explicitly* and
        // the resulting deficit redistributed — the output still sums
        // to the public total, spread as evenly as possible.
        let out = round_preserving_sum(&[-5.0, -1.0, -3.0], 7);
        assert_eq!(out.iter().sum::<u64>(), 7);
        assert_eq!(out, vec![3, 2, 2]);
    }

    #[test]
    fn census_scale_floors_do_not_wrap() {
        // Regression: two cells whose floors alone exceed u64::MAX
        // used to wrap the u64 accumulator (an overflow panic in debug
        // builds, a silently flipped under/overshoot branch in
        // release). Accumulating in u128 keeps the branch honest.
        let big = 1.6e19; // each < u64::MAX ≈ 1.845e19, but 2× is not
        let out = round_preserving_sum(&[big, big], 10);
        assert_eq!(out.iter().map(|&v| u128::from(v)).sum::<u128>(), 10);
    }

    #[test]
    fn huge_target_is_distributed_in_bulk() {
        // Regression: `target` is untrusted (it is the public group
        // count G straight from a CSV). The old one-unit-per-pass loop
        // made this take 2^64 iterations; the closed form is instant.
        let out = round_preserving_sum(&[0.25, 0.5], u64::MAX);
        assert_eq!(
            out.iter().map(|&v| u128::from(v)).sum::<u128>(),
            u128::from(u64::MAX)
        );
        // Largest fraction first gets the odd unit.
        assert_eq!(out[1], out[0] + 1);
    }

    #[test]
    fn saturated_cells_still_hit_the_target_exactly() {
        // A value beyond u64::MAX saturates; the accumulated floor sum
        // must track the *saturated* cell, not the raw float (whose
        // nearest f64 is 2^64, one more than the cell can hold), or
        // the drain removes one unit too many per saturated cell.
        let out = round_preserving_sum(&[2e19], 5);
        assert_eq!(out, vec![5]);
        let out = round_preserving_sum(&[2e19, 2e19], 7);
        assert_eq!(out.iter().sum::<u64>(), 7);
    }

    #[test]
    fn huge_overshoot_is_drained_in_bulk() {
        // Mirror case: floors far above a small target must drain in
        // O(n) passes, not one unit at a time.
        let big = (u64::MAX / 4) as f64;
        let out = round_preserving_sum(&[big, big, big], 5);
        assert_eq!(out.iter().sum::<u64>(), 5);
    }

    #[test]
    fn apportion_proportional_split() {
        // Paper's example: 300 parent groups over children with 200,
        // 100, 100 — wait, the paper splits |Gt|=300 when children
        // have 400 total; here 200:100:100 gets 50%:25%:25%.
        assert_eq!(apportion(300, &[200, 100, 100]), vec![150, 75, 75]);
    }

    #[test]
    fn apportion_rounds_by_largest_remainder() {
        // 10 split 1:1:1 → 4,3,3 (first gets the remainder).
        let out = apportion(10, &[1, 1, 1]);
        assert_eq!(out.iter().sum::<u64>(), 10);
        assert!(out.iter().all(|&v| v == 3 || v == 4));
    }

    #[test]
    fn apportion_zero_weights_even_split() {
        assert_eq!(apportion(5, &[0, 0]), vec![3, 2]);
    }

    #[test]
    fn apportion_zero_weight_entry_gets_nothing() {
        let out = apportion(7, &[0, 7]);
        assert_eq!(out, vec![0, 7]);
    }

    #[test]
    fn apportion_weight_sums_beyond_u64_do_not_wrap() {
        // Regression: weights are untrusted run counts whose sum can
        // exceed u64::MAX (reachable from Algorithm 2's tie
        // apportioning once pooled totals pass u64); the weight sum
        // used to accumulate in u64.
        assert_eq!(apportion(10, &[u64::MAX, u64::MAX]), vec![5, 5]);
        let out = apportion(7, &[u64::MAX, u64::MAX, 2]);
        assert_eq!(out.iter().sum::<u64>(), 7);
    }

    #[test]
    #[should_panic(expected = "to nobody")]
    fn apportion_empty_with_total_panics() {
        let _ = apportion(1, &[]);
    }

    proptest! {
        #[test]
        fn round_preserving_sum_hits_target(
            x in prop::collection::vec(-5.0f64..50.0, 1..30),
            target in 0u64..500,
        ) {
            let out = round_preserving_sum(&x, target);
            prop_assert_eq!(out.iter().sum::<u64>(), target);
            prop_assert_eq!(out.len(), x.len());
        }

        #[test]
        fn rounding_moves_each_cell_less_than_one_when_sum_matches(
            fracs in prop::collection::vec(0.0f64..1.0, 1..20),
        ) {
            // Build x whose sum is an integer, then check |out - x| < 1
            // cell-wise (the defining property of largest-remainder).
            let s: f64 = fracs.iter().sum();
            let target = s.round() as u64;
            let adjust = (target as f64 - s) / fracs.len() as f64;
            let x: Vec<f64> = fracs.iter().map(|f| (f + adjust).max(0.0)).collect();
            let xs: f64 = x.iter().sum();
            prop_assume!((xs - target as f64).abs() < 1e-9);
            let out = round_preserving_sum(&x, target);
            for (o, v) in out.iter().zip(x.iter()) {
                prop_assert!((*o as f64 - v).abs() < 1.0 + 1e-9);
            }
        }

        #[test]
        fn apportion_sums_and_bounds(
            weights in prop::collection::vec(0u64..1000, 1..20),
            total in 0u64..10_000,
        ) {
            let out = apportion(total, &weights);
            prop_assert_eq!(out.iter().sum::<u64>(), total);
            let wsum: u64 = weights.iter().sum();
            if wsum > 0 {
                for (o, &w) in out.iter().zip(weights.iter()) {
                    let exact = total as f64 * w as f64 / wsum as f64;
                    prop_assert!((*o as f64 - exact).abs() < 1.0 + 1e-9,
                        "cell got {} but exact share is {}", o, exact);
                }
            }
        }
    }
}
