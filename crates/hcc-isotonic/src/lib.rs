//! Isotonic regression and related projections (Sections 4.1–4.3 of
//! the paper).
//!
//! The paper's estimators all post-process noisy integer vectors with
//! one of three exact, special-purpose solvers:
//!
//! * [`isotonic_l2`] / [`isotonic_l2_weighted`] — pool-adjacent-
//!   violators (PAV) for `min ‖x − y‖₂² s.t. x non-decreasing`, `O(n)`.
//!   Used by the `Hg` method and the L2 variant of the `Hc` method.
//! * [`isotonic_l1`] — PAV with mergeable median blocks for
//!   `min ‖x − y‖₁ s.t. x non-decreasing`, `O(n log² n)`. Returns the
//!   lower median so integer inputs produce integer fits, matching the
//!   paper's observation that "the L1 version mostly returns
//!   integers". Preferred variant for the `Hc` method. The hot-path
//!   entry point is [`PavL1Workspace`], whose recycled block storage
//!   makes repeated solves allocation-free; [`isotonic_l1_heap`] is
//!   the seed implementation, kept as oracle and perf baseline.
//! * [`project_simplex`] — exact Euclidean projection onto
//!   `{x ≥ 0, Σx = s}` (the quadratic program of the naive method).
//!
//! [`anchored_cumulative`] composes isotonic regression with the `Hc`
//! method's boundary conditions (`0 ≤ Ĥc`, non-decreasing,
//! `Ĥc[K] = G`), and [`round_preserving_sum`] / [`apportion`]
//! implement the paper's largest-remainder integer rounding
//! (Section 4.1 and footnote 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchored;
pub mod fit;
pub mod pav_l1;
pub mod pav_l1_weighted;
pub mod pav_l2;
pub mod rounding;
pub mod simplex;

pub use anchored::{anchored_cumulative, anchored_cumulative_into, CumulativeLoss};
pub use fit::{Block, IsotonicFit};
pub use pav_l1::{isotonic_l1, isotonic_l1_heap, isotonic_l1_with, FittedBlock, PavL1Workspace};
pub use pav_l1_weighted::isotonic_l1_weighted;
pub use pav_l2::{isotonic_l2, isotonic_l2_weighted};
pub use rounding::{apportion, round_preserving_sum};
pub use simplex::project_simplex;
