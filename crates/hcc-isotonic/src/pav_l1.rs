//! Pool-adjacent-violators for L1 (least-absolute-deviations)
//! isotonic regression.
//!
//! The paper found that the L1 variant of the `Hc` method outperforms
//! L2 (consistent with Lin & Kifer's observations on unattributed
//! histograms) and that its solutions are almost always integral. We
//! realise the "almost always" as *always* by selecting the **lower
//! median** of every pooled block: any value between the lower and
//! upper median minimises the block's absolute deviation, and the
//! lower median of integers is an integer.
//!
//! Two implementations share those semantics:
//!
//! * [`PavL1Workspace::solve`] — the hot-path solver. Blocks live in
//!   one flat stack with **recycled**, adaptive median structures:
//!   small blocks are tiny two-heap pairs (cheap to churn
//!   and merge), and a block that grows past a threshold promotes to
//!   a value-indexed counting window with a rank cursor — O(1)
//!   bucket-increment pushes in a few cache lines, exactly what the
//!   `Hc` method's giant flat-tail blocks need, where binary heaps
//!   pay an O(log n) sift across hundreds of kilobytes per inserted
//!   cell. Blocks whose value span outgrows the window cap demote
//!   back to heaps, so arbitrary inputs keep the seed
//!   implementation's `O(n log² n)` bound while a warm workspace
//!   solves without touching the allocator at all. (A
//!   select-per-merge "sort buffer" design was rejected: re-selecting
//!   a giant block's median on every absorption is `O(n²)` exactly
//!   where the engine spends its time.)
//! * [`isotonic_l1_heap`] — the seed implementation (two fresh
//!   `BinaryHeap`s per input element), kept as the property-test
//!   oracle and as the perf baseline for the `release_hot_path`
//!   benchmarks.
//!
//! Both return identical fits: the block boundaries and lower medians
//! are determined by the PAV merge rule alone, not by the median
//! structure's internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fit::{Block, IsotonicFit};

// ---------------------------------------------------------------------------
// Flat, allocation-recycling solver (hot path).
// ---------------------------------------------------------------------------

/// Hard cap on a compact block's value-window span. 4 KB of counts
/// stays cache-resident; anything wider stays in (or falls back to)
/// the heap form.
const COMPACT_SPAN_MAX: i128 = 4096;

/// A single rank-cursor re-seek longer than this demotes the block
/// back to heaps: it means the block's values are spread thinly
/// across the window (long zero gaps), which is exactly where
/// counting loses to heaps.
const COMPACT_WALK_MAX: usize = 256;

/// Blocks smaller than this stay in the two-heap form: short-lived
/// blocks churn through creation and merging, and a counting window
/// per 1–2-element block costs more to scan than tiny heaps cost to
/// sift. Promotion is attempted when `n` first reaches this size.
const COMPACT_PROMOTE_AT: usize = 64;

/// One pooled PAV block: covers `start..` up to the next block's
/// start, holding `n` elements in one of two median structures (see
/// [`Repr`]).
struct PooledBlock {
    start: usize,
    n: usize,
    /// Next size at which a heap block attempts compact promotion
    /// (`usize::MAX` once demoted — spans only grow, so retrying
    /// would rescan for nothing).
    next_promote: usize,
    repr: Repr,
}

/// The adaptive element-multiset representation behind a block's
/// lower median.
///
/// * [`Repr::Heaps`] — the classic two-heap median (max-heap lower
///   half `lo`, min-heap upper half `hi`, `lo.len() == hi.len()` or
///   `hi.len() + 1`). Every block starts here: for the short-lived
///   small blocks PAV churns through, tiny recycled vectors beat any
///   fancier structure.
/// * [`Repr::Compact`] — a value-indexed counting window with a rank
///   cursor, promoted to at [`COMPACT_PROMOTE_AT`] elements when the
///   block's value span fits [`COMPACT_SPAN_MAX`]. On the `Hc` hot
///   path a big block's values are integers concentrated in a narrow
///   band (the plateau level plus double-geometric noise), so pushes
///   are O(1) bucket increments in a few cache lines — where the
///   two-heap form pays an O(log n) sift over hundreds of kilobytes.
///   Blocks whose span outgrows the cap, or whose cursor walks
///   exceed [`COMPACT_WALK_MAX`], demote back to heaps, so
///   adversarially spread inputs degrade to the seed algorithm's
///   `O(n log² n)`, never to quadratic window scans.
enum Repr {
    Compact(CompactCounts),
    Heaps { lo: Vec<i64>, hi: Vec<i64> },
}

/// Value-indexed counts over the window `base ..= base + counts.len() - 1`
/// plus a lower-median rank cursor: `med` indexes the current lower
/// median's bucket (always non-zero while the block is non-empty) and
/// `below` counts the elements in buckets before it. `min_idx` /
/// `max_idx` track the occupied extent so merges scan values, never
/// slack.
struct CompactCounts {
    base: i64,
    counts: Vec<u64>,
    med: usize,
    below: u64,
    min_idx: usize,
    max_idx: usize,
}

impl CompactCounts {
    fn median(&self) -> i64 {
        self.base + self.med as i64
    }

    /// Whether `x` falls inside the current window. Single unsigned
    /// compare: the wrapping difference is exact for in-window values
    /// and lands far above `len` for everything else.
    fn contains(&self, x: i64) -> bool {
        (x.wrapping_sub(self.base) as u64) < self.counts.len() as u64
    }

    /// Grows the window (with geometric slack) until it contains
    /// `lo_val..=hi_val`; `false` when that would exceed the span cap
    /// and the caller must demote to heaps instead.
    fn ensure(&mut self, lo_val: i64, hi_val: i64) -> bool {
        let cur_lo = self.base as i128;
        let cur_hi = cur_lo + self.counts.len() as i128; // exclusive
        let need_lo = cur_lo.min(lo_val as i128);
        let need_hi = cur_hi.max(hi_val as i128 + 1);
        if need_lo == cur_lo && need_hi == cur_hi {
            return true;
        }
        if need_hi - need_lo > COMPACT_SPAN_MAX {
            return false;
        }
        // Slack on the growing side(s) amortizes repeated growth.
        let slack = (need_hi - need_lo) / 4 + 8;
        let mut new_lo = need_lo;
        let mut new_hi = need_hi;
        if need_lo < cur_lo {
            new_lo = (need_lo - slack)
                .max(need_hi - COMPACT_SPAN_MAX)
                .max(i64::MIN as i128);
        }
        if need_hi > cur_hi {
            new_hi = (need_hi + slack)
                .min(new_lo + COMPACT_SPAN_MAX)
                .min(i64::MAX as i128 + 1);
        }
        let off = (cur_lo - new_lo) as usize;
        let old_len = self.counts.len();
        self.counts.resize((new_hi - new_lo) as usize, 0);
        if off > 0 {
            self.counts.copy_within(0..old_len, off);
            self.counts[..off].fill(0);
            self.med += off;
            self.min_idx += off;
            self.max_idx += off;
        }
        self.base = new_lo as i64;
        true
    }

    /// Adds `c` occurrences of the in-window value at `idx` without
    /// moving the cursor (callers re-seek when done).
    fn bucket_add(&mut self, idx: usize, c: u64) {
        self.counts[idx] += c;
        if idx < self.med {
            self.below += c;
        }
        if idx < self.min_idx {
            self.min_idx = idx;
        }
        if idx > self.max_idx {
            self.max_idx = idx;
        }
    }

    /// Moves the cursor to the bucket containing rank `r` (0-based),
    /// returning the walk length so single-element callers can detect
    /// gap-heavy windows.
    fn reseek(&mut self, r: u64) -> usize {
        let mut walk = 0;
        while self.below > r {
            let mut m = self.med;
            loop {
                m -= 1;
                walk += 1;
                if self.counts[m] != 0 {
                    break;
                }
            }
            self.med = m;
            self.below -= self.counts[m];
        }
        while self.below + self.counts[self.med] <= r {
            self.below += self.counts[self.med];
            let mut m = self.med;
            loop {
                m += 1;
                walk += 1;
                if self.counts[m] != 0 {
                    break;
                }
            }
            self.med = m;
        }
        walk
    }

    /// The occupied value range (O(1) — tracked on every insert).
    fn occupied_range(&self) -> (i64, i64) {
        (
            self.base + self.min_idx as i64,
            self.base + self.max_idx as i64,
        )
    }

    /// Adds all of `other`'s counts; the caller has already grown the
    /// window over `other`'s occupied range. `r` is the merged rank
    /// target. The post-merge re-seek may legitimately walk far (the
    /// median can shift by `other`'s whole size), so no walk cap here
    /// — it is bounded by the window span.
    fn absorb(&mut self, other: &CompactCounts, r: u64) {
        for i in other.min_idx..=other.max_idx {
            let c = other.counts[i];
            if c == 0 {
                continue;
            }
            let idx = (other.base + i as i64 - self.base) as usize;
            self.bucket_add(idx, c);
        }
        self.reseek(r);
    }

    /// Splits the counted multiset into the two-heap halves. Values
    /// stream out in ascending order, so the lower half reversed is
    /// already a valid max-heap and the upper half is already a valid
    /// min-heap — demotion is O(n) with no sifting.
    fn drain_to_heaps(&self, lo: &mut Vec<i64>, hi: &mut Vec<i64>) {
        lo.clear();
        hi.clear();
        let stored: u64 = self.counts[self.min_idx..=self.max_idx].iter().sum();
        let lo_target = (stored as usize).div_ceil(2);
        for i in self.min_idx..=self.max_idx {
            let v = self.base + i as i64;
            for _ in 0..self.counts[i] {
                if lo.len() < lo_target {
                    lo.push(v);
                } else {
                    hi.push(v);
                }
            }
        }
        lo.reverse();
    }
}

/// Hole-based sift-up insertion (one store per level instead of a
/// swap). `above(a, b)` is true when `a` must sit closer to the root
/// than `b` — `>` for a max-heap, `<` for a min-heap; both heap
/// orientations share these routines so the sift logic exists once.
#[inline]
fn heap_push(h: &mut Vec<i64>, x: i64, above: impl Fn(i64, i64) -> bool) {
    h.push(x);
    let mut i = h.len() - 1;
    while i > 0 {
        let p = (i - 1) / 2;
        if !above(x, h[p]) {
            break;
        }
        h[i] = h[p];
        i = p;
    }
    h[i] = x;
}

/// Sift-down from the root, placing `x`.
#[inline]
fn heap_sift_down(h: &mut [i64], x: i64, above: impl Fn(i64, i64) -> bool) {
    let n = h.len();
    let mut i = 0;
    loop {
        let l = 2 * i + 1;
        if l >= n {
            break;
        }
        let r = l + 1;
        let c = if r < n && above(h[r], h[l]) { r } else { l };
        if !above(h[c], x) {
            break;
        }
        h[i] = h[c];
        i = c;
    }
    h[i] = x;
}

/// Root removal + sift-down.
#[inline]
fn heap_pop(h: &mut Vec<i64>, above: impl Fn(i64, i64) -> bool) -> i64 {
    let top = h.swap_remove(0);
    if !h.is_empty() {
        let x = h[0];
        heap_sift_down(h, x, above);
    }
    top
}

/// Replaces the root with `x` in one sift-down, returning the old
/// root (the fused insert+transfer of [`heaps_push`]).
#[inline]
fn heap_replace(h: &mut [i64], x: i64, above: impl Fn(i64, i64) -> bool) -> i64 {
    let old = h[0];
    heap_sift_down(h, x, above);
    old
}

fn push_max(h: &mut Vec<i64>, x: i64) {
    heap_push(h, x, |a, b| a > b);
}

fn pop_max(h: &mut Vec<i64>) -> i64 {
    heap_pop(h, |a, b| a > b)
}

fn replace_max(h: &mut [i64], x: i64) -> i64 {
    heap_replace(h, x, |a, b| a > b)
}

fn push_min(h: &mut Vec<i64>, x: i64) {
    heap_push(h, x, |a, b| a < b);
}

fn pop_min(h: &mut Vec<i64>) -> i64 {
    heap_pop(h, |a, b| a < b)
}

fn replace_min(h: &mut [i64], x: i64) -> i64 {
    heap_replace(h, x, |a, b| a < b)
}

impl PooledBlock {
    /// The lower median. Live blocks are never empty.
    fn median(&self) -> i64 {
        match &self.repr {
            Repr::Compact(c) => c.median(),
            Repr::Heaps { lo, .. } => lo[0],
        }
    }
}

/// Fused two-heap median push. Routes `x` to the correct half; when
/// that half is at its size cap the insert and the rebalance transfer
/// fuse into one replace-root sift.
fn heaps_push(lo: &mut Vec<i64>, hi: &mut Vec<i64>, x: i64) {
    if lo.first().is_none_or(|&m| x <= m) {
        if lo.len() > hi.len() {
            // lo full: x takes the root's place, the old lower
            // median moves up to hi.
            let m = replace_max(lo, x);
            push_min(hi, m);
        } else {
            push_max(lo, x);
        }
    } else if hi.len() == lo.len() {
        // hi full: the smallest of hi ∪ {x} belongs in lo.
        if hi.first().is_none_or(|&m| x <= m) {
            push_max(lo, x);
        } else {
            let m = replace_min(hi, x);
            push_max(lo, m);
        }
    } else {
        push_min(hi, x);
    }
}

/// Bulk two-heap insertion with one deferred rebalance: every element
/// lands on its correct side of the *current* partition boundary
/// (which any intermediate insertion order preserves), then the
/// halves are re-centred with the minimum number of transfers — the
/// net imbalance rather than one transfer per element.
fn heaps_extend(lo: &mut Vec<i64>, hi: &mut Vec<i64>, xs: impl Iterator<Item = i64>) {
    for x in xs {
        if lo.first().is_none_or(|&m| x <= m) {
            push_max(lo, x);
        } else {
            push_min(hi, x);
        }
    }
    while lo.len() > hi.len() + 1 {
        let m = pop_max(lo);
        push_min(hi, m);
    }
    while hi.len() > lo.len() {
        let m = pop_min(hi);
        push_max(lo, m);
    }
}

/// The occupied values of a counting window, expanded in ascending
/// order with multiplicity.
fn counted_values(c: &CompactCounts) -> impl Iterator<Item = i64> + '_ {
    c.counts[c.min_idx..=c.max_idx]
        .iter()
        .enumerate()
        .flat_map(move |(i, &count)| {
            std::iter::repeat_n(c.base + (c.min_idx + i) as i64, count as usize)
        })
}

/// Adds one element to a block: O(1) bucket increment for compact
/// blocks, fused two-heap push otherwise. Compact blocks demote on a
/// span or walk violation; heap blocks attempt promotion when they
/// reach their next size threshold.
fn push_into(
    block: &mut PooledBlock,
    x: i64,
    spare_heaps: &mut Vec<Vec<i64>>,
    spare_counts: &mut Vec<Vec<u64>>,
) {
    block.n += 1;
    match &mut block.repr {
        Repr::Compact(c) => {
            if c.contains(x) {
                c.bucket_add((x - c.base) as usize, 1);
                let walk = c.reseek(((block.n - 1) / 2) as u64);
                if walk > COMPACT_WALK_MAX {
                    demote_to_heaps(block, spare_heaps, spare_counts);
                }
            } else if c.ensure(x, x) {
                c.bucket_add((x - c.base) as usize, 1);
                c.reseek(((block.n - 1) / 2) as u64);
            } else {
                demote_to_heaps(block, spare_heaps, spare_counts);
                if let Repr::Heaps { lo, hi } = &mut block.repr {
                    heaps_push(lo, hi, x);
                }
            }
        }
        Repr::Heaps { lo, hi } => {
            heaps_push(lo, hi, x);
            if block.n >= block.next_promote {
                try_promote(block, spare_heaps, spare_counts);
            }
        }
    }
}

/// Rebuilds a compact block as a two-heap block (O(stored elements),
/// no sifting — see [`CompactCounts::drain_to_heaps`]) and marks it
/// never-promote: a demotion means the block's values outgrew the
/// window, and spans only grow. No-op for blocks already in heap
/// form.
fn demote_to_heaps(
    block: &mut PooledBlock,
    spare_heaps: &mut Vec<Vec<i64>>,
    spare_counts: &mut Vec<Vec<u64>>,
) {
    if let Repr::Compact(c) = &block.repr {
        let mut lo = spare_heaps.pop().unwrap_or_default();
        let mut hi = spare_heaps.pop().unwrap_or_default();
        c.drain_to_heaps(&mut lo, &mut hi);
        block.next_promote = usize::MAX;
        if let Repr::Compact(c) = std::mem::replace(&mut block.repr, Repr::Heaps { lo, hi }) {
            let mut counts = c.counts;
            counts.clear();
            spare_counts.push(counts);
        }
    }
}

/// Attempts to promote a heap block to the counting form. On a span
/// overflow the next attempt is deferred to double the current size,
/// keeping the O(n) range scan amortized O(1) per element.
fn try_promote(
    block: &mut PooledBlock,
    spare_heaps: &mut Vec<Vec<i64>>,
    spare_counts: &mut Vec<Vec<u64>>,
) {
    let Repr::Heaps { lo, hi } = &block.repr else {
        return;
    };
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    for &v in lo.iter().chain(hi) {
        min = min.min(v);
        max = max.max(v);
    }
    let span = max as i128 - min as i128 + 1;
    // Leave slack for the window to breathe before the next growth.
    let pad = (span / 2 + 32).min((COMPACT_SPAN_MAX - span).max(0) / 2);
    if span > COMPACT_SPAN_MAX {
        block.next_promote = block.n.saturating_mul(2);
        return;
    }
    let base = (min as i128 - pad).max(i64::MIN as i128) as i64;
    let end = (max as i128 + pad + 1).min(i64::MAX as i128 + 1);
    let mut counts = spare_counts.pop().unwrap_or_default();
    counts.clear();
    counts.resize((end - base as i128) as usize, 0);
    let mut c = CompactCounts {
        base,
        counts,
        med: (min - base) as usize,
        below: 0,
        min_idx: (min - base) as usize,
        max_idx: (min - base) as usize,
    };
    for &v in lo.iter().chain(hi.iter()) {
        c.bucket_add((v - base) as usize, 1);
    }
    // `med` starts at the lowest bucket with `below = 0`; one re-seek
    // walks it to the true rank (bounded by the window span).
    c.below = 0;
    c.med = c.min_idx;
    c.reseek(((block.n - 1) / 2) as u64);
    if let Repr::Heaps { mut lo, mut hi } = std::mem::replace(&mut block.repr, Repr::Compact(c)) {
        lo.clear();
        hi.clear();
        spare_heaps.push(lo);
        spare_heaps.push(hi);
    }
}

/// One fitted PAV block: `len` cells starting at `start`, all taking
/// the block's lower median.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FittedBlock {
    /// Index of the first element of the block.
    pub start: usize,
    /// Number of elements in the block (≥ 1).
    pub len: usize,
    /// The lower median of the pooled inputs (always an integer for
    /// integer inputs — the reason the `Hc` method needs no rounding).
    pub median: i64,
}

/// Reusable state for the L1 PAV solver: the live block stack plus
/// pools of recycled backing stores (heap vectors and counting
/// windows). One warm workspace per worker thread makes
/// [`PavL1Workspace::solve`] allocation-free across the thousands of
/// `bound`-length fits a hierarchical release sweep performs.
#[derive(Default)]
pub struct PavL1Workspace {
    blocks: Vec<PooledBlock>,
    /// Cleared two-heap vectors waiting for reuse.
    spare_heaps: Vec<Vec<i64>>,
    /// Cleared counting windows waiting for reuse.
    spare_counts: Vec<Vec<u64>>,
    /// Input length of the last [`PavL1Workspace::solve`].
    n: usize,
}

impl PavL1Workspace {
    /// An empty workspace; buffers grow on first use and are retained
    /// for later solves.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs PAV over `y`, leaving the solution readable through
    /// [`PavL1Workspace::fitted_blocks`] until the next solve.
    pub fn solve(&mut self, y: &[i64]) {
        self.n = y.len();
        while let Some(b) = self.blocks.pop() {
            self.recycle_repr(b.repr);
        }
        for (i, &yi) in y.iter().enumerate() {
            match self.blocks.last_mut() {
                // Fast path for the dominant pattern on a noisy
                // cumulative histogram's flat stretches: the new
                // element violates the running block, so the
                // singleton {yi} merges straight into it — one median
                // push, no block bookkeeping at all.
                Some(top) if yi < top.median() => {
                    push_into(top, yi, &mut self.spare_heaps, &mut self.spare_counts);
                    while self.blocks.len() >= 2 {
                        let k = self.blocks.len();
                        if self.blocks[k - 2].median() > self.blocks[k - 1].median() {
                            self.merge_top();
                        } else {
                            break;
                        }
                    }
                }
                _ => {
                    // New blocks start as tiny heaps (cheap to churn
                    // and merge); they promote to a counting window
                    // only once they grow to COMPACT_PROMOTE_AT.
                    let mut lo = self.spare_heaps.pop().unwrap_or_default();
                    let hi = self.spare_heaps.pop().unwrap_or_default();
                    lo.push(yi);
                    self.blocks.push(PooledBlock {
                        start: i,
                        n: 1,
                        next_promote: COMPACT_PROMOTE_AT,
                        repr: Repr::Heaps { lo, hi },
                    });
                    // A non-violating element never triggers a merge.
                }
            }
        }
    }

    /// Merges the top two blocks, draining the smaller element set
    /// into the larger and recycling the drained storage.
    fn merge_top(&mut self) {
        let mut last = self.blocks.pop().expect("merge needs two blocks");
        let prev = self.blocks.last_mut().expect("merge needs two blocks");
        if last.n > prev.n {
            // Smaller-into-larger: keep the bigger median structure,
            // whatever side it came from. Only `start` is positional.
            std::mem::swap(&mut prev.repr, &mut last.repr);
            std::mem::swap(&mut prev.next_promote, &mut last.next_promote);
        }
        prev.n += last.n;
        let spare_heaps = &mut self.spare_heaps;
        let spare_counts = &mut self.spare_counts;
        let r = ((prev.n - 1) / 2) as u64;
        match (&mut prev.repr, &last.repr) {
            (Repr::Compact(a), Repr::Compact(b)) => {
                let (lo_val, hi_val) = b.occupied_range();
                if a.ensure(lo_val, hi_val) {
                    a.absorb(b, r);
                } else {
                    // Union span too wide for counting: fall back to
                    // the two-heap form for the merged block.
                    demote_to_heaps(prev, spare_heaps, spare_counts);
                    if let Repr::Heaps { lo, hi } = &mut prev.repr {
                        heaps_extend(lo, hi, counted_values(b));
                    }
                }
            }
            (Repr::Compact(a), Repr::Heaps { lo: xs, hi: ys }) => {
                // Bulk bucket adds with one final re-seek — unless an
                // element falls outside a window that cannot grow.
                let mut min = i64::MAX;
                let mut max = i64::MIN;
                for &v in xs.iter().chain(ys) {
                    min = min.min(v);
                    max = max.max(v);
                }
                if a.ensure(min, max) {
                    for &v in xs.iter().chain(ys) {
                        a.bucket_add((v - a.base) as usize, 1);
                    }
                    a.reseek(r);
                } else {
                    demote_to_heaps(prev, spare_heaps, spare_counts);
                    if let Repr::Heaps { lo, hi } = &mut prev.repr {
                        heaps_extend(lo, hi, xs.iter().chain(ys).copied());
                    }
                }
            }
            (Repr::Heaps { lo, hi }, Repr::Compact(b)) => {
                heaps_extend(lo, hi, counted_values(b));
            }
            (Repr::Heaps { lo, hi }, Repr::Heaps { lo: xs, hi: ys }) => {
                heaps_extend(lo, hi, xs.iter().chain(ys).copied());
            }
        }
        if matches!(prev.repr, Repr::Heaps { .. }) && prev.n >= prev.next_promote {
            try_promote(prev, spare_heaps, spare_counts);
        }
        self.recycle_repr(last.repr);
    }

    fn recycle_repr(&mut self, repr: Repr) {
        match repr {
            Repr::Compact(c) => {
                let mut counts = c.counts;
                counts.clear();
                self.spare_counts.push(counts);
            }
            Repr::Heaps { mut lo, mut hi } => {
                lo.clear();
                hi.clear();
                self.spare_heaps.push(lo);
                self.spare_heaps.push(hi);
            }
        }
    }

    /// Diagnostics: (compact blocks, heap blocks) after the last
    /// solve. Lets tests and benches assert that the adaptive
    /// promotion machinery actually engages on hot-path-shaped
    /// inputs.
    #[doc(hidden)]
    pub fn repr_stats(&self) -> (usize, usize) {
        let compact = self
            .blocks
            .iter()
            .filter(|b| matches!(b.repr, Repr::Compact(_)))
            .count();
        (compact, self.blocks.len() - compact)
    }

    /// The fitted blocks of the last solve, left to right. Adjacent
    /// blocks may share a value (PAV merges only strict violations);
    /// [`IsotonicFit::coalesced`] merges them when the maximal-run
    /// partition is needed.
    pub fn fitted_blocks(&self) -> impl Iterator<Item = FittedBlock> + '_ {
        let n = self.n;
        self.blocks.iter().enumerate().map(move |(k, b)| {
            let end = self.blocks.get(k + 1).map_or(n, |next| next.start);
            FittedBlock {
                start: b.start,
                len: end - b.start,
                median: b.median(),
            }
        })
    }
}

/// Solves `min Σ |x_i − y_i| s.t. x non-decreasing`, returning integer
/// block values (lower medians).
///
/// ```
/// use hcc_isotonic::isotonic_l1;
/// // The paper's Figure 2 input: [0, 4, 2, 4, 5, 3]. L1 pools the
/// // violating stretches to medians.
/// let fit = isotonic_l1(&[0, 4, 2, 4, 5, 3]);
/// let v = fit.values();
/// assert!(v.windows(2).all(|w| w[0] <= w[1]));
/// assert!(v.iter().all(|x| x.fract() == 0.0)); // integral
/// ```
pub fn isotonic_l1(y: &[i64]) -> IsotonicFit {
    isotonic_l1_with(y, &mut PavL1Workspace::new())
}

/// [`isotonic_l1`] reusing a caller-owned workspace — same fit, no
/// per-call solver allocations (the returned [`IsotonicFit`] still
/// owns its block list; use [`PavL1Workspace::fitted_blocks`] directly
/// when even that must be avoided).
pub fn isotonic_l1_with(y: &[i64], ws: &mut PavL1Workspace) -> IsotonicFit {
    ws.solve(y);
    IsotonicFit::from_blocks(
        ws.fitted_blocks()
            .map(|b| Block {
                start: b.start,
                len: b.len,
                value: b.median as f64,
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Seed implementation (oracle + perf baseline).
// ---------------------------------------------------------------------------

/// A multiset of integers supporting O(log n) insertion and O(1)
/// lower-median queries.
#[derive(Debug, Default)]
struct MedianHeap {
    /// Max-heap holding the lower half (including the lower median).
    lo: BinaryHeap<i64>,
    /// Min-heap holding the upper half.
    hi: BinaryHeap<Reverse<i64>>,
}

impl MedianHeap {
    fn len(&self) -> usize {
        self.lo.len() + self.hi.len()
    }

    fn push(&mut self, x: i64) {
        match self.lo.peek() {
            Some(&m) if x > m => self.hi.push(Reverse(x)),
            _ => self.lo.push(x),
        }
        self.rebalance();
    }

    fn rebalance(&mut self) {
        // Invariant: lo.len() == hi.len() or lo.len() == hi.len() + 1,
        // so the lower median is always lo's max.
        if self.lo.len() > self.hi.len() + 1 {
            let x = self.lo.pop().expect("lo non-empty");
            self.hi.push(Reverse(x));
        } else if self.hi.len() > self.lo.len() {
            let Reverse(x) = self.hi.pop().expect("hi non-empty");
            self.lo.push(x);
        }
    }

    /// The lower median. Panics on an empty heap.
    fn median(&self) -> i64 {
        *self.lo.peek().expect("median of empty block")
    }

    /// Merges `other` into `self`, draining the smaller side.
    fn absorb(&mut self, mut other: MedianHeap) {
        if other.len() > self.len() {
            std::mem::swap(self, &mut other);
        }
        for x in other.lo {
            self.push(x);
        }
        for Reverse(x) in other.hi {
            self.push(x);
        }
    }
}

/// The seed (pre-workspace) L1 PAV: allocates two `BinaryHeap`s per
/// input element. Kept verbatim as the property-test oracle for
/// [`PavL1Workspace::solve`] and as the "per-node-allocation path"
/// baseline that the `release_hot_path` benchmark and tier-1 perf
/// smoke measure the workspace pipeline against. Not for production
/// use — call [`isotonic_l1`] instead.
pub fn isotonic_l1_heap(y: &[i64]) -> IsotonicFit {
    struct Pool {
        start: usize,
        len: usize,
        heap: MedianHeap,
    }
    let mut stack: Vec<Pool> = Vec::new();
    for (i, &yi) in y.iter().enumerate() {
        let mut heap = MedianHeap::default();
        heap.push(yi);
        stack.push(Pool {
            start: i,
            len: 1,
            heap,
        });
        while stack.len() >= 2 {
            let last_med = stack[stack.len() - 1].heap.median();
            let prev_med = stack[stack.len() - 2].heap.median();
            if prev_med > last_med {
                let last = stack.pop().expect("len >= 2");
                let prev = stack.last_mut().expect("len >= 1");
                prev.len += last.len;
                prev.heap.absorb(last.heap);
            } else {
                break;
            }
        }
    }
    IsotonicFit::from_blocks(
        stack
            .into_iter()
            .map(|p| Block {
                start: p.start,
                len: p.len,
                value: p.heap.median() as f64,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sorted_input_is_identity() {
        let y = [1, 2, 2, 5];
        assert_eq!(isotonic_l1(&y).values(), vec![1.0, 2.0, 2.0, 5.0]);
    }

    #[test]
    fn violation_pools_to_lower_median() {
        // Block {3, 1}: lower median 1.
        assert_eq!(isotonic_l1(&[3, 1]).values(), vec![1.0, 1.0]);
        // [5, 1, 2] has two optimal fits of cost 4 ([1,1,2] and
        // [2,2,2]); PAV's incremental pooling picks [1,1,2].
        let fit = isotonic_l1(&[5, 1, 2]);
        assert_eq!(fit.values(), vec![1.0, 1.0, 2.0]);
        let cost: i64 = fit
            .values()
            .iter()
            .zip([5i64, 1, 2])
            .map(|(&x, y)| (x as i64 - y).abs())
            .sum();
        assert_eq!(cost, 4);
    }

    #[test]
    fn integer_outputs_for_integer_inputs() {
        let y = [9, -3, 4, 4, 0, 7, 7, 2];
        for v in isotonic_l1(&y).values() {
            assert_eq!(v, v.round(), "value {v} not integral");
        }
    }

    #[test]
    fn empty_input() {
        assert!(isotonic_l1(&[]).is_empty());
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        // The pooled heaps store raw i64s (no negation tricks), so
        // i64::MIN is a legal input.
        let y = [i64::MAX, i64::MIN, 0, i64::MIN];
        let fit = isotonic_l1(&y);
        assert_eq!(fit.values(), isotonic_l1_heap(&y).values());
    }

    #[test]
    fn flat_tail_blocks_promote_to_counting_windows() {
        // A noisy plateau — the Hc hot-path shape — must actually
        // engage the compact representation: if promotion bit-rots,
        // the solver silently degrades to all-heap performance.
        let y: Vec<i64> = (0..20_000u64)
            .map(|i| {
                let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                500 + ((z >> 33) % 41) as i64 - 20
            })
            .collect();
        let mut ws = PavL1Workspace::new();
        ws.solve(&y);
        let (compact, _heap) = ws.repr_stats();
        assert!(compact >= 1, "no block promoted on a plateau input");
        // And the fit still matches the oracle on this shape.
        let flat = isotonic_l1_with(&y, &mut ws);
        assert_eq!(flat.blocks(), isotonic_l1_heap(&y).blocks());
    }

    #[test]
    fn workspace_reuse_across_solves_is_clean() {
        let mut ws = PavL1Workspace::new();
        let a = isotonic_l1_with(&[5, 1, 2], &mut ws);
        assert_eq!(a.values(), vec![1.0, 1.0, 2.0]);
        // A second, longer solve must not see stale state…
        let b = isotonic_l1_with(&[9, -3, 4, 4, 0, 7, 7, 2], &mut ws);
        assert_eq!(
            b.values(),
            isotonic_l1_heap(&[9, -3, 4, 4, 0, 7, 7, 2]).values()
        );
        // …nor must a shorter or empty one.
        let c = isotonic_l1_with(&[2], &mut ws);
        assert_eq!(c.values(), vec![2.0]);
        let d = isotonic_l1_with(&[], &mut ws);
        assert!(d.is_empty());
    }

    /// Reference: exact L1 isotonic regression by dynamic programming
    /// over candidate values (an optimal solution always exists whose
    /// values are drawn from the input multiset).
    fn brute_force_l1_cost(y: &[i64]) -> i64 {
        let mut cands: Vec<i64> = y.to_vec();
        cands.sort_unstable();
        cands.dedup();
        let m = cands.len();
        // dp[j] = min cost so far ending with value cands[j];
        // prefix-min makes the monotonicity constraint cheap.
        let mut dp = vec![0i64; m];
        for &yi in y {
            let mut best = i64::MAX;
            for j in 0..m {
                best = best.min(dp[j]);
                dp[j] = best + (cands[j] - yi).abs();
            }
        }
        dp.into_iter().min().unwrap_or(0)
    }

    fn l1_cost(x: &[f64], y: &[i64]) -> f64 {
        x.iter().zip(y).map(|(a, &b)| (a - b as f64).abs()).sum()
    }

    proptest! {
        /// The PAV-with-medians solution achieves the exact optimal L1
        /// cost computed by dynamic programming.
        #[test]
        fn pav_l1_is_optimal(y in prop::collection::vec(-20i64..20, 1..14)) {
            let fit = isotonic_l1(&y);
            let x = fit.values();
            for w in x.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            let pav = l1_cost(&x, &y);
            let opt = brute_force_l1_cost(&y) as f64;
            prop_assert!(
                (pav - opt).abs() < 1e-9,
                "PAV cost {} but optimum is {}", pav, opt
            );
        }

        /// The workspace solver reproduces the seed heap
        /// implementation block for block — the bit-identity
        /// obligation of the PR-5 refactor, checked on one reused
        /// workspace so stale state would be caught too. Narrow,
        /// wide, and mixed value ranges exercise the counting
        /// windows, the heap fallback, and mid-block conversions.
        #[test]
        fn flat_solver_matches_heap_oracle(
            narrow in prop::collection::vec(-50i64..50, 0..200),
            wide in prop::collection::vec(-1_000_000i64..1_000_000, 0..200),
        ) {
            // Interleaving narrow and wide values forces mid-block
            // compact→heap conversions on top of the pure regimes.
            let mixed: Vec<i64> = narrow
                .iter()
                .zip(&wide)
                .flat_map(|(&a, &b)| [a, b])
                .collect();
            let mut ws = PavL1Workspace::new();
            for y in [&narrow, &wide, &mixed] {
                let flat = isotonic_l1_with(y, &mut ws);
                let heap = isotonic_l1_heap(y);
                prop_assert_eq!(flat.blocks(), heap.blocks());
            }
        }

        /// Pooled blocks return the lower median of any sequence, in
        /// both representations: narrow-range values stay in the
        /// counting window, wide-range values force the heap
        /// conversion mid-stream.
        #[test]
        fn pooled_block_matches_sort(
            xs in prop::collection::vec(-50i64..50, 1..200),
            wide in prop::collection::vec(-1_000_000i64..1_000_000, 1..200),
        ) {
            for seq in [&xs, &wide] {
                let mut spare_heaps = Vec::new();
                let mut spare_counts = Vec::new();
                let mut b = PooledBlock {
                    start: 0,
                    n: 1,
                    next_promote: COMPACT_PROMOTE_AT,
                    repr: Repr::Heaps {
                        lo: vec![seq[0]],
                        hi: Vec::new(),
                    },
                };
                for &x in &seq[1..] {
                    push_into(&mut b, x, &mut spare_heaps, &mut spare_counts);
                }
                let mut sorted = seq.clone();
                sorted.sort_unstable();
                let lower_median = sorted[(sorted.len() - 1) / 2];
                prop_assert_eq!(b.median(), lower_median);
            }
        }

        /// Median heap returns the lower median of any sequence.
        #[test]
        fn median_heap_matches_sort(xs in prop::collection::vec(-50i64..50, 1..60)) {
            let mut h = MedianHeap::default();
            for &x in &xs {
                h.push(x);
            }
            let mut sorted = xs.clone();
            sorted.sort_unstable();
            let lower_median = sorted[(sorted.len() - 1) / 2];
            prop_assert_eq!(h.median(), lower_median);
        }
    }

    #[test]
    fn absorb_smaller_into_larger_keeps_median() {
        let mut a = MedianHeap::default();
        for x in [1, 2, 3, 4, 5, 6, 7] {
            a.push(x);
        }
        let mut b = MedianHeap::default();
        b.push(100);
        b.push(-100);
        a.absorb(b);
        // Multiset {-100,1..=7,100}: 9 elements, lower median = 4.
        assert_eq!(a.median(), 4);
        assert_eq!(a.len(), 9);
    }
}
