//! Pool-adjacent-violators for L1 (least-absolute-deviations)
//! isotonic regression.
//!
//! The paper found that the L1 variant of the `Hc` method outperforms
//! L2 (consistent with Lin & Kifer's observations on unattributed
//! histograms) and that its solutions are almost always integral. We
//! realise the "almost always" as *always* by selecting the **lower
//! median** of every pooled block: any value between the lower and
//! upper median minimises the block's absolute deviation, and the
//! lower median of integers is an integer.
//!
//! Blocks maintain their median with a two-heap structure; merging is
//! smaller-into-larger, giving `O(n log² n)` total time — fast enough
//! for cumulative histograms with `K = 100 000` cells.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fit::{Block, IsotonicFit};

/// A multiset of integers supporting O(log n) insertion and O(1)
/// lower-median queries.
#[derive(Debug, Default)]
struct MedianHeap {
    /// Max-heap holding the lower half (including the lower median).
    lo: BinaryHeap<i64>,
    /// Min-heap holding the upper half.
    hi: BinaryHeap<Reverse<i64>>,
}

impl MedianHeap {
    fn len(&self) -> usize {
        self.lo.len() + self.hi.len()
    }

    fn push(&mut self, x: i64) {
        match self.lo.peek() {
            Some(&m) if x > m => self.hi.push(Reverse(x)),
            _ => self.lo.push(x),
        }
        self.rebalance();
    }

    fn rebalance(&mut self) {
        // Invariant: lo.len() == hi.len() or lo.len() == hi.len() + 1,
        // so the lower median is always lo's max.
        if self.lo.len() > self.hi.len() + 1 {
            let x = self.lo.pop().expect("lo non-empty");
            self.hi.push(Reverse(x));
        } else if self.hi.len() > self.lo.len() {
            let Reverse(x) = self.hi.pop().expect("hi non-empty");
            self.lo.push(x);
        }
    }

    /// The lower median. Panics on an empty heap.
    fn median(&self) -> i64 {
        *self.lo.peek().expect("median of empty block")
    }

    /// Merges `other` into `self`, draining the smaller side.
    fn absorb(&mut self, mut other: MedianHeap) {
        if other.len() > self.len() {
            std::mem::swap(self, &mut other);
        }
        for x in other.lo {
            self.push(x);
        }
        for Reverse(x) in other.hi {
            self.push(x);
        }
    }
}

/// Solves `min Σ |x_i − y_i| s.t. x non-decreasing`, returning integer
/// block values (lower medians).
///
/// ```
/// use hcc_isotonic::isotonic_l1;
/// // The paper's Figure 2 input: [0, 4, 2, 4, 5, 3]. L1 pools the
/// // violating stretches to medians.
/// let fit = isotonic_l1(&[0, 4, 2, 4, 5, 3]);
/// let v = fit.values();
/// assert!(v.windows(2).all(|w| w[0] <= w[1]));
/// assert!(v.iter().all(|x| x.fract() == 0.0)); // integral
/// ```
pub fn isotonic_l1(y: &[i64]) -> IsotonicFit {
    struct Pool {
        start: usize,
        len: usize,
        heap: MedianHeap,
    }
    let mut stack: Vec<Pool> = Vec::new();
    for (i, &yi) in y.iter().enumerate() {
        let mut heap = MedianHeap::default();
        heap.push(yi);
        stack.push(Pool {
            start: i,
            len: 1,
            heap,
        });
        while stack.len() >= 2 {
            let last_med = stack[stack.len() - 1].heap.median();
            let prev_med = stack[stack.len() - 2].heap.median();
            if prev_med > last_med {
                let last = stack.pop().expect("len >= 2");
                let prev = stack.last_mut().expect("len >= 1");
                prev.len += last.len;
                prev.heap.absorb(last.heap);
            } else {
                break;
            }
        }
    }
    IsotonicFit::from_blocks(
        stack
            .into_iter()
            .map(|p| Block {
                start: p.start,
                len: p.len,
                value: p.heap.median() as f64,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sorted_input_is_identity() {
        let y = [1, 2, 2, 5];
        assert_eq!(isotonic_l1(&y).values(), vec![1.0, 2.0, 2.0, 5.0]);
    }

    #[test]
    fn violation_pools_to_lower_median() {
        // Block {3, 1}: lower median 1.
        assert_eq!(isotonic_l1(&[3, 1]).values(), vec![1.0, 1.0]);
        // [5, 1, 2] has two optimal fits of cost 4 ([1,1,2] and
        // [2,2,2]); PAV's incremental pooling picks [1,1,2].
        let fit = isotonic_l1(&[5, 1, 2]);
        assert_eq!(fit.values(), vec![1.0, 1.0, 2.0]);
        let cost: i64 = fit
            .values()
            .iter()
            .zip([5i64, 1, 2])
            .map(|(&x, y)| (x as i64 - y).abs())
            .sum();
        assert_eq!(cost, 4);
    }

    #[test]
    fn integer_outputs_for_integer_inputs() {
        let y = [9, -3, 4, 4, 0, 7, 7, 2];
        for v in isotonic_l1(&y).values() {
            assert_eq!(v, v.round(), "value {v} not integral");
        }
    }

    #[test]
    fn empty_input() {
        assert!(isotonic_l1(&[]).is_empty());
    }

    /// Reference: exact L1 isotonic regression by dynamic programming
    /// over candidate values (an optimal solution always exists whose
    /// values are drawn from the input multiset).
    fn brute_force_l1_cost(y: &[i64]) -> i64 {
        let mut cands: Vec<i64> = y.to_vec();
        cands.sort_unstable();
        cands.dedup();
        let m = cands.len();
        // dp[j] = min cost so far ending with value cands[j];
        // prefix-min makes the monotonicity constraint cheap.
        let mut dp = vec![0i64; m];
        for &yi in y {
            let mut best = i64::MAX;
            for j in 0..m {
                best = best.min(dp[j]);
                dp[j] = best + (cands[j] - yi).abs();
            }
        }
        dp.into_iter().min().unwrap_or(0)
    }

    fn l1_cost(x: &[f64], y: &[i64]) -> f64 {
        x.iter().zip(y).map(|(a, &b)| (a - b as f64).abs()).sum()
    }

    proptest! {
        /// The PAV-with-medians solution achieves the exact optimal L1
        /// cost computed by dynamic programming.
        #[test]
        fn pav_l1_is_optimal(y in prop::collection::vec(-20i64..20, 1..14)) {
            let fit = isotonic_l1(&y);
            let x = fit.values();
            for w in x.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            let pav = l1_cost(&x, &y);
            let opt = brute_force_l1_cost(&y) as f64;
            prop_assert!(
                (pav - opt).abs() < 1e-9,
                "PAV cost {} but optimum is {}", pav, opt
            );
        }

        /// Median heap returns the lower median of any sequence.
        #[test]
        fn median_heap_matches_sort(xs in prop::collection::vec(-50i64..50, 1..60)) {
            let mut h = MedianHeap::default();
            for &x in &xs {
                h.push(x);
            }
            let mut sorted = xs.clone();
            sorted.sort_unstable();
            let lower_median = sorted[(sorted.len() - 1) / 2];
            prop_assert_eq!(h.median(), lower_median);
        }
    }

    #[test]
    fn absorb_smaller_into_larger_keeps_median() {
        let mut a = MedianHeap::default();
        for x in [1, 2, 3, 4, 5, 6, 7] {
            a.push(x);
        }
        let mut b = MedianHeap::default();
        b.push(100);
        b.push(-100);
        a.absorb(b);
        // Multiset {-100,1..=7,100}: 9 elements, lower median = 4.
        assert_eq!(a.median(), 4);
        assert_eq!(a.len(), 9);
    }
}
