//! Weighted L1 isotonic regression.
//!
//! Generalises [`crate::isotonic_l1`] to per-element positive integer
//! weights: `min Σ w_i |x_i − y_i| s.t. x non-decreasing`. Weighted
//! inputs arise naturally for run-length encoded histograms, where a
//! run of `w` equal noisy values can be fitted as a single weighted
//! element instead of `w` copies.
//!
//! Block minimisers are **weighted lower medians** (the smallest data
//! value whose cumulative weight reaches half the block's total), so
//! integer inputs stay integral, consistent with the unweighted
//! solver.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fit::{Block, IsotonicFit};

/// A weighted multiset of integers with O(log n) insertion and O(1)
/// weighted-lower-median queries.
#[derive(Debug, Default)]
struct WeightedMedianHeap {
    /// Max-heap of the lower portion (contains the median).
    lo: BinaryHeap<(i64, u64)>,
    /// Min-heap of the upper portion.
    hi: BinaryHeap<Reverse<(i64, u64)>>,
    /// Total weight in `lo`.
    w_lo: u64,
    /// Total weight overall.
    w_total: u64,
}

impl WeightedMedianHeap {
    fn weight(&self) -> u64 {
        self.w_total
    }

    fn push(&mut self, value: i64, weight: u64) {
        debug_assert!(weight > 0);
        self.w_total += weight;
        match self.lo.peek() {
            Some(&(m, _)) if value > m => self.hi.push(Reverse((value, weight))),
            _ => {
                self.lo.push((value, weight));
                self.w_lo += weight;
            }
        }
        self.rebalance();
    }

    fn rebalance(&mut self) {
        // Invariants: 2·w_lo ≥ w_total (lo covers at least half) and
        // 2·(w_lo − weight(lo.max)) < w_total (lo.max is needed), so
        // lo's max is the weighted lower median.
        loop {
            if let Some(&(v, w)) = self.lo.peek() {
                if 2 * (self.w_lo - w) >= self.w_total {
                    self.lo.pop();
                    self.w_lo -= w;
                    self.hi.push(Reverse((v, w)));
                    continue;
                }
            }
            if 2 * self.w_lo < self.w_total {
                let Reverse((v, w)) = self.hi.pop().expect("hi non-empty when lo underweight");
                self.lo.push((v, w));
                self.w_lo += w;
                continue;
            }
            break;
        }
    }

    /// The weighted lower median. Panics on an empty heap.
    fn median(&self) -> i64 {
        self.lo.peek().expect("median of empty block").0
    }

    /// Merges `other` into `self`, draining the lighter side.
    fn absorb(&mut self, mut other: WeightedMedianHeap) {
        if other.weight() > self.weight() {
            std::mem::swap(self, &mut other);
        }
        for (v, w) in other.lo {
            self.push(v, w);
        }
        for Reverse((v, w)) in other.hi {
            self.push(v, w);
        }
    }
}

/// Solves `min Σ w_i |x_i − y_i| s.t. x non-decreasing` for positive
/// integer weights, returning integer block values (weighted lower
/// medians). Panics on zero weights or mismatched lengths.
pub fn isotonic_l1_weighted(y: &[i64], w: &[u64]) -> IsotonicFit {
    assert_eq!(y.len(), w.len(), "weights must match values in length");
    assert!(w.iter().all(|&wi| wi > 0), "weights must be positive");
    struct Pool {
        start: usize,
        len: usize,
        heap: WeightedMedianHeap,
    }
    let mut stack: Vec<Pool> = Vec::new();
    for (i, (&yi, &wi)) in y.iter().zip(w.iter()).enumerate() {
        let mut heap = WeightedMedianHeap::default();
        heap.push(yi, wi);
        stack.push(Pool {
            start: i,
            len: 1,
            heap,
        });
        while stack.len() >= 2 {
            let last = stack[stack.len() - 1].heap.median();
            let prev = stack[stack.len() - 2].heap.median();
            if prev > last {
                let top = stack.pop().expect("len >= 2");
                let prev = stack.last_mut().expect("len >= 1");
                prev.len += top.len;
                prev.heap.absorb(top.heap);
            } else {
                break;
            }
        }
    }
    IsotonicFit::from_blocks(
        stack
            .into_iter()
            .map(|p| Block {
                start: p.start,
                len: p.len,
                value: p.heap.median() as f64,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pav_l1::isotonic_l1;
    use proptest::prelude::*;

    #[test]
    fn unit_weights_match_unweighted_solver_cost() {
        let y = [9, -3, 4, 4, 0, 7, 7, 2];
        let w = vec![1u64; y.len()];
        let a = isotonic_l1_weighted(&y, &w).values();
        let b = isotonic_l1(&y).values();
        let cost = |x: &[f64]| -> f64 {
            x.iter()
                .zip(y.iter())
                .map(|(v, &t)| (v - t as f64).abs())
                .sum()
        };
        assert_eq!(cost(&a), cost(&b));
    }

    #[test]
    fn heavy_weight_dominates_block() {
        // Pool {(10, w=1), (2, w=9)}: weighted median is 2.
        let fit = isotonic_l1_weighted(&[10, 2], &[1, 9]);
        assert_eq!(fit.values(), vec![2.0, 2.0]);
        // Flipped weights: median 10.
        let fit = isotonic_l1_weighted(&[10, 2], &[9, 1]);
        assert_eq!(fit.values(), vec![10.0, 10.0]);
    }

    #[test]
    fn sorted_input_is_identity() {
        let fit = isotonic_l1_weighted(&[1, 5, 5, 9], &[3, 1, 7, 2]);
        assert_eq!(fit.values(), vec![1.0, 5.0, 5.0, 9.0]);
    }

    #[test]
    fn empty_input() {
        assert!(isotonic_l1_weighted(&[], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        let _ = isotonic_l1_weighted(&[1], &[0]);
    }

    #[test]
    #[should_panic(expected = "match values in length")]
    fn length_mismatch_rejected() {
        let _ = isotonic_l1_weighted(&[1, 2], &[1]);
    }

    /// Exact weighted L1 isotonic cost by dynamic programming over
    /// candidate values.
    fn brute_force_cost(y: &[i64], w: &[u64]) -> i64 {
        let mut cands: Vec<i64> = y.to_vec();
        cands.sort_unstable();
        cands.dedup();
        let m = cands.len();
        let mut dp = vec![0i64; m];
        for (&yi, &wi) in y.iter().zip(w.iter()) {
            let mut best = i64::MAX;
            for j in 0..m {
                best = best.min(dp[j]);
                dp[j] = best + wi as i64 * (cands[j] - yi).abs();
            }
        }
        dp.into_iter().min().unwrap_or(0)
    }

    proptest! {
        #[test]
        fn weighted_pav_is_optimal(
            pairs in prop::collection::vec((-15i64..15, 1u64..6), 1..12),
        ) {
            let y: Vec<i64> = pairs.iter().map(|p| p.0).collect();
            let w: Vec<u64> = pairs.iter().map(|p| p.1).collect();
            let fit = isotonic_l1_weighted(&y, &w);
            let x = fit.values();
            for win in x.windows(2) {
                prop_assert!(win[0] <= win[1]);
            }
            let cost: f64 = x.iter().zip(y.iter().zip(w.iter()))
                .map(|(v, (&t, &wi))| wi as f64 * (v - t as f64).abs())
                .sum();
            let opt = brute_force_cost(&y, &w) as f64;
            prop_assert!((cost - opt).abs() < 1e-9, "PAV {} vs optimum {}", cost, opt);
        }

        /// The weighted median heap agrees with a direct scan.
        #[test]
        fn weighted_median_matches_scan(
            pairs in prop::collection::vec((-30i64..30, 1u64..8), 1..40),
        ) {
            let mut h = WeightedMedianHeap::default();
            for &(v, w) in &pairs {
                h.push(v, w);
            }
            let mut sorted = pairs.clone();
            sorted.sort_unstable();
            let total: u64 = sorted.iter().map(|p| p.1).sum();
            let mut acc = 0u64;
            let mut expected = sorted[0].0;
            for &(v, w) in &sorted {
                acc += w;
                if 2 * acc >= total {
                    expected = v;
                    break;
                }
            }
            prop_assert_eq!(h.median(), expected);
        }
    }
}
