//! The `Hc` method's constrained isotonic regression (Section 4.3).
//!
//! Given the noisy cumulative histogram `H̃c` (one cell per size
//! `0..=K`) and the public group count `G`, solve
//!
//! ```text
//! min ‖Ĥc − H̃c‖_p   s.t.   0 ≤ Ĥc[0] ≤ … ≤ Ĥc[K],  Ĥc[K] = G
//! ```
//!
//! for `p ∈ {1, 2}`. The terminal equality lets us fix the last cell
//! and solve a box-constrained isotonic problem on the prefix; for a
//! constant box, clamping the unconstrained isotonic solution is
//! exact for any separable convex loss.

use crate::pav_l1::PavL1Workspace;
use crate::pav_l2::isotonic_l2;

/// Which norm the `Hc` post-processing minimises. The paper found L1
/// "performs better than the L2 version" and mostly yields integers;
/// both are provided so the comparison can be reproduced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum CumulativeLoss {
    /// Least absolute deviations (paper's preferred choice).
    #[default]
    L1,
    /// Least squares.
    L2,
}

/// Post-processes a noisy cumulative histogram into a valid one:
/// non-decreasing, within `[0, G]`, final cell exactly `G`, all cells
/// integers.
///
/// `noisy` must be non-empty (the caller always has at least the cell
/// for size 0, and `K ≥ 0`).
pub fn anchored_cumulative(noisy: &[i64], g: u64, loss: CumulativeLoss) -> Vec<u64> {
    let mut out = Vec::new();
    anchored_cumulative_into(
        noisy,
        g,
        loss,
        &mut PavL1Workspace::new(),
        &mut Vec::new(),
        &mut out,
    );
    out
}

/// [`anchored_cumulative`] with every buffer caller-owned: `pav`
/// holds the L1 solver state, `scratch` the dense f64 expansion the
/// L2 loss needs, and `out` receives the fitted cells (cleared
/// first). A warm workspace makes the `Hc` hot path allocation-free;
/// the produced cells are bit-identical to the allocating wrapper —
/// the clamp/round arithmetic is the same f64 operation sequence.
pub fn anchored_cumulative_into(
    noisy: &[i64],
    g: u64,
    loss: CumulativeLoss,
    pav: &mut PavL1Workspace,
    scratch: &mut Vec<f64>,
    out: &mut Vec<u64>,
) {
    assert!(
        !noisy.is_empty(),
        "a cumulative histogram has at least one cell"
    );
    let prefix = &noisy[..noisy.len() - 1];
    let gf = g as f64;
    out.clear();
    out.reserve(noisy.len());
    match loss {
        CumulativeLoss::L1 => {
            pav.solve(prefix);
            for b in pav.fitted_blocks() {
                // Same operation order as the seed path (clamp to
                // [0, G], then round cell-wise — which preserves
                // monotonicity), in f64 so results stay bit-identical
                // even for bounds beyond 2^53.
                let v = (b.median as f64).clamp(0.0, gf);
                let v = v.round().max(0.0).min(gf) as u64;
                out.resize(out.len() + b.len, v);
            }
        }
        CumulativeLoss::L2 => {
            scratch.clear();
            scratch.extend(prefix.iter().map(|&v| v as f64));
            let fit = isotonic_l2(scratch).clamped(0.0, gf);
            fit.values_into(scratch);
            for &v in scratch.iter() {
                out.push(v.round().max(0.0).min(gf) as u64);
            }
        }
    }
    out.push(g);
    debug_assert!(out.windows(2).all(|w| w[0] <= w[1]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_input_passes_through() {
        let noisy = [0, 2, 3, 5];
        assert_eq!(
            anchored_cumulative(&noisy, 5, CumulativeLoss::L1),
            vec![0, 2, 3, 5]
        );
        assert_eq!(
            anchored_cumulative(&noisy, 5, CumulativeLoss::L2),
            vec![0, 2, 3, 5]
        );
    }

    #[test]
    fn negative_noise_is_clamped_to_zero() {
        let noisy = [-3, -1, 2, 5];
        let out = anchored_cumulative(&noisy, 5, CumulativeLoss::L1);
        assert_eq!(out, vec![0, 0, 2, 5]);
    }

    #[test]
    fn values_above_g_are_clamped() {
        let noisy = [1, 9, 9, 5];
        let out = anchored_cumulative(&noisy, 5, CumulativeLoss::L1);
        assert!(out.iter().all(|&v| v <= 5));
        assert_eq!(*out.last().unwrap(), 5);
    }

    #[test]
    fn last_cell_is_ignored_and_replaced_by_g() {
        // The noisy final cell is wild; the anchor overrides it.
        let noisy = [0, 1, 1, -999];
        let out = anchored_cumulative(&noisy, 7, CumulativeLoss::L1);
        assert_eq!(out, vec![0, 1, 1, 7]);
    }

    #[test]
    fn single_cell_histogram() {
        // K = 0: only the anchor cell exists... the prefix is empty.
        let out = anchored_cumulative(&[123], 9, CumulativeLoss::L2);
        assert_eq!(out, vec![9]);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_input_panics() {
        let _ = anchored_cumulative(&[], 3, CumulativeLoss::L1);
    }

    proptest! {
        /// The buffer-reusing variant is byte-identical to the
        /// allocating wrapper for both losses, across reuses of one
        /// (deliberately stale) workspace.
        #[test]
        fn into_variant_matches_wrapper(
            inputs in prop::collection::vec(
                (prop::collection::vec(-100i64..100, 1..40), 0u64..60), 1..4),
            use_l1 in any::<bool>(),
        ) {
            let loss = if use_l1 { CumulativeLoss::L1 } else { CumulativeLoss::L2 };
            let mut pav = crate::pav_l1::PavL1Workspace::new();
            let mut scratch = vec![3.5; 7];
            let mut out = vec![9u64; 3];
            for (noisy, g) in &inputs {
                anchored_cumulative_into(noisy, *g, loss, &mut pav, &mut scratch, &mut out);
                prop_assert_eq!(&out, &anchored_cumulative(noisy, *g, loss));
            }
        }

        /// Output is always a valid cumulative histogram regardless of
        /// noise.
        #[test]
        fn output_is_valid_cumulative(
            noisy in prop::collection::vec(-100i64..100, 1..40),
            g in 0u64..60,
            use_l1 in any::<bool>(),
        ) {
            let loss = if use_l1 { CumulativeLoss::L1 } else { CumulativeLoss::L2 };
            let out = anchored_cumulative(&noisy, g, loss);
            prop_assert_eq!(out.len(), noisy.len());
            prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(out.iter().all(|&v| v <= g));
            prop_assert_eq!(*out.last().unwrap(), g);
        }

        /// L1 on integer inputs never needs rounding: fitted values are
        /// exactly the clamped medians.
        #[test]
        fn l1_solution_cost_not_beaten_by_shifts(
            noisy in prop::collection::vec(-20i64..40, 2..15),
            g in 1u64..30,
        ) {
            let out = anchored_cumulative(&noisy, g, CumulativeLoss::L1);
            let cost: i64 = out[..out.len()-1].iter().zip(noisy[..noisy.len()-1].iter())
                .map(|(&o, &y)| (o as i64 - y).abs()).sum();
            // Competitor: shift the whole prefix by ±1 where feasible.
            for delta in [-1i64, 1] {
                let comp: Vec<i64> = out[..out.len()-1].iter()
                    .map(|&o| (o as i64 + delta).clamp(0, g as i64)).collect();
                let comp_cost: i64 = comp.iter().zip(noisy[..noisy.len()-1].iter())
                    .map(|(&o, &y)| (o - y).abs()).sum();
                prop_assert!(cost <= comp_cost, "shift by {} improves cost", delta);
            }
        }
    }
}
