//! Pool-adjacent-violators for least-squares isotonic regression.

use crate::fit::{Block, IsotonicFit};

/// Solves `min Σ (x_i − y_i)² s.t. x_0 ≤ x_1 ≤ … ≤ x_{n−1}` in `O(n)`
/// with the classic stack-based PAV algorithm. Each output block's
/// value is the mean of its pooled inputs.
///
/// Runs the unit-weight recurrence directly rather than delegating to
/// [`isotonic_l2_weighted`] with a materialised all-ones vector: the
/// `Hg` method calls this once per hierarchy node on a `G`-length
/// input, and the weights allocation was pure overhead. The result is
/// bit-identical to unit weights — summing `1.0`s is exact, so the
/// weight sum *is* `len as f64` and every mean divides the same
/// numerator by the same denominator.
pub fn isotonic_l2(y: &[f64]) -> IsotonicFit {
    struct Pool {
        start: usize,
        len: usize,
        ysum: f64,
    }
    impl Pool {
        fn value(&self) -> f64 {
            self.ysum / self.len as f64
        }
    }
    let mut stack: Vec<Pool> = Vec::with_capacity(y.len().min(1024));
    for (i, &yi) in y.iter().enumerate() {
        stack.push(Pool {
            start: i,
            len: 1,
            ysum: yi,
        });
        while stack.len() >= 2 {
            let last = &stack[stack.len() - 1];
            let prev = &stack[stack.len() - 2];
            if prev.value() > last.value() {
                let last = stack.pop().expect("len >= 2");
                let prev = stack.last_mut().expect("len >= 1");
                prev.len += last.len;
                prev.ysum += last.ysum;
            } else {
                break;
            }
        }
    }
    IsotonicFit::from_blocks(
        stack
            .into_iter()
            .map(|p| Block {
                start: p.start,
                len: p.len,
                value: p.value(),
            })
            .collect(),
    )
}

/// Weighted L2 isotonic regression:
/// `min Σ w_i (x_i − y_i)² s.t. x non-decreasing`.
///
/// Weights must be strictly positive. Used directly for the paper's
/// estimators (unit weights) and by tests that cross-check the
/// anchored variant via a large anchor weight.
pub fn isotonic_l2_weighted(y: &[f64], w: &[f64]) -> IsotonicFit {
    assert_eq!(y.len(), w.len(), "weights must match values in length");
    assert!(
        w.iter().all(|&wi| wi > 0.0 && wi.is_finite()),
        "weights must be positive and finite"
    );
    // Stack of pooled blocks: (start index, weight sum, weighted value
    // sum). A block's fitted value is wsum_y / wsum.
    struct Pool {
        start: usize,
        len: usize,
        wsum: f64,
        wysum: f64,
    }
    impl Pool {
        fn value(&self) -> f64 {
            self.wysum / self.wsum
        }
    }
    let mut stack: Vec<Pool> = Vec::with_capacity(y.len().min(1024));
    for (i, (&yi, &wi)) in y.iter().zip(w.iter()).enumerate() {
        stack.push(Pool {
            start: i,
            len: 1,
            wsum: wi,
            wysum: wi * yi,
        });
        while stack.len() >= 2 {
            let last = &stack[stack.len() - 1];
            let prev = &stack[stack.len() - 2];
            if prev.value() > last.value() {
                let last = stack.pop().expect("len >= 2");
                let prev = stack.last_mut().expect("len >= 1");
                prev.len += last.len;
                prev.wsum += last.wsum;
                prev.wysum += last.wysum;
            } else {
                break;
            }
        }
    }
    IsotonicFit::from_blocks(
        stack
            .into_iter()
            .map(|p| Block {
                start: p.start,
                len: p.len,
                value: p.value(),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The dedicated unit-weight loop is bit-identical to the
        /// weighted solver with an all-ones weight vector (what
        /// `isotonic_l2` used to allocate per call).
        #[test]
        fn unweighted_matches_unit_weighted(
            y in prop::collection::vec(-50.0f64..50.0, 0..80)
        ) {
            let w = vec![1.0; y.len()];
            prop_assert_eq!(
                isotonic_l2(&y).blocks(),
                isotonic_l2_weighted(&y, &w).blocks()
            );
        }
    }

    #[test]
    fn already_sorted_is_identity() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(isotonic_l2(&y).values(), y.to_vec());
    }

    #[test]
    fn single_violation_pools_to_mean() {
        let y = [3.0, 1.0];
        assert_eq!(isotonic_l2(&y).values(), vec![2.0, 2.0]);
    }

    #[test]
    fn paper_figure2_example() {
        // Figure 2: noisy [0, 4, 2, 4, 5, 3] → [0, 3, 3, 4, 4, 4].
        let y = [0.0, 4.0, 2.0, 4.0, 5.0, 3.0];
        assert_eq!(isotonic_l2(&y).values(), vec![0.0, 3.0, 3.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn all_decreasing_pools_to_global_mean() {
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        let f = isotonic_l2(&y);
        assert_eq!(f.blocks().len(), 1);
        assert_eq!(f.values(), vec![3.0; 5]);
    }

    #[test]
    fn weighted_pull() {
        // A heavy second element dominates the pooled mean.
        let f = isotonic_l2_weighted(&[4.0, 0.0], &[1.0, 3.0]);
        assert_eq!(f.values(), vec![1.0, 1.0]);
    }

    #[test]
    fn empty_input() {
        assert!(isotonic_l2(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn rejects_zero_weight() {
        let _ = isotonic_l2_weighted(&[1.0], &[0.0]);
    }

    /// Exhaustive optimality check on small inputs: the PAV solution
    /// must beat every monotone vector drawn from a lattice of
    /// candidate values.
    fn l2_cost(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
    }

    proptest! {
        #[test]
        fn pav_is_feasible_and_not_beaten_by_random_feasible_points(
            y in prop::collection::vec(-10.0f64..10.0, 1..12),
            perturb in prop::collection::vec(-5.0f64..5.0, 12),
        ) {
            let fit = isotonic_l2(&y);
            let x = fit.values();
            // Feasibility.
            for w in x.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-12);
            }
            let cost = l2_cost(&x, &y);
            // Construct a random feasible competitor by sorting a
            // perturbation of the fit.
            let mut comp: Vec<f64> = x
                .iter()
                .zip(perturb.iter())
                .map(|(a, p)| a + p)
                .collect();
            comp.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(cost <= l2_cost(&comp, &y) + 1e-9);
        }

        /// PAV preserves the weighted mean (projection property).
        #[test]
        fn pav_preserves_total_mass(
            y in prop::collection::vec(-100.0f64..100.0, 1..50),
        ) {
            let x = isotonic_l2(&y).values();
            let sy: f64 = y.iter().sum();
            let sx: f64 = x.iter().sum();
            prop_assert!((sx - sy).abs() < 1e-6 * (1.0 + sy.abs()));
        }
    }
}
