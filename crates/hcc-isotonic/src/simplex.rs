//! Euclidean projection onto the scaled probability simplex.
//!
//! The naive method (Section 4.1) post-processes the noisy histogram
//! with the quadratic program `min ‖Ĥ − H̃‖₂² s.t. Ĥ ≥ 0, Σ Ĥ = G`.
//! Its exact solution is the projection of `H̃` onto the simplex
//! scaled to total mass `G`: `Ĥ_i = max(H̃_i − θ, 0)` for the unique
//! threshold `θ` making the sum come out right. The classic
//! sort-and-threshold algorithm finds `θ` in `O(n log n)`.

/// Projects `y` onto `{x ∈ ℝⁿ : x ≥ 0, Σx = mass}`.
///
/// Panics if `y` is empty while `mass > 0` (the constraint set is then
/// empty).
pub fn project_simplex(y: &[f64], mass: f64) -> Vec<f64> {
    assert!(mass >= 0.0 && mass.is_finite(), "mass must be non-negative");
    if y.is_empty() {
        assert!(mass == 0.0, "cannot place positive mass on zero cells");
        return Vec::new();
    }
    let mut sorted: Vec<f64> = y.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("values must not be NaN"));
    // Find ρ = max { j : sorted[j] − (Σ_{k≤j} sorted[k] − mass)/(j+1) > 0 }.
    let mut cumsum = 0.0;
    let mut theta = 0.0;
    let mut found = false;
    for (j, &v) in sorted.iter().enumerate() {
        cumsum += v;
        let t = (cumsum - mass) / (j as f64 + 1.0);
        if v - t > 0.0 {
            theta = t;
            found = true;
        } else {
            break;
        }
    }
    if !found {
        // All mass collapses onto the largest coordinate's threshold;
        // happens only for mass = 0 with all-negative input.
        theta = sorted[0];
    }
    y.iter().map(|&v| (v - theta).max(0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_feasible(x: &[f64], mass: f64) {
        assert!(x.iter().all(|&v| v >= 0.0));
        let s: f64 = x.iter().sum();
        assert!(
            (s - mass).abs() < 1e-6 * (1.0 + mass),
            "sum {s} != mass {mass}"
        );
    }

    #[test]
    fn feasible_point_is_unchanged() {
        let y = [1.0, 2.0, 3.0];
        let x = project_simplex(&y, 6.0);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_coordinates_are_zeroed() {
        let y = [-5.0, 10.0];
        let x = project_simplex(&y, 10.0);
        assert_eq!(x, vec![0.0, 10.0]);
    }

    #[test]
    fn uniform_excess_is_shared() {
        // Project [2,2,2] to mass 3: subtract 1 from each.
        let x = project_simplex(&[2.0, 2.0, 2.0], 3.0);
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn zero_mass() {
        let x = project_simplex(&[3.0, -1.0], 0.0);
        assert_feasible(&x, 0.0);
    }

    #[test]
    fn all_negative_input_gets_full_mass_on_max() {
        let x = project_simplex(&[-10.0, -2.0, -7.0], 5.0);
        assert_feasible(&x, 5.0);
        assert_eq!(x[0], 0.0);
        assert!(x[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive mass on zero cells")]
    fn empty_with_mass_panics() {
        let _ = project_simplex(&[], 1.0);
    }

    proptest! {
        /// The projection is feasible and no random feasible point is
        /// closer to the input.
        #[test]
        fn projection_is_optimal(
            y in prop::collection::vec(-50.0f64..50.0, 1..12),
            mass in 0.0f64..100.0,
            dir in prop::collection::vec(0.0f64..1.0, 12),
        ) {
            let x = project_simplex(&y, mass);
            prop_assert!(x.iter().all(|&v| v >= -1e-12));
            let s: f64 = x.iter().sum();
            prop_assert!((s - mass).abs() < 1e-6 * (1.0 + mass));
            // Random feasible competitor: normalise `dir` to mass.
            let dsum: f64 = dir[..y.len()].iter().sum();
            prop_assume!(dsum > 1e-9);
            let comp: Vec<f64> = dir[..y.len()].iter().map(|d| d * mass / dsum).collect();
            let dist = |a: &[f64]| -> f64 {
                a.iter().zip(y.iter()).map(|(p, q)| (p - q) * (p - q)).sum()
            };
            prop_assert!(dist(&x) <= dist(&comp) + 1e-6);
        }
    }
}
