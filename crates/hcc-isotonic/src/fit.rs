//! The result of an isotonic regression: a non-decreasing step
//! function described by its constant blocks.

/// A maximal constant segment of an isotonic fit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Block {
    /// Index of the first element of the block.
    pub start: usize,
    /// Number of elements in the block (≥ 1).
    pub len: usize,
    /// The fitted value shared by all elements of the block.
    pub value: f64,
}

impl Block {
    /// One-past-the-end index of the block.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// A non-decreasing step function produced by PAV.
///
/// The paper's Section 5.1 variance estimates need the *partition
/// structure* of the solution — "the consecutive entries in the
/// solution that have the same value" — which is exactly the
/// coalesced block list ([`IsotonicFit::coalesced`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IsotonicFit {
    blocks: Vec<Block>,
}

impl IsotonicFit {
    /// Wraps a block list. Blocks must tile `0..n` contiguously with
    /// non-decreasing values; this is checked with debug assertions
    /// (the solvers in this crate construct valid lists by design).
    pub fn from_blocks(blocks: Vec<Block>) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut next = 0usize;
            let mut prev = f64::NEG_INFINITY;
            for b in &blocks {
                debug_assert_eq!(b.start, next, "blocks must tile contiguously");
                debug_assert!(b.len >= 1, "blocks must be non-empty");
                debug_assert!(b.value >= prev, "block values must be non-decreasing");
                next = b.end();
                prev = b.value;
            }
        }
        Self { blocks }
    }

    /// The blocks, left to right.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Total number of fitted elements.
    pub fn len(&self) -> usize {
        self.blocks.last().map(|b| b.end()).unwrap_or(0)
    }

    /// Whether the fit covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Expands to the dense fitted vector.
    pub fn values(&self) -> Vec<f64> {
        let mut v = Vec::new();
        self.values_into(&mut v);
        v
    }

    /// Expands the dense fitted vector into a caller-owned buffer
    /// (cleared first). The estimators call this once per node with a
    /// per-worker scratch buffer, so the expansion costs a run-length
    /// `resize` per block instead of a fresh `len()`-sized allocation
    /// per call.
    pub fn values_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.len());
        for b in &self.blocks {
            out.resize(out.len() + b.len, b.value);
        }
    }

    /// Clamps every value into `[lo, hi]` and merges blocks that the
    /// clamp made equal. Clamping an isotonic solution to a constant
    /// box yields the exact box-constrained isotonic solution for any
    /// separable convex loss.
    pub fn clamped(&self, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid clamp range [{lo}, {hi}]");
        let clamped = self.blocks.iter().map(|b| Block {
            value: b.value.clamp(lo, hi),
            ..*b
        });
        Self::coalesce(clamped)
    }

    /// Merges adjacent blocks with exactly equal values, yielding the
    /// maximal-constant-run partition used for variance estimation.
    pub fn coalesced(&self) -> Self {
        Self::coalesce(self.blocks.iter().copied())
    }

    fn coalesce<I: IntoIterator<Item = Block>>(blocks: I) -> Self {
        let mut out: Vec<Block> = Vec::new();
        for b in blocks {
            match out.last_mut() {
                Some(last) if last.value == b.value => last.len += b.len,
                _ => out.push(b),
            }
        }
        Self { blocks: out }
    }

    /// For each element index, the length of the maximal constant run
    /// containing it (the `|S_i|` of Section 5.1.1).
    pub fn partition_sizes(&self) -> Vec<usize> {
        let co = self.coalesced();
        let mut out = Vec::with_capacity(self.len());
        for b in co.blocks() {
            for _ in 0..b.len {
                out.push(b.len);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(vals: &[(usize, f64)]) -> IsotonicFit {
        let mut blocks = Vec::new();
        let mut start = 0;
        for &(len, value) in vals {
            blocks.push(Block { start, len, value });
            start += len;
        }
        IsotonicFit::from_blocks(blocks)
    }

    #[test]
    fn values_expand_blocks() {
        let f = fit(&[(2, 1.0), (1, 3.0)]);
        assert_eq!(f.values(), vec![1.0, 1.0, 3.0]);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
    }

    #[test]
    fn values_into_replaces_stale_contents() {
        let f = fit(&[(2, 1.0), (1, 3.0)]);
        let mut out = vec![9.0; 10];
        f.values_into(&mut out);
        assert_eq!(out, f.values());
        fit(&[(1, 5.0)]).values_into(&mut out);
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn clamp_merges_saturated_blocks() {
        let f = fit(&[(1, -2.0), (1, -1.0), (1, 3.0), (1, 9.0), (1, 11.0)]);
        let c = f.clamped(0.0, 10.0);
        assert_eq!(c.values(), vec![0.0, 0.0, 3.0, 9.0, 10.0]);
        // The two negative blocks collapse into one zero block.
        assert_eq!(c.blocks().len(), 4);
    }

    #[test]
    fn partition_sizes_reflect_equal_runs() {
        // Two PAV blocks that happen to share a value count as one
        // partition for Section 5.1.
        let f = fit(&[(2, 5.0), (3, 5.0), (1, 7.0)]);
        assert_eq!(f.partition_sizes(), vec![5, 5, 5, 5, 5, 1]);
    }

    #[test]
    fn empty_fit() {
        let f = IsotonicFit::default();
        assert_eq!(f.len(), 0);
        assert!(f.is_empty());
        assert!(f.values().is_empty());
        assert!(f.partition_sizes().is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid clamp range")]
    fn clamp_rejects_inverted_range() {
        let f = fit(&[(1, 0.0)]);
        let _ = f.clamped(1.0, 0.0);
    }
}
