use hcc_isotonic::{anchored_cumulative, CumulativeLoss};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn anchored_l1_100k_cells_is_fast() {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 100_001usize;
    let noisy: Vec<i64> = (0..n)
        .map(|i| (i / 10) as i64 + rng.gen_range(-5..5))
        .collect();
    let t = std::time::Instant::now();
    let out = anchored_cumulative(&noisy, (n as u64 - 1) / 10 + 10, CumulativeLoss::L1);
    let dt = t.elapsed();
    eprintln!("anchored L1 on {n} cells: {dt:?}");
    assert_eq!(out.len(), n);
    assert!(dt.as_secs_f64() < 5.0, "too slow: {dt:?}");
}
