//! Extension: privatizing the Groups table itself (footnote 5).
//!
//! The paper treats the number of groups per region as public (the
//! U.S. Census Bureau considers household counts per block observable
//! by inspection). Footnote 5 sketches the extension for when it is
//! not: estimate each region's group count with Laplace/geometric
//! noise, then post-process the noisy counts into a consistent,
//! non-negative, integral tree by solving a small least-squares
//! problem. The resulting counts can then be fed to Algorithm 1 as
//! the "public" `G` values.
//!
//! This module implements that extension with the same exact solvers
//! used elsewhere in the workspace: a top-down pass where each node's
//! children are projected onto the simplex `{x ≥ 0, Σx = parent}` and
//! rounded with the largest-remainder rule.

use hcc_hierarchy::Hierarchy;
use hcc_isotonic::{project_simplex, round_preserving_sum};
use hcc_noise::GeometricMechanism;
use rand::Rng;

/// Differentially private, hierarchy-consistent group counts.
///
/// Adds double-geometric noise with scale `(L+1)/ε` to every node's
/// group count (adding or removing one *group* changes one count per
/// level, so per-level sensitivity is 1 under group-level adjacency),
/// then makes the tree consistent top-down: the root is its rounded
/// noisy count, and every node's children are the Euclidean projection
/// of their noisy counts onto the simplex summing to the node's final
/// count, rounded to integers.
///
/// Returns one count per node, indexed by [`hcc_hierarchy::NodeId::index`]. The
/// result satisfies: non-negative integers, children summing to
/// parents.
pub fn private_group_counts<R: Rng + ?Sized>(
    hierarchy: &Hierarchy,
    true_counts: &[u64],
    epsilon: f64,
    rng: &mut R,
) -> Vec<u64> {
    assert_eq!(
        true_counts.len(),
        hierarchy.num_nodes(),
        "need one group count per hierarchy node"
    );
    let levels = hierarchy.num_levels();
    let eps_level = epsilon / levels as f64;
    let mech = GeometricMechanism::new(eps_level, 1.0);
    let noisy: Vec<i64> = true_counts
        .iter()
        .map(|&c| mech.privatize(c, rng))
        .collect();

    let mut out = vec![0u64; hierarchy.num_nodes()];
    out[Hierarchy::ROOT.index()] = noisy[Hierarchy::ROOT.index()].max(0) as u64;
    for l in 0..levels.saturating_sub(1) {
        for &node in hierarchy.level(l) {
            let children = hierarchy.children(node);
            if children.is_empty() {
                continue;
            }
            let target = out[node.index()];
            let child_noisy: Vec<f64> = children.iter().map(|c| noisy[c.index()] as f64).collect();
            let projected = project_simplex(&child_noisy, target as f64);
            let rounded = round_preserving_sum(&projected, target);
            for (c, &v) in children.iter().zip(rounded.iter()) {
                out[c.index()] = v;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_hierarchy::HierarchyBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_level() -> (Hierarchy, Vec<u64>) {
        let mut b = HierarchyBuilder::new("root");
        let s1 = b.add_child(Hierarchy::ROOT, "s1");
        let s2 = b.add_child(Hierarchy::ROOT, "s2");
        let _c1 = b.add_child(s1, "c1");
        let _c2 = b.add_child(s1, "c2");
        let _c3 = b.add_child(s2, "c3");
        let h = b.build();
        // counts: root 100 = s1 60 + s2 40; s1 = 25 + 35; s2 = 40.
        let counts = vec![100, 60, 40, 25, 35, 40];
        (h, counts)
    }

    fn assert_consistent(h: &Hierarchy, counts: &[u64]) {
        for node in h.iter() {
            if h.is_leaf(node) {
                continue;
            }
            let child_sum: u64 = h.children(node).iter().map(|c| counts[c.index()]).sum();
            assert_eq!(counts[node.index()], child_sum, "at {node}");
        }
    }

    #[test]
    fn output_is_consistent_tree() {
        let (h, counts) = three_level();
        let mut rng = StdRng::seed_from_u64(31);
        for eps in [0.1, 1.0, 10.0] {
            let out = private_group_counts(&h, &counts, eps, &mut rng);
            assert_consistent(&h, &out);
        }
    }

    #[test]
    fn high_epsilon_recovers_truth() {
        let (h, counts) = three_level();
        let mut rng = StdRng::seed_from_u64(32);
        let out = private_group_counts(&h, &counts, 1000.0, &mut rng);
        assert_eq!(out, counts);
    }

    #[test]
    fn error_shrinks_with_budget() {
        let (h, counts) = three_level();
        let mut rng = StdRng::seed_from_u64(33);
        let avg_err = |eps: f64, rng: &mut StdRng| -> f64 {
            (0..40)
                .map(|_| {
                    let out = private_group_counts(&h, &counts, eps, rng);
                    out.iter()
                        .zip(counts.iter())
                        .map(|(a, b)| a.abs_diff(*b) as f64)
                        .sum::<f64>()
                })
                .sum::<f64>()
                / 40.0
        };
        let coarse = avg_err(0.1, &mut rng);
        let fine = avg_err(5.0, &mut rng);
        assert!(fine < coarse, "{fine} !< {coarse}");
    }

    #[test]
    fn zero_count_regions_stay_nonnegative() {
        let mut b = HierarchyBuilder::new("root");
        let _a = b.add_child(Hierarchy::ROOT, "a");
        let _z = b.add_child(Hierarchy::ROOT, "zero");
        let h = b.build();
        let mut rng = StdRng::seed_from_u64(34);
        for _ in 0..50 {
            let out = private_group_counts(&h, &[5, 5, 0], 0.2, &mut rng);
            assert_consistent(&h, &out);
            // u64 type already enforces nonnegativity; the projection
            // must also keep the tree total bounded by the root.
            assert_eq!(out[1] + out[2], out[0]);
        }
    }

    #[test]
    #[should_panic(expected = "one group count per hierarchy node")]
    fn wrong_length_panics() {
        let (h, _) = three_level();
        let mut rng = StdRng::seed_from_u64(35);
        let _ = private_group_counts(&h, &[1, 2], 1.0, &mut rng);
    }
}
