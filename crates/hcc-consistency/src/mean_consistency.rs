//! The mean-consistency baseline of Hay et al., reproduced to
//! demonstrate *why* it cannot solve the count-of-counts problem.
//!
//! Mean-consistency treats each histogram cell independently: for a
//! fixed group size `i`, the per-node noisy counts `τ.H̃[i]` form one
//! value per tree node, and the algorithm computes the least-squares
//! estimate subject to "children sum to parent". Its closed form is a
//! bottom-up variance-weighted averaging pass followed by a top-down
//! discrepancy-distribution pass — the subtraction step of which
//! produces **negative** and **fractional** counts (footnote 7 of the
//! paper), violating the problem's integrality and nonnegativity
//! desiderata. It also cannot guarantee `Σ_i Ĥ[i] = G`.

use hcc_hierarchy::{Hierarchy, NodeId};
use hcc_noise::GeometricMechanism;
use rand::Rng;

use crate::counts::HierarchicalCounts;

/// Output of the mean-consistency baseline: real-valued per-node
/// histograms plus diagnostics on desiderata violations.
#[derive(Debug, Clone)]
pub struct MeanConsistencyReport {
    /// Per-node real-valued histograms (indexed by `NodeId::index`),
    /// all padded to a common length.
    pub hists: Vec<Vec<f64>>,
    /// Number of cells with a strictly negative estimate.
    pub negative_cells: usize,
    /// Number of cells that are not integers (beyond 1e-9 tolerance).
    pub fractional_cells: usize,
}

impl MeanConsistencyReport {
    /// The real-valued histogram of one node.
    pub fn node(&self, node: NodeId) -> &[f64] {
        &self.hists[node.index()]
    }

    /// Maximum absolute consistency violation
    /// `max_i |parent[i] − Σ children[i]|` over all internal nodes —
    /// should be ≈ 0 (mean-consistency does achieve additivity).
    pub fn max_consistency_gap(&self, hierarchy: &Hierarchy) -> f64 {
        let mut max_gap = 0.0f64;
        for node in hierarchy.iter() {
            if hierarchy.is_leaf(node) {
                continue;
            }
            let parent = &self.hists[node.index()];
            for (i, &p) in parent.iter().enumerate() {
                let child_sum: f64 = hierarchy
                    .children(node)
                    .iter()
                    .map(|c| self.hists[c.index()][i])
                    .sum();
                max_gap = max_gap.max((p - child_sum).abs());
            }
        }
        max_gap
    }
}

/// Runs the per-cell mean-consistency pipeline end to end: geometric
/// noise (scale `2·(L+1)/ε`, i.e. the same per-level budget split as
/// Algorithm 1 with the naive cell sensitivity of 2) on every node's
/// padded histogram, then the two-pass GLS consistency solve.
pub fn mean_consistency_release<R: Rng + ?Sized>(
    hierarchy: &Hierarchy,
    data: &HierarchicalCounts,
    bound: u64,
    epsilon: f64,
    rng: &mut R,
) -> MeanConsistencyReport {
    let levels = hierarchy.num_levels();
    let eps_level = epsilon / levels as f64;
    let mech = GeometricMechanism::new(eps_level, 2.0);
    let n = hierarchy.num_nodes();
    let width = usize::try_from(bound).expect("bound too large") + 1;

    // Noisy measurements per node.
    let noisy: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let dense = data.as_slice()[i].truncated(bound).padded(bound);
            mech.privatize_vec(&dense, rng)
                .into_iter()
                .map(|v| v as f64)
                .collect()
        })
        .collect();
    let sigma2 = mech.variance();

    // Bottom-up pass: z̃[v] = weighted average of v's own measurement
    // and the sum of its children's z̃, weights inverse to variance.
    // var[v] tracks Var(z̃[v]) (identical for every cell of a node).
    let mut ztilde: Vec<Vec<f64>> = noisy.clone();
    let mut var: Vec<f64> = vec![sigma2; n];
    for l in (0..levels.saturating_sub(1)).rev() {
        for &node in hierarchy.level(l) {
            let children = hierarchy.children(node);
            if children.is_empty() {
                continue;
            }
            let child_var: f64 = children.iter().map(|c| var[c.index()]).sum();
            let w_own = 1.0 / sigma2;
            let w_children = 1.0 / child_var;
            let alpha = w_own / (w_own + w_children);
            for i in 0..width {
                let child_sum: f64 = children.iter().map(|c| ztilde[c.index()][i]).sum();
                ztilde[node.index()][i] =
                    alpha * noisy[node.index()][i] + (1.0 - alpha) * child_sum;
            }
            var[node.index()] = 1.0 / (w_own + w_children);
        }
    }

    // Top-down pass: distribute the residual discrepancy among the
    // children in proportion to their variances (the subtraction step
    // that can push counts negative).
    let mut out: Vec<Vec<f64>> = vec![vec![0.0; width]; n];
    out[Hierarchy::ROOT.index()] = ztilde[Hierarchy::ROOT.index()].clone();
    for l in 0..levels.saturating_sub(1) {
        for &node in hierarchy.level(l) {
            let children = hierarchy.children(node);
            if children.is_empty() {
                continue;
            }
            let total_child_var: f64 = children.iter().map(|c| var[c.index()]).sum();
            for i in 0..width {
                let child_sum: f64 = children.iter().map(|c| ztilde[c.index()][i]).sum();
                let discrepancy = out[node.index()][i] - child_sum;
                for &c in children {
                    out[c.index()][i] =
                        ztilde[c.index()][i] + discrepancy * var[c.index()] / total_child_var;
                }
            }
        }
    }

    let mut negative_cells = 0;
    let mut fractional_cells = 0;
    for h in &out {
        for &v in h {
            if v < 0.0 {
                negative_cells += 1;
            }
            if (v - v.round()).abs() > 1e-9 {
                fractional_cells += 1;
            }
        }
    }
    MeanConsistencyReport {
        hists: out,
        negative_cells,
        fractional_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::CountOfCounts;
    use hcc_hierarchy::HierarchyBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> (Hierarchy, HierarchicalCounts) {
        let mut b = HierarchyBuilder::new("top");
        let leaves: Vec<_> = (0..6)
            .map(|i| b.add_child(Hierarchy::ROOT, format!("l{i}")))
            .collect();
        let h = b.build();
        let data = HierarchicalCounts::from_leaves(
            &h,
            leaves
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    (
                        l,
                        CountOfCounts::from_group_sizes(vec![1 + (i as u64) % 3; 4]),
                    )
                })
                .collect(),
        )
        .unwrap();
        (h, data)
    }

    #[test]
    fn achieves_additive_consistency() {
        let (h, data) = sample();
        let mut rng = StdRng::seed_from_u64(11);
        let report = mean_consistency_release(&h, &data, 8, 1.0, &mut rng);
        assert!(report.max_consistency_gap(&h) < 1e-6);
    }

    #[test]
    fn produces_negative_and_fractional_cells() {
        // The paper's core criticism: at realistic ε this baseline
        // violates nonnegativity and integrality. With many empty
        // cells and ε = 0.5 this happens essentially always.
        let (h, data) = sample();
        let mut rng = StdRng::seed_from_u64(12);
        let mut neg = 0;
        let mut frac = 0;
        for _ in 0..5 {
            let report = mean_consistency_release(&h, &data, 16, 0.5, &mut rng);
            neg += report.negative_cells;
            frac += report.fractional_cells;
        }
        assert!(neg > 0, "expected negative cells from the subtraction step");
        assert!(frac > 0, "expected fractional cells from averaging");
    }

    #[test]
    fn does_not_preserve_group_totals() {
        // Unlike Algorithm 1, ΣĤ[i] drifts from the public G.
        let (h, data) = sample();
        let mut rng = StdRng::seed_from_u64(13);
        let report = mean_consistency_release(&h, &data, 16, 0.5, &mut rng);
        let root_total: f64 = report.node(Hierarchy::ROOT).iter().sum();
        let g = data.groups(Hierarchy::ROOT) as f64;
        assert!(
            (root_total - g).abs() > 1e-6,
            "total happened to match exactly; rerun with another seed"
        );
    }
}
