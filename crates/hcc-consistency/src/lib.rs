//! Hierarchical consistency for differentially private count-of-counts
//! histograms (Section 5 of the paper).
//!
//! Independent per-node estimates disagree across levels: the same
//! household has one size estimate inside the Virginia histogram and
//! another inside the Fairfax County histogram, and children's
//! histograms do not sum to their parents'. Standard mean-consistency
//! cannot repair this (it emits negative and fractional counts and
//! needs variances that have no closed form here), so the paper's
//! Algorithm 1 instead:
//!
//! 1. estimates every node with an ε/(L+1) slice of budget
//!    ([`hcc_estimators`]);
//! 2. estimates per-group variances from the isotonic-regression
//!    structure (Section 5.1, computed in [`hcc_estimators`]);
//! 3. finds an **optimal least-cost matching** between the groups of a
//!    parent and the pooled groups of its children (Section 5.2,
//!    [`matching`]);
//! 4. **merges** each matched pair's two size estimates by
//!    inverse-variance weighting (Section 5.3, [`merge`]);
//! 5. recurses top-down, then back-substitutes leaf histograms upward
//!    so children sum exactly to parents ([`topdown`]).
//!
//! Baselines for the paper's evaluation live alongside:
//! [`bottom_up`] (all budget at the leaves), [`mean_consistency`]
//! (the Hay et al. approach, reproducing its negativity failure), and
//! [`omniscient`] (the non-private yardstick of Section 6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottom_up;
pub mod counts;
pub mod export;
pub mod matching;
pub mod matching_dense;
pub mod mean_consistency;
pub mod merge;
pub mod omniscient;
pub mod private_counts;
pub mod topdown;

pub use bottom_up::bottom_up_release;
pub use counts::{ConsistencyError, HierarchicalCounts, LeafEdit, MAX_EDIT_SIZE};
pub use export::{from_csv, to_csv, ExportError};
pub use matching::{match_groups, MatchSegment};
pub use matching_dense::{match_groups_dense, DensePair};
pub use mean_consistency::{mean_consistency_release, MeanConsistencyReport};
pub use merge::MergeStrategy;
pub use omniscient::{omniscient_expected_error, omniscient_release};
pub use private_counts::private_group_counts;
pub use topdown::{
    estimate_node, node_seeds, subtree_tasks, top_down_from_estimates, top_down_release,
    LevelMethod, TopDownConfig,
};
