//! Dense reference implementation of Algorithm 2.
//!
//! The paper states Algorithm 2 over the *expanded* unattributed
//! histograms (`τ.Ĥg` has one entry per group), costing
//! `O(τ.G log τ.G)`. The production implementation in
//! [`crate::matching`] is the run-length compressed equivalent. This
//! module implements the dense form literally — useful as an
//! executable specification (the property tests assert pairwise
//! equivalence of the two) and as the baseline for the
//! run-length-vs-dense benchmark called out in DESIGN.md.

use hcc_estimators::VarianceRun;
use hcc_isotonic::apportion;

use crate::matching::MatchSegment;

/// One matched pair in the dense matching: group `parent_index` of
/// the parent is group `child_index` of child `child`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DensePair {
    /// Index into the parent's dense `Ĥg`.
    pub parent_index: usize,
    /// Which child the group belongs to.
    pub child: usize,
    /// Index into that child's dense `Ĥg`.
    pub child_index: usize,
}

/// Expands variance runs into the dense `Ĥg` (sizes only).
fn expand(runs: &[VarianceRun]) -> Vec<u64> {
    let total: u64 = runs.iter().map(|r| r.count).sum();
    let mut out = Vec::with_capacity(usize::try_from(total).expect("G too large for dense"));
    for r in runs {
        for _ in 0..r.count {
            out.push(r.size);
        }
    }
    out
}

/// Algorithm 2, dense form: returns one pair per group. Children are
/// given as dense sorted size vectors.
///
/// Matches the smallest unmatched parent groups against the smallest
/// unmatched child groups; when a parent tie-class is smaller than the
/// pooled child tie-class, parent groups are apportioned across the
/// children by largest remainder (footnote 10).
pub fn match_groups_dense(parent: &[u64], children: &[Vec<u64>]) -> Vec<DensePair> {
    let total: usize = children.iter().map(|c| c.len()).sum();
    assert_eq!(
        parent.len(),
        total,
        "parent has {} groups but children pool {}",
        parent.len(),
        total
    );
    debug_assert!(parent.windows(2).all(|w| w[0] <= w[1]));
    for c in children {
        debug_assert!(c.windows(2).all(|w| w[0] <= w[1]));
    }

    let mut pairs = Vec::with_capacity(parent.len());
    let mut next_child_idx: Vec<usize> = vec![0; children.len()];
    let mut pi = 0usize;
    while pi < parent.len() {
        // G_t: the run of parent groups tied at the current minimum.
        let st = parent[pi];
        let mut pt_end = pi;
        while pt_end < parent.len() && parent[pt_end] == st {
            pt_end += 1;
        }
        let gt = pt_end - pi;

        // G_b: the pooled child groups tied at the minimum size.
        let sb = children
            .iter()
            .enumerate()
            .filter_map(|(c, v)| v.get(next_child_idx[c]).copied())
            .min()
            .expect("children exhausted before parent");
        let mut members: Vec<(usize, usize)> = Vec::new(); // (child, count at sb)
        for (c, v) in children.iter().enumerate() {
            let start = next_child_idx[c];
            let mut end = start;
            while end < v.len() && v[end] == sb {
                end += 1;
            }
            if end > start {
                members.push((c, end - start));
            }
        }
        let gb: usize = members.iter().map(|m| m.1).sum();

        if gt >= gb {
            // Match all of G_b now.
            let mut p = pi;
            for &(c, count) in &members {
                for k in 0..count {
                    pairs.push(DensePair {
                        parent_index: p,
                        child: c,
                        child_index: next_child_idx[c] + k,
                    });
                    p += 1;
                }
                next_child_idx[c] += count;
            }
            pi += gb;
        } else {
            // Apportion G_t across the tied children.
            let weights: Vec<u64> = members.iter().map(|m| m.1 as u64).collect();
            let shares = apportion(gt as u64, &weights);
            let mut p = pi;
            for (&(c, _), &share) in members.iter().zip(shares.iter()) {
                for k in 0..share as usize {
                    pairs.push(DensePair {
                        parent_index: p,
                        child: c,
                        child_index: next_child_idx[c] + k,
                    });
                    p += 1;
                }
                next_child_idx[c] += share as usize;
            }
            pi = pt_end;
        }
    }
    pairs
}

/// Total |parent size − child size| cost of a dense matching.
/// Accumulated in u128 for the same overflow-safety reason as
/// [`MatchSegment::cost`].
pub fn dense_cost(pairs: &[DensePair], parent: &[u64], children: &[Vec<u64>]) -> u128 {
    pairs
        .iter()
        .map(|p| u128::from(parent[p.parent_index].abs_diff(children[p.child][p.child_index])))
        .sum()
}

/// Expands run-length [`MatchSegment`]s into their total cost, for
/// equivalence checks against [`dense_cost`].
pub fn segments_cost(segments: &[MatchSegment]) -> u128 {
    segments.iter().map(|s| s.cost()).sum()
}

/// Convenience: runs the dense algorithm from variance runs (expanding
/// internally). Intended for tests and benchmarks only.
pub fn match_groups_dense_from_runs(
    parent: &[VarianceRun],
    children: &[Vec<VarianceRun>],
) -> (Vec<DensePair>, u128) {
    let p = expand(parent);
    let cs: Vec<Vec<u64>> = children.iter().map(|c| expand(c)).collect();
    let pairs = match_groups_dense(&p, &cs);
    let cost = dense_cost(&pairs, &p, &cs);
    (pairs, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::match_groups;
    use proptest::prelude::*;

    fn runs(pairs: &[(u64, u64)]) -> Vec<VarianceRun> {
        pairs
            .iter()
            .map(|&(size, count)| VarianceRun {
                size,
                count,
                variance: 1.0,
            })
            .collect()
    }

    #[test]
    fn dense_matches_paper_proportional_example() {
        let parent = runs(&[(1, 300), (2, 100)]);
        let children = vec![runs(&[(1, 200)]), runs(&[(1, 100)]), runs(&[(1, 100)])];
        let (pairs, cost) = match_groups_dense_from_runs(&parent, &children);
        assert_eq!(pairs.len(), 400);
        assert_eq!(cost, 100);
        // Every group matched exactly once on both sides.
        let mut parent_seen = vec![false; 400];
        for p in &pairs {
            assert!(!parent_seen[p.parent_index], "parent matched twice");
            parent_seen[p.parent_index] = true;
        }
        assert!(parent_seen.iter().all(|&b| b));
    }

    #[test]
    fn empty_inputs() {
        let (pairs, cost) = match_groups_dense_from_runs(&[], &[vec![], vec![]]);
        assert!(pairs.is_empty());
        assert_eq!(cost, 0);
    }

    #[test]
    #[should_panic(expected = "children pool")]
    fn dense_total_mismatch_panics() {
        let _ = match_groups_dense(&[1, 2], &[vec![1]]);
    }

    proptest! {
        /// The run-length production matching and the dense reference
        /// agree on total cost and per-child match counts for random
        /// decompositions.
        #[test]
        fn dense_and_runlength_agree(
            child_sizes in prop::collection::vec((0u64..20, 1u64..4), 1..12),
            shifts in prop::collection::vec(-2i64..3, 12),
            nchild in 1usize..4,
        ) {
            // Children: scatter runs round-robin, coalesce.
            let mut children: Vec<Vec<VarianceRun>> = vec![Vec::new(); nchild];
            let mut all: Vec<u64> = Vec::new();
            for (k, &(size, count)) in child_sizes.iter().enumerate() {
                children[k % nchild].push(VarianceRun { size, count, variance: 1.0 });
                for _ in 0..count { all.push(size); }
            }
            for c in &mut children {
                c.sort_by_key(|r| r.size);
                let mut merged: Vec<VarianceRun> = Vec::new();
                for r in c.drain(..) {
                    match merged.last_mut() {
                        Some(last) if last.size == r.size => last.count += r.count,
                        _ => merged.push(r),
                    }
                }
                *c = merged;
            }
            // Parent: perturbed pooled multiset, re-sorted and run-encoded.
            all.sort_unstable();
            let mut shifted: Vec<u64> = all.iter().enumerate()
                .map(|(i, &s)| (s as i64 + shifts[i % shifts.len()]).max(0) as u64)
                .collect();
            shifted.sort_unstable();
            let mut parent: Vec<VarianceRun> = Vec::new();
            for s in shifted {
                match parent.last_mut() {
                    Some(last) if last.size == s => last.count += 1,
                    _ => parent.push(VarianceRun { size: s, count: 1, variance: 1.0 }),
                }
            }

            let segments = match_groups(&parent, &children).unwrap();
            let (pairs, dense) = match_groups_dense_from_runs(&parent, &children);
            prop_assert_eq!(segments_cost(&segments), dense);
            // Per-child totals agree.
            for c in 0..nchild {
                let seg: u64 = segments.iter().filter(|s| s.child == c).map(|s| s.count).sum();
                let den = pairs.iter().filter(|p| p.child == c).count() as u64;
                prop_assert_eq!(seg, den);
            }
        }
    }
}
