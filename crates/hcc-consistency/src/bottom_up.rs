//! The Bottom-Up (BU) baseline (Section 6.2.2).
//!
//! BU spends the *entire* privacy budget at the leaves and defines
//! every internal node's histogram as the sum of its children's.
//! Consistency holds trivially, leaf error is the best achievable
//! (leaves see `ε` instead of `ε/(L+1)`), but error compounds up the
//! tree: the root sums the independent errors of every leaf, which the
//! paper shows is far worse than Algorithm 1 at levels 0 and 1.

use hcc_hierarchy::Hierarchy;
use rand::Rng;

use crate::counts::{ConsistencyError, HierarchicalCounts};
use crate::topdown::LevelMethod;

/// Releases private histograms by estimating only the leaves (with
/// the full budget `epsilon` — parallel composition across disjoint
/// leaf regions) and aggregating upward.
pub fn bottom_up_release<R: Rng + ?Sized>(
    hierarchy: &Hierarchy,
    data: &HierarchicalCounts,
    method: LevelMethod,
    epsilon: f64,
    rng: &mut R,
) -> Result<HierarchicalCounts, ConsistencyError> {
    if !hierarchy.is_uniform_depth() {
        return Err(ConsistencyError::NotUniformDepth);
    }
    let mut leaves = Vec::new();
    for leaf in hierarchy.leaves() {
        let h = data.node(leaf);
        let est = method.estimate(h, h.num_groups(), epsilon, rng);
        leaves.push((leaf, est.into_hist()));
    }
    HierarchicalCounts::from_leaves(hierarchy, leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::emd;
    use hcc_core::CountOfCounts;
    use hcc_hierarchy::HierarchyBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fan_out(hierarchy_leaves: usize, groups_per_leaf: u64) -> (Hierarchy, HierarchicalCounts) {
        let mut b = HierarchyBuilder::new("root");
        let mut ids = Vec::new();
        for i in 0..hierarchy_leaves {
            ids.push(b.add_child(Hierarchy::ROOT, format!("leaf{i}")));
        }
        let h = b.build();
        let leaves = ids
            .iter()
            .map(|&id| {
                (
                    id,
                    CountOfCounts::from_group_sizes((1..=groups_per_leaf).map(|s| s % 7 + 1)),
                )
            })
            .collect();
        let data = HierarchicalCounts::from_leaves(&h, leaves).unwrap();
        (h, data)
    }

    #[test]
    fn output_is_consistent_and_group_preserving() {
        let (h, data) = fan_out(5, 30);
        let mut rng = StdRng::seed_from_u64(6);
        let released = bottom_up_release(
            &h,
            &data,
            LevelMethod::Cumulative { bound: 32 },
            1.0,
            &mut rng,
        )
        .unwrap();
        released.assert_desiderata(&h);
        for node in h.iter() {
            assert_eq!(released.groups(node), data.groups(node));
        }
    }

    #[test]
    fn leaf_error_beats_top_down_budget_split() {
        // BU gives each leaf the full ε, so leaf error should (on
        // average) not exceed a same-method estimate at ε/(L+1).
        let (h, data) = fan_out(8, 60);
        let mut rng = StdRng::seed_from_u64(7);
        let method = LevelMethod::Cumulative { bound: 16 };
        let mut bu_err = 0u64;
        let mut split_err = 0u64;
        for _ in 0..5 {
            let bu = bottom_up_release(&h, &data, method, 1.0, &mut rng).unwrap();
            for leaf in h.leaves() {
                bu_err += emd(bu.node(leaf), data.node(leaf));
                let est = method.estimate(data.node(leaf), data.groups(leaf), 0.5, &mut rng);
                split_err += emd(est.hist(), data.node(leaf));
            }
        }
        assert!(
            bu_err <= split_err * 2,
            "BU at full budget should not be much worse: {bu_err} vs {split_err}"
        );
    }

    #[test]
    fn high_epsilon_recovers_everything() {
        let (h, data) = fan_out(3, 10);
        let mut rng = StdRng::seed_from_u64(8);
        let released = bottom_up_release(
            &h,
            &data,
            LevelMethod::Cumulative { bound: 16 },
            1000.0,
            &mut rng,
        )
        .unwrap();
        for node in h.iter() {
            assert_eq!(emd(released.node(node), data.node(node)), 0);
        }
    }
}
