//! The omniscient yardstick of Section 6.2 ("Interpreting error").
//!
//! The omniscient algorithm cheats: it *knows* which group sizes exist
//! at every node, so it only has to estimate a simple histogram over
//! the occupied sizes — splitting its budget per level and adding
//! `Laplace(1/ε)` to occupied cells only. A differentially private
//! algorithm must additionally discover which sizes exist, so the
//! omniscient error `#distinct sizes × √2/ε × #levels` is the natural
//! "good error" reference line the paper plots its methods against.

use hcc_core::CountOfCounts;
use hcc_hierarchy::Hierarchy;
use hcc_isotonic::round_preserving_sum;
use hcc_noise::LaplaceMechanism;
use rand::Rng;

use crate::counts::HierarchicalCounts;

/// Expected earth-mover's error of the omniscient algorithm at one
/// node: `distinct_sizes × √2 / ε_level` (the paper multiplies by the
/// level count when quoting a whole-hierarchy figure; here the
/// per-level `ε` is already passed in).
pub fn omniscient_expected_error(distinct_sizes: usize, eps_level: f64) -> f64 {
    distinct_sizes as f64 * std::f64::consts::SQRT_2 / eps_level
}

/// Simulates the omniscient algorithm on the whole hierarchy with
/// total budget `epsilon` split evenly over the levels. Returns the
/// per-node histograms (indexed by `NodeId::index`).
///
/// The per-node output is rounded to integers summing to the public
/// `G` so that earth-mover's distance against the truth is
/// well-defined; the omniscient baseline is *not* hierarchically
/// consistent (and does not need to be — it is a yardstick, not a
/// mechanism).
pub fn omniscient_release<R: Rng + ?Sized>(
    hierarchy: &Hierarchy,
    data: &HierarchicalCounts,
    epsilon: f64,
    rng: &mut R,
) -> Vec<CountOfCounts> {
    let eps_level = epsilon / hierarchy.num_levels() as f64;
    let mech = LaplaceMechanism::new(eps_level, 1.0);
    hierarchy
        .iter()
        .map(|node| {
            let h = data.node(node);
            if h.is_empty() {
                return CountOfCounts::new();
            }
            // Noise only on occupied cells; empty cells stay zero.
            // Gather the support, round within it (so sum-fixing can
            // never move mass to unoccupied sizes), then scatter back.
            let support: Vec<usize> = h
                .as_slice()
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, _)| i)
                .collect();
            let noisy: Vec<f64> = support
                .iter()
                .map(|&i| mech.privatize(h.as_slice()[i], rng))
                .collect();
            let rounded = round_preserving_sum(&noisy, h.num_groups());
            let mut dense = vec![0u64; h.len()];
            for (&i, &c) in support.iter().zip(rounded.iter()) {
                dense[i] = c;
            }
            CountOfCounts::from_counts(dense)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::emd;
    use hcc_hierarchy::HierarchyBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> (Hierarchy, HierarchicalCounts) {
        let mut b = HierarchyBuilder::new("top");
        let a = b.add_child(Hierarchy::ROOT, "a");
        let c = b.add_child(Hierarchy::ROOT, "b");
        let h = b.build();
        let data = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (a, CountOfCounts::from_group_sizes(vec![1; 50])),
                (
                    c,
                    CountOfCounts::from_group_sizes((1..=50).collect::<Vec<u64>>()),
                ),
            ],
        )
        .unwrap();
        (h, data)
    }

    #[test]
    fn expected_error_formula() {
        // 2352 distinct sizes at ε = 0.1 per level → ≈ 3.3 × 10⁴,
        // the paper's worked example.
        let e = omniscient_expected_error(2352, 0.1);
        assert!((e - 3.3e4).abs() < 0.1e4, "got {e}");
    }

    #[test]
    fn group_counts_preserved_and_support_respected() {
        let (h, data) = sample();
        let mut rng = StdRng::seed_from_u64(21);
        let out = omniscient_release(&h, &data, 1.0, &mut rng);
        for node in h.iter() {
            let est = &out[node.index()];
            assert_eq!(est.num_groups(), data.groups(node));
            // No mass outside the true support.
            for (i, &c) in est.as_slice().iter().enumerate() {
                if c > 0 {
                    assert!(
                        data.node(node).count_of(i as u64) > 0,
                        "mass appeared at unoccupied size {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn error_scales_like_the_formula() {
        let (h, data) = sample();
        let mut rng = StdRng::seed_from_u64(22);
        let eps = 1.0;
        let mut total = 0.0;
        let runs = 30;
        for _ in 0..runs {
            let out = omniscient_release(&h, &data, eps, &mut rng);
            total += emd(&out[Hierarchy::ROOT.index()], data.node(Hierarchy::ROOT)) as f64;
        }
        let avg = total / runs as f64;
        let expected = omniscient_expected_error(
            data.node(Hierarchy::ROOT).distinct_sizes(),
            eps / h.num_levels() as f64,
        );
        // The simulation (with rounding and sum-fixing) should land in
        // the same ballpark as the analytic expectation.
        assert!(
            avg < 3.0 * expected && avg > expected / 10.0,
            "avg {avg} vs expected {expected}"
        );
    }

    #[test]
    fn empty_node_stays_empty() {
        let mut b = HierarchyBuilder::new("top");
        let a = b.add_child(Hierarchy::ROOT, "a");
        let _empty = b.add_child(Hierarchy::ROOT, "empty");
        let h = b.build();
        let data =
            HierarchicalCounts::from_leaves(&h, vec![(a, CountOfCounts::from_group_sizes([1, 2]))])
                .unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let out = omniscient_release(&h, &data, 1.0, &mut rng);
        assert!(out[1].num_groups() == 2 || !out[1].is_empty());
        assert!(out[2].is_empty());
    }
}
