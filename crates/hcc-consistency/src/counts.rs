//! A hierarchy-aligned set of count-of-counts histograms.

use hcc_core::{children_sum_to_parent, CountOfCounts};
use hcc_hierarchy::{Hierarchy, NodeId};

/// Errors raised while assembling or validating hierarchical counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyError {
    /// The hierarchy has leaves at different depths; the level-by-level
    /// algorithms require a uniform-depth tree.
    NotUniformDepth,
    /// A histogram was supplied for a node that is not a leaf.
    NotALeaf(NodeId),
    /// Two histograms were supplied for the same leaf.
    DuplicateLeaf(NodeId),
    /// The supplied per-node histograms are not additive up the tree.
    Inconsistent {
        /// The parent node at which the mismatch was detected.
        node: NodeId,
    },
    /// A per-node vector had the wrong length for the hierarchy.
    WrongNodeCount {
        /// Number of histograms supplied.
        got: usize,
        /// Number of nodes in the hierarchy.
        expected: usize,
    },
    /// Algorithm 2 was asked to match a parent whose group total
    /// disagrees with its children's pooled total. The public Groups
    /// table guarantees `τ.G = Σ_c c.G` for well-formed inputs, so
    /// this only arises from adversarial or corrupted data — a served
    /// engine must reject it instead of dying.
    GroupTotalsMismatch {
        /// Number of groups in the parent's histogram.
        parent: u64,
        /// Pooled number of groups across the children.
        children: u64,
    },
    /// An edit named a node that does not exist in the hierarchy.
    UnknownNode(NodeId),
    /// An edit removes more groups of a size than the leaf holds.
    MissingGroups {
        /// The leaf the removal targets.
        node: NodeId,
        /// The group size being removed.
        size: u64,
        /// How many groups the edit wants to remove.
        requested: u64,
        /// How many groups of that size the leaf actually holds.
        present: u64,
    },
    /// An edit would push a histogram cell past `u64::MAX`.
    EditOverflow {
        /// The node whose cell would overflow.
        node: NodeId,
        /// The group size of the overflowing cell.
        size: u64,
    },
    /// An edit names a group size beyond [`MAX_EDIT_SIZE`]. The dense
    /// histograms allocate one cell per representable size, so an
    /// unbounded size on an untrusted edit would let a single delta
    /// line demand a near-2^64-element allocation and abort the
    /// process.
    GroupSizeTooLarge {
        /// The offending group size.
        size: u64,
        /// The [`MAX_EDIT_SIZE`] bound.
        max: u64,
    },
}

/// Largest group size an edit may introduce (2^26 ≈ 67M). Sizes are
/// dense histogram indices, so this caps the per-cell allocation an
/// untrusted edit can force at ~512 MB — aligned with the engine's
/// wire-section bound of 50M entity rows, above which no legitimate
/// group can exist. Data loaded from real tables is bounded by its
/// row count and never consults this limit.
pub const MAX_EDIT_SIZE: u64 = 1 << 26;

impl std::fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyError::NotUniformDepth => {
                write!(f, "hierarchy leaves must all sit at the deepest level")
            }
            ConsistencyError::NotALeaf(n) => write!(f, "node {n} is not a leaf"),
            ConsistencyError::DuplicateLeaf(n) => {
                write!(f, "leaf {n} was supplied more than once")
            }
            ConsistencyError::Inconsistent { node } => {
                write!(f, "children do not sum to parent at node {node}")
            }
            ConsistencyError::WrongNodeCount { got, expected } => {
                write!(
                    f,
                    "got {got} histograms for a hierarchy of {expected} nodes"
                )
            }
            ConsistencyError::GroupTotalsMismatch { parent, children } => {
                write!(f, "parent has {parent} groups but children pool {children}")
            }
            ConsistencyError::UnknownNode(n) => {
                write!(f, "node {n} does not exist in the hierarchy")
            }
            ConsistencyError::MissingGroups {
                node,
                size,
                requested,
                present,
            } => {
                write!(
                    f,
                    "cannot remove {requested} group(s) of size {size} at {node}: \
                     only {present} present"
                )
            }
            ConsistencyError::EditOverflow { node, size } => {
                write!(f, "edit overflows the size-{size} cell at {node}")
            }
            ConsistencyError::GroupSizeTooLarge { size, max } => {
                write!(
                    f,
                    "edit group size {size} exceeds the supported maximum {max}"
                )
            }
        }
    }
}

impl std::error::Error for ConsistencyError {}

/// One signed change to a leaf's count-of-counts cell: `delta > 0`
/// adds that many groups of size `size` to `leaf`, `delta < 0` removes
/// them. The consistency desideratum is maintained by re-aggregating
/// the leaf's root path, so an edit costs O(depth), not O(dataset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeafEdit {
    /// The leaf region the groups live in.
    pub leaf: NodeId,
    /// The group size whose cell changes.
    pub size: u64,
    /// Signed change to the number of groups of that size.
    pub delta: i64,
}

/// One count-of-counts histogram per hierarchy node, guaranteed (by
/// construction or validation) to be *consistent*: every internal
/// node's histogram equals the sum of its children's.
///
/// Used both for the sensitive input data and for the released
/// private output — the desiderata of Section 3 are invariants of
/// this type.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalCounts {
    hists: Vec<CountOfCounts>,
}

impl HierarchicalCounts {
    /// Builds from per-leaf histograms, aggregating internal nodes by
    /// summation. Leaves not mentioned are treated as empty regions.
    pub fn from_leaves(
        hierarchy: &Hierarchy,
        leaves: Vec<(NodeId, CountOfCounts)>,
    ) -> Result<Self, ConsistencyError> {
        if !hierarchy.is_uniform_depth() {
            return Err(ConsistencyError::NotUniformDepth);
        }
        let mut hists = vec![CountOfCounts::new(); hierarchy.num_nodes()];
        let mut seen = vec![false; hierarchy.num_nodes()];
        for (node, h) in leaves {
            if !hierarchy.is_leaf(node) {
                return Err(ConsistencyError::NotALeaf(node));
            }
            if seen[node.index()] {
                return Err(ConsistencyError::DuplicateLeaf(node));
            }
            seen[node.index()] = true;
            hists[node.index()] = h;
        }
        // Aggregate bottom-up, deepest level first.
        for l in (0..hierarchy.num_levels().saturating_sub(1)).rev() {
            for &node in hierarchy.level(l) {
                let mut acc = CountOfCounts::new();
                for &c in hierarchy.children(node) {
                    acc.add_assign(&hists[c.index()]);
                }
                hists[node.index()] = acc;
            }
        }
        Ok(Self { hists })
    }

    /// Wraps a full per-node histogram vector (indexed by
    /// [`NodeId::index`]), validating hierarchy shape and additivity.
    pub fn from_node_histograms(
        hierarchy: &Hierarchy,
        hists: Vec<CountOfCounts>,
    ) -> Result<Self, ConsistencyError> {
        if hists.len() != hierarchy.num_nodes() {
            return Err(ConsistencyError::WrongNodeCount {
                got: hists.len(),
                expected: hierarchy.num_nodes(),
            });
        }
        if !hierarchy.is_uniform_depth() {
            return Err(ConsistencyError::NotUniformDepth);
        }
        let out = Self { hists };
        out.validate(hierarchy)?;
        Ok(out)
    }

    /// Checks the consistency desideratum at every internal node.
    pub fn validate(&self, hierarchy: &Hierarchy) -> Result<(), ConsistencyError> {
        for node in hierarchy.iter() {
            if hierarchy.is_leaf(node) {
                continue;
            }
            let children = hierarchy
                .children(node)
                .iter()
                .map(|c| &self.hists[c.index()]);
            if children_sum_to_parent(&self.hists[node.index()], children).is_err() {
                return Err(ConsistencyError::Inconsistent { node });
            }
        }
        Ok(())
    }

    /// Panicking variant of [`HierarchicalCounts::validate`], for
    /// tests and examples.
    pub fn assert_desiderata(&self, hierarchy: &Hierarchy) {
        self.validate(hierarchy)
            .expect("released histograms violate the consistency desideratum");
    }

    /// Applies per-leaf cell edits **in place**, re-aggregating only
    /// the root-to-leaf paths the edits touch — O(edits · depth)
    /// instead of the O(dataset) full bottom-up aggregation of
    /// [`HierarchicalCounts::from_leaves`]. Consistency is preserved
    /// by construction: each edit adjusts the same cell at the leaf
    /// and every ancestor.
    ///
    /// Edits are validated *before* anything is applied (membership in
    /// the hierarchy, leaf-ness, removal availability in edit order,
    /// cell overflow), so an `Err` leaves `self` untouched.
    pub fn apply_edits(
        &mut self,
        hierarchy: &Hierarchy,
        edits: &[LeafEdit],
    ) -> Result<(), ConsistencyError> {
        // Validation pass: project every touched (node, size) cell
        // through the edit sequence without mutating anything. Edits
        // interact (an add can fund a later removal of the same cell),
        // so availability is tracked in order.
        let mut projected: std::collections::BTreeMap<(usize, u64), u64> =
            std::collections::BTreeMap::new();
        for e in edits {
            if e.leaf.index() >= hierarchy.num_nodes() {
                return Err(ConsistencyError::UnknownNode(e.leaf));
            }
            if !hierarchy.is_leaf(e.leaf) {
                return Err(ConsistencyError::NotALeaf(e.leaf));
            }
            // Sizes are dense-vector indices: an unbounded size on an
            // untrusted edit is an allocation bomb, not a data point.
            if e.size > MAX_EDIT_SIZE {
                return Err(ConsistencyError::GroupSizeTooLarge {
                    size: e.size,
                    max: MAX_EDIT_SIZE,
                });
            }
            let mut cur = Some(e.leaf);
            while let Some(node) = cur {
                let cell = projected
                    .entry((node.index(), e.size))
                    .or_insert_with(|| self.hists[node.index()].count_of(e.size));
                if e.delta >= 0 {
                    *cell = cell
                        .checked_add(e.delta.unsigned_abs())
                        .ok_or(ConsistencyError::EditOverflow { node, size: e.size })?;
                } else {
                    let need = e.delta.unsigned_abs();
                    if *cell < need {
                        // By additivity an ancestor cell is at least
                        // its leaf's, so the first (and only) node
                        // that can trip this is the leaf itself.
                        return Err(ConsistencyError::MissingGroups {
                            node,
                            size: e.size,
                            requested: need,
                            present: *cell,
                        });
                    }
                    *cell -= need;
                }
                cur = hierarchy.parent(node);
            }
        }
        // Apply pass — infallible after validation.
        for e in edits {
            let mut cur = Some(e.leaf);
            while let Some(node) = cur {
                let h = &mut self.hists[node.index()];
                if e.delta >= 0 {
                    h.add_groups(e.size, e.delta.unsigned_abs());
                } else {
                    h.remove_groups(e.size, e.delta.unsigned_abs())
                        .expect("validated edit cannot underflow");
                }
                cur = hierarchy.parent(node);
            }
        }
        Ok(())
    }

    /// The histogram at a node.
    pub fn node(&self, node: NodeId) -> &CountOfCounts {
        &self.hists[node.index()]
    }

    /// The (public) number of groups at a node.
    pub fn groups(&self, node: NodeId) -> u64 {
        self.hists[node.index()].num_groups()
    }

    /// The per-node histograms, indexed by [`NodeId::index`].
    pub fn as_slice(&self) -> &[CountOfCounts] {
        &self.hists
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_hierarchy::HierarchyBuilder;

    fn two_level() -> (Hierarchy, NodeId, NodeId) {
        let mut b = HierarchyBuilder::new("top");
        let a = b.add_child(Hierarchy::ROOT, "a");
        let c = b.add_child(Hierarchy::ROOT, "b");
        (b.build(), a, c)
    }

    #[test]
    fn from_leaves_aggregates() {
        let (h, a, c) = two_level();
        let data = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (a, CountOfCounts::from_group_sizes([4, 1])),
                (c, CountOfCounts::from_group_sizes([2, 1])),
            ],
        )
        .unwrap();
        assert_eq!(
            data.node(Hierarchy::ROOT),
            &CountOfCounts::from_group_sizes([1, 1, 2, 4])
        );
        assert_eq!(data.groups(Hierarchy::ROOT), 4);
        assert_eq!(data.groups(a), 2);
        data.assert_desiderata(&h);
    }

    #[test]
    fn missing_leaves_are_empty() {
        let (h, a, _) = two_level();
        let data =
            HierarchicalCounts::from_leaves(&h, vec![(a, CountOfCounts::from_group_sizes([3]))])
                .unwrap();
        assert_eq!(data.groups(Hierarchy::ROOT), 1);
        data.assert_desiderata(&h);
    }

    #[test]
    fn rejects_internal_node_as_leaf() {
        let (h, _, _) = two_level();
        let err =
            HierarchicalCounts::from_leaves(&h, vec![(Hierarchy::ROOT, CountOfCounts::new())])
                .unwrap_err();
        assert_eq!(err, ConsistencyError::NotALeaf(Hierarchy::ROOT));
    }

    #[test]
    fn rejects_duplicate_leaf() {
        let (h, a, _) = two_level();
        let err = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (a, CountOfCounts::new()),
                (a, CountOfCounts::from_group_sizes([1])),
            ],
        )
        .unwrap_err();
        assert_eq!(err, ConsistencyError::DuplicateLeaf(a));
    }

    #[test]
    fn rejects_ragged_hierarchy() {
        let mut b = HierarchyBuilder::new("r");
        let mid = b.add_child(Hierarchy::ROOT, "mid");
        let _deep = b.add_child(mid, "deep");
        let _shallow = b.add_child(Hierarchy::ROOT, "shallow");
        let h = b.build();
        let err = HierarchicalCounts::from_leaves(&h, vec![]).unwrap_err();
        assert_eq!(err, ConsistencyError::NotUniformDepth);
    }

    #[test]
    fn from_node_histograms_validates() {
        let (h, _, _) = two_level();
        let good = vec![
            CountOfCounts::from_group_sizes([1, 2]),
            CountOfCounts::from_group_sizes([1]),
            CountOfCounts::from_group_sizes([2]),
        ];
        assert!(HierarchicalCounts::from_node_histograms(&h, good).is_ok());

        let bad = vec![
            CountOfCounts::from_group_sizes([1, 1]),
            CountOfCounts::from_group_sizes([1]),
            CountOfCounts::from_group_sizes([2]),
        ];
        let err = HierarchicalCounts::from_node_histograms(&h, bad).unwrap_err();
        assert_eq!(
            err,
            ConsistencyError::Inconsistent {
                node: Hierarchy::ROOT
            }
        );

        let err =
            HierarchicalCounts::from_node_histograms(&h, vec![CountOfCounts::new()]).unwrap_err();
        assert!(matches!(
            err,
            ConsistencyError::WrongNodeCount {
                got: 1,
                expected: 3
            }
        ));
    }

    #[test]
    fn error_messages_render() {
        for e in [
            ConsistencyError::NotUniformDepth,
            ConsistencyError::NotALeaf(Hierarchy::ROOT),
            ConsistencyError::DuplicateLeaf(Hierarchy::ROOT),
            ConsistencyError::Inconsistent {
                node: Hierarchy::ROOT,
            },
            ConsistencyError::WrongNodeCount {
                got: 1,
                expected: 2,
            },
            ConsistencyError::GroupTotalsMismatch {
                parent: 3,
                children: 4,
            },
            ConsistencyError::UnknownNode(Hierarchy::ROOT),
            ConsistencyError::MissingGroups {
                node: Hierarchy::ROOT,
                size: 3,
                requested: 2,
                present: 1,
            },
            ConsistencyError::EditOverflow {
                node: Hierarchy::ROOT,
                size: 3,
            },
            ConsistencyError::GroupSizeTooLarge {
                size: u64::MAX,
                max: MAX_EDIT_SIZE,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    /// Three-level tree so path re-aggregation crosses an internal
    /// node: root → {mid1 → {a, b}, mid2 → {c}}.
    fn three_level() -> (Hierarchy, NodeId, NodeId, NodeId) {
        let mut b = HierarchyBuilder::new("root");
        let m1 = b.add_child(Hierarchy::ROOT, "mid1");
        let m2 = b.add_child(Hierarchy::ROOT, "mid2");
        let a = b.add_child(m1, "a");
        let bb = b.add_child(m1, "b");
        let c = b.add_child(m2, "c");
        let _ = bb;
        (b.build(), a, bb, c)
    }

    #[test]
    fn apply_edits_matches_full_reaggregation() {
        let (h, a, b, c) = three_level();
        let mut data = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (a, CountOfCounts::from_group_sizes([1, 2, 2])),
                (b, CountOfCounts::from_group_sizes([3])),
                (c, CountOfCounts::from_group_sizes([1, 5])),
            ],
        )
        .unwrap();
        // Add two groups of size 4 at a, remove one of size 2 at a,
        // resize c's size-5 group to 6 (remove + add).
        data.apply_edits(
            &h,
            &[
                LeafEdit {
                    leaf: a,
                    size: 4,
                    delta: 2,
                },
                LeafEdit {
                    leaf: a,
                    size: 2,
                    delta: -1,
                },
                LeafEdit {
                    leaf: c,
                    size: 5,
                    delta: -1,
                },
                LeafEdit {
                    leaf: c,
                    size: 6,
                    delta: 1,
                },
            ],
        )
        .unwrap();
        let expected = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (a, CountOfCounts::from_group_sizes([1, 2, 4, 4])),
                (b, CountOfCounts::from_group_sizes([3])),
                (c, CountOfCounts::from_group_sizes([1, 6])),
            ],
        )
        .unwrap();
        assert_eq!(data, expected);
        data.assert_desiderata(&h);
    }

    #[test]
    fn apply_edits_rejects_bad_edits_without_mutating() {
        let (h, a, _, _) = three_level();
        let mid1 = h.parent(a).unwrap();
        let data =
            HierarchicalCounts::from_leaves(&h, vec![(a, CountOfCounts::from_group_sizes([1, 2]))])
                .unwrap();

        let mut scratch = data.clone();
        // Non-leaf target.
        assert_eq!(
            scratch.apply_edits(
                &h,
                &[LeafEdit {
                    leaf: mid1,
                    size: 1,
                    delta: 1
                }]
            ),
            Err(ConsistencyError::NotALeaf(mid1))
        );
        // Removing more than present — even when a *later* edit in the
        // batch would have re-funded the cell, validation is in order.
        let err = scratch
            .apply_edits(
                &h,
                &[
                    LeafEdit {
                        leaf: a,
                        size: 2,
                        delta: -2,
                    },
                    LeafEdit {
                        leaf: a,
                        size: 2,
                        delta: 5,
                    },
                ],
            )
            .unwrap_err();
        assert_eq!(
            err,
            ConsistencyError::MissingGroups {
                node: a,
                size: 2,
                requested: 2,
                present: 1,
            }
        );
        // An allocation-bomb size is rejected in validation — before
        // any vector is resized (this must return, not abort).
        let err = scratch
            .apply_edits(
                &h,
                &[LeafEdit {
                    leaf: a,
                    size: u64::MAX,
                    delta: 1,
                }],
            )
            .unwrap_err();
        assert_eq!(
            err,
            ConsistencyError::GroupSizeTooLarge {
                size: u64::MAX,
                max: MAX_EDIT_SIZE,
            }
        );
        // Overflowing a cell.
        let err = scratch
            .apply_edits(
                &h,
                &[
                    LeafEdit {
                        leaf: a,
                        size: 1,
                        delta: i64::MAX,
                    },
                    LeafEdit {
                        leaf: a,
                        size: 1,
                        delta: i64::MAX,
                    },
                    LeafEdit {
                        leaf: a,
                        size: 1,
                        delta: i64::MAX,
                    },
                ],
            )
            .unwrap_err();
        assert!(
            matches!(err, ConsistencyError::EditOverflow { .. }),
            "{err}"
        );
        // Every rejection left the counts untouched.
        assert_eq!(scratch, data);

        // An add can fund a later removal of the same cell.
        let mut scratch = data.clone();
        scratch
            .apply_edits(
                &h,
                &[
                    LeafEdit {
                        leaf: a,
                        size: 2,
                        delta: 3,
                    },
                    LeafEdit {
                        leaf: a,
                        size: 2,
                        delta: -4,
                    },
                ],
            )
            .unwrap();
        assert_eq!(scratch.node(a).count_of(2), 0);
        scratch.assert_desiderata(&h);
    }
}
