//! A hierarchy-aligned set of count-of-counts histograms.

use hcc_core::{children_sum_to_parent, CountOfCounts};
use hcc_hierarchy::{Hierarchy, NodeId};

/// Errors raised while assembling or validating hierarchical counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyError {
    /// The hierarchy has leaves at different depths; the level-by-level
    /// algorithms require a uniform-depth tree.
    NotUniformDepth,
    /// A histogram was supplied for a node that is not a leaf.
    NotALeaf(NodeId),
    /// Two histograms were supplied for the same leaf.
    DuplicateLeaf(NodeId),
    /// The supplied per-node histograms are not additive up the tree.
    Inconsistent {
        /// The parent node at which the mismatch was detected.
        node: NodeId,
    },
    /// A per-node vector had the wrong length for the hierarchy.
    WrongNodeCount {
        /// Number of histograms supplied.
        got: usize,
        /// Number of nodes in the hierarchy.
        expected: usize,
    },
    /// Algorithm 2 was asked to match a parent whose group total
    /// disagrees with its children's pooled total. The public Groups
    /// table guarantees `τ.G = Σ_c c.G` for well-formed inputs, so
    /// this only arises from adversarial or corrupted data — a served
    /// engine must reject it instead of dying.
    GroupTotalsMismatch {
        /// Number of groups in the parent's histogram.
        parent: u64,
        /// Pooled number of groups across the children.
        children: u64,
    },
}

impl std::fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyError::NotUniformDepth => {
                write!(f, "hierarchy leaves must all sit at the deepest level")
            }
            ConsistencyError::NotALeaf(n) => write!(f, "node {n} is not a leaf"),
            ConsistencyError::DuplicateLeaf(n) => {
                write!(f, "leaf {n} was supplied more than once")
            }
            ConsistencyError::Inconsistent { node } => {
                write!(f, "children do not sum to parent at node {node}")
            }
            ConsistencyError::WrongNodeCount { got, expected } => {
                write!(
                    f,
                    "got {got} histograms for a hierarchy of {expected} nodes"
                )
            }
            ConsistencyError::GroupTotalsMismatch { parent, children } => {
                write!(f, "parent has {parent} groups but children pool {children}")
            }
        }
    }
}

impl std::error::Error for ConsistencyError {}

/// One count-of-counts histogram per hierarchy node, guaranteed (by
/// construction or validation) to be *consistent*: every internal
/// node's histogram equals the sum of its children's.
///
/// Used both for the sensitive input data and for the released
/// private output — the desiderata of Section 3 are invariants of
/// this type.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalCounts {
    hists: Vec<CountOfCounts>,
}

impl HierarchicalCounts {
    /// Builds from per-leaf histograms, aggregating internal nodes by
    /// summation. Leaves not mentioned are treated as empty regions.
    pub fn from_leaves(
        hierarchy: &Hierarchy,
        leaves: Vec<(NodeId, CountOfCounts)>,
    ) -> Result<Self, ConsistencyError> {
        if !hierarchy.is_uniform_depth() {
            return Err(ConsistencyError::NotUniformDepth);
        }
        let mut hists = vec![CountOfCounts::new(); hierarchy.num_nodes()];
        let mut seen = vec![false; hierarchy.num_nodes()];
        for (node, h) in leaves {
            if !hierarchy.is_leaf(node) {
                return Err(ConsistencyError::NotALeaf(node));
            }
            if seen[node.index()] {
                return Err(ConsistencyError::DuplicateLeaf(node));
            }
            seen[node.index()] = true;
            hists[node.index()] = h;
        }
        // Aggregate bottom-up, deepest level first.
        for l in (0..hierarchy.num_levels().saturating_sub(1)).rev() {
            for &node in hierarchy.level(l) {
                let mut acc = CountOfCounts::new();
                for &c in hierarchy.children(node) {
                    acc.add_assign(&hists[c.index()]);
                }
                hists[node.index()] = acc;
            }
        }
        Ok(Self { hists })
    }

    /// Wraps a full per-node histogram vector (indexed by
    /// [`NodeId::index`]), validating hierarchy shape and additivity.
    pub fn from_node_histograms(
        hierarchy: &Hierarchy,
        hists: Vec<CountOfCounts>,
    ) -> Result<Self, ConsistencyError> {
        if hists.len() != hierarchy.num_nodes() {
            return Err(ConsistencyError::WrongNodeCount {
                got: hists.len(),
                expected: hierarchy.num_nodes(),
            });
        }
        if !hierarchy.is_uniform_depth() {
            return Err(ConsistencyError::NotUniformDepth);
        }
        let out = Self { hists };
        out.validate(hierarchy)?;
        Ok(out)
    }

    /// Checks the consistency desideratum at every internal node.
    pub fn validate(&self, hierarchy: &Hierarchy) -> Result<(), ConsistencyError> {
        for node in hierarchy.iter() {
            if hierarchy.is_leaf(node) {
                continue;
            }
            let children = hierarchy
                .children(node)
                .iter()
                .map(|c| &self.hists[c.index()]);
            if children_sum_to_parent(&self.hists[node.index()], children).is_err() {
                return Err(ConsistencyError::Inconsistent { node });
            }
        }
        Ok(())
    }

    /// Panicking variant of [`HierarchicalCounts::validate`], for
    /// tests and examples.
    pub fn assert_desiderata(&self, hierarchy: &Hierarchy) {
        self.validate(hierarchy)
            .expect("released histograms violate the consistency desideratum");
    }

    /// The histogram at a node.
    pub fn node(&self, node: NodeId) -> &CountOfCounts {
        &self.hists[node.index()]
    }

    /// The (public) number of groups at a node.
    pub fn groups(&self, node: NodeId) -> u64 {
        self.hists[node.index()].num_groups()
    }

    /// The per-node histograms, indexed by [`NodeId::index`].
    pub fn as_slice(&self) -> &[CountOfCounts] {
        &self.hists
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_hierarchy::HierarchyBuilder;

    fn two_level() -> (Hierarchy, NodeId, NodeId) {
        let mut b = HierarchyBuilder::new("top");
        let a = b.add_child(Hierarchy::ROOT, "a");
        let c = b.add_child(Hierarchy::ROOT, "b");
        (b.build(), a, c)
    }

    #[test]
    fn from_leaves_aggregates() {
        let (h, a, c) = two_level();
        let data = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (a, CountOfCounts::from_group_sizes([4, 1])),
                (c, CountOfCounts::from_group_sizes([2, 1])),
            ],
        )
        .unwrap();
        assert_eq!(
            data.node(Hierarchy::ROOT),
            &CountOfCounts::from_group_sizes([1, 1, 2, 4])
        );
        assert_eq!(data.groups(Hierarchy::ROOT), 4);
        assert_eq!(data.groups(a), 2);
        data.assert_desiderata(&h);
    }

    #[test]
    fn missing_leaves_are_empty() {
        let (h, a, _) = two_level();
        let data =
            HierarchicalCounts::from_leaves(&h, vec![(a, CountOfCounts::from_group_sizes([3]))])
                .unwrap();
        assert_eq!(data.groups(Hierarchy::ROOT), 1);
        data.assert_desiderata(&h);
    }

    #[test]
    fn rejects_internal_node_as_leaf() {
        let (h, _, _) = two_level();
        let err =
            HierarchicalCounts::from_leaves(&h, vec![(Hierarchy::ROOT, CountOfCounts::new())])
                .unwrap_err();
        assert_eq!(err, ConsistencyError::NotALeaf(Hierarchy::ROOT));
    }

    #[test]
    fn rejects_duplicate_leaf() {
        let (h, a, _) = two_level();
        let err = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (a, CountOfCounts::new()),
                (a, CountOfCounts::from_group_sizes([1])),
            ],
        )
        .unwrap_err();
        assert_eq!(err, ConsistencyError::DuplicateLeaf(a));
    }

    #[test]
    fn rejects_ragged_hierarchy() {
        let mut b = HierarchyBuilder::new("r");
        let mid = b.add_child(Hierarchy::ROOT, "mid");
        let _deep = b.add_child(mid, "deep");
        let _shallow = b.add_child(Hierarchy::ROOT, "shallow");
        let h = b.build();
        let err = HierarchicalCounts::from_leaves(&h, vec![]).unwrap_err();
        assert_eq!(err, ConsistencyError::NotUniformDepth);
    }

    #[test]
    fn from_node_histograms_validates() {
        let (h, _, _) = two_level();
        let good = vec![
            CountOfCounts::from_group_sizes([1, 2]),
            CountOfCounts::from_group_sizes([1]),
            CountOfCounts::from_group_sizes([2]),
        ];
        assert!(HierarchicalCounts::from_node_histograms(&h, good).is_ok());

        let bad = vec![
            CountOfCounts::from_group_sizes([1, 1]),
            CountOfCounts::from_group_sizes([1]),
            CountOfCounts::from_group_sizes([2]),
        ];
        let err = HierarchicalCounts::from_node_histograms(&h, bad).unwrap_err();
        assert_eq!(
            err,
            ConsistencyError::Inconsistent {
                node: Hierarchy::ROOT
            }
        );

        let err =
            HierarchicalCounts::from_node_histograms(&h, vec![CountOfCounts::new()]).unwrap_err();
        assert!(matches!(
            err,
            ConsistencyError::WrongNodeCount {
                got: 1,
                expected: 3
            }
        ));
    }

    #[test]
    fn error_messages_render() {
        for e in [
            ConsistencyError::NotUniformDepth,
            ConsistencyError::NotALeaf(Hierarchy::ROOT),
            ConsistencyError::DuplicateLeaf(Hierarchy::ROOT),
            ConsistencyError::Inconsistent {
                node: Hierarchy::ROOT,
            },
            ConsistencyError::WrongNodeCount {
                got: 1,
                expected: 2,
            },
            ConsistencyError::GroupTotalsMismatch {
                parent: 3,
                children: 4,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
