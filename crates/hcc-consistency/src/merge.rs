//! Merging matched size estimates (Section 5.3).
//!
//! After matching, every group has two size estimates — one from the
//! parent's histogram, one from its child's — plus variance estimates
//! for both. The merged estimate becomes the child's updated value
//! (and the parent side of the next level's matching).

use hcc_estimators::{NodeEstimate, VarianceRun};

use crate::matching::MatchSegment;

/// How two matched size estimates are reconciled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MergeStrategy {
    /// Inverse-variance weighted average (Equation 5); its variance is
    /// the harmonic combination of Equation 6. Optimal when the
    /// variance estimates are good — the paper's Figure 4 shows it
    /// consistently beats plain averaging.
    #[default]
    WeightedAverage,
    /// Plain average of the two estimates, with variance
    /// `(V_p + V_c)/4`. The paper's naive comparison point.
    PlainAverage,
}

impl MergeStrategy {
    /// Merges one matched pair of estimates, returning
    /// `(merged size, merged variance)`. The size is *not* yet
    /// rounded — rounding happens once per segment in
    /// [`merge_segments`], per the paper ("the size estimates are then
    /// rounded").
    pub fn combine(
        &self,
        parent_size: f64,
        parent_variance: f64,
        child_size: f64,
        child_variance: f64,
    ) -> (f64, f64) {
        debug_assert!(parent_variance > 0.0 && child_variance > 0.0);
        match self {
            MergeStrategy::WeightedAverage => {
                let wp = 1.0 / parent_variance;
                let wc = 1.0 / child_variance;
                (
                    (parent_size * wp + child_size * wc) / (wp + wc),
                    1.0 / (wp + wc),
                )
            }
            MergeStrategy::PlainAverage => (
                (parent_size + child_size) / 2.0,
                (parent_variance + child_variance) / 4.0,
            ),
        }
    }
}

/// Applies the merge to every matched segment and reassembles each
/// child's updated estimate (`c.Ĥ'g` with variances `c.V'g`).
///
/// `num_children` is the length of the `children` slice that produced
/// the segments.
pub fn merge_segments(
    segments: &[MatchSegment],
    strategy: MergeStrategy,
    num_children: usize,
) -> Vec<NodeEstimate> {
    let mut per_child: Vec<Vec<VarianceRun>> = vec![Vec::new(); num_children];
    for seg in segments {
        let (size, variance) = strategy.combine(
            seg.parent_size as f64,
            seg.parent_variance,
            seg.child_size as f64,
            seg.child_variance,
        );
        per_child[seg.child].push(VarianceRun {
            size: size.round().max(0.0) as u64,
            count: seg.count,
            variance,
        });
    }
    per_child
        .into_iter()
        .map(NodeEstimate::from_variance_runs)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn weighted_average_follows_equation5() {
        // Parent: size 12, var 1; child: size 13, var 3. Weighted:
        // (12/1 + 13/3) / (1/1 + 1/3) = (12 + 4.333)/1.333 = 12.25.
        let (m, v) = MergeStrategy::WeightedAverage.combine(12.0, 1.0, 13.0, 3.0);
        assert!((m - 12.25).abs() < 1e-12);
        assert!((v - 0.75).abs() < 1e-12); // 1/(1 + 1/3)
    }

    #[test]
    fn plain_average() {
        let (m, v) = MergeStrategy::PlainAverage.combine(10.0, 1.0, 20.0, 9.0);
        assert_eq!(m, 15.0);
        assert_eq!(v, 2.5);
    }

    #[test]
    fn equal_variances_reduce_weighted_to_plain() {
        let (w, _) = MergeStrategy::WeightedAverage.combine(3.0, 2.0, 9.0, 2.0);
        let (p, _) = MergeStrategy::PlainAverage.combine(3.0, 2.0, 9.0, 2.0);
        assert_eq!(w, p);
    }

    #[test]
    fn merge_segments_assembles_children() {
        let segments = vec![
            MatchSegment {
                child: 0,
                count: 2,
                parent_size: 4,
                parent_variance: 1.0,
                child_size: 6,
                child_variance: 1.0,
            },
            MatchSegment {
                child: 1,
                count: 1,
                parent_size: 10,
                parent_variance: 0.5,
                child_size: 10,
                child_variance: 8.0,
            },
        ];
        let out = merge_segments(&segments, MergeStrategy::WeightedAverage, 2);
        assert_eq!(out.len(), 2);
        // Child 0: two groups at (4+6)/2 = 5.
        assert_eq!(out[0].hist().count_of(5), 2);
        assert_eq!(out[0].hist().num_groups(), 2);
        // Child 1: one group at 10, with tightened variance.
        assert_eq!(out[1].hist().count_of(10), 1);
        assert!(out[1].variances()[0] < 0.5);
    }

    #[test]
    fn empty_segments_give_empty_children() {
        let out = merge_segments(&[], MergeStrategy::PlainAverage, 3);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|e| e.hist().is_empty()));
    }

    proptest! {
        /// The weighted mean always lies between the two inputs and
        /// its variance below both input variances.
        #[test]
        fn weighted_mean_is_contraction(
            p in 0.0f64..1000.0,
            c in 0.0f64..1000.0,
            vp in 0.01f64..100.0,
            vc in 0.01f64..100.0,
        ) {
            let (m, v) = MergeStrategy::WeightedAverage.combine(p, vp, c, vc);
            prop_assert!(m >= p.min(c) - 1e-9 && m <= p.max(c) + 1e-9);
            prop_assert!(v <= vp && v <= vc);
        }

        /// The merged group count of every child equals its matched
        /// count regardless of strategy.
        #[test]
        fn group_counts_preserved(
            counts in prop::collection::vec(1u64..20, 1..10),
            weighted in any::<bool>(),
        ) {
            let segments: Vec<MatchSegment> = counts.iter().enumerate().map(|(i, &count)| {
                MatchSegment {
                    child: i % 3,
                    count,
                    parent_size: (i as u64 * 7) % 30,
                    parent_variance: 1.0 + i as f64,
                    child_size: (i as u64 * 5) % 30,
                    child_variance: 2.0,
                }
            }).collect();
            let strategy = if weighted { MergeStrategy::WeightedAverage } else { MergeStrategy::PlainAverage };
            let out = merge_segments(&segments, strategy, 3);
            #[allow(clippy::needless_range_loop)]
            for c in 0..3 {
                let expect: u64 = segments.iter().filter(|s| s.child == c).map(|s| s.count).sum();
                prop_assert_eq!(out[c].hist().num_groups(), expect);
            }
        }
    }
}
