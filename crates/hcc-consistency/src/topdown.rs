//! The top-down consistency algorithm (Algorithm 1).

use hcc_core::CountOfCounts;
use hcc_estimators::{
    AdaptiveEstimator, CumulativeEstimator, Estimator, EstimatorWorkspace, NaiveEstimator,
    NodeEstimate, UnattributedEstimator,
};
use hcc_hierarchy::{Hierarchy, NodeId};
use hcc_isotonic::CumulativeLoss;
use rand::Rng;

use crate::counts::{ConsistencyError, HierarchicalCounts};
use crate::matching::match_groups;
use crate::merge::{merge_segments, MergeStrategy};

/// Which single-node estimator a hierarchy level uses (the paper's
/// `Hc`/`Hg` per-level selection, e.g. `Hg × Hc × Hc`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LevelMethod {
    /// The `Hc` method with L1 post-processing (paper's default
    /// recommendation) and public size bound `K`.
    Cumulative {
        /// Public upper bound `K` on group size.
        bound: u64,
    },
    /// The `Hc` method with L2 post-processing (for the paper's
    /// L1-vs-L2 ablation).
    CumulativeL2 {
        /// Public upper bound `K` on group size.
        bound: u64,
    },
    /// The `Hg` (unattributed histogram) method.
    Unattributed,
    /// The naive cell-noise method (strawman; §6.2.1).
    Naive {
        /// Public upper bound `K` on group size.
        bound: u64,
    },
    /// Per-node data-adaptive selection between `Hc` and `Hg` via a
    /// private sparsity probe (the extension the paper delegates to
    /// Pythia / Chaudhuri et al. in footnote 4).
    Adaptive {
        /// Public upper bound `K` on group size.
        bound: u64,
    },
}

impl LevelMethod {
    /// Display name matching the paper's notation.
    pub fn name(&self) -> &'static str {
        match self {
            LevelMethod::Cumulative { .. } => "Hc",
            LevelMethod::CumulativeL2 { .. } => "Hc-L2",
            LevelMethod::Unattributed => "Hg",
            LevelMethod::Naive { .. } => "naive",
            LevelMethod::Adaptive { .. } => "adaptive",
        }
    }

    /// Runs the corresponding estimator on one node with a throwaway
    /// workspace. Convenience for one-shot callers; hot loops use
    /// [`LevelMethod::estimate_in`] (bit-identical results).
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        hist: &CountOfCounts,
        g: u64,
        epsilon: f64,
        rng: &mut R,
    ) -> NodeEstimate {
        self.estimate_in(hist, g, epsilon, rng, &mut EstimatorWorkspace::new())
    }

    /// Runs the corresponding estimator on one node, reusing the
    /// caller's scratch buffers.
    pub fn estimate_in<R: Rng + ?Sized>(
        &self,
        hist: &CountOfCounts,
        g: u64,
        epsilon: f64,
        rng: &mut R,
        ws: &mut EstimatorWorkspace,
    ) -> NodeEstimate {
        match *self {
            LevelMethod::Cumulative { bound } => {
                CumulativeEstimator::with_loss(bound, CumulativeLoss::L1)
                    .estimate_in(hist, g, epsilon, rng, ws)
            }
            LevelMethod::CumulativeL2 { bound } => {
                CumulativeEstimator::with_loss(bound, CumulativeLoss::L2)
                    .estimate_in(hist, g, epsilon, rng, ws)
            }
            LevelMethod::Unattributed => {
                UnattributedEstimator::new().estimate_in(hist, g, epsilon, rng, ws)
            }
            LevelMethod::Naive { bound } => {
                NaiveEstimator::new(bound).estimate_in(hist, g, epsilon, rng, ws)
            }
            LevelMethod::Adaptive { bound } => {
                AdaptiveEstimator::new(bound).estimate_in(hist, g, epsilon, rng, ws)
            }
        }
    }
}

/// Configuration for [`top_down_release`].
#[derive(Clone, Debug)]
pub struct TopDownConfig {
    epsilon: f64,
    methods: Vec<LevelMethod>,
    merge: MergeStrategy,
    parallelism: usize,
}

impl TopDownConfig {
    /// The paper's default public bound `K = 100 000` (§6.1 uses it
    /// for every dataset even though true maxima were ~10 000).
    pub const DEFAULT_BOUND: u64 = 100_000;

    /// A configuration spending total privacy budget `epsilon`, using
    /// the `Hc` method at every level (the paper's recommended
    /// default) and weighted-average merging.
    pub fn new(epsilon: f64) -> Self {
        Self {
            epsilon,
            methods: vec![LevelMethod::Cumulative {
                bound: Self::DEFAULT_BOUND,
            }],
            merge: MergeStrategy::WeightedAverage,
            parallelism: 1,
        }
    }

    /// Uses `method` at every level.
    pub fn with_method(mut self, method: LevelMethod) -> Self {
        self.methods = vec![method];
        self
    }

    /// Uses `methods[l]` at level `l` (the paper's `Hg × Hc × Hc`
    /// style selection). If the hierarchy is deeper than the vector,
    /// the last entry repeats.
    pub fn with_level_methods(mut self, methods: Vec<LevelMethod>) -> Self {
        assert!(!methods.is_empty(), "need at least one level method");
        self.methods = methods;
        self
    }

    /// Selects the merge strategy (Section 5.3).
    pub fn with_merge(mut self, merge: MergeStrategy) -> Self {
        self.merge = merge;
        self
    }

    /// Estimates nodes on `threads` worker threads. The per-node
    /// estimates are embarrassingly parallel (disjoint regions,
    /// independent noise); each node draws from its own RNG seeded
    /// deterministically from the caller's (see [`node_seeds`]), so
    /// the release is a pure function of the master seed and
    /// **bit-identical for every thread count**, including `1` (the
    /// default, which runs inline without spawning).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "parallelism must be at least 1");
        self.parallelism = threads;
        self
    }

    /// The configured worker-thread count.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Total privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The merge strategy.
    pub fn merge(&self) -> MergeStrategy {
        self.merge
    }

    /// The method used at hierarchy level `l`.
    pub fn method_for_level(&self, l: usize) -> LevelMethod {
        *self.methods.get(l).unwrap_or(
            self.methods
                .last()
                .expect("methods is checked non-empty at construction"),
        )
    }

    /// The per-level budget slice `ε / (L + 1)` for a hierarchy with
    /// `levels` levels (sequential composition across levels).
    pub fn level_epsilon(&self, levels: usize) -> f64 {
        self.epsilon / levels as f64
    }
}

/// Draws one RNG seed per hierarchy node, sequentially and in
/// iteration order, from the caller's master RNG.
///
/// This is the derivation both [`top_down_release`] and any external
/// executor (e.g. the `hcc-engine` worker pool) must share: node `i`
/// of `hierarchy.iter()` gets its own `StdRng` seeded with `seeds[i]`,
/// making the noise stream a pure function of the master seed and
/// independent of estimation order or thread count.
pub fn node_seeds<R: Rng + ?Sized>(hierarchy: &Hierarchy, rng: &mut R) -> Vec<u64> {
    (0..hierarchy.num_nodes()).map(|_| rng.gen()).collect()
}

/// Partitions the hierarchy into estimation tasks: one task per node
/// at the chosen split level (that node plus all its descendants), and
/// one task for everything above the split level. The split level is
/// the shallowest level with at least `min_tasks` nodes (when the tree
/// allows it), so an executor wanting `t` concurrent lanes passes
/// `min_tasks = 2 * t` and gets enough slack for load balancing.
///
/// Tasks only *group* nodes — every node appears in exactly one task,
/// and estimating a task's nodes with their own [`node_seeds`]-derived
/// RNG streams stays bit-identical to the serial release no matter
/// which executor runs which task, in whatever order.
pub fn subtree_tasks(hierarchy: &Hierarchy, min_tasks: usize) -> Vec<Vec<NodeId>> {
    let levels = hierarchy.num_levels();
    let want = min_tasks.max(1);
    let split = (0..levels)
        .find(|&l| hierarchy.level(l).len() >= want)
        .unwrap_or(levels - 1);
    let mut tasks: Vec<Vec<NodeId>> = Vec::new();
    for &root in hierarchy.level(split) {
        // The subtree rooted at `root`, depth-first.
        let mut nodes = Vec::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            nodes.push(n);
            stack.extend_from_slice(hierarchy.children(n));
        }
        tasks.push(nodes);
    }
    if split > 0 {
        let above: Vec<NodeId> = (0..split)
            .flat_map(|l| hierarchy.level(l).to_vec())
            .collect();
        tasks.push(above);
    }
    tasks
}

/// Estimates one node with its own seeded RNG stream, reusing the
/// worker's scratch buffers. The per-node RNG makes the estimate
/// independent of which worker (and hence which workspace) runs it —
/// this is the single node-estimation entry point shared by
/// [`top_down_release`] and external executors like the `hcc-engine`
/// work-stealing scheduler.
pub fn estimate_node(
    hierarchy: &Hierarchy,
    data: &HierarchicalCounts,
    cfg: &TopDownConfig,
    eps_level: f64,
    node: NodeId,
    seed: u64,
    ws: &mut EstimatorWorkspace,
) -> NodeEstimate {
    use rand::SeedableRng;
    let method = cfg.method_for_level(hierarchy.level_of(node));
    let h = data.node(node);
    let mut local = rand::rngs::StdRng::seed_from_u64(seed);
    method.estimate_in(h, h.num_groups(), eps_level, &mut local, ws)
}

/// Estimates every node on `cfg.parallelism()` threads. Seeds one
/// `StdRng` per node via [`node_seeds`] and strides nodes across
/// workers; with one thread the loop runs inline, producing the same
/// estimates without spawning. Each worker thread owns one
/// [`EstimatorWorkspace`] reused across all its nodes.
fn parallel_estimates(
    hierarchy: &Hierarchy,
    data: &HierarchicalCounts,
    cfg: &TopDownConfig,
    eps_level: f64,
    rng: &mut (impl Rng + ?Sized),
) -> Vec<NodeEstimate> {
    let n = hierarchy.num_nodes();
    let nodes: Vec<NodeId> = hierarchy.iter().collect();
    let seeds = node_seeds(hierarchy, rng);
    let threads = cfg.parallelism.min(n.max(1));
    if threads <= 1 {
        let mut ws = EstimatorWorkspace::new();
        return nodes
            .iter()
            .zip(&seeds)
            .map(|(&node, &seed)| {
                estimate_node(hierarchy, data, cfg, eps_level, node, seed, &mut ws)
            })
            .collect();
    }
    let mut out: Vec<Option<NodeEstimate>> = vec![None; n];
    let chunks: Vec<(usize, &mut [Option<NodeEstimate>])> = {
        // Split the output into contiguous chunks, one per worker.
        let base = n / threads;
        let extra = n % threads;
        let mut rest = out.as_mut_slice();
        let mut start = 0;
        let mut parts = Vec::with_capacity(threads);
        for t in 0..threads {
            let len = base + usize::from(t < extra);
            let (head, tail) = rest.split_at_mut(len);
            parts.push((start, head));
            start += len;
            rest = tail;
        }
        parts
    };
    std::thread::scope(|scope| {
        for (start, chunk) in chunks {
            let seeds = &seeds;
            let nodes = &nodes;
            scope.spawn(move || {
                let mut ws = EstimatorWorkspace::new();
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let idx = start + off;
                    *slot = Some(estimate_node(
                        hierarchy, data, cfg, eps_level, nodes[idx], seeds[idx], &mut ws,
                    ));
                }
            });
        }
    });
    out.into_iter()
        .map(|e| e.expect("every chunk slot filled"))
        .collect()
}

/// Algorithm 1: releases ε-differentially-private count-of-counts
/// histograms for every node of the hierarchy, satisfying all four
/// desiderata (integral, non-negative, correct public `G` per node,
/// children summing to parents).
///
/// Budget accounting: the hierarchy has `L + 1` levels; each level
/// receives `ε / (L + 1)` (sequential composition across levels,
/// parallel composition within a level because sibling regions hold
/// disjoint groups). Everything after the per-node estimates is
/// post-processing and consumes no budget (Theorem 1).
///
/// ```
/// use hcc_consistency::{top_down_release, HierarchicalCounts, LevelMethod, TopDownConfig};
/// use hcc_core::CountOfCounts;
/// use hcc_hierarchy::{Hierarchy, HierarchyBuilder};
/// use rand::SeedableRng;
///
/// let mut b = HierarchyBuilder::new("country");
/// let east = b.add_child(Hierarchy::ROOT, "east");
/// let west = b.add_child(Hierarchy::ROOT, "west");
/// let hierarchy = b.build();
/// let data = HierarchicalCounts::from_leaves(&hierarchy, vec![
///     (east, CountOfCounts::from_group_sizes([1, 2, 2, 5])),
///     (west, CountOfCounts::from_group_sizes([1, 1, 3])),
/// ]).unwrap();
///
/// let cfg = TopDownConfig::new(1.0)
///     .with_method(LevelMethod::Cumulative { bound: 16 });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let released = top_down_release(&hierarchy, &data, &cfg, &mut rng).unwrap();
///
/// released.assert_desiderata(&hierarchy);           // children sum to parents
/// assert_eq!(released.groups(east), 4);             // public G preserved
/// assert_eq!(released.groups(Hierarchy::ROOT), 7);
/// ```
pub fn top_down_release<R: Rng + ?Sized>(
    hierarchy: &Hierarchy,
    data: &HierarchicalCounts,
    cfg: &TopDownConfig,
    rng: &mut R,
) -> Result<HierarchicalCounts, ConsistencyError> {
    if !hierarchy.is_uniform_depth() {
        return Err(ConsistencyError::NotUniformDepth);
    }
    let eps_level = cfg.level_epsilon(hierarchy.num_levels());

    // Lines 1–4: independent per-node estimates, one budget slice per
    // level. Within a level this is parallel composition (disjoint
    // regions), so the estimates may also be *computed* in parallel.
    let estimates = parallel_estimates(hierarchy, data, cfg, eps_level, rng);
    top_down_from_estimates(hierarchy, cfg, estimates)
}

/// The post-processing half of Algorithm 1: given one independent
/// [`NodeEstimate`] per node (in `hierarchy.iter()` order), performs
/// the top-down matching + merging and upward back-substitution,
/// returning the consistent release.
///
/// [`top_down_release`] computes the estimates and calls this; an
/// external executor (e.g. the `hcc-engine` worker pool) can instead
/// compute the per-node estimates on its own scheduler — they are
/// embarrassingly parallel — and feed them here. Everything in this
/// function is deterministic post-processing (Theorem 1), so the
/// release is a pure function of the estimates.
pub fn top_down_from_estimates(
    hierarchy: &Hierarchy,
    cfg: &TopDownConfig,
    estimates: Vec<NodeEstimate>,
) -> Result<HierarchicalCounts, ConsistencyError> {
    if !hierarchy.is_uniform_depth() {
        return Err(ConsistencyError::NotUniformDepth);
    }
    if estimates.len() != hierarchy.num_nodes() {
        return Err(ConsistencyError::WrongNodeCount {
            got: estimates.len(),
            expected: hierarchy.num_nodes(),
        });
    }
    let levels = hierarchy.num_levels();
    let mut estimates: Vec<Option<NodeEstimate>> = estimates.into_iter().map(Some).collect();

    // Lines 8–12: top-down matching + merging. `updated[n]` holds the
    // merged estimate Ĥ' for nodes whose level has been processed.
    let mut updated: Vec<Option<NodeEstimate>> = vec![None; hierarchy.num_nodes()];
    updated[Hierarchy::ROOT.index()] = estimates[Hierarchy::ROOT.index()].take();
    for l in 0..levels - 1 {
        for &node in hierarchy.level(l) {
            let parent = updated[node.index()]
                .as_ref()
                .expect("parent level already processed");
            let children: &[NodeId] = hierarchy.children(node);
            let parent_runs = parent.variance_runs();
            let child_runs: Vec<_> = children
                .iter()
                .map(|c| {
                    estimates[c.index()]
                        .take()
                        .expect("child estimated exactly once")
                        .variance_runs()
                })
                .collect();
            let segments = match_groups(&parent_runs, &child_runs)?;
            let merged = merge_segments(&segments, cfg.merge, children.len());
            for (c, est) in children.iter().zip(merged) {
                updated[c.index()] = Some(est);
            }
        }
    }

    // Lines 13–15: leaves become final; back-substitute upward.
    let mut out: Vec<CountOfCounts> = vec![CountOfCounts::new(); hierarchy.num_nodes()];
    for leaf in hierarchy.leaves() {
        out[leaf.index()] = updated[leaf.index()]
            .take()
            .expect("every leaf received a merged estimate")
            .into_hist();
    }
    for l in (0..levels - 1).rev() {
        for &node in hierarchy.level(l) {
            let mut acc = CountOfCounts::new();
            for &c in hierarchy.children(node) {
                acc.add_assign(&out[c.index()]);
            }
            out[node.index()] = acc;
        }
    }
    HierarchicalCounts::from_node_histograms(hierarchy, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_core::emd;
    use hcc_hierarchy::HierarchyBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_level_data() -> (Hierarchy, HierarchicalCounts) {
        let mut b = HierarchyBuilder::new("nation");
        let s1 = b.add_child(Hierarchy::ROOT, "s1");
        let s2 = b.add_child(Hierarchy::ROOT, "s2");
        let c1 = b.add_child(s1, "c1");
        let c2 = b.add_child(s1, "c2");
        let c3 = b.add_child(s2, "c3");
        let c4 = b.add_child(s2, "c4");
        let h = b.build();
        let mk = |sizes: Vec<u64>| CountOfCounts::from_group_sizes(sizes);
        let data = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (c1, mk(vec![1, 1, 2, 3])),
                (c2, mk(vec![1, 2, 2, 8])),
                (c3, mk(vec![4, 4, 5])),
                (c4, mk(vec![1, 1, 1, 1, 20])),
            ],
        )
        .unwrap();
        (h, data)
    }

    #[test]
    fn released_histograms_satisfy_all_desiderata() {
        let (h, data) = three_level_data();
        let mut rng = StdRng::seed_from_u64(42);
        for method in [
            LevelMethod::Cumulative { bound: 64 },
            LevelMethod::CumulativeL2 { bound: 64 },
            LevelMethod::Unattributed,
        ] {
            let cfg = TopDownConfig::new(3.0).with_method(method);
            let released = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
            released.assert_desiderata(&h);
            // Public group counts preserved at every node.
            for node in h.iter() {
                assert_eq!(
                    released.groups(node),
                    data.groups(node),
                    "method {} node {node}",
                    method.name()
                );
            }
        }
    }

    #[test]
    fn high_budget_recovers_truth_everywhere() {
        let (h, data) = three_level_data();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = TopDownConfig::new(3000.0).with_method(LevelMethod::Cumulative { bound: 64 });
        let released = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
        for node in h.iter() {
            assert_eq!(
                emd(released.node(node), data.node(node)),
                0,
                "node {node} diverged despite huge budget"
            );
        }
    }

    #[test]
    fn mixed_level_methods() {
        let (h, data) = three_level_data();
        let mut rng = StdRng::seed_from_u64(2);
        // Hg at the root, Hc below — the paper's Hg × Hc × Hc.
        let cfg = TopDownConfig::new(3.0).with_level_methods(vec![
            LevelMethod::Unattributed,
            LevelMethod::Cumulative { bound: 64 },
        ]);
        assert_eq!(cfg.method_for_level(0).name(), "Hg");
        assert_eq!(cfg.method_for_level(1).name(), "Hc");
        assert_eq!(cfg.method_for_level(2).name(), "Hc"); // repeats last
        let released = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
        released.assert_desiderata(&h);
    }

    #[test]
    fn plain_average_merge_also_valid() {
        let (h, data) = three_level_data();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TopDownConfig::new(2.0)
            .with_method(LevelMethod::Cumulative { bound: 64 })
            .with_merge(MergeStrategy::PlainAverage);
        let released = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
        released.assert_desiderata(&h);
    }

    #[test]
    fn root_only_hierarchy() {
        let h = HierarchyBuilder::new("solo").build();
        let data = HierarchicalCounts::from_leaves(
            &h,
            vec![(Hierarchy::ROOT, CountOfCounts::from_group_sizes([1, 2, 3]))],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 16 });
        let released = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
        assert_eq!(released.groups(Hierarchy::ROOT), 3);
    }

    #[test]
    fn empty_regions_are_handled() {
        let mut b = HierarchyBuilder::new("top");
        let a = b.add_child(Hierarchy::ROOT, "a");
        let _empty = b.add_child(Hierarchy::ROOT, "empty");
        let h = b.build();
        let data =
            HierarchicalCounts::from_leaves(&h, vec![(a, CountOfCounts::from_group_sizes([2, 2]))])
                .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 16 });
        let released = top_down_release(&h, &data, &cfg, &mut rng).unwrap();
        released.assert_desiderata(&h);
        assert_eq!(released.groups(a), 2);
    }

    #[test]
    fn ragged_hierarchy_is_rejected() {
        let mut b = HierarchyBuilder::new("r");
        let mid = b.add_child(Hierarchy::ROOT, "mid");
        let _deep = b.add_child(mid, "deep");
        let _shallow = b.add_child(Hierarchy::ROOT, "shallow");
        let h = b.build();
        // Construct data bypassing from_leaves validation (it would
        // reject too): hand-build node histograms.
        let hists = vec![CountOfCounts::new(); h.num_nodes()];
        let data = HierarchicalCounts::from_node_histograms(&h, hists);
        assert!(data.is_err());
    }

    #[test]
    fn config_accessors() {
        let cfg = TopDownConfig::new(0.5);
        assert_eq!(cfg.epsilon(), 0.5);
        assert_eq!(cfg.merge(), MergeStrategy::WeightedAverage);
        assert_eq!(cfg.method_for_level(0).name(), "Hc");
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use hcc_hierarchy::HierarchyBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> (Hierarchy, HierarchicalCounts) {
        let mut b = HierarchyBuilder::new("root");
        let leaves: Vec<_> = (0..24)
            .map(|i| b.add_child(Hierarchy::ROOT, format!("l{i}")))
            .collect();
        let h = b.build();
        let data = HierarchicalCounts::from_leaves(
            &h,
            leaves
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    (
                        l,
                        CountOfCounts::from_group_sizes(
                            (0..30u64).map(|k| 1 + (k * (i as u64 + 1)) % 9),
                        ),
                    )
                })
                .collect(),
        )
        .unwrap();
        (h, data)
    }

    #[test]
    fn parallel_release_satisfies_desiderata() {
        let (h, d) = data();
        let cfg = TopDownConfig::new(1.0)
            .with_method(LevelMethod::Cumulative { bound: 64 })
            .with_parallelism(4);
        let mut rng = StdRng::seed_from_u64(81);
        let rel = top_down_release(&h, &d, &cfg, &mut rng).unwrap();
        rel.assert_desiderata(&h);
        for node in h.iter() {
            assert_eq!(rel.groups(node), d.groups(node));
        }
    }

    #[test]
    fn parallel_output_is_thread_count_invariant() {
        let (h, d) = data();
        let run = |threads: usize| {
            let cfg = TopDownConfig::new(1.0)
                .with_method(LevelMethod::Cumulative { bound: 64 })
                .with_parallelism(threads);
            let mut rng = StdRng::seed_from_u64(82);
            top_down_release(&h, &d, &cfg, &mut rng).unwrap()
        };
        let one = run(1);
        let two = run(2);
        let eight = run(8);
        for node in h.iter() {
            assert_eq!(one.node(node), two.node(node));
            assert_eq!(two.node(node), eight.node(node));
        }
    }

    #[test]
    fn from_estimates_matches_release_and_validates_length() {
        let (h, d) = data();
        let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 64 });
        let eps_level = cfg.level_epsilon(h.num_levels());
        let mut rng = StdRng::seed_from_u64(83);
        let seeds = node_seeds(&h, &mut rng);
        let mut ws = EstimatorWorkspace::new();
        let estimates: Vec<NodeEstimate> = h
            .iter()
            .zip(&seeds)
            .map(|(node, &seed)| estimate_node(&h, &d, &cfg, eps_level, node, seed, &mut ws))
            .collect();
        let via_estimates = top_down_from_estimates(&h, &cfg, estimates).unwrap();
        let mut rng = StdRng::seed_from_u64(83);
        let direct = top_down_release(&h, &d, &cfg, &mut rng).unwrap();
        assert_eq!(via_estimates, direct);

        let err = top_down_from_estimates(&h, &cfg, Vec::new()).unwrap_err();
        assert!(matches!(err, ConsistencyError::WrongNodeCount { .. }));
    }

    #[test]
    fn subtree_tasks_cover_every_node_exactly_once() {
        let (h, _) = data();
        for min_tasks in [1, 2, 8, 64] {
            let tasks = subtree_tasks(&h, min_tasks);
            let mut seen = vec![0usize; h.num_nodes()];
            for task in &tasks {
                for &n in task {
                    seen[n.index()] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "min_tasks={min_tasks}: {seen:?}"
            );
        }
    }

    #[test]
    fn parallelism_accessor_and_validation() {
        let cfg = TopDownConfig::new(1.0).with_parallelism(3);
        assert_eq!(cfg.parallelism(), 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_parallelism_rejected() {
        let _ = TopDownConfig::new(1.0).with_parallelism(0);
    }
}
