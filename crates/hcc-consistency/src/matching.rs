//! Optimal parent–child group matching (Section 5.2, Algorithm 2).
//!
//! Every group appears once in the parent's unattributed histogram and
//! once in exactly one child's. To reconcile their two independent
//! size estimates we need a least-cost perfect matching of the
//! bipartite graph whose edge weights are `|τ.Ĥg[i] − c.Ĥg[j]|`.
//! Generic matching is `O(G³)`; the paper's Algorithm 2 exploits the
//! absolute-difference weight structure to match greedily
//! smallest-to-smallest in `O(G log G)` — and on run-length encoded
//! histograms the cost drops further to `O(R log R)` in the number of
//! distinct sizes `R`.
//!
//! Lemma 5 proves the greedy matching optimal; the property tests
//! below verify it against the sorted-order lower bound on random
//! inputs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hcc_estimators::VarianceRun;
use hcc_isotonic::apportion;

use crate::counts::ConsistencyError;

/// A compressed bundle of matched pairs: `count` groups that are the
/// `parent_size`-valued groups of the parent matched one-to-one with
/// `child_size`-valued groups of child `child`.
///
/// Within a run the paper notes the assignment is "completely
/// unimportant" (equal-sized groups are indistinguishable), so a
/// segment never needs to name individual indices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchSegment {
    /// Index of the child (into the `children` slice given to
    /// [`match_groups`]).
    pub child: usize,
    /// Number of matched pairs in this segment.
    pub count: u64,
    /// Size estimate from the parent's histogram.
    pub parent_size: u64,
    /// Variance of the parent's estimate.
    pub parent_variance: f64,
    /// Size estimate from the child's histogram.
    pub child_size: u64,
    /// Variance of the child's estimate.
    pub child_variance: f64,
}

impl MatchSegment {
    /// The matching cost contributed by this segment:
    /// `count · |parent_size − child_size|`.
    ///
    /// Returned as `u128`: `count` and the size gap are both u64s from
    /// untrusted estimates, so the product can exceed `u64::MAX` at
    /// census scale (it used to wrap — or panic in debug — there).
    pub fn cost(&self) -> u128 {
        u128::from(self.count) * u128::from(self.parent_size.abs_diff(self.child_size))
    }
}

/// Runs Algorithm 2: matches the parent's groups to the pooled groups
/// of its children, smallest unmatched size against smallest unmatched
/// size, apportioning proportionally (largest-remainder, footnote 10)
/// when a parent run must split across children.
///
/// `parent` and each entry of `children` are the variance-annotated
/// size runs of the respective unattributed histograms, sorted by
/// strictly increasing size (as produced by
/// [`hcc_estimators::NodeEstimate::variance_runs`]).
///
/// Errors with [`ConsistencyError::GroupTotalsMismatch`] if the total
/// group counts disagree — well-formed callers guarantee
/// `τ.G = Σ_c c.G` from the public Groups table, but a served engine
/// must reject adversarial inputs instead of panicking.
pub fn match_groups(
    parent: &[VarianceRun],
    children: &[Vec<VarianceRun>],
) -> Result<Vec<MatchSegment>, ConsistencyError> {
    // Pool totals in u128: run counts are untrusted u64s, so their sum
    // must not be allowed to wrap (a wrapped sum could spuriously
    // *pass* the equality check below).
    let parent_total: u128 = parent.iter().map(|r| r.count as u128).sum();
    let child_total: u128 = children
        .iter()
        .flat_map(|c| c.iter())
        .map(|r| r.count as u128)
        .sum();
    if parent_total != child_total {
        return Err(ConsistencyError::GroupTotalsMismatch {
            parent: u64::try_from(parent_total).unwrap_or(u64::MAX),
            children: u64::try_from(child_total).unwrap_or(u64::MAX),
        });
    }

    // Per-child cursor into its run list + remaining count of the
    // current run; a min-heap over (current size, child) locates the
    // globally smallest unmatched child groups.
    let mut cursor: Vec<usize> = vec![0; children.len()];
    let mut remaining: Vec<u64> = children
        .iter()
        .map(|c| c.first().map(|r| r.count).unwrap_or(0))
        .collect();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = children
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_empty())
        .map(|(i, c)| Reverse((c[0].size, i)))
        .collect();

    let mut segments: Vec<MatchSegment> = Vec::new();
    let mut pi = 0usize; // parent run index
    let mut p_remaining = parent.first().map(|r| r.count).unwrap_or(0);

    // Advances a child's cursor past an exhausted run.
    let advance_child = |c: usize,
                         cursor: &mut Vec<usize>,
                         remaining: &mut Vec<u64>,
                         heap: &mut BinaryHeap<Reverse<(u64, usize)>>| {
        cursor[c] += 1;
        if let Some(run) = children[c].get(cursor[c]) {
            remaining[c] = run.count;
            heap.push(Reverse((run.size, c)));
        } else {
            remaining[c] = 0;
        }
    };

    while pi < parent.len() {
        if p_remaining == 0 {
            pi += 1;
            p_remaining = parent.get(pi).map(|r| r.count).unwrap_or(0);
            continue;
        }
        let prun = &parent[pi];

        // Pop every child run tied at the minimum size: together they
        // form the paper's G_b.
        let Reverse((sb, first_child)) = *heap.peek().expect("children exhausted early");
        let mut gb: Vec<usize> = Vec::new();
        while let Some(&Reverse((s, c))) = heap.peek() {
            if s != sb {
                break;
            }
            heap.pop();
            gb.push(c);
        }
        debug_assert!(gb.contains(&first_child));
        // u128 again: per-child counts are individually u64, but tied
        // children pool — totals above u64::MAX pass the equality
        // check, so this sum must not wrap either.
        let gb_total: u128 = gb.iter().map(|&c| u128::from(remaining[c])).sum();

        if u128::from(p_remaining) >= gb_total {
            // |G_t| ≥ |G_b|: every child group at size sb matches now.
            for &c in &gb {
                let crun = &children[c][cursor[c]];
                segments.push(MatchSegment {
                    child: c,
                    count: remaining[c],
                    parent_size: prun.size,
                    parent_variance: prun.variance,
                    child_size: crun.size,
                    child_variance: crun.variance,
                });
                advance_child(c, &mut cursor, &mut remaining, &mut heap);
            }
            // gb_total ≤ p_remaining ≤ u64::MAX here, so the cast back
            // is exact.
            p_remaining -= gb_total as u64;
        } else {
            // |G_t| < |G_b|: apportion the parent's remaining groups
            // across the tied children proportionally.
            let weights: Vec<u64> = gb.iter().map(|&c| remaining[c]).collect();
            let shares = apportion(p_remaining, &weights);
            for (&c, &share) in gb.iter().zip(shares.iter()) {
                let crun = &children[c][cursor[c]];
                if share > 0 {
                    segments.push(MatchSegment {
                        child: c,
                        count: share,
                        parent_size: prun.size,
                        parent_variance: prun.variance,
                        child_size: crun.size,
                        child_variance: crun.variance,
                    });
                    remaining[c] -= share;
                }
                if remaining[c] == 0 {
                    advance_child(c, &mut cursor, &mut remaining, &mut heap);
                } else {
                    // Still groups left at this size: re-arm the heap.
                    heap.push(Reverse((crun.size, c)));
                }
            }
            p_remaining = 0;
        }
    }
    Ok(segments)
}

/// The optimal matching cost computed directly: sort the parent's
/// group sizes and the pooled children's group sizes and pair them in
/// order. For absolute-difference weights this is the classical
/// optimal transport on the line, so it lower-bounds (and Lemma 5:
/// equals) any matching cost. Used to cross-check [`match_groups`].
///
/// Runs entirely on run-length encodings — `O(R log R)` in the number
/// of runs `R` and `O(R)` memory. The seed implementation expanded
/// every run into a dense per-group `Vec<u64>`, which made this
/// *diagnostic* allocate `O(G)` — gigabytes at census scale; the
/// dense form survives only as the regression oracle in the tests.
/// As before, `parent` must arrive sorted by size (it does by
/// construction); extra groups on the longer side are ignored, like
/// the dense zip truncating at the shorter sequence.
pub fn sorted_order_cost(parent: &[VarianceRun], children: &[Vec<VarianceRun>]) -> u128 {
    // Pool the children's runs and sort by size; equal sizes need no
    // merging — the pairing below just consumes them consecutively.
    let mut pooled: Vec<(u64, u64)> = children
        .iter()
        .flat_map(|ch| ch.iter().map(|r| (r.size, r.count)))
        .collect();
    pooled.sort_unstable_by_key(|&(size, _)| size);

    let mut cost = 0u128;
    let mut ci = 0usize;
    let mut c_rem = pooled.first().map(|&(_, count)| count).unwrap_or(0);
    for prun in parent {
        let mut p_rem = prun.count;
        while p_rem > 0 {
            if c_rem == 0 {
                ci += 1;
                match pooled.get(ci) {
                    Some(&(_, count)) => c_rem = count,
                    None => return cost, // children exhausted
                }
                continue;
            }
            let take = p_rem.min(c_rem);
            cost += u128::from(take) * u128::from(prun.size.abs_diff(pooled[ci].0));
            p_rem -= take;
            c_rem -= take;
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn runs(pairs: &[(u64, u64)]) -> Vec<VarianceRun> {
        pairs
            .iter()
            .map(|&(size, count)| VarianceRun {
                size,
                count,
                variance: 1.0,
            })
            .collect()
    }

    fn total_cost(segs: &[MatchSegment]) -> u128 {
        segs.iter().map(|s| s.cost()).sum()
    }

    fn matched_per_child(segs: &[MatchSegment], n: usize) -> Vec<u64> {
        let mut out = vec![0u64; n];
        for s in segs {
            out[s.child] += s.count;
        }
        out
    }

    /// The seed `sorted_order_cost`: expands every run into dense
    /// per-group vectors. Kept only as the regression oracle for the
    /// run-length rewrite (it allocates O(G)).
    fn dense_sorted_order_cost(parent: &[VarianceRun], children: &[Vec<VarianceRun>]) -> u128 {
        let expand = |runs: &[VarianceRun]| -> Vec<u64> {
            let mut v = Vec::new();
            for r in runs {
                for _ in 0..r.count {
                    v.push(r.size);
                }
            }
            v
        };
        let p = expand(parent);
        let mut c: Vec<u64> = children.iter().flat_map(|ch| expand(ch)).collect();
        c.sort_unstable();
        p.iter()
            .zip(c.iter())
            .map(|(&a, &b)| u128::from(a.abs_diff(b)))
            .sum()
    }

    #[test]
    fn run_length_cost_matches_dense_on_edge_shapes() {
        let cases: Vec<(Vec<VarianceRun>, Vec<Vec<VarianceRun>>)> = vec![
            // Empty everything.
            (runs(&[]), vec![]),
            (runs(&[]), vec![runs(&[]), runs(&[])]),
            // Parent longer than the pooled children (zip truncates).
            (runs(&[(1, 5), (9, 2)]), vec![runs(&[(3, 4)])]),
            // Children longer than the parent.
            (runs(&[(4, 1)]), vec![runs(&[(1, 3)]), runs(&[(2, 3)])]),
            // Duplicate sizes across children, zero-count runs mixed in.
            (
                runs(&[(2, 6), (7, 3)]),
                vec![runs(&[(2, 2), (5, 0), (9, 3)]), runs(&[(2, 4)])],
            ),
        ];
        for (parent, children) in cases {
            assert_eq!(
                sorted_order_cost(&parent, &children),
                dense_sorted_order_cost(&parent, &children),
                "parent {parent:?} children {children:?}"
            );
        }
    }

    #[test]
    fn run_length_cost_handles_census_scale_counts() {
        // The dense oracle would need u64::MAX expansions here; the
        // run-length form must answer exactly in O(runs).
        let parent = runs(&[(10, u64::MAX), (20, 3)]);
        let children = vec![runs(&[(12, u64::MAX)]), runs(&[(27, 3)])];
        // u64::MAX pairs move |10-12| = 2, three pairs move |20-27| = 7.
        assert_eq!(
            sorted_order_cost(&parent, &children),
            2 * u128::from(u64::MAX) + 21
        );
    }

    #[test]
    fn exact_sizes_match_with_zero_cost() {
        let parent = runs(&[(1, 2), (2, 1), (3, 2)]);
        let c1 = runs(&[(1, 1), (3, 2)]);
        let c2 = runs(&[(1, 1), (2, 1)]);
        let segs = match_groups(&parent, &[c1, c2]).unwrap();
        assert_eq!(total_cost(&segs), 0);
        assert_eq!(matched_per_child(&segs, 2), vec![3, 2]);
    }

    #[test]
    fn paper_proportional_example() {
        // §5.2.1: parent has 300 groups of size 1; children c1, c2, c3
        // have 200, 100, 100 groups of size 1 (400 total, so 100 child
        // groups of size 1 remain and must match parent size-2 groups).
        let parent = runs(&[(1, 300), (2, 100)]);
        let children = vec![runs(&[(1, 200)]), runs(&[(1, 100)]), runs(&[(1, 100)])];
        let segs = match_groups(&parent, &children).unwrap();
        // The 300 parent size-1 groups split 50% / 25% / 25%.
        let at_size1: Vec<u64> = (0..3)
            .map(|c| {
                segs.iter()
                    .filter(|s| s.child == c && s.parent_size == 1)
                    .map(|s| s.count)
                    .sum()
            })
            .collect();
        assert_eq!(at_size1, vec![150, 75, 75]);
        // The leftover 100 child size-1 groups match parent size-2.
        let leftover: u64 = segs
            .iter()
            .filter(|s| s.parent_size == 2)
            .map(|s| s.count)
            .sum();
        assert_eq!(leftover, 100);
        assert_eq!(total_cost(&segs), 100); // 100 pairs at |2-1| = 1
    }

    #[test]
    fn single_child_is_identity_pairing() {
        let parent = runs(&[(1, 1), (5, 1), (9, 1)]);
        let child = runs(&[(2, 1), (4, 1), (9, 1)]);
        let segs = match_groups(&parent, std::slice::from_ref(&child)).unwrap();
        assert_eq!(total_cost(&segs), sorted_order_cost(&parent, &[child]));
    }

    #[test]
    fn mismatched_totals_are_an_error_not_a_panic() {
        // Regression: this used to assert (killing an engine worker on
        // adversarial input); it must surface as a typed error.
        let parent = runs(&[(1, 2)]);
        let child = runs(&[(1, 1)]);
        let err = match_groups(&parent, &[child]).unwrap_err();
        assert_eq!(
            err,
            ConsistencyError::GroupTotalsMismatch {
                parent: 2,
                children: 1
            }
        );
        assert!(err.to_string().contains("children pool"), "{err}");
    }

    #[test]
    fn pooled_totals_beyond_u64_do_not_wrap_mid_match() {
        // Regression: totals above u64::MAX pass the (u128) equality
        // check, but the per-tie pool `gb_total` and apportion's
        // weight sum used to still accumulate in u64 — a debug panic
        // (dead engine worker) or wrapped totals emitting corrupt
        // segments in release.
        let parent = runs(&[(5, u64::MAX), (6, 1)]);
        let children = vec![runs(&[(5, u64::MAX)]), runs(&[(5, 1)])];
        let segs = match_groups(&parent, &children).unwrap();
        let matched: Vec<u128> = (0..2)
            .map(|c| {
                segs.iter()
                    .filter(|s| s.child == c)
                    .map(|s| u128::from(s.count))
                    .sum()
            })
            .collect();
        assert_eq!(matched, vec![u128::from(u64::MAX), 1]);
        // Exactly one leftover child group matches the size-6 parent
        // group: total cost 1.
        assert_eq!(total_cost(&segs), 1);
    }

    #[test]
    fn segment_cost_does_not_overflow_u64() {
        // Regression: `cost` used to multiply count × |Δsize| in u64,
        // which wraps (debug: panics) for census-scale counts against
        // an adversarial size estimate. u64::MAX groups that each
        // moved 3 sizes must report the exact u128 cost.
        let seg = MatchSegment {
            child: 0,
            count: u64::MAX,
            parent_size: 1,
            parent_variance: 1.0,
            child_size: 4,
            child_variance: 1.0,
        };
        assert_eq!(seg.cost(), 3 * u128::from(u64::MAX));
        // The summation sites accumulate in u128 too: two such
        // segments together exceed any u64.
        let total = total_cost(&[seg, seg]);
        assert_eq!(total, 6 * u128::from(u64::MAX));
        assert!(total > u128::from(u64::MAX));
    }

    #[test]
    fn empty_parent_and_children() {
        let segs = match_groups(&[], &[vec![], vec![]]).unwrap();
        assert!(segs.is_empty());
    }

    #[test]
    fn variances_are_carried_through() {
        let parent = vec![VarianceRun {
            size: 3,
            count: 1,
            variance: 0.25,
        }];
        let child = vec![VarianceRun {
            size: 4,
            count: 1,
            variance: 4.0,
        }];
        let segs = match_groups(&parent, &[child]).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].parent_variance, 0.25);
        assert_eq!(segs[0].child_variance, 4.0);
        assert_eq!(segs[0].cost(), 1);
    }

    // Random parent/children decompositions: Algorithm 2's cost must
    // equal the sorted-order optimal transport cost (Lemma 5), every
    // child must have all its groups matched, and the number of
    // segments stays run-polynomial.
    proptest! {
        /// The run-length sorted-order cost equals the dense expansion
        /// it replaced, including mismatched totals (zip truncation)
        /// and duplicate sizes scattered across children.
        #[test]
        fn run_length_cost_matches_dense(
            parent_runs in prop::collection::vec((0u64..40, 0u64..6), 0..12),
            child_runs in prop::collection::vec((0u64..40, 0u64..6), 0..20),
            nchild in 1usize..4,
        ) {
            // Parent must be sorted by size (as produced by
            // variance_runs); children need no order.
            let mut sorted = parent_runs.clone();
            sorted.sort_unstable_by_key(|&(size, _)| size);
            let parent: Vec<VarianceRun> = sorted
                .into_iter()
                .map(|(size, count)| VarianceRun { size, count, variance: 1.0 })
                .collect();
            let mut children: Vec<Vec<VarianceRun>> = vec![Vec::new(); nchild];
            for (k, &(size, count)) in child_runs.iter().enumerate() {
                children[k % nchild].push(VarianceRun { size, count, variance: 1.0 });
            }
            for c in &mut children {
                c.sort_unstable_by_key(|r| r.size);
            }
            prop_assert_eq!(
                sorted_order_cost(&parent, &children),
                dense_sorted_order_cost(&parent, &children)
            );
        }

        #[test]
        fn greedy_matching_is_optimal(
            sizes in prop::collection::vec((0u64..30, 1u64..5), 1..20),
            nchild in 1usize..5,
            assignment in prop::collection::vec(0usize..5, 20),
        ) {
            // Build children by scattering runs, then derive a parent
            // with a *different* (noisy) view: here simply the pooled
            // child sizes re-labelled — the parent's multiset size must
            // equal the pool, values may differ arbitrarily; emulate by
            // shifting sizes.
            let mut children: Vec<Vec<VarianceRun>> = vec![Vec::new(); nchild];
            let mut pool = 0u64;
            for (k, &(size, count)) in sizes.iter().enumerate() {
                let c = assignment[k % assignment.len()] % nchild;
                children[c].push(VarianceRun { size, count, variance: 1.0 });
                pool += count;
            }
            for c in &mut children {
                c.sort_by_key(|r| r.size);
                // merge duplicate sizes
                let mut merged: Vec<VarianceRun> = Vec::new();
                for r in c.drain(..) {
                    match merged.last_mut() {
                        Some(last) if last.size == r.size => last.count += r.count,
                        _ => merged.push(r),
                    }
                }
                *c = merged;
            }
            // Parent: same number of groups, sizes shifted by +1 in a
            // single run-length list (distinct multiset).
            let parent = vec![VarianceRun { size: 7, count: pool, variance: 1.0 }];
            let segs = match_groups(&parent, &children).unwrap();
            prop_assert_eq!(total_cost(&segs), sorted_order_cost(&parent, &children));
            let per_child = matched_per_child(&segs, nchild);
            for (c, runs) in children.iter().enumerate() {
                let expect: u64 = runs.iter().map(|r| r.count).sum();
                prop_assert_eq!(per_child[c], expect);
            }
        }

        #[test]
        fn greedy_matching_optimal_general_parent(
            child_sizes in prop::collection::vec((0u64..25, 1u64..4), 1..15),
            parent_shift in prop::collection::vec(-3i64..4, 15),
            nchild in 1usize..4,
        ) {
            // Children: scatter runs round-robin.
            let mut children: Vec<Vec<VarianceRun>> = vec![Vec::new(); nchild];
            let mut all: Vec<u64> = Vec::new();
            for (k, &(size, count)) in child_sizes.iter().enumerate() {
                children[k % nchild].push(VarianceRun { size, count, variance: 1.0 });
                for _ in 0..count {
                    all.push(size);
                }
            }
            for c in &mut children {
                c.sort_by_key(|r| r.size);
                let mut merged: Vec<VarianceRun> = Vec::new();
                for r in c.drain(..) {
                    match merged.last_mut() {
                        Some(last) if last.size == r.size => last.count += r.count,
                        _ => merged.push(r),
                    }
                }
                *c = merged;
            }
            // Parent: perturb each pooled size by a small shift, then
            // re-encode as runs (keeps the multiset size equal).
            all.sort_unstable();
            let shifted: Vec<u64> = all.iter().enumerate()
                .map(|(i, &s)| (s as i64 + parent_shift[i % parent_shift.len()]).max(0) as u64)
                .collect();
            let mut sorted = shifted.clone();
            sorted.sort_unstable();
            let mut parent: Vec<VarianceRun> = Vec::new();
            for s in sorted {
                match parent.last_mut() {
                    Some(last) if last.size == s => last.count += 1,
                    _ => parent.push(VarianceRun { size: s, count: 1, variance: 1.0 }),
                }
            }
            let segs = match_groups(&parent, &children).unwrap();
            prop_assert_eq!(total_cost(&segs), sorted_order_cost(&parent, &children));
        }
    }
}
