//! Publication format for released histograms.
//!
//! Agencies publish count-of-counts tables as flat files (the 2010
//! Census SF1 tables that motivate the paper are fixed-format text).
//! This module serialises a [`HierarchicalCounts`] release to a simple
//! long-form CSV — one row per `(region, size)` with a non-zero count
//! — and parses it back, so a release can round-trip through storage.

use hcc_core::CountOfCounts;
use hcc_hierarchy::{Hierarchy, NodeId};

use crate::counts::{ConsistencyError, HierarchicalCounts};

/// Serialises a release as `region,level,size,count` CSV (header
/// included). Regions are identified by name; only non-zero cells are
/// emitted, so sparse histograms stay small.
pub fn to_csv(hierarchy: &Hierarchy, release: &HierarchicalCounts) -> String {
    let mut out = String::from("region,level,size,count\n");
    for node in hierarchy.iter() {
        let h = release.node(node);
        for (size, &count) in h.as_slice().iter().enumerate() {
            if count > 0 {
                out.push_str(&format!(
                    "{},{},{},{}\n",
                    hierarchy.name(node),
                    hierarchy.level_of(node),
                    size,
                    count
                ));
            }
        }
    }
    out
}

/// Errors raised while parsing a release CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportError {
    /// A row did not have the four expected fields, or a numeric field
    /// failed to parse.
    BadRow {
        /// 1-based line number.
        line: usize,
    },
    /// A row referenced a region name not present in the hierarchy.
    UnknownRegion {
        /// 1-based line number.
        line: usize,
        /// The unresolved name.
        region: String,
    },
    /// The parsed histograms are not hierarchically consistent.
    Inconsistent(ConsistencyError),
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::BadRow { line } => write!(f, "line {line}: malformed release row"),
            ExportError::UnknownRegion { line, region } => {
                write!(f, "line {line}: unknown region {region:?}")
            }
            ExportError::Inconsistent(e) => write!(f, "parsed release is inconsistent: {e}"),
        }
    }
}

impl std::error::Error for ExportError {}

/// Parses a release CSV produced by [`to_csv`], validating
/// hierarchical consistency on the way in.
pub fn from_csv(hierarchy: &Hierarchy, text: &str) -> Result<HierarchicalCounts, ExportError> {
    let mut by_name: std::collections::BTreeMap<&str, NodeId> = std::collections::BTreeMap::new();
    for node in hierarchy.iter() {
        by_name.insert(hierarchy.name(node), node);
    }
    let mut dense: Vec<Vec<u64>> = vec![Vec::new(); hierarchy.num_nodes()];
    for (i, row) in text.lines().enumerate() {
        let line = i + 1;
        let row = row.trim();
        if row.is_empty() || (i == 0 && row.starts_with("region,")) {
            continue;
        }
        let mut fields = row.split(',');
        let region = fields.next().ok_or(ExportError::BadRow { line })?;
        let _level = fields.next().ok_or(ExportError::BadRow { line })?;
        let size: usize = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ExportError::BadRow { line })?;
        let count: u64 = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ExportError::BadRow { line })?;
        if fields.next().is_some() {
            return Err(ExportError::BadRow { line });
        }
        let &node = by_name
            .get(region)
            .ok_or_else(|| ExportError::UnknownRegion {
                line,
                region: region.to_string(),
            })?;
        let v = &mut dense[node.index()];
        if v.len() <= size {
            v.resize(size + 1, 0);
        }
        v[size] += count;
    }
    let hists: Vec<CountOfCounts> = dense.into_iter().map(CountOfCounts::from_counts).collect();
    HierarchicalCounts::from_node_histograms(hierarchy, hists).map_err(ExportError::Inconsistent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_hierarchy::HierarchyBuilder;

    fn sample() -> (Hierarchy, HierarchicalCounts) {
        let mut b = HierarchyBuilder::new("top");
        let a = b.add_child(Hierarchy::ROOT, "a");
        let c = b.add_child(Hierarchy::ROOT, "b");
        let h = b.build();
        let data = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (a, CountOfCounts::from_group_sizes([0, 1, 1, 4])),
                (c, CountOfCounts::from_group_sizes([2, 2])),
            ],
        )
        .unwrap();
        (h, data)
    }

    #[test]
    fn round_trip() {
        let (h, data) = sample();
        let csv = to_csv(&h, &data);
        let parsed = from_csv(&h, &csv).unwrap();
        for node in h.iter() {
            assert_eq!(parsed.node(node), data.node(node));
        }
    }

    #[test]
    fn csv_shape() {
        let (h, data) = sample();
        let csv = to_csv(&h, &data);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("region,level,size,count"));
        // Root has one size-0 group (from leaf a).
        assert!(csv.contains("top,0,0,1"));
        assert!(csv.contains("a,1,4,1"));
        assert!(csv.contains("b,1,2,2"));
        // No zero-count rows.
        assert!(!csv
            .lines()
            .any(|l| l.ends_with(",0") && !l.starts_with("region")));
    }

    #[test]
    fn rejects_malformed_and_unknown() {
        let (h, _) = sample();
        assert_eq!(
            from_csv(&h, "region,level,size,count\na,1,notanumber,2"),
            Err(ExportError::BadRow { line: 2 })
        );
        assert_eq!(
            from_csv(&h, "region,level,size,count\nnope,1,2,3"),
            Err(ExportError::UnknownRegion {
                line: 2,
                region: "nope".into()
            })
        );
        assert_eq!(
            from_csv(&h, "a,1,2,3,4"),
            Err(ExportError::BadRow { line: 1 })
        );
    }

    #[test]
    fn rejects_inconsistent_release() {
        let (h, _) = sample();
        // Root claims a group the leaves don't have.
        let bad = "region,level,size,count\ntop,0,5,1\n";
        assert!(matches!(
            from_csv(&h, bad),
            Err(ExportError::Inconsistent(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = ExportError::BadRow { line: 3 };
        assert!(e.to_string().contains("line 3"));
    }
}
