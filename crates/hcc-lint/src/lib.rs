#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `hcc-lint` — project-invariant static analysis for the hccount workspace.
//!
//! Clippy and rustc check Rust; this crate checks *this system*. The
//! invariants it guards (bit-identical releases across worker counts, a
//! cycle-free engine lock order, Relaxed-only telemetry, panic-free
//! server/worker paths, noise drawn only through `hcc-noise`) are not
//! expressible as generic lints, so — like the PR 2 work queue and the PR 7
//! telemetry before it — the analyzer is hand-rolled and std-only.
//!
//! Pipeline: [`lexer`] turns each file into a token stream (raw strings,
//! lifetimes vs chars, nested/doc comments all handled), [`syntax`] layers
//! on `#[cfg(test)]` region masks and waiver comments, and [`rules`] runs
//! the registry over the result. See `docs/lints.md` for the rule catalog
//! and waiver syntax:
//!
//! ```text
//! // hcc-lint: allow(<rule>, reason = "why this site is sound")
//! ```
//!
//! A waiver covers its own line and the line directly below it; a waiver
//! without a reason, or naming an unknown rule, is itself a finding.

pub mod lexer;
pub mod rules;
pub mod syntax;

use rules::lock_order::LockGraph;
use rules::{lock_order, Finding};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use syntax::SourceFile;

/// The result of linting a set of files.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived waiver filtering, sorted by (path, line).
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by well-formed waivers.
    pub waived: usize,
    /// Number of files scanned.
    pub files: usize,
    /// The accumulated engine lock graph.
    pub lock_graph: LockGraph,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lint already-parsed files.
pub fn lint_files(files: &[SourceFile]) -> Report {
    let mut findings = Vec::new();
    let mut graph = LockGraph::default();
    for f in files {
        rules::determinism::check(f, &mut findings);
        rules::atomics::check(f, &mut findings);
        rules::panic_policy::check(f, &mut findings);
        rules::noise::check(f, &mut findings);
        rules::hygiene::check(f, &mut findings);
        lock_order::scan(f, &mut graph, &mut findings);
    }
    lock_order::finalize(&graph, &mut findings);

    // Apply waivers, then report waiver problems themselves.
    let mut waived = 0usize;
    let by_path: std::collections::BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel.as_str(), f)).collect();
    findings.retain(|fi| {
        let covered = by_path
            .get(fi.path.as_str())
            .is_some_and(|f| f.waives(fi.rule, fi.line));
        if covered {
            waived += 1;
        }
        !covered
    });
    for f in files {
        for w in &f.waivers {
            if let Some(problem) = &w.malformed {
                findings.push(Finding {
                    rule: "waiver",
                    path: f.rel.clone(),
                    line: w.line,
                    message: format!("malformed waiver: {problem}"),
                });
            } else if rules::rule_named(&w.rule).is_none() {
                findings.push(Finding {
                    rule: "waiver",
                    path: f.rel.clone(),
                    line: w.line,
                    message: format!("waiver names unknown rule `{}`", w.rule),
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Report {
        findings,
        waived,
        files: files.len(),
        lock_graph: graph,
    }
}

/// Collect and parse every workspace source file in scope: `src/**/*.rs` of
/// the root package and of each crate under `crates/`. Vendored shims,
/// `target/`, tests, benches and fixtures are never scanned — the rules
/// govern shipped code.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut src_dirs: Vec<(PathBuf, PathBuf)> = Vec::new(); // (dir, base-for-rel)
    let root_src = root.join("src");
    if root_src.is_dir() {
        src_dirs.push((root_src, root.to_path_buf()));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            let src = c.join("src");
            if src.is_dir() {
                src_dirs.push((src, root.to_path_buf()));
            }
        }
    }
    for (dir, base) in src_dirs {
        walk_rs(&dir, &base, &mut files)?;
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk_rs(dir: &Path, base: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, base, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(base)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let src = fs::read_to_string(&path)?;
            out.push(SourceFile::parse(rel, &src));
        }
    }
    Ok(())
}

/// Lint the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = collect_workspace_files(root)?;
    Ok(lint_files(&files))
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
