#![forbid(unsafe_code)]

//! CLI for the hccount project-invariant analyzer.
//!
//! ```text
//! hcc-lint [--deny all] [--root PATH] [--lock-graph] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 findings (with `--deny all`), 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hcc-lint [--deny all] [--root PATH] [--lock-graph] [--list-rules]\n\
         \n\
         --deny all     exit nonzero when any finding survives waivers (default: on)\n\
         --root PATH    workspace root (default: walk up to the [workspace] manifest)\n\
         --lock-graph   print the extracted hcc-engine lock graph\n\
         --list-rules   print the rule registry and exit"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut show_graph = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => {
                // `--deny all` is the only (and default) policy; accept and
                // validate the operand for forward compatibility.
                match args.next().as_deref() {
                    Some("all") => {}
                    _ => return usage(),
                }
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--lock-graph" => show_graph = true,
            "--list-rules" => {
                for rule in &hcc_lint::rules::RULES {
                    println!("{:<16} {}", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match hcc_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "hcc-lint: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match hcc_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("hcc-lint: failed to read workspace: {err}");
            return ExitCode::from(2);
        }
    };

    if show_graph {
        print!("{}", report.lock_graph.render());
    }
    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "hcc-lint: {} file(s) scanned, {} finding(s), {} waived",
        report.files,
        report.findings.len(),
        report.waived
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
