//! A small hand-rolled Rust lexer.
//!
//! The analyzer only needs a *token stream*, not a parse tree, so this lexer
//! focuses on the places where naive text matching goes wrong:
//!
//! - raw strings (`r"..."`, `r#"..."#`, arbitrary `#` depth, `b` prefixes),
//!   so a banned identifier inside a string literal is never a finding;
//! - `'a` lifetimes vs `'a'` char literals (one token of lookahead after the
//!   quoted identifier decides which);
//! - nested block comments (`/* /* */ */`) with doc-comment classification,
//!   so rule text quoted in documentation never trips a rule;
//! - doc comments carrying code-looking text (`` /// call `.lock()` ``).
//!
//! Every token records the 1-based source line it starts on, which is all the
//! rule layer needs to report findings and match waiver comments.

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `match`, raw identifiers `r#match`).
    Ident,
    /// A lifetime such as `'a` (including `'static`).
    Lifetime,
    /// A character literal such as `'x'` or `b'\n'`.
    Char,
    /// A regular (escaped) string literal, including `b"..."`.
    Str,
    /// A raw string literal `r"..."` / `r#"..."#` / `br#"..."#`.
    RawStr,
    /// A numeric literal (integer or float, any base, with suffixes).
    Num,
    /// A `//` comment; `doc` is true for `///` and `//!` forms.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// A `/* */` comment (possibly nested); `doc` is true for `/**` and `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
    /// Any single punctuation character (`.`, `(`, `[`, `#`, ...).
    Punct,
}

/// A single token with its text and starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text. For `Ident` this is the identifier itself (raw
    /// identifiers keep their `r#` prefix); for comments it is the full
    /// comment text including delimiters; for `Punct` a single character.
    pub text: String,
    /// 1-based line number the token starts on.
    pub line: u32,
}

impl Token {
    /// True for comment tokens (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment { .. } | TokKind::BlockComment { .. }
        )
    }

    /// True if this token is an identifier with exactly the given text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.peek()?;
        self.pos += 1;
        if ch == '\n' {
            self.line += 1;
        }
        Some(ch)
    }
}

fn is_ident_start(ch: char) -> bool {
    ch.is_alphabetic() || ch == '_'
}

fn is_ident_continue(ch: char) -> bool {
    ch.is_alphanumeric() || ch == '_'
}

/// Lex `src` into a flat token stream. Unrecognized bytes become `Punct`
/// tokens; the lexer never fails.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(ch) = cur.peek() {
        let line = cur.line;
        if ch.is_whitespace() {
            cur.bump();
            continue;
        }
        if ch == '/' && cur.peek_at(1) == Some('/') {
            out.push(lex_line_comment(&mut cur, line));
            continue;
        }
        if ch == '/' && cur.peek_at(1) == Some('*') {
            out.push(lex_block_comment(&mut cur, line));
            continue;
        }
        if let Some(tok) = try_lex_prefixed_literal(&mut cur, line) {
            out.push(tok);
            continue;
        }
        if ch == '\'' {
            out.push(lex_quote(&mut cur, line));
            continue;
        }
        if ch == '"' {
            out.push(lex_string(&mut cur, line));
            continue;
        }
        if is_ident_start(ch) {
            out.push(lex_ident(&mut cur, line));
            continue;
        }
        if ch.is_ascii_digit() {
            out.push(lex_number(&mut cur, line));
            continue;
        }
        cur.bump();
        out.push(Token {
            kind: TokKind::Punct,
            text: ch.to_string(),
            line,
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    while let Some(ch) = cur.peek() {
        if ch == '\n' {
            break;
        }
        text.push(ch);
        cur.bump();
    }
    let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
    Token {
        kind: TokKind::LineComment { doc },
        text,
        line,
    }
}

fn lex_block_comment(cur: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    // Consume the opening `/*`.
    text.push(cur.bump().unwrap_or('/'));
    text.push(cur.bump().unwrap_or('*'));
    let mut depth = 1usize;
    while depth > 0 {
        match cur.peek() {
            None => break,
            Some('/') if cur.peek_at(1) == Some('*') => {
                depth += 1;
                text.push(cur.bump().unwrap_or('/'));
                text.push(cur.bump().unwrap_or('*'));
            }
            Some('*') if cur.peek_at(1) == Some('/') => {
                depth -= 1;
                text.push(cur.bump().unwrap_or('*'));
                text.push(cur.bump().unwrap_or('/'));
            }
            Some(ch) => {
                text.push(ch);
                cur.bump();
            }
        }
    }
    let doc = (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
        || text.starts_with("/*!");
    Token {
        kind: TokKind::BlockComment { doc },
        text,
        line,
    }
}

/// Handle `r`/`b` prefixed literals: `r"..."`, `r#"..."#`, `b"..."`,
/// `br#"..."#`, `b'x'`, and raw identifiers `r#ident`. Returns `None` when
/// the `r`/`b` is just the start of a plain identifier.
fn try_lex_prefixed_literal(cur: &mut Cursor, line: u32) -> Option<Token> {
    let first = cur.peek()?;
    if first != 'r' && first != 'b' {
        return None;
    }
    // Byte char / byte string: b'..' / b"..".
    if first == 'b' {
        match cur.peek_at(1) {
            Some('\'') => {
                cur.bump(); // b
                let mut tok = lex_quote(cur, line);
                tok.text.insert(0, 'b');
                return Some(tok);
            }
            Some('"') => {
                cur.bump(); // b
                let mut tok = lex_string(cur, line);
                tok.text.insert(0, 'b');
                return Some(tok);
            }
            Some('r') => {
                // Possibly br"..." / br#"..."#.
                let mut offset = 2;
                let mut hashes = 0usize;
                while cur.peek_at(offset) == Some('#') {
                    hashes += 1;
                    offset += 1;
                }
                if cur.peek_at(offset) == Some('"') {
                    cur.bump(); // b
                    cur.bump(); // r
                    let mut tok = lex_raw_string(cur, line, hashes);
                    tok.text.insert_str(0, "br");
                    return Some(tok);
                }
                return None;
            }
            _ => return None,
        }
    }
    // first == 'r': raw string r"..." / r#"..."# or raw identifier r#ident.
    let mut offset = 1;
    let mut hashes = 0usize;
    while cur.peek_at(offset) == Some('#') {
        hashes += 1;
        offset += 1;
    }
    match cur.peek_at(offset) {
        Some('"') => {
            cur.bump(); // r
            let mut tok = lex_raw_string(cur, line, hashes);
            tok.text.insert(0, 'r');
            Some(tok)
        }
        Some(ch) if hashes == 1 && is_ident_start(ch) => {
            // Raw identifier r#ident: keep the prefix so `r#match` never
            // collides with the identifier `match` in rule tables.
            cur.bump(); // r
            cur.bump(); // #
            let mut text = String::from("r#");
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            Some(Token {
                kind: TokKind::Ident,
                text,
                line,
            })
        }
        _ => None,
    }
}

/// Lex a raw string starting at the `#...#"` run (the `r`/`br` prefix has
/// already been consumed). `hashes` is the number of `#` before the quote.
fn lex_raw_string(cur: &mut Cursor, line: u32, hashes: usize) -> Token {
    let mut text = String::new();
    for _ in 0..hashes {
        text.push(cur.bump().unwrap_or('#'));
    }
    text.push(cur.bump().unwrap_or('"'));
    loop {
        match cur.peek() {
            None => break,
            Some('"') => {
                // Check for closing quote followed by `hashes` hash marks.
                let mut matched = true;
                for i in 0..hashes {
                    if cur.peek_at(1 + i) != Some('#') {
                        matched = false;
                        break;
                    }
                }
                text.push(cur.bump().unwrap_or('"'));
                if matched {
                    for _ in 0..hashes {
                        text.push(cur.bump().unwrap_or('#'));
                    }
                    break;
                }
            }
            Some(ch) => {
                text.push(ch);
                cur.bump();
            }
        }
    }
    Token {
        kind: TokKind::RawStr,
        text,
        line,
    }
}

/// Lex a token starting with `'`: either a lifetime (`'a`) or a char
/// literal (`'a'`, `'\n'`, `'\u{1F600}'`).
fn lex_quote(cur: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('\'')); // opening '
    match cur.peek() {
        Some('\\') => {
            // Escape: definitely a char literal.
            text.push(cur.bump().unwrap_or('\\'));
            // The escaped character is consumed unconditionally — it may
            // itself be a quote ('\'') or backslash ('\\').
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            // Then anything up to the closing quote (covers \u{...} and
            // \x7f forms).
            while let Some(ch) = cur.peek() {
                text.push(ch);
                cur.bump();
                if ch == '\'' {
                    break;
                }
            }
            Token {
                kind: TokKind::Char,
                text,
                line,
            }
        }
        Some(ch) if is_ident_start(ch) => {
            // Could be a lifetime ('a, 'static) or a char ('a'). Scan the
            // identifier, then peek: a closing quote makes it a char.
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            if cur.peek() == Some('\'') {
                text.push(cur.bump().unwrap_or('\''));
                Token {
                    kind: TokKind::Char,
                    text,
                    line,
                }
            } else {
                Token {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                }
            }
        }
        Some(_) => {
            // Non-identifier char like '[' or '{': a char literal.
            text.push(cur.bump().unwrap_or('?'));
            if cur.peek() == Some('\'') {
                text.push(cur.bump().unwrap_or('\''));
            }
            Token {
                kind: TokKind::Char,
                text,
                line,
            }
        }
        None => Token {
            kind: TokKind::Punct,
            text,
            line,
        },
    }
}

fn lex_string(cur: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('"')); // opening "
    while let Some(ch) = cur.peek() {
        if ch == '\\' {
            text.push(cur.bump().unwrap_or('\\'));
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(ch);
        cur.bump();
        if ch == '"' {
            break;
        }
    }
    Token {
        kind: TokKind::Str,
        text,
        line,
    }
}

fn lex_ident(cur: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    while let Some(ch) = cur.peek() {
        if !is_ident_continue(ch) {
            break;
        }
        text.push(ch);
        cur.bump();
    }
    Token {
        kind: TokKind::Ident,
        text,
        line,
    }
}

fn lex_number(cur: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    // Integer part, hex/oct/bin prefixes, underscores, suffixes: consume
    // alphanumerics and underscores greedily.
    while let Some(ch) = cur.peek() {
        if ch.is_alphanumeric() || ch == '_' {
            text.push(ch);
            cur.bump();
            continue;
        }
        // A `.` continues the number only when followed by a digit, so
        // `0..n` and `1.max(x)` lex as Num Punct Punct Ident, not floats.
        if ch == '.' && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push(ch);
            cur.bump();
            continue;
        }
        // Exponent sign: 1e-9 / 2.5E+3.
        if (ch == '+' || ch == '-')
            && (text.ends_with('e') || text.ends_with('E'))
            && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
        {
            text.push(ch);
            cur.bump();
            continue;
        }
        break;
    }
    Token {
        kind: TokKind::Num,
        text,
        line,
    }
}
