//! Rule `noise-discipline`: noise is drawn only through sanctioned APIs.
//!
//! Differential-privacy guarantees live and die on *where* noise comes from.
//! Two invariants:
//!
//! 1. `DoubleGeometric` (the two-sided geometric sampler) is constructed
//!    only inside `hcc-noise`. Everything else consumes noise through the
//!    estimator APIs, so budget accounting and the α→1 rejection guard can
//!    never be bypassed.
//! 2. On the release path (`hcc-engine`, `hcc-consistency`,
//!    `hcc-estimators`), seeding an RNG with `seed_from_u64` is only allowed
//!    in a file that also uses the `node_seeds` derivation — the per-node
//!    stream splitter that makes releases independent of worker count. A
//!    seed minted any other way silently breaks bit-reproducibility.

use crate::rules::Finding;
use crate::syntax::SourceFile;

const NOISE_CRATE: &str = "crates/hcc-noise/src/";

/// Crates whose non-test code may only seed via `node_seeds`.
const SEED_SCOPED: [&str; 3] = [
    "crates/hcc-engine/src/",
    "crates/hcc-consistency/src/",
    "crates/hcc-estimators/src/",
];

/// Run the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    // (1) DoubleGeometric construction outside hcc-noise. Mentioning the
    // type is only dangerous where it can be *built*, i.e. in code; doc
    // comments and strings never reach here.
    if !file.rel.starts_with(NOISE_CRATE) {
        for (_, tok) in file.code() {
            if tok.is_ident("DoubleGeometric") {
                out.push(Finding {
                    rule: "noise-discipline",
                    path: file.rel.clone(),
                    line: tok.line,
                    message: "`DoubleGeometric` may only be constructed inside hcc-noise; \
                              draw noise through the estimator APIs"
                        .to_string(),
                });
            }
        }
    }
    // (2) seed_from_u64 on the release path requires node_seeds in the file.
    if SEED_SCOPED.iter().any(|p| file.rel.starts_with(p)) {
        let derives_node_seeds = file.code().any(|(_, t)| t.is_ident("node_seeds"));
        if !derives_node_seeds {
            for (_, tok) in file.code() {
                if tok.is_ident("seed_from_u64") {
                    out.push(Finding {
                        rule: "noise-discipline",
                        path: file.rel.clone(),
                        line: tok.line,
                        message: "`seed_from_u64` on the release path outside the \
                                  `node_seeds` derivation; per-node streams are the only \
                                  sanctioned seed source"
                            .to_string(),
                    });
                }
            }
        }
    }
}
