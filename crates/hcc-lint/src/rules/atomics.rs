//! Rule `atomics`: atomic-ordering discipline.
//!
//! Two invariants:
//!
//! 1. The telemetry subsystem (`crates/hcc-engine/src/telemetry.rs`) is a
//!    monitoring plane: its counters tolerate torn cross-counter reads by
//!    design and must stay `Relaxed`-only, so adding a counter can never
//!    introduce a synchronization edge (or cost) into the hot path.
//! 2. `SeqCst` is banned workspace-wide without a waiver stating why the
//!    weaker acquire/release pairing is insufficient. Every existing use was
//!    a default, not a decision; the rule keeps it that way.

use crate::rules::Finding;
use crate::syntax::SourceFile;

const TELEMETRY_FILE: &str = "crates/hcc-engine/src/telemetry.rs";

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Run the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let telemetry = file.rel == TELEMETRY_FILE;
    for (i, tok) in file.code() {
        if tok.is_ident("SeqCst") {
            out.push(Finding {
                rule: "atomics",
                path: file.rel.clone(),
                line: tok.line,
                message: "`SeqCst` requires a waiver explaining why acquire/release \
                          ordering is insufficient"
                    .to_string(),
            });
            continue;
        }
        if telemetry && ORDERINGS.contains(&tok.text.as_str()) && tok.text != "Relaxed" {
            // Only flag actual `Ordering::X` uses, not stray identifiers.
            let qualified = file.prev_code(i).is_some_and(|p| p.is_punct(':'));
            if qualified {
                out.push(Finding {
                    rule: "atomics",
                    path: file.rel.clone(),
                    line: tok.line,
                    message: format!(
                        "telemetry counters are Relaxed-only; found `Ordering::{}`",
                        tok.text
                    ),
                });
            }
        }
    }
}
