//! The rule registry.
//!
//! Each rule is a pure function from a [`SourceFile`](crate::syntax::SourceFile)
//! to findings; the
//! lock-order rule additionally accumulates a cross-file lock graph that is
//! finalized once all files are scanned. Rule names are stable identifiers —
//! they are what waiver comments reference.

pub mod atomics;
pub mod determinism;
pub mod hygiene;
pub mod lock_order;
pub mod noise;
pub mod panic_policy;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule name (matches [`RULES`] and waiver comments).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Static metadata about a rule, for `--list-rules` and waiver validation.
pub struct RuleInfo {
    /// Stable rule name referenced by waiver comments.
    pub name: &'static str,
    /// One-line summary of the invariant the rule guards.
    pub summary: &'static str,
}

/// All registered rules. The pseudo-rule `waiver` (malformed or unknown-rule
/// waiver comments) is reported under its own name but is not waivable.
pub const RULES: [RuleInfo; 6] = [
    RuleInfo {
        name: "determinism",
        summary: "no HashMap/HashSet/RandomState/thread_rng/SystemTime on the release path \
                  (releases must be bit-identical across worker counts)",
    },
    RuleInfo {
        name: "lock-order",
        summary: "every .lock() site in hcc-engine maps to a declared rank; the static \
                  nesting graph must be cycle-free and respect \
                  state < cache < registry < store < lanes < gate < job < telemetry < wire",
    },
    RuleInfo {
        name: "atomics",
        summary: "telemetry counters are Relaxed-only; SeqCst anywhere requires a waiver \
                  with a reason",
    },
    RuleInfo {
        name: "panic-policy",
        summary: "no unwrap/expect/slice-index panics on server-connection, worker-task, \
                  and durable-store paths outside #[cfg(test)]",
    },
    RuleInfo {
        name: "noise-discipline",
        summary: "DoubleGeometric is constructed only inside hcc-noise; release-path seeds \
                  derive only from node_seeds",
    },
    RuleInfo {
        name: "hygiene",
        summary: "crate roots carry #![forbid(unsafe_code)] (or deny) and a missing_docs \
                  lint attr; every unsafe token needs a per-site waiver",
    },
];

/// Look up a rule by name.
pub fn rule_named(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}
