//! Rule `hygiene`: crate roots carry the workspace hygiene attributes.
//!
//! Every crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`) must open
//! with `#![forbid(unsafe_code)]`; library roots must additionally carry a
//! `missing_docs` lint attribute (`#![warn(missing_docs)]` or stronger).
//! The ten `hcc-*` crates established this convention; the rule stops new
//! crates (and the root facade/binary) from drifting.

use crate::rules::Finding;
use crate::syntax::SourceFile;

/// True when `rel` is a crate root this rule audits.
pub fn in_scope(rel: &str) -> bool {
    let file = rel.rsplit('/').next().unwrap_or(rel);
    let is_root_name = file == "lib.rs" || file == "main.rs";
    let parent_is_src = rel.ends_with(&format!("src/{file}"));
    let in_bin = rel.contains("/bin/") || rel.starts_with("src/bin/");
    (is_root_name && parent_is_src) || in_bin
}

fn is_lib(rel: &str) -> bool {
    rel.ends_with("lib.rs")
}

/// Scan the inner attributes at the top of the file for the two markers.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&file.rel) {
        return;
    }
    let mut has_forbid_unsafe = false;
    let mut has_missing_docs = false;
    // Inner attributes can only appear before any item; scanning the whole
    // token stream for the ident pair is a safe over-approximation.
    let toks: Vec<_> = file.code().map(|(_, t)| t).collect();
    for w in toks.windows(4) {
        if w[0].is_ident("forbid")
            && w[1].is_punct('(')
            && w[2].is_ident("unsafe_code")
            && w[3].is_punct(')')
        {
            has_forbid_unsafe = true;
        }
    }
    if toks.iter().any(|t| t.is_ident("missing_docs")) {
        has_missing_docs = true;
    }
    if !has_forbid_unsafe {
        out.push(Finding {
            rule: "hygiene",
            path: file.rel.clone(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    if is_lib(&file.rel) && !has_missing_docs {
        out.push(Finding {
            rule: "hygiene",
            path: file.rel.clone(),
            line: 1,
            message: "library root is missing a `missing_docs` lint attribute \
                      (e.g. `#![warn(missing_docs)]`)"
                .to_string(),
        });
    }
}
