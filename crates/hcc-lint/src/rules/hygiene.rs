//! Rule `hygiene`: crate roots carry the workspace hygiene attributes, and
//! every `unsafe` token is individually waived.
//!
//! Every crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`) must open
//! with `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`; library roots
//! must additionally carry a `missing_docs` lint attribute
//! (`#![warn(missing_docs)]` or stronger). The ten `hcc-*` crates
//! established the convention with `forbid`; `hcc-engine` moved to `deny`
//! when the reactor's epoll FFI arrived, because `forbid` cannot be
//! overridden even by an audited, allow-listed module.
//!
//! That relaxation is paid for by the second check: **every `unsafe` token
//! in the workspace** (outside `#[cfg(test)]`) must carry a per-site waiver
//! — `// hcc-lint: allow(hygiene, reason = "...")` on the token's line or
//! the line above — stating why the site is sound. `--deny all` therefore
//! still guarantees no unvetted unsafe code anywhere, while letting the one
//! audited FFI module exist.

use crate::rules::Finding;
use crate::syntax::SourceFile;

/// True when `rel` is a crate root audited for hygiene attributes. (The
/// unsafe-token audit applies to every file, not just roots.)
pub fn in_scope(rel: &str) -> bool {
    let file = rel.rsplit('/').next().unwrap_or(rel);
    let is_root_name = file == "lib.rs" || file == "main.rs";
    let parent_is_src = rel.ends_with(&format!("src/{file}"));
    let in_bin = rel.contains("/bin/") || rel.starts_with("src/bin/");
    (is_root_name && parent_is_src) || in_bin
}

fn is_lib(rel: &str) -> bool {
    rel.ends_with("lib.rs")
}

/// Scan crate roots for the hygiene attributes and every file for unwaived
/// `unsafe` tokens.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    audit_unsafe(file, out);
    if !in_scope(&file.rel) {
        return;
    }
    let mut has_unsafe_gate = false;
    let mut has_missing_docs = false;
    // Inner attributes can only appear before any item; scanning the whole
    // token stream for the ident pair is a safe over-approximation.
    let toks: Vec<_> = file.code().map(|(_, t)| t).collect();
    for w in toks.windows(4) {
        if (w[0].is_ident("forbid") || w[0].is_ident("deny"))
            && w[1].is_punct('(')
            && w[2].is_ident("unsafe_code")
            && w[3].is_punct(')')
        {
            has_unsafe_gate = true;
        }
    }
    if toks.iter().any(|t| t.is_ident("missing_docs")) {
        has_missing_docs = true;
    }
    if !has_unsafe_gate {
        out.push(Finding {
            rule: "hygiene",
            path: file.rel.clone(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]` (or, with audited \
                      waived sites, `#![deny(unsafe_code)]`)"
                .to_string(),
        });
    }
    if is_lib(&file.rel) && !has_missing_docs {
        out.push(Finding {
            rule: "hygiene",
            path: file.rel.clone(),
            line: 1,
            message: "library root is missing a `missing_docs` lint attribute \
                      (e.g. `#![warn(missing_docs)]`)"
                .to_string(),
        });
    }
}

/// Every `unsafe` token outside tests needs its own waiver with a reason.
/// `unsafe_code` (the lint name inside attributes) is a distinct identifier
/// and never matches.
fn audit_unsafe(file: &SourceFile, out: &mut Vec<Finding>) {
    for (_, t) in file.code() {
        if t.is_ident("unsafe") && !file.waives("hygiene", t.line) {
            out.push(Finding {
                rule: "hygiene",
                path: file.rel.clone(),
                line: t.line,
                message: "`unsafe` requires a per-site waiver stating why it is sound \
                          (`// hcc-lint: allow(hygiene, reason = \"...\")`)"
                    .to_string(),
            });
        }
    }
}
