//! Rule `panic-policy`: no panics on server-connection and worker-task paths.
//!
//! A panic in a connection handler kills that client; a panic in a worker
//! task is caught by `catch_unwind` but fails the whole job. Both paths must
//! surface errors as values. This rule bans, outside `#[cfg(test)]`:
//!
//! - `.unwrap()` and `.expect(...)` calls,
//! - slice/array indexing `expr[...]` (which panics out of bounds).
//!
//! Indexing that is in-bounds by construction gets a waiver whose reason
//! states the invariant — turning implicit assumptions into reviewed,
//! documented ones. Type-position brackets (`[u8; 32]`, `Vec<[f64; 4]>`) and
//! attribute brackets are not flagged: only brackets that *follow a value*
//! (an identifier, `)`, or `]`) index into it.

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::syntax::SourceFile;

/// Server-connection and worker-task path files.
const SCOPED_FILES: [&str; 7] = [
    "crates/hcc-engine/src/server.rs",
    "crates/hcc-engine/src/reactor.rs",
    "crates/hcc-engine/src/protocol.rs",
    "crates/hcc-engine/src/engine.rs",
    "crates/hcc-engine/src/scheduler.rs",
    "crates/hcc-engine/src/telemetry.rs",
    "crates/hcc-engine/src/locks.rs",
];

/// Crates whose entire `src/` tree is on a panic-policy path. The durable
/// store sits under every acknowledged mutation: a panic there takes down
/// the connection *and* can leave the WAL mid-record.
const SCOPED_CRATES: [&str; 1] = ["crates/hcc-store/src/"];

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [..]`, `match x {..}[..]` is not real code, etc.).
const NON_VALUE_KEYWORDS: [&str; 12] = [
    "let", "in", "return", "if", "else", "match", "mut", "ref", "move", "box", "as", "where",
];

/// True when `rel` is on a panic-policy path.
pub fn in_scope(rel: &str) -> bool {
    SCOPED_FILES.contains(&rel) || SCOPED_CRATES.iter().any(|p| rel.starts_with(p))
}

/// Run the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&file.rel) {
        return;
    }
    for (i, tok) in file.code() {
        // `.unwrap()` / `.expect(` method calls.
        if (tok.is_ident("unwrap") || tok.is_ident("expect"))
            && file.prev_code(i).is_some_and(|p| p.is_punct('.'))
            && file.next_code(i).is_some_and(|n| n.is_punct('('))
        {
            out.push(Finding {
                rule: "panic-policy",
                path: file.rel.clone(),
                line: tok.line,
                message: format!(
                    "`.{}()` can panic on a server/worker path; return a typed error \
                     (or waive with the invariant that rules the panic out)",
                    tok.text
                ),
            });
            continue;
        }
        // Index expressions: `[` directly after a value-producing token.
        if tok.is_punct('[') {
            let Some(prev) = file.prev_code(i) else {
                continue;
            };
            let indexes_value = match prev.kind {
                TokKind::Ident => !NON_VALUE_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                _ => false,
            };
            if indexes_value {
                out.push(Finding {
                    rule: "panic-policy",
                    path: file.rel.clone(),
                    line: tok.line,
                    message: "slice index can panic on a server/worker path; use `get`/\
                              `get_mut` (or waive with the invariant that bounds it)"
                        .to_string(),
                });
            }
        }
    }
}
