//! Rule `lock-order`: the engine's lock-acquisition graph must be cycle-free
//! and respect the declared rank order.
//!
//! The engine holds nine families of locks (the original five, two
//! internal ones, the reactor's completion queue, and the durable
//! store). Deadlock freedom is guaranteed by a total order: a thread may
//! only acquire a lock of strictly higher rank than every lock it
//! already holds:
//!
//! ```text
//! state < cache < registry < store < lanes < gate < job < telemetry < wire
//! ```
//!
//! This pass extracts every `.lock()` acquisition site in
//! `crates/hcc-engine/src/`, classifies the receiver to a rank, tracks an
//! approximate guard scope (a `let`-bound guard lives to the end of its
//! enclosing block or an explicit `drop(name)`; an unbound temporary lives to
//! the end of its statement), and records a `held → acquired` edge for every
//! nesting it sees. After all files are scanned the edge set is checked
//! against the declared order and for cycles. The same order is enforced
//! dynamically by `hcc_engine::locks` under `debug_assertions`; the
//! workspace self-check test asserts both sides agree on the rank names.
//!
//! Known approximations (see docs/lints.md): a guard bound by `if let` /
//! `while let` or used as a bare temporary is modeled as released at the next
//! statement boundary, slightly earlier than the language drops it. This can
//! miss a nesting edge inside such a body; it never invents one.

use crate::lexer::Token;
use crate::rules::Finding;
use crate::syntax::SourceFile;

/// The declared rank order, lowest first. Must match
/// `hcc_engine::locks::RANK_NAMES` (asserted by the self-check test).
pub const LOCK_ORDER: [&str; 9] = [
    "state",
    "cache",
    "registry",
    "store",
    "lanes",
    "gate",
    "job",
    "telemetry",
    "wire",
];

/// Map a receiver identifier at a `.lock()` call site to its rank name.
/// Every lock in the engine must be classifiable; an unknown receiver is a
/// finding, which forces new locks to be registered here *and* in
/// `hcc_engine::locks::Rank`.
fn rank_of_receiver(name: &str) -> Option<&'static str> {
    match name {
        "state" => Some("state"),
        "cache" => Some("cache"),
        "registry" => Some("registry"),
        "durable" => Some("store"),
        "lanes" | "lane" => Some("lanes"),
        "permits" => Some("gate"),
        "estimates" | "failure" | "slots" => Some("job"),
        "rings" | "ring" => Some("telemetry"),
        "completions" => Some("wire"),
        _ => None,
    }
}

fn rank_index(name: &str) -> Option<usize> {
    LOCK_ORDER.iter().position(|r| *r == name)
}

/// One observed `held → acquired` nesting, with the site of the acquisition.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Rank held at the time of acquisition.
    pub from: &'static str,
    /// Rank being acquired.
    pub to: &'static str,
    /// File of the acquisition site.
    pub path: String,
    /// Line of the acquisition site.
    pub line: u32,
}

/// The accumulated cross-file lock graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Distinct nesting edges (first site seen per `(from, to)` pair).
    pub edges: Vec<Edge>,
    /// Every rank with at least one acquisition site, in declared order.
    pub acquired: Vec<&'static str>,
    /// Total number of `.lock()` sites classified.
    pub sites: usize,
}

impl LockGraph {
    fn note_acquired(&mut self, rank: &'static str) {
        if !self.acquired.contains(&rank) {
            self.acquired.push(rank);
            self.acquired
                .sort_by_key(|r| rank_index(r).unwrap_or(usize::MAX));
        }
        self.sites += 1;
    }

    fn note_edge(&mut self, from: &'static str, to: &'static str, path: &str, line: u32) {
        if !self.edges.iter().any(|e| e.from == from && e.to == to) {
            self.edges.push(Edge {
                from,
                to,
                path: path.to_string(),
                line,
            });
        }
    }

    /// Render the graph for `--lock-graph`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("declared order: ");
        out.push_str(&LOCK_ORDER.join(" < "));
        out.push('\n');
        out.push_str(&format!(
            "acquisition sites: {} across ranks [{}]\n",
            self.sites,
            self.acquired.join(", ")
        ));
        if self.edges.is_empty() {
            out.push_str("nesting edges: none (no lock is ever held across another acquisition)\n");
        } else {
            out.push_str("nesting edges:\n");
            for e in &self.edges {
                out.push_str(&format!(
                    "  {} -> {}  ({}:{})\n",
                    e.from, e.to, e.path, e.line
                ));
            }
        }
        out
    }
}

/// True when `rel` is scanned by this rule. `locks.rs` is the enforcement
/// mechanism itself (its `inner.lock()` is rank-checked at runtime), so it is
/// the one engine file excluded.
pub fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/hcc-engine/src/") && rel != "crates/hcc-engine/src/locks.rs"
}

#[derive(Debug)]
struct Guard {
    rank: &'static str,
    /// `Some(name)` for `let name = ...lock()...;` bindings.
    binder: Option<String>,
    /// Block depth at acquisition; bound guards die when it closes.
    depth: usize,
}

/// Scan one file: classify acquisition sites, track guard scopes, and add
/// nesting edges to `graph`. Unclassifiable receivers become findings.
pub fn scan(file: &SourceFile, graph: &mut LockGraph, out: &mut Vec<Finding>) {
    if !in_scope(&file.rel) {
        return;
    }
    let code: Vec<&Token> = file.code().map(|(_, t)| t).collect();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut await_binder = false;
    let mut stmt_binder: Option<String> = None;

    let release_temporaries = |guards: &mut Vec<Guard>| {
        guards.retain(|g| g.binder.is_some());
    };

    let mut k = 0usize;
    while k < code.len() {
        let t = code[k];
        if t.is_punct('{') {
            depth += 1;
            release_temporaries(&mut guards);
            await_binder = false;
            stmt_binder = None;
        } else if t.is_punct('}') {
            release_temporaries(&mut guards);
            guards.retain(|g| !(g.binder.is_some() && g.depth >= depth));
            depth = depth.saturating_sub(1);
            await_binder = false;
            stmt_binder = None;
        } else if t.is_punct(';') {
            release_temporaries(&mut guards);
            await_binder = false;
            stmt_binder = None;
        } else if t.is_ident("let") {
            // `if let` / `while let` guards are temporaries (released at the
            // end of the statement), not block-scoped bindings.
            let conditional =
                k > 0 && (code[k - 1].is_ident("if") || code[k - 1].is_ident("while"));
            await_binder = !conditional;
            stmt_binder = None;
        } else if await_binder {
            if t.is_ident("mut") {
                // skip
            } else if t.kind == crate::lexer::TokKind::Ident {
                stmt_binder = Some(t.text.clone());
                await_binder = false;
            } else {
                // Destructuring patterns etc.: treat as unbound.
                await_binder = false;
            }
        } else if t.is_ident("drop")
            && k + 3 < code.len()
            && code[k + 1].is_punct('(')
            && code[k + 3].is_punct(')')
        {
            let name = &code[k + 2].text;
            guards.retain(|g| g.binder.as_deref() != Some(name.as_str()));
        }

        // Acquisition site: `<recv> . lock ( )` or a `lock_<rank>()` helper
        // call (skipping helper *definitions*, which follow `fn`).
        // `consumed_at` is the index just past the call's closing paren: a
        // `.` there means the guard is a method-chain temporary
        // (`cache.lock().get(k)`), not what the enclosing `let` binds.
        let mut acquired: Option<(&'static str, u32, usize)> = None;
        if t.is_ident("lock")
            && k >= 1
            && code[k - 1].is_punct('.')
            && k + 2 < code.len()
            && code[k + 1].is_punct('(')
            && code[k + 2].is_punct(')')
        {
            match classify_receiver(&code, k.saturating_sub(2)) {
                Some(rank) => acquired = Some((rank, t.line, k + 3)),
                None => out.push(Finding {
                    rule: "lock-order",
                    path: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "unranked lock receiver `{}`: register it in the lint's rank table \
                         and in hcc_engine::locks::Rank",
                        receiver_name(&code, k.saturating_sub(2)).unwrap_or_else(|| "?".into())
                    ),
                }),
            }
        } else if t.kind == crate::lexer::TokKind::Ident
            && t.text.starts_with("lock_")
            && k + 2 < code.len()
            && code[k + 1].is_punct('(')
            && !(k > 0 && code[k - 1].is_ident("fn"))
        {
            let suffix = &t.text["lock_".len()..];
            match rank_of_receiver(suffix) {
                Some(rank) => acquired = Some((rank, t.line, close_paren(&code, k + 1) + 1)),
                None => out.push(Finding {
                    rule: "lock-order",
                    path: file.rel.clone(),
                    line: t.line,
                    message: format!("lock helper `{}` has no declared rank", t.text),
                }),
            }
        }

        if let Some((rank, line, after)) = acquired {
            graph.note_acquired(rank);
            for held in &guards {
                graph.note_edge(held.rank, rank, &file.rel, line);
            }
            let chained = code.get(after).is_some_and(|t| t.is_punct('.'));
            guards.push(Guard {
                rank,
                binder: if chained { None } else { stmt_binder.clone() },
                depth,
            });
        }

        k += 1;
    }
}

/// Index of the `)` matching the `(` at `open` (or `code.len()` if the
/// stream ends first, so `+ 1` stays safely out of range).
fn close_paren(code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len()
}

/// The receiver identifier of a `.lock()` call whose token before the `.` is
/// at index `idx` (handles `self.state`, `self.lanes[worker]`,
/// `self.ring(i)` shapes).
fn receiver_name(code: &[&Token], idx: usize) -> Option<String> {
    let t = code.get(idx)?;
    if t.kind == crate::lexer::TokKind::Ident {
        return Some(t.text.clone());
    }
    let (open, close) = if t.is_punct(']') {
        ('[', ']')
    } else if t.is_punct(')') {
        ('(', ')')
    } else {
        return None;
    };
    // Walk back to the matching opener, then take the identifier before it.
    let mut depth = 0usize;
    let mut i = idx;
    loop {
        let c = code.get(i)?;
        if c.is_punct(close) {
            depth += 1;
        } else if c.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                let prev = code.get(i.checked_sub(1)?)?;
                if prev.kind == crate::lexer::TokKind::Ident {
                    return Some(prev.text.clone());
                }
                return None;
            }
        }
        i = i.checked_sub(1)?;
    }
}

fn classify_receiver(code: &[&Token], idx: usize) -> Option<&'static str> {
    rank_of_receiver(&receiver_name(code, idx)?)
}

/// Check the accumulated graph against the declared order and for cycles.
pub fn finalize(graph: &LockGraph, out: &mut Vec<Finding>) {
    for e in &graph.edges {
        let (Some(fi), Some(ti)) = (rank_index(e.from), rank_index(e.to)) else {
            continue;
        };
        if fi >= ti {
            out.push(Finding {
                rule: "lock-order",
                path: e.path.clone(),
                line: e.line,
                message: format!(
                    "`{}` acquired while holding `{}` violates the declared order {}",
                    e.to,
                    e.from,
                    LOCK_ORDER.join(" < ")
                ),
            });
        }
    }
    if let Some(cycle) = find_cycle(graph) {
        let site = graph
            .edges
            .iter()
            .find(|e| e.from == cycle[0])
            .map(|e| (e.path.clone(), e.line))
            .unwrap_or_default();
        out.push(Finding {
            rule: "lock-order",
            path: site.0,
            line: site.1,
            message: format!("lock graph contains a cycle: {}", cycle.join(" -> ")),
        });
    }
}

/// DFS cycle detection over the edge set; returns the cycle as a rank list
/// (first node repeated at the end) if one exists.
fn find_cycle(graph: &LockGraph) -> Option<Vec<&'static str>> {
    let nodes: Vec<&'static str> = {
        let mut n: Vec<&'static str> = Vec::new();
        for e in &graph.edges {
            if !n.contains(&e.from) {
                n.push(e.from);
            }
            if !n.contains(&e.to) {
                n.push(e.to);
            }
        }
        n
    };
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut color = vec![0u8; nodes.len()];
    let idx = |name: &str| nodes.iter().position(|n| *n == name);

    fn dfs(
        at: usize,
        nodes: &[&'static str],
        graph: &LockGraph,
        color: &mut [u8],
        stack: &mut Vec<&'static str>,
    ) -> Option<Vec<&'static str>> {
        color[at] = 1;
        stack.push(nodes[at]);
        for e in graph.edges.iter().filter(|e| e.from == nodes[at]) {
            let to = nodes.iter().position(|n| *n == e.to)?;
            match color[to] {
                1 => {
                    let start = stack.iter().position(|n| *n == e.to).unwrap_or(0);
                    let mut cycle: Vec<&'static str> = stack[start..].to_vec();
                    cycle.push(e.to);
                    return Some(cycle);
                }
                0 => {
                    if let Some(c) = dfs(to, nodes, graph, color, stack) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        stack.pop();
        color[at] = 2;
        None
    }

    for name in &nodes {
        let at = idx(name)?;
        if color[at] == 0 {
            let mut stack = Vec::new();
            if let Some(c) = dfs(at, &nodes, graph, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}
