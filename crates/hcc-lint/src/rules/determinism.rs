//! Rule `determinism`: ban nondeterminism sources on the release path.
//!
//! Releases must be bit-identical across worker counts and across runs
//! (golden-hash suites pin this). `HashMap`/`HashSet` iteration order is
//! seeded per-process by `RandomState`, `thread_rng` and `SystemTime` are
//! ambient entropy — none of them may appear in code that computes or
//! serializes a release. Use `BTreeMap`/`BTreeSet` (deterministic order) and
//! per-node seeded RNG streams instead.

use crate::rules::Finding;
use crate::syntax::SourceFile;

/// Identifiers that are banned in release-path code.
const BANNED: [(&str, &str); 6] = [
    (
        "HashMap",
        "iteration order is randomized per process; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order is randomized per process; use BTreeSet",
    ),
    ("RandomState", "per-process random hasher seed"),
    ("thread_rng", "ambient entropy; derive seeds via node_seeds"),
    (
        "from_entropy",
        "ambient entropy; derive seeds via node_seeds",
    ),
    (
        "SystemTime",
        "wall-clock reads are nondeterministic; use Instant only for telemetry durations",
    ),
];

/// Release-path crates: every file under these `src/` trees is in scope.
/// hcc-store is included because recovery must replay to the *same* bytes
/// on every run — a nondeterministic store invalidates the fingerprint
/// check at boot.
const SCOPED_CRATES: [&str; 6] = [
    "crates/hcc-core/src/",
    "crates/hcc-noise/src/",
    "crates/hcc-isotonic/src/",
    "crates/hcc-estimators/src/",
    "crates/hcc-consistency/src/",
    "crates/hcc-store/src/",
];

/// Task-execution files of hcc-engine (the scheduler and everything a worker
/// touches while computing a release). Telemetry, server and protocol code
/// never feed released bytes and are exempt.
const SCOPED_ENGINE_FILES: [&str; 8] = [
    "crates/hcc-engine/src/engine.rs",
    "crates/hcc-engine/src/exec.rs",
    "crates/hcc-engine/src/scheduler.rs",
    "crates/hcc-engine/src/job.rs",
    "crates/hcc-engine/src/cache.rs",
    "crates/hcc-engine/src/registry.rs",
    "crates/hcc-engine/src/fingerprint.rs",
    "crates/hcc-engine/src/locks.rs",
];

/// True when `rel` is on the release path.
pub fn in_scope(rel: &str) -> bool {
    SCOPED_CRATES.iter().any(|p| rel.starts_with(p)) || SCOPED_ENGINE_FILES.contains(&rel)
}

/// Run the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&file.rel) {
        return;
    }
    for (_, tok) in file.code() {
        for (name, why) in BANNED {
            if tok.is_ident(name) {
                out.push(Finding {
                    rule: "determinism",
                    path: file.rel.clone(),
                    line: tok.line,
                    message: format!("`{name}` on the release path: {why}"),
                });
            }
        }
    }
}
