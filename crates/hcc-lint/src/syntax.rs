//! Lightweight syntactic layer over the token stream.
//!
//! Provides the two pieces of structure the rules need beyond raw tokens:
//!
//! 1. **Test regions** — a per-token `in_test` mask covering items annotated
//!    `#[test]` / `#[cfg(test)]` (and `cfg(any(.., test, ..))` variants),
//!    tracked by balanced-brace scanning so whole `mod tests { ... }` bodies
//!    are excluded from rules that only govern shipped code.
//! 2. **Waivers** — `// hcc-lint: allow(<rule>, reason = "...")` comments,
//!    which suppress findings of `<rule>` on the waiver's own line and the
//!    line immediately below. A waiver without a reason is itself reported.

use crate::lexer::{lex, TokKind, Token};

/// A parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule name the waiver applies to (e.g. `panic-policy`).
    pub rule: String,
    /// The justification string. Empty when malformed.
    pub reason: String,
    /// Line the waiver comment sits on.
    pub line: u32,
    /// Present when the waiver could not be parsed; holds the problem.
    pub malformed: Option<String>,
}

/// A lexed source file plus the syntactic masks the rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (e.g.
    /// `crates/hcc-engine/src/engine.rs`).
    pub rel: String,
    /// The full token stream, comments included.
    pub toks: Vec<Token>,
    /// `in_test[i]` is true when `toks[i]` is inside a `#[cfg(test)]` /
    /// `#[test]` item (including the attribute tokens themselves).
    pub in_test: Vec<bool>,
    /// All waiver comments found in the file.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// Lex and analyze one file.
    pub fn parse(rel: impl Into<String>, src: &str) -> SourceFile {
        let toks = lex(src);
        let in_test = mark_test_regions(&toks);
        let waivers = collect_waivers(&toks);
        SourceFile {
            rel: rel.into(),
            toks,
            in_test,
            waivers,
        }
    }

    /// Iterate over non-comment tokens outside test regions, yielding the
    /// index into `toks` so rules can look at neighbors.
    pub fn code(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.toks
            .iter()
            .enumerate()
            .filter(|(i, t)| !t.is_comment() && !self.in_test[*i])
    }

    /// The previous non-comment token before index `i`, if any.
    pub fn prev_code(&self, i: usize) -> Option<&Token> {
        self.toks[..i].iter().rev().find(|t| !t.is_comment())
    }

    /// The next non-comment token after index `i`, if any.
    pub fn next_code(&self, i: usize) -> Option<&Token> {
        self.toks[i + 1..].iter().find(|t| !t.is_comment())
    }

    /// True when a finding of `rule` at `line` is covered by a well-formed
    /// waiver (on the same line or the line directly above).
    pub fn waives(&self, rule: &str, line: u32) -> bool {
        self.waivers.iter().any(|w| {
            w.malformed.is_none() && w.rule == rule && (w.line == line || w.line + 1 == line)
        })
    }
}

/// Scan attributes and mark test regions.
///
/// Grammar handled: `#[...]` outer attributes in front of an item. When an
/// attribute mentions the identifier `test` (and not `not`, so
/// `#[cfg(not(test))]` stays live code), everything through the end of the
/// following item — up to the matching `}` of its first brace, or a `;` for
/// braceless items — is marked as test code.
fn mark_test_regions(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if t.is_punct('#') {
            // Inner attribute `#![...]` never marks a test region.
            let mut j = i + 1;
            while j < toks.len() && toks[j].is_comment() {
                j += 1;
            }
            let inner = j < toks.len() && toks[j].is_punct('!');
            if inner {
                j += 1;
                while j < toks.len() && toks[j].is_comment() {
                    j += 1;
                }
            }
            if j < toks.len() && toks[j].is_punct('[') {
                // Scan the attribute body to its matching `]`.
                let attr_start = i;
                let mut depth = 0usize;
                let mut has_test = false;
                let mut has_not = false;
                while j < toks.len() {
                    let a = &toks[j];
                    if a.is_punct('[') {
                        depth += 1;
                    } else if a.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if a.is_ident("test") {
                        has_test = true;
                    } else if a.is_ident("not") {
                        has_not = true;
                    }
                    j += 1;
                }
                let attr_end = j; // index of closing `]` (or end)
                if !inner && has_test && !has_not {
                    // Mark the attribute itself plus the following item.
                    let item_end = find_item_end(toks, attr_end + 1);
                    for m in mask
                        .iter_mut()
                        .take((item_end + 1).min(toks.len()))
                        .skip(attr_start)
                    {
                        *m = true;
                    }
                    i = item_end + 1;
                    continue;
                }
                i = attr_end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Find the index of the last token of the item starting at `start`:
/// the matching `}` of the first top-level `{`, or the first top-level `;`.
/// Further attributes in front of the item are scanned through.
fn find_item_end(toks: &[Token], start: usize) -> usize {
    let mut brace = 0usize;
    let mut other = 0usize; // (), [] nesting, so `[u8; 2]` semicolons don't end the item
    let mut i = start;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace = brace.saturating_sub(1);
            if brace == 0 {
                return i;
            }
        } else if t.is_punct('(') || t.is_punct('[') {
            other += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            other = other.saturating_sub(1);
        } else if t.is_punct(';') && brace == 0 && other == 0 {
            return i;
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Extract waiver comments: `// hcc-lint: allow(<rule>, reason = "...")`.
fn collect_waivers(toks: &[Token]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        // Doc comments never carry waivers: they are rendered documentation.
        if matches!(
            t.kind,
            TokKind::LineComment { doc: true } | TokKind::BlockComment { doc: true }
        ) {
            continue;
        }
        let Some(marker) = t.text.find("hcc-lint:") else {
            continue;
        };
        let rest = &t.text[marker + "hcc-lint:".len()..];
        out.push(parse_waiver(rest, t.line));
    }
    out
}

fn parse_waiver(rest: &str, line: u32) -> Waiver {
    let malformed = |msg: &str| Waiver {
        rule: String::new(),
        reason: String::new(),
        line,
        malformed: Some(msg.to_string()),
    };
    let rest = rest.trim_start();
    let Some(body) = rest.strip_prefix("allow(") else {
        return malformed("expected `allow(<rule>, reason = \"...\")`");
    };
    let Some(close) = body.rfind(')') else {
        return malformed("unterminated `allow(`");
    };
    let body = &body[..close];
    let (rule, tail) = match body.split_once(',') {
        Some((r, t)) => (r.trim(), t.trim()),
        None => (body.trim(), ""),
    };
    if rule.is_empty() {
        return malformed("missing rule name in `allow(...)`");
    }
    let reason = tail
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| t.rfind('"').map(|end| &t[..end]))
        .unwrap_or("");
    if reason.trim().is_empty() {
        return Waiver {
            rule: rule.to_string(),
            reason: String::new(),
            line,
            malformed: Some("waiver is missing a non-empty `reason = \"...\"`".to_string()),
        };
    }
    Waiver {
        rule: rule.to_string(),
        reason: reason.to_string(),
        line,
        malformed: None,
    }
}
