//! Adversarial-stream tests for the hand-rolled lexer: every place a
//! text-match linter goes wrong must lex into the token kind that keeps
//! the rules honest.

use hcc_lint::lexer::{lex, TokKind, Token};

fn idents(toks: &[Token]) -> Vec<&str> {
    toks.iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect()
}

fn kinds(toks: &[Token]) -> Vec<&TokKind> {
    toks.iter().map(|t| &t.kind).collect()
}

#[test]
fn raw_strings_swallow_code_looking_text() {
    let toks = lex(r##"let x = r#"self.state.lock() and "quotes" inside"#;"##);
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::RawStr).count(), 1);
    assert!(
        !idents(&toks).contains(&"lock"),
        "`lock` inside a raw string must not become an identifier"
    );
    assert_eq!(idents(&toks), vec!["let", "x"]);
}

#[test]
fn raw_string_hash_depth_must_match() {
    // The inner `"#` does not close an r##"..."## string.
    let toks = lex(r###"r##"contains "# unwrap() still inside"## after"###);
    let raw: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::RawStr).collect();
    assert_eq!(raw.len(), 1);
    assert!(raw[0].text.contains("unwrap"));
    assert_eq!(idents(&toks), vec!["after"]);
}

#[test]
fn byte_and_byte_raw_strings() {
    let toks = lex(r##"let a = b"HashMap"; let b = br#"thread_rng()"#;"##);
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::RawStr).count(), 1);
    assert_eq!(idents(&toks), vec!["let", "a", "let", "b"]);
}

#[test]
fn lifetime_versus_char_literal() {
    let toks = lex("fn f<'a>(x: &'a str) -> &'static str { let c = 'a'; x }");
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    let chars: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, vec!["'a'"]);
}

#[test]
fn escaped_char_literals() {
    let toks = lex(r"let nl = '\n'; let q = '\''; let u = '\u{1F600}'; let br = '[';");
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 4);
    // The bracket char literal must not open a real bracket.
    assert!(!toks.iter().any(|t| t.is_punct('[')));
}

#[test]
fn nested_block_comments() {
    let toks = lex("/* outer /* inner unwrap() */ still comment */ survivor");
    assert_eq!(
        kinds(&toks),
        vec![&TokKind::BlockComment { doc: false }, &TokKind::Ident]
    );
    assert_eq!(idents(&toks), vec!["survivor"]);
}

#[test]
fn doc_comment_classification() {
    let cases = [
        ("/// outer doc", true),
        ("//! inner doc", true),
        ("//// four slashes is not doc", false),
        ("// plain", false),
    ];
    for (src, doc) in cases {
        let toks = lex(src);
        assert_eq!(
            toks[0].kind,
            TokKind::LineComment { doc },
            "classifying {src:?}"
        );
    }
    let blocks = [
        ("/** outer block doc */", true),
        ("/*! inner block doc */", true),
        ("/*** not doc ***/", false),
        ("/**/", false),
        ("/* plain */", false),
    ];
    for (src, doc) in blocks {
        let toks = lex(src);
        assert_eq!(
            toks[0].kind,
            TokKind::BlockComment { doc },
            "classifying {src:?}"
        );
    }
}

#[test]
fn doc_attribute_string_hides_code_text() {
    let toks = lex(r##"#[doc = "call .lock() then unwrap()"] fn f() {}"##);
    assert!(!idents(&toks).contains(&"lock"));
    assert!(!idents(&toks).contains(&"unwrap"));
    assert!(idents(&toks).contains(&"doc"));
    assert!(idents(&toks).contains(&"fn"));
}

#[test]
fn raw_identifiers_keep_their_prefix() {
    let toks = lex("let r#match = r#fn + other;");
    let ids = idents(&toks);
    assert!(ids.contains(&"r#match"));
    assert!(ids.contains(&"r#fn"));
    assert!(
        !ids.contains(&"match"),
        "r#match must never collide with the keyword in rule tables"
    );
}

#[test]
fn numbers_do_not_eat_ranges_or_method_calls() {
    let toks = lex("for i in 0..n { x.0 = 1.max(2); y = 1.5e-3; }");
    let nums: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(nums, vec!["0", "0", "1", "2", "1.5e-3"]);
    assert!(idents(&toks).contains(&"max"));
}

#[test]
fn hex_and_suffixed_literals() {
    let toks = lex("let a = 0xff_u8; let b = 1_000_000u64;");
    let nums: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(nums, vec!["0xff_u8", "1_000_000u64"]);
}

#[test]
fn line_numbers_survive_multiline_tokens() {
    let src = "first\n/* two\nlines */\nr\"raw\nstring\"\nlast";
    let toks = lex(src);
    let by_text: Vec<(u32, &str)> = toks.iter().map(|t| (t.line, t.text.as_str())).collect();
    assert_eq!(by_text[0], (1, "first"));
    assert_eq!(toks[1].line, 2, "block comment starts on line 2");
    assert_eq!(toks[2].line, 4, "raw string starts on line 4");
    assert_eq!(
        toks[3],
        Token {
            kind: TokKind::Ident,
            text: "last".to_string(),
            line: 6,
        }
    );
}

#[test]
fn unterminated_inputs_never_hang_or_panic() {
    for src in [
        "/* never closed",
        "r#\"never closed",
        "\"never closed",
        "'",
        "b'",
        "r#",
    ] {
        let toks = lex(src);
        assert!(!toks.is_empty(), "lexing {src:?}");
    }
}
