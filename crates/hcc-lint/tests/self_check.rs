//! Tier-1 workspace self-check: the shipped tree must lint clean, and
//! the static analyzer's declared lock order must be byte-for-byte the
//! order the runtime checker (`hcc_engine::locks`) enforces.

use std::path::Path;

use hcc_lint::rules::lock_order::LOCK_ORDER;
use hcc_lint::{find_workspace_root, lint_workspace};

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("hcc-lint lives inside the workspace")
}

#[test]
fn workspace_lints_clean() {
    let report = lint_workspace(&workspace_root()).expect("workspace sources readable");
    assert!(
        report.is_clean(),
        "the tree must lint clean; findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files > 50,
        "suspiciously few files scanned ({}) — collection is broken",
        report.files
    );
}

#[test]
fn static_and_runtime_lock_orders_agree() {
    assert_eq!(
        LOCK_ORDER,
        hcc_engine::locks::RANK_NAMES,
        "hcc-lint's declared order and the runtime rank checker drifted apart"
    );
}

#[test]
fn lock_graph_covers_every_rank_and_is_acyclic() {
    let report = lint_workspace(&workspace_root()).expect("workspace sources readable");
    let graph = &report.lock_graph;
    assert!(
        graph.sites > 0,
        "no acquisition sites found — the lock-order scan is broken"
    );
    for rank in LOCK_ORDER {
        assert!(
            graph.acquired.contains(&rank),
            "rank `{rank}` has no acquisition site; stale rank table?"
        );
    }
    // Order violations and cycles would have been findings; double-check
    // the rendered graph agrees.
    let rendered = graph.render();
    assert!(
        rendered.contains(
            "declared order: \
             state < cache < registry < store < lanes < gate < job < telemetry < wire"
        ),
        "{rendered}"
    );
}
