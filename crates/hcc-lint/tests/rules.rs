//! Per-rule fixture tests: each rule must fire on its seeded-violation
//! fixture (true positives) and stay silent on the matching clean
//! fixture (false positives). The same fixture text is also re-parsed
//! under out-of-scope paths to pin the scope boundaries.

use hcc_lint::lint_files;
use hcc_lint::rules::Finding;
use hcc_lint::syntax::SourceFile;

/// Lint one fixture as if it lived at `rel` inside the workspace.
fn lint_as(rel: &str, src: &str) -> (Vec<Finding>, usize) {
    let report = lint_files(&[SourceFile::parse(rel, src)]);
    (report.findings, report.waived)
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn determinism_true_positives() {
    let (findings, _) = lint_as(
        "crates/hcc-core/src/fixture.rs",
        include_str!("fixtures/determinism_bad.rs"),
    );
    assert!(
        findings.len() >= 4,
        "expected a finding per banned use: {findings:?}"
    );
    assert!(findings.iter().all(|f| f.rule == "determinism"));
    let text = format!("{findings:?}");
    for name in ["HashMap", "SystemTime", "thread_rng"] {
        assert!(text.contains(name), "missing a finding for {name}");
    }
}

#[test]
fn determinism_false_positives() {
    let (findings, _) = lint_as(
        "crates/hcc-core/src/fixture.rs",
        include_str!("fixtures/determinism_ok.rs"),
    );
    assert!(
        findings.is_empty(),
        "docs, strings and test code must not trip the rule: {findings:?}"
    );
}

#[test]
fn determinism_out_of_scope_file_is_ignored() {
    // Same banned content, but on the monitoring plane (telemetry is
    // exempt) and in a bench crate: not release-path code.
    for rel in [
        "crates/hcc-engine/src/server_helpers.rs",
        "crates/hcc-bench/src/bin/fixture.rs",
    ] {
        let (findings, _) = lint_as(rel, include_str!("fixtures/determinism_bad.rs"));
        assert!(
            findings.iter().all(|f| f.rule != "determinism"),
            "{rel} is not on the release path: {findings:?}"
        );
    }
}

#[test]
fn lock_order_true_positive_inversion() {
    let (findings, _) = lint_as(
        "crates/hcc-engine/src/fixture.rs",
        include_str!("fixtures/lock_order_bad.rs"),
    );
    assert_eq!(rules_of(&findings), vec!["lock-order"], "{findings:?}");
    assert!(
        findings[0]
            .message
            .contains("`state` acquired while holding `gate`"),
        "{findings:?}"
    );
}

#[test]
fn lock_order_cycle_is_reported() {
    let (findings, _) = lint_as(
        "crates/hcc-engine/src/fixture.rs",
        include_str!("fixtures/lock_order_cycle.rs"),
    );
    assert!(
        findings.iter().any(|f| f.message.contains("cycle")),
        "AB/BA nesting must be reported as a cycle: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`state` acquired while holding `cache`")),
        "the inverted edge itself is also an order violation: {findings:?}"
    );
}

#[test]
fn lock_order_false_positives() {
    let (findings, _) = lint_as(
        "crates/hcc-engine/src/fixture.rs",
        include_str!("fixtures/lock_order_ok.rs"),
    );
    assert!(
        findings.is_empty(),
        "ordered nesting, drops, and chained temporaries are clean: {findings:?}"
    );
}

#[test]
fn lock_order_ignores_non_engine_crates() {
    let (findings, _) = lint_as(
        "crates/hcc-tables/src/fixture.rs",
        include_str!("fixtures/lock_order_bad.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn atomics_true_positives_in_telemetry() {
    let (findings, _) = lint_as(
        "crates/hcc-engine/src/telemetry.rs",
        include_str!("fixtures/atomics_bad.rs"),
    );
    assert_eq!(
        rules_of(&findings),
        vec!["atomics", "atomics"],
        "{findings:?}"
    );
    let text = format!("{findings:?}");
    assert!(text.contains("SeqCst"));
    assert!(
        text.contains("Relaxed-only"),
        "Acquire on a telemetry counter: {text}"
    );
}

#[test]
fn atomics_outside_telemetry_only_seqcst_fires() {
    let (findings, _) = lint_as(
        "crates/hcc-tables/src/fixture.rs",
        include_str!("fixtures/atomics_bad.rs"),
    );
    assert_eq!(rules_of(&findings), vec!["atomics"], "{findings:?}");
    assert!(findings[0].message.contains("SeqCst"));
}

#[test]
fn atomics_false_positives_and_waiver() {
    let (findings, waived) = lint_as(
        "crates/hcc-engine/src/telemetry.rs",
        include_str!("fixtures/atomics_ok.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(waived, 1, "the justified SeqCst is waived, not silent");
}

#[test]
fn panic_policy_true_positives() {
    let (findings, _) = lint_as(
        "crates/hcc-engine/src/server.rs",
        include_str!("fixtures/panic_bad.rs"),
    );
    assert_eq!(
        rules_of(&findings),
        vec!["panic-policy", "panic-policy", "panic-policy"],
        "index + unwrap + expect: {findings:?}"
    );
}

#[test]
fn panic_policy_false_positives() {
    let (findings, waived) = lint_as(
        "crates/hcc-engine/src/server.rs",
        include_str!("fixtures/panic_ok.rs"),
    );
    assert!(
        findings.is_empty(),
        "typed errors, waived index, type brackets, test unwraps: {findings:?}"
    );
    assert_eq!(waived, 1);
}

#[test]
fn panic_policy_out_of_scope_file_is_ignored() {
    let (findings, _) = lint_as(
        "crates/hcc-engine/src/exec.rs",
        include_str!("fixtures/panic_bad.rs"),
    );
    assert!(
        findings.iter().all(|f| f.rule != "panic-policy"),
        "exec.rs is not a server/worker connection path: {findings:?}"
    );
}

#[test]
fn noise_true_positives() {
    let (findings, _) = lint_as(
        "crates/hcc-estimators/src/fixture.rs",
        include_str!("fixtures/noise_bad.rs"),
    );
    let rules = rules_of(&findings);
    assert_eq!(
        rules,
        vec!["noise-discipline", "noise-discipline"],
        "DoubleGeometric outside hcc-noise + bare seed_from_u64: {findings:?}"
    );
}

#[test]
fn noise_rule_allows_the_noise_crate_itself() {
    let (findings, _) = lint_as(
        "crates/hcc-noise/src/fixture.rs",
        include_str!("fixtures/noise_bad.rs"),
    );
    assert!(
        findings.is_empty(),
        "hcc-noise may construct its own sampler and seed freely: {findings:?}"
    );
}

#[test]
fn noise_false_positives() {
    let (findings, _) = lint_as(
        "crates/hcc-estimators/src/fixture.rs",
        include_str!("fixtures/noise_ok.rs"),
    );
    assert!(
        findings.is_empty(),
        "seed_from_u64 fed by node_seeds is sanctioned: {findings:?}"
    );
}

#[test]
fn hygiene_true_positives() {
    let (findings, _) = lint_as(
        "crates/hcc-newcrate/src/lib.rs",
        include_str!("fixtures/hygiene_bad.rs"),
    );
    assert_eq!(
        rules_of(&findings),
        vec!["hygiene", "hygiene"],
        "{findings:?}"
    );
}

#[test]
fn hygiene_binary_roots_need_no_missing_docs() {
    let (findings, _) = lint_as(
        "crates/hcc-newcrate/src/bin/tool.rs",
        include_str!("fixtures/hygiene_bad.rs"),
    );
    assert_eq!(rules_of(&findings), vec!["hygiene"], "{findings:?}");
    assert!(findings[0].message.contains("forbid(unsafe_code)"));
}

#[test]
fn hygiene_false_positives() {
    let (findings, _) = lint_as(
        "crates/hcc-newcrate/src/lib.rs",
        include_str!("fixtures/hygiene_ok.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hygiene_ignores_non_root_modules() {
    let (findings, _) = lint_as(
        "crates/hcc-newcrate/src/helpers.rs",
        include_str!("fixtures/hygiene_bad.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn malformed_and_unknown_waivers_are_findings() {
    let (findings, waived) = lint_as(
        "crates/hcc-tables/src/fixture.rs",
        include_str!("fixtures/waiver_bad.rs"),
    );
    assert_eq!(
        rules_of(&findings),
        vec!["waiver", "waiver"],
        "{findings:?}"
    );
    assert_eq!(waived, 0);
    let text = format!("{findings:?}");
    assert!(
        text.contains("reason"),
        "reason-less waiver reported: {text}"
    );
    assert!(
        text.contains("made-up-rule"),
        "unknown rule name reported: {text}"
    );
}

#[test]
fn waivers_do_not_leak_across_lines() {
    // A waiver covers its own line and the next — not two lines down.
    let src = "// hcc-lint: allow(atomics, reason = \"close enough\")\n\
               fn a() {}\n\
               use std::sync::atomic::Ordering;\n\
               fn b(c: &std::sync::atomic::AtomicU64) { c.load(Ordering::SeqCst); }\n";
    let (findings, waived) = lint_as("crates/hcc-tables/src/fixture.rs", src);
    assert_eq!(rules_of(&findings), vec!["atomics"], "{findings:?}");
    assert_eq!(waived, 0);
}
