//! True-positive fixture for waiver validation: a reason-less waiver
//! and a waiver naming a rule that does not exist.

// hcc-lint: allow(panic-policy)
fn missing_reason() {}

// hcc-lint: allow(made-up-rule, reason = "no rule has this name")
fn unknown_rule() {}
