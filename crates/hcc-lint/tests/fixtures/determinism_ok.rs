//! False-positive fixture for the `determinism` rule: the banned names
//! appear only where they are harmless — docs, strings, raw strings,
//! and `#[cfg(test)]` code.

use std::collections::BTreeMap;

/// Never use `HashMap` here; `thread_rng` is also banned.
fn build() -> BTreeMap<u32, u32> {
    let _tip = "prefer BTreeMap over HashMap; SystemTime is banned";
    let _raw = r#"thread_rng() and HashSet<T> are strings, not code"#;
    BTreeMap::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_use_hashmap() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}
