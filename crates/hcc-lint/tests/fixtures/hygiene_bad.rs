//! True-positive fixture for the `hygiene` rule: a crate root with
//! neither `#![forbid(unsafe_code)]` nor a `missing_docs` attribute.

pub fn undocumented_and_unsafe_tolerant() {}
