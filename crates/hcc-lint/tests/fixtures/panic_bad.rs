//! True-positive fixture for the `panic-policy` rule: an index, an
//! `.unwrap()`, and an `.expect(...)` on what is (by parse path) a
//! server-connection file.

fn handle(lines: &[String]) -> String {
    let first = lines[0].clone();
    let n: usize = first.parse().unwrap();
    let label = lines.iter().next().expect("missing label");
    format!("{n} {label}")
}
