//! True-positive fixture for the `lock-order` rule: `state` acquired
//! while `permits` (rank `gate`) is held inverts the declared order.

impl Engine {
    fn misordered(&self) {
        let permits = self.permits.lock();
        let state = self.state.lock();
        drop(state);
        drop(permits);
    }
}
