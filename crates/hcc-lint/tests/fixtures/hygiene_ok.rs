//! False-positive fixture for the `hygiene` rule: a crate root carrying
//! both workspace hygiene attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Documented, as the attribute demands.
pub fn documented() {}
