//! True-positive fixture for the `determinism` rule: every banned
//! nondeterminism source used in live code.

use std::collections::HashMap;
use std::time::SystemTime;

fn build() -> HashMap<u32, u32> {
    let _stamp = SystemTime::now();
    let mut _rng = rand::thread_rng();
    HashMap::new()
}
