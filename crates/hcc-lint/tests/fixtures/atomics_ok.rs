//! False-positive fixture for the `atomics` rule: Relaxed-only counters
//! (fine anywhere, including telemetry) and a waived `SeqCst`.

use std::sync::atomic::{AtomicU64, Ordering};

fn tick(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn fence_like(counter: &AtomicU64) -> u64 {
    // hcc-lint: allow(atomics, reason = "fixture: demonstrates a reviewed SeqCst with a stated justification")
    counter.load(Ordering::SeqCst)
}
