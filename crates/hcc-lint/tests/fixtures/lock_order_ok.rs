//! False-positive fixture for the `lock-order` rule: declared-order
//! nesting, guards released by `drop`, and a method-chain temporary
//! (`.lock().len()`) that must not be mistaken for a held guard.

impl Engine {
    fn ordered(&self) {
        let state = self.state.lock();
        let cache = self.cache.lock();
        drop(cache);
        drop(state);
    }

    fn chained_temporary_then_lower_rank(&self) {
        // The cache guard is consumed by `.len()` within the statement,
        // so taking the lower-ranked state lock afterwards is fine.
        let hit = self.cache.lock().len();
        let mut state = self.state.lock();
        state.note(hit);
    }

    fn sequential_reacquire(&self) {
        {
            let cache = self.cache.lock();
            let _ = cache.len();
        }
        let _state = self.state.lock();
    }
}
