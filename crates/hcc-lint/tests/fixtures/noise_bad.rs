//! True-positive fixture for the `noise-discipline` rule: constructing
//! the sampler outside hcc-noise, and minting a seed on the release
//! path without the `node_seeds` derivation.

use rand::SeedableRng;

fn sample(seed: u64) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = DoubleGeometric::new(0.5);
    dist.sample(&mut rng)
}
