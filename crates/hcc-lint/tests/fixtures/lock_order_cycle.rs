//! True-positive fixture for the `lock-order` rule: two call paths that
//! nest `state` and `cache` in opposite orders form a cycle — the
//! classic AB/BA deadlock.

impl Engine {
    fn ab(&self) {
        let state = self.state.lock();
        let cache = self.cache.lock();
        drop(cache);
        drop(state);
    }

    fn ba(&self) {
        let cache = self.cache.lock();
        let state = self.state.lock();
        drop(state);
        drop(cache);
    }
}
