//! False-positive fixture for the `noise-discipline` rule: seeds flow
//! from the `node_seeds` per-node derivation, which is the sanctioned
//! release-path source.

use rand::SeedableRng;

fn per_node_streams(hierarchy: &Hierarchy, master: &mut StdRng) -> Vec<StdRng> {
    node_seeds(hierarchy, master)
        .into_iter()
        .map(rand::rngs::StdRng::seed_from_u64)
        .collect()
}
