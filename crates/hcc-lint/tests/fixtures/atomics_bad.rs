//! True-positive fixture for the `atomics` rule: an unwaived `SeqCst`
//! and (when parsed as the telemetry file) a non-Relaxed ordering on a
//! telemetry counter.

use std::sync::atomic::{AtomicU64, Ordering};

fn tick(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::SeqCst);
}

fn read(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Acquire)
}
