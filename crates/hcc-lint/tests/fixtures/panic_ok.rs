//! False-positive fixture for the `panic-policy` rule: typed-error
//! style, a waived index with a stated invariant, type-position
//! brackets, and test-only unwraps.

fn handle(lines: &[String]) -> Option<String> {
    let first = lines.first()?;
    // hcc-lint: allow(panic-policy, reason = "fixture: in bounds — first() above proved the slice non-empty")
    let again = &lines[0];
    let _buf: [u8; 4] = [0; 4];
    let _ = again;
    Some(first.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec!["a".to_string()];
        assert_eq!(handle(&v).unwrap(), v[0]);
    }
}
