//! Tier-1 perf smoke for the PR-5 workspace pipeline: on the ISSUE-5
//! workload (3-level hierarchy, `bound = 50 000`, `Hc` at every
//! level) the allocation-free estimation path must release at least
//! **2×** faster than the seed-style per-node-allocation path — and
//! produce the very same bytes while doing it.
//!
//! The margin is generous on purpose (release builds measure 5–20×):
//! the test must stay green on loaded CI machines while still
//! catching a regression that quietly reintroduces per-node
//! allocations or per-element heaps.

use std::time::{Duration, Instant};

use hcc_bench::hotpath::{three_level_dataset, SeedBaseline, HOT_PATH_BOUND};
use hcc_consistency::{node_seeds, top_down_from_estimates, LevelMethod, TopDownConfig};
use hcc_estimators::{CumulativeEstimator, Estimator, EstimatorWorkspace, NodeEstimate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn min_time<T>(reps: usize, mut run: impl FnMut() -> T) -> (Duration, T) {
    let mut best: Option<Duration> = None;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let value = run();
        let dt = t.elapsed();
        if best.is_none_or(|b| dt < b) {
            best = Some(dt);
        }
        out = Some(value);
    }
    (best.expect("reps >= 1"), out.expect("reps >= 1"))
}

#[test]
fn workspace_release_is_at_least_2x_faster_than_seed_path() {
    let (h, data) = three_level_dataset();
    let cfg = TopDownConfig::new(0.25).with_method(LevelMethod::Cumulative {
        bound: HOT_PATH_BOUND,
    });
    let eps_level = cfg.level_epsilon(h.num_levels());
    let mut master = StdRng::seed_from_u64(5);
    let seeds = node_seeds(&h, &mut master);

    let baseline = SeedBaseline {
        bound: HOT_PATH_BOUND,
    };
    let est = CumulativeEstimator::new(HOT_PATH_BOUND);
    let mut ws = EstimatorWorkspace::new();

    // Warm-up: one untimed pass apiece (JIT-free, but page faults and
    // lazy buffer growth should not count against either side).
    let _ = estimate_all(&h, &data, &seeds, |hist, g, rng| {
        baseline.estimate(hist, g, eps_level, rng)
    });
    let _ = estimate_all(&h, &data, &seeds, |hist, g, rng| {
        est.estimate_in(hist, g, eps_level, rng, &mut ws)
    });

    let (old_dt, old_estimates) = min_time(2, || {
        estimate_all(&h, &data, &seeds, |hist, g, rng| {
            baseline.estimate(hist, g, eps_level, rng)
        })
    });
    let (new_dt, new_estimates) = min_time(2, || {
        estimate_all(&h, &data, &seeds, |hist, g, rng| {
            est.estimate_in(hist, g, eps_level, rng, &mut ws)
        })
    });

    // Same estimates, byte for byte — the speedup changes nothing.
    assert_eq!(old_estimates, new_estimates);
    let old_release = top_down_from_estimates(&h, &cfg, old_estimates).unwrap();
    let new_release = top_down_from_estimates(&h, &cfg, new_estimates).unwrap();
    assert_eq!(old_release, new_release);

    eprintln!(
        "release_hot_path smoke: seed path {old_dt:?}, workspace path {new_dt:?} \
         ({:.1}x)",
        old_dt.as_secs_f64() / new_dt.as_secs_f64().max(1e-9)
    );
    assert!(
        new_dt * 2 <= old_dt,
        "workspace pipeline must be >= 2x faster than the seed path: \
         seed {old_dt:?} vs workspace {new_dt:?}"
    );
}

fn estimate_all(
    h: &hcc_hierarchy::Hierarchy,
    data: &hcc_consistency::HierarchicalCounts,
    seeds: &[u64],
    mut estimate: impl FnMut(&hcc_core::CountOfCounts, u64, &mut StdRng) -> NodeEstimate,
) -> Vec<NodeEstimate> {
    h.iter()
        .zip(seeds)
        .map(|(node, &seed)| {
            let hist = data.node(node);
            let mut rng = StdRng::seed_from_u64(seed);
            estimate(hist, hist.num_groups(), &mut rng)
        })
        .collect()
}
