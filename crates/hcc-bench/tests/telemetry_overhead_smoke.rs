//! Tier-1 perf smoke for the PR-7 telemetry subsystem: with the span
//! recorder disabled (the default), the always-on counters and
//! histograms must be invisible on the release hot path.
//!
//! The comparison is a single release of the ISSUE-5 hot-path
//! workload, run (a) directly through `top_down_release` — no engine,
//! no telemetry — and (b) through a 1-worker engine, which pays the
//! full telemetry tax: queue-wait/expand/gate/task/finalize histogram
//! records plus two `Instant` reads per estimated node. The engine
//! run must stay within **1.5×** of the direct call (measured slack
//! is far larger; the margin only has to catch a regression that puts
//! a lock, an allocation, or an enabled-by-default span recorder on
//! the per-node path), and must release byte-identical CSV.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hcc_bench::hotpath::{three_level_dataset, HOT_PATH_BOUND};
use hcc_consistency::{to_csv, top_down_release, LevelMethod, TopDownConfig};
use hcc_engine::{Engine, EngineConfig, ReleaseRequest};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn min_time<T>(reps: usize, mut run: impl FnMut() -> T) -> (Duration, T) {
    let mut best: Option<Duration> = None;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let value = run();
        let dt = t.elapsed();
        if best.is_none_or(|b| dt < b) {
            best = Some(dt);
        }
        out = Some(value);
    }
    (best.expect("reps >= 1"), out.expect("reps >= 1"))
}

#[test]
fn engine_telemetry_overhead_is_within_noise_of_direct_release() {
    let (h, data) = three_level_dataset();
    let cfg = TopDownConfig::new(0.25).with_method(LevelMethod::Cumulative {
        bound: HOT_PATH_BOUND,
    });

    let direct_run = || {
        let mut rng = StdRng::seed_from_u64(5);
        to_csv(&h, &top_down_release(&h, &data, &cfg, &mut rng).unwrap())
    };

    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(1)
            .with_cache_capacity(0),
    );
    let hierarchy = Arc::new(h.clone());
    let shared = Arc::new(data.clone());
    let engine_run = || {
        let id = engine
            .submit(ReleaseRequest::new(
                Arc::clone(&hierarchy),
                Arc::clone(&shared),
                cfg.clone(),
                5,
            ))
            .unwrap();
        let (result, from_cache) = engine.wait(id).unwrap();
        assert!(!from_cache, "cache is disabled");
        result.csv.clone()
    };

    // Warm-up: one untimed pass apiece (page faults, workspace
    // growth, and worker spin-up should not count against either
    // side).
    let _ = direct_run();
    let _ = engine_run();

    let (direct_dt, direct_csv) = min_time(2, direct_run);
    let (engine_dt, engine_csv) = min_time(2, engine_run);

    // Telemetry never touches the released bytes.
    assert_eq!(direct_csv, engine_csv);

    // And the span recorder really is off: nothing recorded, nothing
    // dropped.
    let snap = engine.telemetry();
    assert!(!snap.trace_enabled, "tracing must default to off");
    assert_eq!(snap.spans_dropped, 0);
    assert!(engine.take_trace().is_empty());

    eprintln!(
        "telemetry overhead smoke: direct {direct_dt:?}, engine {engine_dt:?} \
         ({:.2}x)",
        engine_dt.as_secs_f64() / direct_dt.as_secs_f64().max(1e-9)
    );
    assert!(
        engine_dt <= direct_dt * 3 / 2,
        "a 1-worker engine with always-on telemetry must stay within 1.5x \
         of the direct release: direct {direct_dt:?} vs engine {engine_dt:?}"
    );
}
