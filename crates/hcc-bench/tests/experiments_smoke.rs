//! Smoke tests: every experiment runs end-to-end at tiny scale and
//! writes its CSV artifact with the advertised header.

use hcc_bench::experiments;
use hcc_bench::ExpConfig;

fn tiny_cfg(subdir: &str) -> ExpConfig {
    ExpConfig {
        runs: 1,
        scale: 0.02,
        seed: 99,
        bound: 2_000,
        out_dir: std::env::temp_dir().join("hcc_bench_smoke").join(subdir),
        epsilons: vec![0.1, 1.0],
    }
}

fn assert_csv(cfg: &ExpConfig, name: &str, header_prefix: &str) {
    let path = cfg.out_dir.join(name);
    let content = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
    assert!(
        content.starts_with(header_prefix),
        "{name} header was {:?}",
        content.lines().next()
    );
    assert!(content.lines().count() > 1, "{name} has no data rows");
}

#[test]
fn stats_table_runs() {
    let cfg = tiny_cfg("stats");
    let report = experiments::stats_table::run(&cfg);
    assert!(report.contains("housing"));
    assert!(report.contains("taxi"));
    assert_csv(&cfg, "stats_table.csv", "dataset,groups");
}

#[test]
fn figure1_runs() {
    let cfg = tiny_cfg("fig1");
    let report = experiments::figure1::run(&cfg);
    assert!(report.contains("error share"));
    assert_csv(&cfg, "figure1.csv", "group_index_percentile");
}

#[test]
fn naive_table_runs() {
    let cfg = tiny_cfg("naive");
    let report = experiments::naive_table::run(&cfg);
    assert!(report.contains("naive"));
    assert_csv(&cfg, "naive_table.csv", "dataset,naive_emd");
}

#[test]
fn bottomup_table_runs() {
    let cfg = tiny_cfg("bu");
    let report = experiments::bottomup_table::run(&cfg);
    assert!(report.contains("BottomUp"));
    assert_csv(&cfg, "bottomup_table.csv", "dataset,level");
}

#[test]
fn figure4_runs() {
    let cfg = tiny_cfg("fig4");
    let report = experiments::figure4::run(&cfg);
    assert!(report.contains("weighted"));
    assert_csv(&cfg, "figure4.csv", "dataset,combo");
}

#[test]
fn figure5_runs() {
    let cfg = tiny_cfg("fig5");
    let report = experiments::figure5::run(&cfg);
    assert!(report.contains("omniscient"));
    assert_csv(&cfg, "figure5.csv", "dataset,eps_per_level");
}

#[test]
fn figure6_runs() {
    let cfg = tiny_cfg("fig6");
    let report = experiments::figure6::run(&cfg);
    assert!(report.contains("omniscient"));
    assert_csv(&cfg, "figure6.csv", "dataset,eps_per_level");
}

#[test]
fn ablation_runs() {
    let cfg = tiny_cfg("abl");
    let report = experiments::ablation::run(&cfg);
    assert!(report.contains("Hc-L1"));
    assert_csv(&cfg, "ablation_l1_vs_l2.csv", "dataset,eps");
}
