//! Tier-1 scaling smoke: the engine-wide work-stealing pool must
//! never scale *negatively* with worker count, and must actually
//! speed up where the hardware allows it.
//!
//! The pre-refactor engine ran two levels of parallelism (N workers ×
//! M per-job threads) and got *slower* as workers were added (−12% at
//! 4 workers in BENCH_5). This test pins the fix with assertions
//! gated on `available_parallelism()`, because the guarantee that is
//! physically checkable differs by host:
//!
//! * ≥ 4 cores: ≥1.5× speedup at 4 workers over 1, and the 1→2→4
//!   curve is monotonically non-increasing (within noise).
//! * 2–3 cores: ≥1.1× at 4 workers, same monotonicity tolerance.
//! * 1 core: no speedup is possible; assert extra workers cost no
//!   more than a noise-tolerance factor over the 1-worker burst —
//!   exactly the regression the old engine failed.
//!
//! Workload: best-of-2 8-job bursts per point via the shared
//! [`hcc_bench::scaling::ScalingWorkload`] harness (the same shape
//! `scripts/bench.sh` writes into BENCH_N.json), scaled down so the
//! test stays cheap in debug builds.

use hcc_bench::scaling::ScalingWorkload;

/// Run-to-run noise allowance on wall-clock ratios. Generous because
/// tier-1 runs in debug on shared machines; the failure it must catch
/// (systematic oversubscription slowdown) compounds well past this.
const NOISE: f64 = 1.35;

#[test]
fn batch_throughput_does_not_regress_as_workers_are_added() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut workload = ScalingWorkload::census(1e-5, 1_000);
    let curve = workload.curve(&[1, 2, 4], 2);
    let secs: Vec<f64> = curve.iter().map(|&(_, dt)| dt.as_secs_f64()).collect();
    let (t1, t2, t4) = (secs[0], secs[1], secs[2]);
    let detail = format!("1w={t1:.3}s 2w={t2:.3}s 4w={t4:.3}s cores={cores}");

    // Adding workers must never make the batch slower (the old
    // two-level engine's failure mode), on any host.
    assert!(t2 <= t1 * NOISE, "2 workers regressed: {detail}");
    assert!(t4 <= t1 * NOISE, "4 workers regressed: {detail}");

    if cores >= 4 {
        assert!(
            t1 >= 1.5 * t4,
            "4 workers on {cores} cores must be >=1.5x faster: {detail}"
        );
        assert!(t4 <= t2 * NOISE, "2->4 workers regressed: {detail}");
    } else if cores >= 2 {
        assert!(
            t1 >= 1.1 * t4,
            "4 workers on {cores} cores must be >=1.1x faster: {detail}"
        );
    }
    // 1 core: the no-regression assertions above are the whole
    // physically checkable contract.
}
