//! The PR-5 tentpole benchmark: the full per-node estimation hot
//! path (3-level hierarchy, `Hc` at `bound = 50 000`) through the
//! allocation-free workspace pipeline versus the seed-style
//! per-node-allocation path it replaced. Both sides produce
//! bit-identical estimates (asserted by the `hcc-bench` unit tests
//! and the tier-1 perf smoke), so the gap is pure implementation.
//!
//! The master seed honours `HCC_SEED` (default 0) so `scripts/bench.sh`
//! can pin the noise stream and make `BENCH_<n>.json` numbers
//! comparable across PRs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hcc_bench::hotpath::{three_level_dataset, SeedBaseline, HOT_PATH_BOUND};
use hcc_consistency::{node_seeds, top_down_from_estimates, LevelMethod, TopDownConfig};
use hcc_estimators::{CumulativeEstimator, Estimator, EstimatorWorkspace, NodeEstimate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn master_seed() -> u64 {
    std::env::var("HCC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn bench_release_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("release_hot_path");
    g.sample_size(10);

    let (h, data) = three_level_dataset();
    let cfg = TopDownConfig::new(0.25).with_method(LevelMethod::Cumulative {
        bound: HOT_PATH_BOUND,
    });
    let eps_level = cfg.level_epsilon(h.num_levels());
    let mut master = StdRng::seed_from_u64(master_seed());
    let seeds = node_seeds(&h, &mut master);

    let estimate_release = |mut estimate: &mut dyn FnMut(usize) -> NodeEstimate| {
        let estimates: Vec<NodeEstimate> = (0..h.num_nodes()).map(&mut estimate).collect();
        top_down_from_estimates(&h, &cfg, estimates).unwrap()
    };

    let nodes: Vec<_> = h.iter().collect();
    let est = CumulativeEstimator::new(HOT_PATH_BOUND);
    let mut ws = EstimatorWorkspace::new();
    g.bench_function("workspace_pipeline", |b| {
        b.iter(|| {
            let rel = estimate_release(&mut |i| {
                let hist = data.node(nodes[i]);
                let mut rng = StdRng::seed_from_u64(seeds[i]);
                est.estimate_in(hist, hist.num_groups(), eps_level, &mut rng, &mut ws)
            });
            black_box(rel)
        })
    });

    let baseline = SeedBaseline {
        bound: HOT_PATH_BOUND,
    };
    g.bench_function("seed_baseline", |b| {
        b.iter(|| {
            let rel = estimate_release(&mut |i| {
                let hist = data.node(nodes[i]);
                let mut rng = StdRng::seed_from_u64(seeds[i]);
                baseline.estimate(hist, hist.num_groups(), eps_level, &mut rng)
            });
            black_box(rel)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_release_hot_path);
criterion_main!(benches);
