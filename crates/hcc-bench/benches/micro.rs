//! Criterion micro-benchmarks for the performance-critical kernels:
//! the isotonic solvers (both losses), Algorithm 2's run-length
//! matching (against the dense expansion it replaces), EMD, the noise
//! samplers, and the end-to-end top-down release.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hcc_consistency::matching_dense::match_groups_dense_from_runs;
use hcc_consistency::{match_groups, top_down_release, LevelMethod, TopDownConfig};
use hcc_core::{emd, CountOfCounts};
use hcc_data::{housing, HousingConfig};
use hcc_estimators::VarianceRun;
use hcc_isotonic::{
    anchored_cumulative, isotonic_l1, isotonic_l1_weighted, isotonic_l2, project_simplex,
    CumulativeLoss,
};
use hcc_noise::{DiscreteGaussian, DoubleGeometric, GeometricMechanism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn noisy_cumulative(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| (i / 7) as i64 + rng.gen_range(-8..8))
        .collect()
}

fn bench_isotonic(c: &mut Criterion) {
    let mut g = c.benchmark_group("isotonic");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000, 100_000] {
        let y = noisy_cumulative(n, 1);
        let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
        g.bench_with_input(BenchmarkId::new("pav_l2", n), &yf, |b, y| {
            b.iter(|| isotonic_l2(black_box(y)))
        });
        g.bench_with_input(BenchmarkId::new("pav_l1_median", n), &y, |b, y| {
            b.iter(|| isotonic_l1(black_box(y)))
        });
        g.bench_with_input(BenchmarkId::new("anchored_l1", n), &y, |b, y| {
            b.iter(|| anchored_cumulative(black_box(y), (n / 7) as u64, CumulativeLoss::L1))
        });
        let w = vec![1u64; n];
        g.bench_with_input(BenchmarkId::new("pav_l1_weighted_unit", n), &y, |b, y| {
            b.iter(|| isotonic_l1_weighted(black_box(y), &w))
        });
    }
    g.finish();
}

fn bench_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex_projection");
    g.sample_size(20);
    for &n in &[1_000usize, 100_000] {
        let mut rng = StdRng::seed_from_u64(2);
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &y, |b, y| {
            b.iter(|| project_simplex(black_box(y), 500.0))
        });
    }
    g.finish();
}

/// Run-length matching vs the dense-size matching it supersedes: the
/// paper's Algorithm 2 is O(G log G); the run-length variant is
/// O(R log R) in distinct sizes R.
fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    g.sample_size(20);
    for &groups in &[10_000u64, 100_000, 1_000_000] {
        // 200 distinct sizes, 4 children.
        let runs_per_child = 50;
        let mut children: Vec<Vec<VarianceRun>> = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for c_i in 0..4u64 {
            let mut v = Vec::new();
            for r in 0..runs_per_child {
                v.push(VarianceRun {
                    size: 1 + 4 * r + c_i,
                    count: groups / (4 * runs_per_child),
                    variance: 1.0 + rng.gen::<f64>(),
                });
            }
            children.push(v);
        }
        let total: u64 = children.iter().flatten().map(|r| r.count).sum();
        // Parent: same group count, shifted sizes.
        let parent: Vec<VarianceRun> = (0..100)
            .map(|r| VarianceRun {
                size: 2 + 2 * r,
                count: total / 100,
                variance: 0.5,
            })
            .collect();
        let parent_total: u64 = parent.iter().map(|r| r.count).sum();
        assert_eq!(parent_total, total);
        g.bench_with_input(
            BenchmarkId::new("run_length", groups),
            &(parent.clone(), children.clone()),
            |b, (p, cs)| b.iter(|| match_groups(black_box(p), black_box(cs)).unwrap()),
        );
        // The dense O(G log G) reference from the paper, for the
        // run-length-vs-dense ablation (skip the largest size: the
        // expansion alone allocates 8 MB+ per iteration).
        if groups <= 100_000 {
            g.bench_with_input(
                BenchmarkId::new("dense_reference", groups),
                &(parent, children),
                |b, (p, cs)| b.iter(|| match_groups_dense_from_runs(black_box(p), black_box(cs))),
            );
        }
    }
    g.finish();
}

fn bench_emd(c: &mut Criterion) {
    let mut g = c.benchmark_group("emd");
    g.sample_size(30);
    for &n in &[1_000u64, 100_000] {
        let mut rng = StdRng::seed_from_u64(4);
        let a = CountOfCounts::from_group_sizes((0..n).map(|_| rng.gen_range(0..2000)));
        let b_h = CountOfCounts::from_group_sizes((0..n).map(|_| rng.gen_range(0..2000)));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(a, b_h), |b, (x, y)| {
            b.iter(|| emd(black_box(x), black_box(y)))
        });
    }
    g.finish();
}

fn bench_noise(c: &mut Criterion) {
    let mut g = c.benchmark_group("noise");
    let dist = DoubleGeometric::new(0.5, 1.0);
    let mut rng = StdRng::seed_from_u64(5);
    g.bench_function("double_geometric_sample", |b| {
        b.iter(|| dist.sample(black_box(&mut rng)))
    });
    let mech = GeometricMechanism::new(0.5, 1.0);
    let values: Vec<u64> = (0..10_000).collect();
    g.bench_function("privatize_vec_10k", |b| {
        b.iter(|| mech.privatize_vec(black_box(&values), &mut rng))
    });
    let dg = DiscreteGaussian::new(4.0);
    g.bench_function("discrete_gaussian_sample", |b| {
        b.iter(|| dg.sample(black_box(&mut rng)))
    });
    g.finish();
}

/// The PR-5 batched-noise win: filling a bound-length slice through
/// `DoubleGeometric::fill` (all transcendental setup hoisted to
/// construction) versus the per-cell `sample` loop, versus the seed
/// sampler that recomputed `ln α` on every one-sided draw. All three
/// produce the identical noise stream.
fn bench_noise_fill(c: &mut Criterion) {
    use hcc_bench::hotpath::seed_sample_one_sided;

    let mut g = c.benchmark_group("noise_fill");
    g.sample_size(20);
    const N: usize = 50_000;
    let dist = DoubleGeometric::new(0.25, 1.0);
    let mut out = vec![0i64; N];
    let mut rng = StdRng::seed_from_u64(8);
    g.bench_function("fill_50k", |b| {
        b.iter(|| dist.fill(black_box(&mut out), &mut rng))
    });
    g.bench_function("per_cell_sample_50k", |b| {
        b.iter(|| {
            for slot in out.iter_mut() {
                *slot = dist.sample(&mut rng);
            }
            black_box(&mut out);
        })
    });
    let alpha = (-0.25f64).exp();
    g.bench_function("seed_per_draw_ln_50k", |b| {
        b.iter(|| {
            for slot in out.iter_mut() {
                *slot =
                    seed_sample_one_sided(alpha, &mut rng) - seed_sample_one_sided(alpha, &mut rng);
            }
            black_box(&mut out);
        })
    });
    g.finish();
}

/// The PR-5 L1-PAV rewrite: the adaptive workspace solver against the
/// seed per-element-`BinaryHeap` implementation it replaced, on the
/// hot-path shape (noisy cumulative histogram: a rising prefix and a
/// long flat tail). Identical fits, very different constants.
fn bench_isotonic_l1_old_vs_new(c: &mut Criterion) {
    use hcc_isotonic::{isotonic_l1_heap, isotonic_l1_with, PavL1Workspace};

    let mut g = c.benchmark_group("isotonic_l1");
    g.sample_size(20);
    for &n in &[10_000usize, 50_000] {
        // Rising for the first fifth, then a noisy plateau — the
        // truncated-bound shape the Hc estimator feeds the solver.
        let mut rng = StdRng::seed_from_u64(9);
        let y: Vec<i64> = (0..n)
            .map(|i| (i.min(n / 5) / 3) as i64 + rng.gen_range(-12..12))
            .collect();
        g.bench_with_input(BenchmarkId::new("seed_heap", n), &y, |b, y| {
            b.iter(|| isotonic_l1_heap(black_box(y)))
        });
        let mut ws = PavL1Workspace::new();
        g.bench_with_input(BenchmarkId::new("flat_workspace", n), &y, |b, y| {
            b.iter(|| isotonic_l1_with(black_box(y), &mut ws))
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let ds = housing(&HousingConfig {
        scale: 2e-5,
        seed: 6,
        ..Default::default()
    });
    for (name, method) in [
        ("topdown_hc", LevelMethod::Cumulative { bound: 20_000 }),
        ("topdown_hg", LevelMethod::Unattributed),
    ] {
        let cfg = TopDownConfig::new(1.0).with_method(method);
        g.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                top_down_release(
                    black_box(&ds.hierarchy),
                    black_box(&ds.data),
                    &cfg,
                    &mut rng,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

/// Engine throughput: released jobs/sec through the full job API
/// (bounded queue → work-stealing pool → subtree tasks) at 1, 2, 4,
/// and 8 workers, plus the cache-hit fast path.
fn bench_engine(c: &mut Criterion) {
    use std::sync::Arc;

    use hcc_engine::{Engine, EngineConfig, ReleaseRequest};

    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(10);
    let ds = housing(&HousingConfig {
        scale: 2e-5,
        seed: 6,
        ..Default::default()
    });
    let hierarchy = Arc::new(ds.hierarchy);
    let data = Arc::new(ds.data);
    let cfg = TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound: 20_000 });
    let request = |seed: u64| {
        ReleaseRequest::new(Arc::clone(&hierarchy), Arc::clone(&data), cfg.clone(), seed)
    };

    const BATCH: u64 = 8;
    for &workers in &[1usize, 2, 4, 8] {
        // Distinct seeds defeat the cache, so every job computes; one
        // iteration = one BATCH-job release burst, drained to empty.
        let engine = Engine::start(
            EngineConfig::default()
                .with_workers(workers)
                .with_cache_capacity(0),
        );
        let mut round = 0u64;
        g.bench_with_input(
            BenchmarkId::new("jobs_batch8", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    round += 1;
                    let ids: Vec<_> = (0..BATCH)
                        .map(|i| engine.submit(request(round * BATCH + i)).unwrap())
                        .collect();
                    for id in ids {
                        black_box(engine.wait(id).unwrap());
                    }
                })
            },
        );
    }

    // Repeat request: after the first computation every submission is
    // a fingerprint lookup.
    let engine = Engine::start(EngineConfig::default().with_workers(2));
    let id = engine.submit(request(0)).unwrap();
    engine.wait(id).unwrap();
    g.bench_function("cache_hit", |b| {
        b.iter(|| {
            let id = engine.submit(request(0)).unwrap();
            black_box(engine.wait(id).unwrap())
        })
    });
    g.finish();
}

/// The prepared-dataset amortization win: an 8-point ε sweep over one
/// prepared handle versus 8 cold inline submits of the same dataset,
/// both through the real TCP server. Every inline submit ships and
/// re-parses the CSV tables and re-aggregates the per-node true
/// views; the prepared sweep pays that load exactly once (at setup)
/// and each point costs only the release itself. The result cache is
/// disabled so all 8 points *compute* in both variants — the measured
/// gap is purely the amortized load, which must put the sweep at well
/// under half the cold wall-time.
fn bench_engine_sweep(c: &mut Criterion) {
    use std::sync::Arc;

    use hcc_data::{Dataset, DatasetKind};
    use hcc_engine::{protocol::SubmitParams, serve, Client, Engine, EngineConfig};

    let mut g = c.benchmark_group("engine_sweep");
    g.sample_size(10);

    // A dataset big enough that table load dominates one release: a
    // couple hundred thousand entity rows against a tiny bound K.
    let ds = Dataset::generate(DatasetKind::Housing, 1.0, 6);
    let (hierarchy_csv, groups_csv, entities_csv) = ds.to_csv_tables();
    const EPS: [f64; 8] = [0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0];
    let base = SubmitParams {
        epsilon: 1.0,
        method: "hc".into(),
        bound: 500,
        seed: 0,
        handle: None,
    };

    let engine = Engine::start(
        EngineConfig::default()
            .with_workers(2)
            .with_cache_capacity(0),
    );
    let server = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let handle = client
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();

    // Distinct seeds per iteration keep requests unique even if a
    // cache were enabled.
    let mut round = 0u64;
    g.bench_function("prepared_sweep8", |b| {
        b.iter(|| {
            round += 1;
            let params = SubmitParams {
                seed: round,
                ..base.clone()
            };
            client
                .sweep(&params, handle, &EPS, |_, result| {
                    black_box(result.unwrap());
                })
                .unwrap();
        })
    });
    // The cold variant gets the same submit-all-then-wait pipelining
    // as the sweep, so the measured gap isolates the amortized table
    // load rather than conflating it with batch parallelism.
    g.bench_function("cold_inline_submits8", |b| {
        b.iter(|| {
            round += 1;
            let ids: Vec<_> = EPS
                .iter()
                .map(|&epsilon| {
                    let params = SubmitParams {
                        epsilon,
                        seed: round,
                        ..base.clone()
                    };
                    client
                        .submit(&params, &hierarchy_csv, &groups_csv, &entities_csv)
                        .unwrap()
                        .unwrap()
                })
                .collect();
            for id in ids {
                black_box(client.wait(id).unwrap().unwrap());
            }
        })
    });
    g.finish();
}

/// The delta-derivation win: moving a prepared dataset forward by a
/// 1%-of-groups delta with `DERIVE` versus a cold `PREPARE` of the
/// post-delta tables, both through the real TCP server. The cold path
/// re-ships and re-parses every table row and re-aggregates the whole
/// hierarchy; `DERIVE` ships only the delta CSV and re-aggregates
/// only the touched root-to-leaf paths, so it must come in at ≥5×
/// faster (in practice far more — no entity row ever crosses the
/// wire).
fn bench_engine_derive(c: &mut Criterion) {
    use std::sync::Arc;

    use hcc_data::{Dataset, DatasetDelta, DatasetKind};
    use hcc_engine::{serve, Client, Engine, EngineConfig};

    let mut g = c.benchmark_group("engine_derive");
    g.sample_size(10);

    let ds = Dataset::generate(DatasetKind::Housing, 1.0, 6);
    let (hierarchy_csv, groups_csv, entities_csv) = ds.to_csv_tables();

    // A delta touching ~1% of all groups (shared builder with the
    // tier-1 derive-vs-prepare perf smoke).
    let delta = DatasetDelta::resize_sample(&ds, 100);
    let post = ds.apply_delta(&delta).unwrap();
    let (post_hierarchy_csv, post_groups_csv, post_entities_csv) = post.to_csv_tables();

    let engine = Engine::start(EngineConfig::default().with_workers(2));
    let server = serve(Arc::new(engine), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let parent = client
        .prepare(&hierarchy_csv, &groups_csv, &entities_csv)
        .unwrap()
        .unwrap();

    g.bench_function("derive_1pct", |b| {
        b.iter(|| black_box(client.derive(parent, &delta).unwrap().unwrap()))
    });
    g.bench_function("cold_prepare_post_delta", |b| {
        b.iter(|| {
            black_box(
                client
                    .prepare(&post_hierarchy_csv, &post_groups_csv, &post_entities_csv)
                    .unwrap()
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_isotonic,
    bench_isotonic_l1_old_vs_new,
    bench_simplex,
    bench_matching,
    bench_emd,
    bench_noise,
    bench_noise_fill,
    bench_end_to_end,
    bench_engine,
    bench_engine_sweep,
    bench_engine_derive
);
criterion_main!(benches);
