//! The frozen **seed-style estimation path** and the shared fixtures
//! for the `release_hot_path` benchmark and its tier-1 perf smoke.
//!
//! PR 5 rebuilt the per-node `Hc` pipeline around reusable
//! [`hcc_estimators::EstimatorWorkspace`] buffers. To keep the win measurable (and
//! honest) across future PRs, this module preserves the pre-workspace
//! pipeline exactly as the seed wrote it: fresh dense vectors per
//! node, per-element `BinaryHeap` pairs in the L1 PAV
//! ([`hcc_isotonic::isotonic_l1_heap`]), and per-draw `ln α`
//! recomputation in the noise sampler. [`SeedBaseline::estimate`]
//! produces **bit-identical** [`NodeEstimate`]s to the optimized
//! path — same RNG draw order, same arithmetic — so baseline-vs-new
//! comparisons time the implementation, not different work.

use hcc_consistency::HierarchicalCounts;
use hcc_core::{CountOfCounts, Cumulative};
use hcc_estimators::{NodeEstimate, VarianceRun};
use hcc_hierarchy::{Hierarchy, HierarchyBuilder};
use hcc_isotonic::isotonic_l1_heap;
use rand::Rng;

/// The benchmark's public size bound: the ISSUE-5 workload pins the
/// hot-path comparison at a 3-level, `bound = 50 000` release.
pub const HOT_PATH_BOUND: u64 = 50_000;

/// A deterministic 3-level hierarchy (root → 2 states → 2 counties
/// each) whose leaves mix small-group mass with sizes well below the
/// truncation bound — the shape that makes the `Hc` cumulative view
/// long and mostly flat, exactly where the seed path allocated and
/// pooled hardest.
pub fn three_level_dataset() -> (Hierarchy, HierarchicalCounts) {
    let mut b = HierarchyBuilder::new("nation");
    let mut leaves = Vec::new();
    for s in 0..2 {
        let state = b.add_child(Hierarchy::ROOT, format!("s{s}"));
        for c in 0..2 {
            leaves.push(b.add_child(state, format!("s{s}c{c}")));
        }
    }
    let h = b.build();
    let data = HierarchicalCounts::from_leaves(
        &h,
        leaves
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                let i = i as u64;
                (
                    l,
                    CountOfCounts::from_group_sizes(
                        (0..400u64).map(move |k| (k * (i + 3) * 13) % 2_000),
                    ),
                )
            })
            .collect(),
    )
    .expect("fixture leaves cover the hierarchy");
    (h, data)
}

/// The pre-PR5 `Hc` estimator, reproduced operation for operation.
#[derive(Clone, Copy, Debug)]
pub struct SeedBaseline {
    /// Public upper bound `K` on group size.
    pub bound: u64,
}

impl SeedBaseline {
    /// One node's estimate via the seed pipeline: allocating
    /// truncate + cumulative clone, per-draw `ln α` noise, heap PAV,
    /// allocating clamp/round, and histogram reconstruction.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        hist: &CountOfCounts,
        g: u64,
        epsilon: f64,
        rng: &mut R,
    ) -> NodeEstimate {
        let cum: Cumulative = hist.truncated(self.bound).to_cumulative(self.bound);
        // Like the seed `DoubleGeometric`: α computed once per
        // mechanism (per node), `ln α` recomputed on every draw.
        let alpha = (-epsilon).exp();
        let noisy: Vec<i64> = cum
            .as_slice()
            .iter()
            .map(|&v| {
                let v = i64::try_from(v).expect("count exceeds i64::MAX");
                v.saturating_add(
                    seed_sample_one_sided(alpha, rng) - seed_sample_one_sided(alpha, rng),
                )
            })
            .collect();
        let fitted = seed_anchored_l1(&noisy, g);
        let est = Cumulative::from_vec(fitted)
            .expect("anchored fit is a valid cumulative vector")
            .to_hist();
        let runs: Vec<VarianceRun> = est
            .to_unattributed()
            .runs()
            .iter()
            .map(|r| VarianceRun {
                size: r.size,
                count: r.count,
                variance: 4.0 / (epsilon * epsilon * r.count as f64),
            })
            .collect();
        NodeEstimate::from_variance_runs(runs)
    }
}

/// The seed one-sided geometric draw, including its defining waste:
/// `ln α` recomputed on **every** draw (the modern sampler hoists it
/// into construction). Bit-identical outputs — the transcendental
/// produces the same value, just repeatedly.
pub fn seed_sample_one_sided<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> i64 {
    if alpha == 0.0 {
        return 0;
    }
    let u: f64 = 1.0 - rng.gen::<f64>();
    let g = (u.ln() / alpha.ln()).floor();
    if g.is_finite() && g < i64::MAX as f64 {
        g.max(0.0) as i64
    } else {
        i64::MAX
    }
}

/// The seed anchored post-processing: heap-PAV the prefix, build a
/// fresh clamped fit, push cells one by one.
fn seed_anchored_l1(noisy: &[i64], g: u64) -> Vec<u64> {
    let prefix = &noisy[..noisy.len() - 1];
    let clamped = isotonic_l1_heap(prefix).clamped(0.0, g as f64);
    let mut out: Vec<u64> = Vec::with_capacity(noisy.len());
    for b in clamped.blocks() {
        let v = b.value.round().max(0.0).min(g as f64) as u64;
        for _ in 0..b.len {
            out.push(v);
        }
    }
    out.push(g);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_estimators::{CumulativeEstimator, Estimator, EstimatorWorkspace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The baseline must track the optimized estimator bit for bit —
    /// otherwise the benchmark compares different computations.
    #[test]
    fn seed_baseline_matches_workspace_estimator() {
        let (h, data) = three_level_dataset();
        let mut ws = EstimatorWorkspace::new();
        let bound = 4_000; // smaller bound: this is a correctness test
        for (i, node) in h.iter().enumerate() {
            let hist = data.node(node);
            let g = hist.num_groups();
            let mut a = StdRng::seed_from_u64(50 + i as u64);
            let mut b = StdRng::seed_from_u64(50 + i as u64);
            let old = SeedBaseline { bound }.estimate(hist, g, 0.5, &mut a);
            let new = CumulativeEstimator::new(bound).estimate_in(hist, g, 0.5, &mut b, &mut ws);
            assert_eq!(old, new, "node {node}");
        }
    }
}
