//! Regenerates the paper's naive table experiment. See crate docs for
//! the HCC_* environment overrides.

#![forbid(unsafe_code)]

fn main() {
    let cfg = hcc_bench::ExpConfig::from_env();
    print!("{}", hcc_bench::experiments::naive_table::run(&cfg));
    eprintln!("CSV written under {}", cfg.out_dir.display());
}
