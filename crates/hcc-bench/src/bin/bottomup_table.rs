//! Regenerates the paper's bottomup table experiment. See crate docs for
//! the HCC_* environment overrides.

#![forbid(unsafe_code)]

fn main() {
    let cfg = hcc_bench::ExpConfig::from_env();
    print!("{}", hcc_bench::experiments::bottomup_table::run(&cfg));
    eprintln!("CSV written under {}", cfg.out_dir.display());
}
