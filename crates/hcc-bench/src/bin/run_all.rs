//! Regenerates every table and figure of the paper's evaluation and
//! writes a combined report plus per-experiment CSV files.

#![forbid(unsafe_code)]

fn main() {
    let cfg = hcc_bench::ExpConfig::from_env();
    let report = hcc_bench::experiments::run_all(&cfg);
    print!("{report}");
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = cfg.out_dir.join("report.txt");
    std::fs::write(&path, &report).expect("write report");
    eprintln!("full report at {}", path.display());
}
