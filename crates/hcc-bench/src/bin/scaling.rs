//! Emits the engine scaling curve — 8-job batch wall time at
//! 1/2/4/8 workers — in the `<label> <ns> ns/iter` format
//! `scripts/bench.sh` parses into BENCH_N.json.
//!
//! Knobs (environment):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `HCC_SCALING_SCALE` | housing dataset scale | `2e-5` |
//! | `HCC_SCALING_BOUND` | public size bound `K` | `20000` |
//! | `HCC_SCALING_REPS` | timed bursts per point (best-of) | `2` |
//! | `HCC_SCALING_WORKERS` | comma-separated worker counts | `1,2,4,8` |
//! | `HCC_SCALING_METRICS` | file to write per-point telemetry JSON to | unset |
//!
//! With `HCC_SCALING_METRICS=<path>` set, each point's end-of-run
//! engine telemetry snapshot (stage-level latency quantiles, steal
//! and gate-wait counters) is written to `<path>` as one JSON object
//! keyed by worker count — `scripts/bench.sh` embeds it into
//! BENCH_N.json so scaling regressions come with attribution.

#![forbid(unsafe_code)]

use hcc_bench::scaling::ScalingWorkload;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale: f64 = env_or("HCC_SCALING_SCALE", 2e-5);
    let bound: u64 = env_or("HCC_SCALING_BOUND", 20_000);
    let reps: usize = env_or("HCC_SCALING_REPS", 2);
    let workers: Vec<usize> = std::env::var("HCC_SCALING_WORKERS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();

    let mut workload = ScalingWorkload::census(scale, bound);
    let points = workload.curve_detailed(&workers, reps);
    for (w, dt, _) in &points {
        println!("engine_scaling/jobs_batch8/{w} {} ns/iter", dt.as_nanos());
    }
    if let Ok(path) = std::env::var("HCC_SCALING_METRICS") {
        let body: Vec<String> = points
            .iter()
            .map(|(w, _, telemetry)| format!("\"{w}\":{telemetry}"))
            .collect();
        let doc = format!("{{{}}}\n", body.join(","));
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
}
