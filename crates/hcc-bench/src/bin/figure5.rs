//! Regenerates the paper's figure5 experiment. See crate docs for
//! the HCC_* environment overrides.

#![forbid(unsafe_code)]

fn main() {
    let cfg = hcc_bench::ExpConfig::from_env();
    print!("{}", hcc_bench::experiments::figure5::run(&cfg));
    eprintln!("CSV written under {}", cfg.out_dir.display());
}
