//! Regenerates the adaptive-method-selection extension experiment.

#![forbid(unsafe_code)]

fn main() {
    let cfg = hcc_bench::ExpConfig::from_env();
    print!("{}", hcc_bench::experiments::adaptive_exp::run(&cfg));
    eprintln!("CSV written under {}", cfg.out_dir.display());
}
