//! Regenerates the adaptive-method-selection extension experiment.

fn main() {
    let cfg = hcc_bench::ExpConfig::from_env();
    print!("{}", hcc_bench::experiments::adaptive_exp::run(&cfg));
    eprintln!("CSV written under {}", cfg.out_dir.display());
}
