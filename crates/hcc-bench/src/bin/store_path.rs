//! Emits the durable-store scoreboard — the cost of making state
//! survive a crash — in the `<label> <ns> ns/iter` format
//! `scripts/bench.sh` parses into BENCH_N.json.
//!
//! Labels:
//!
//! * `store_path/cold_prepare` — per-dataset cost of persisting a
//!   fresh dataset record (WAL append + fsync) into an empty store;
//! * `store_path/warm_reload` — full `Store::open` on the populated
//!   files (snapshot decode + WAL replay), i.e. what `hcc serve
//!   --store` pays at boot before handles are warm;
//! * `store_path/wal_append` — per-charge cost of the budget ledger's
//!   durability (one WAL record + fsync), the per-release overhead a
//!   capped server adds to every submission.
//!
//! Knobs (environment):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `HCC_STORE_DATASETS` | datasets persisted | `8` |
//! | `HCC_STORE_NODES` | hierarchy nodes per dataset | `200` |
//! | `HCC_STORE_CHARGES` | ledger charges timed | `64` |
//! | `HCC_STORE_RELOADS` | warm reopens timed | `8` |

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Instant;

use hcc_store::{DatasetRecord, Store};

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A census-shaped record: `nodes` regions, each with a short
/// run-length histogram, sized like a PREPAREd mid-scale dataset.
fn synth_record(handle: u128, nodes: usize) -> DatasetRecord {
    let mut names = Vec::with_capacity(nodes);
    let mut parents = Vec::with_capacity(nodes);
    let mut histograms = Vec::with_capacity(nodes);
    for i in 0..nodes {
        names.push(format!("region-{i:06}"));
        parents.push(if i == 0 { u64::MAX } else { (i as u64 - 1) / 4 });
        let base = (i as u64 % 7) + 1;
        histograms.push(vec![(base, 40), (base + 2, 11), (base + 9, 3)]);
    }
    DatasetRecord {
        handle,
        names,
        parents,
        histograms,
        refs: 1,
    }
}

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hcc-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir
}

fn main() {
    let datasets: usize = env_or("HCC_STORE_DATASETS", 8);
    let nodes: usize = env_or("HCC_STORE_NODES", 200);
    let charges: usize = env_or("HCC_STORE_CHARGES", 64);
    let reloads: usize = env_or("HCC_STORE_RELOADS", 8);

    let dir = scratch();
    let path = dir.join("bench.hcc");

    // Cold prepare: first-ever persistence of each dataset.
    let mut store = Store::open(&path).expect("open fresh store");
    let start = Instant::now();
    for i in 0..datasets {
        store
            .put_dataset(&synth_record(0xBEEF_0000 + i as u128, nodes))
            .expect("persist dataset");
    }
    let cold = start.elapsed() / datasets.max(1) as u32;
    println!("store_path/cold_prepare {} ns/iter", cold.as_nanos());

    // Ledger durability: one WAL record + fsync per charge.
    let start = Instant::now();
    for i in 0..charges {
        store
            .charge(0xBEEF_0000, 0.001 * (i + 1) as f64)
            .expect("charge budget");
    }
    let append = start.elapsed() / charges.max(1) as u32;
    println!("store_path/wal_append {} ns/iter", append.as_nanos());

    // Fold half the state into the snapshot so the reload exercises
    // both the page decode and the WAL replay path.
    store.checkpoint().expect("checkpoint");
    for i in 0..charges {
        store
            .charge(0xBEEF_0001, 0.001 * (i + 1) as f64)
            .expect("post-checkpoint charge");
    }
    drop(store);

    // Warm reload: what `hcc serve --store` pays at boot.
    let start = Instant::now();
    for _ in 0..reloads {
        let reopened = Store::open(&path).expect("warm reopen");
        assert_eq!(reopened.datasets().len(), datasets);
    }
    let reload = start.elapsed() / reloads.max(1) as u32;
    println!("store_path/warm_reload {} ns/iter", reload.as_nanos());

    eprintln!(
        "# store_path: {datasets} datasets x {nodes} nodes, {charges} charges, \
         {reloads} reloads (cold {cold:?}/dataset, append {append:?}/charge, \
         reload {reload:?}/open)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
