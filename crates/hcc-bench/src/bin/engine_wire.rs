//! Emits the wire-path scoreboard — pipelined-sweep wall time on both
//! protocols plus framed submit-latency quantiles under concurrency —
//! in the `<label> <ns> ns/iter` format `scripts/bench.sh` parses
//! into BENCH_N.json.
//!
//! Labels:
//!
//! * `wire_path/sweep<N>/blocking` — N-point ε sweep, legacy line
//!   protocol against the blocking server;
//! * `wire_path/sweep<N>/framed` — the same sweep pipelined over the
//!   framed protocol against the reactor (the acceptance ratio is
//!   `blocking / framed`);
//! * `wire_path/submit_{p50,p95,p99}/c<C>` — per-submit latency
//!   quantiles at `C` concurrent framed connections;
//! * `wire_path/submit_per_op/c<C>` — burst wall time / submits (the
//!   inverse of submits/sec) at `C` connections.
//!
//! Knobs (environment):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `HCC_WIRE_SCALE` | housing dataset scale | `2e-6` |
//! | `HCC_WIRE_BOUND` | public size bound `K` | `500` |
//! | `HCC_WIRE_SWEEP` | sweep grid points | `100` |
//! | `HCC_WIRE_CONNS` | comma-separated connection counts | `1,64,1000` |
//! | `HCC_WIRE_OPS` | submits per connection | `4` |

#![forbid(unsafe_code)]

use hcc_bench::wire::WireWorkload;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale: f64 = env_or("HCC_WIRE_SCALE", 2e-6);
    let bound: u64 = env_or("HCC_WIRE_BOUND", 500);
    let sweep: usize = env_or("HCC_WIRE_SWEEP", 100);
    let ops: usize = env_or("HCC_WIRE_OPS", 4);
    let conns: Vec<usize> = std::env::var("HCC_WIRE_CONNS")
        .unwrap_or_else(|_| "1,64,1000".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();

    let workload = WireWorkload::census(scale, bound);

    let blocking = workload.sweep_blocking(sweep);
    let framed = workload.sweep_framed(sweep);
    println!(
        "wire_path/sweep{sweep}/blocking {} ns/iter",
        blocking.as_nanos()
    );
    println!(
        "wire_path/sweep{sweep}/framed {} ns/iter",
        framed.as_nanos()
    );
    eprintln!(
        "# sweep{sweep} speedup: {:.2}x (blocking {blocking:?} / framed {framed:?})",
        blocking.as_secs_f64() / framed.as_secs_f64().max(f64::EPSILON)
    );

    for &c in &conns {
        let profile = workload.submit_profile(c, ops);
        for (name, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            println!(
                "wire_path/submit_{name}/c{c} {} ns/iter",
                profile.quantile(q).as_nanos()
            );
        }
        println!(
            "wire_path/submit_per_op/c{c} {} ns/iter",
            profile.per_op().as_nanos()
        );
        eprintln!(
            "# c{c}: {} submits in {:?} ({:.0} submits/sec)",
            profile.ops,
            profile.wall,
            profile.ops as f64 / profile.wall.as_secs_f64().max(f64::EPSILON)
        );
    }
}
