//! Regenerates the L1-vs-L2 Hc post-processing ablation. See crate
//! docs for the HCC_* environment overrides.

#![forbid(unsafe_code)]

fn main() {
    let cfg = hcc_bench::ExpConfig::from_env();
    print!("{}", hcc_bench::experiments::ablation::run(&cfg));
    eprintln!("CSV written under {}", cfg.out_dir.display());
}
