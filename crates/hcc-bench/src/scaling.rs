//! The engine scaling-curve harness: batch-release wall time as a
//! function of engine worker count.
//!
//! The paper's census deployment is many *independent* releases over
//! shared prepared data, so the serving-scale scoreboard is the wall
//! time of an 8-job batch at 1/2/4/8 engine workers. One harness
//! feeds three consumers that must agree on the workload:
//!
//! * the `scaling` binary, which `scripts/bench.sh` runs to emit the
//!   `engine_scaling/jobs_batch8/<workers>` curve into BENCH_N.json;
//! * the tier-1 smoke (`tests/scaling_smoke.rs`), which asserts the
//!   work-stealing scheduler actually scales (≥1.5× at 4 workers on
//!   a ≥4-core host) and never *regresses* with extra workers;
//! * ad-hoc profiling (`cargo run --release -p hcc-bench --bin
//!   scaling`) while tuning the scheduler.
//!
//! Wall-clock methodology follows DDIA's scalability framing: hold
//! the load constant (the batch), vary the resource (workers), and
//! report the response-time curve; best-of-`reps` per point removes
//! scheduler warm-up and one-off page faults, not variance you should
//! know about.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hcc_consistency::{HierarchicalCounts, LevelMethod, TopDownConfig};
use hcc_data::{housing, HousingConfig};
use hcc_engine::{Engine, EngineConfig, ReleaseRequest};
use hcc_hierarchy::Hierarchy;

/// Jobs per timed burst. Eight independent jobs keep every worker
/// count in `{1, 2, 4, 8}` saturated without letting the queue (and
/// hence queueing *policy*) dominate the measurement.
pub const BATCH: u64 = 8;

/// A reusable batch-release workload over one census-style dataset.
///
/// Seeds advance monotonically across bursts so no request ever
/// repeats — the measured path is always the full release, never the
/// result cache.
pub struct ScalingWorkload {
    hierarchy: Arc<Hierarchy>,
    data: Arc<HierarchicalCounts>,
    cfg: TopDownConfig,
    round: u64,
}

impl ScalingWorkload {
    /// The benchmark workload: the housing dataset at `scale` with the
    /// `Hc` estimator under public bound `K = bound` — the same shape
    /// as the `engine_throughput/jobs_batch8` criterion bench, so the
    /// curve is comparable across BENCH_N.json generations.
    pub fn census(scale: f64, bound: u64) -> Self {
        let ds = housing(&HousingConfig {
            scale,
            seed: 6,
            ..Default::default()
        });
        Self {
            hierarchy: Arc::new(ds.hierarchy),
            data: Arc::new(ds.data),
            cfg: TopDownConfig::new(1.0).with_method(LevelMethod::Cumulative { bound }),
            round: 0,
        }
    }

    /// A release request for `seed` over the workload's dataset.
    pub fn request(&self, seed: u64) -> ReleaseRequest {
        ReleaseRequest::new(
            Arc::clone(&self.hierarchy),
            Arc::clone(&self.data),
            self.cfg.clone(),
            seed,
        )
    }

    /// Submits one [`BATCH`]-job burst of fresh seeds and blocks until
    /// every job finishes, returning the burst's wall time.
    pub fn time_batch(&mut self, engine: &Engine) -> Duration {
        self.round += 1;
        let start = Instant::now();
        let ids: Vec<_> = (0..BATCH)
            .map(|i| {
                engine
                    .submit(self.request(self.round * BATCH + i))
                    .expect("scaling burst fits the default queue")
            })
            .collect();
        for id in ids {
            engine.wait(id).expect("scaling job completes");
        }
        start.elapsed()
    }

    /// Best-of-`reps` burst wall time at each worker count, each point
    /// on a freshly booted engine with the result cache disabled.
    pub fn curve(&mut self, workers: &[usize], reps: usize) -> Vec<(usize, Duration)> {
        self.curve_detailed(workers, reps)
            .into_iter()
            .map(|(w, dt, _)| (w, dt))
            .collect()
    }

    /// Like [`ScalingWorkload::curve`], but also returns each point's
    /// end-of-run telemetry snapshot as a compact JSON blob
    /// ([`hcc_engine::TelemetrySnapshot::to_json`]) covering the
    /// warm-up and all timed bursts — stage-level latency attribution
    /// for the scaling scoreboard, at zero extra measurement cost.
    pub fn curve_detailed(
        &mut self,
        workers: &[usize],
        reps: usize,
    ) -> Vec<(usize, Duration, String)> {
        workers
            .iter()
            .map(|&w| {
                let engine = Engine::start(
                    EngineConfig::default()
                        .with_workers(w)
                        .with_cache_capacity(0),
                );
                // Untimed warm-up burst: first-touch page faults and
                // workspace growth belong to no worker count.
                self.time_batch(&engine);
                let best = (0..reps.max(1))
                    .map(|_| self.time_batch(&engine))
                    .min()
                    .expect("reps >= 1");
                (w, best, engine.telemetry().to_json())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_never_repeat_a_seed() {
        let mut w = ScalingWorkload::census(2e-6, 200);
        let engine = Engine::start(EngineConfig::default().with_workers(2));
        w.time_batch(&engine);
        w.time_batch(&engine);
        let stats = engine.stats();
        assert_eq!(stats.submitted, 2 * BATCH);
        assert_eq!(stats.cache_hits, 0, "fresh seeds must never hit the cache");
    }

    #[test]
    fn curve_reports_every_requested_worker_count() {
        let mut w = ScalingWorkload::census(2e-6, 200);
        let curve = w.curve(&[1, 2], 1);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].0, 1);
        assert_eq!(curve[1].0, 2);
        assert!(curve.iter().all(|&(_, dt)| dt > Duration::ZERO));
    }
}
