//! The wire-path harness: framed-reactor vs. blocking-line-protocol
//! serving cost over real loopback TCP.
//!
//! Two scoreboard shapes feed `scripts/bench.sh` (via the
//! `engine_wire` binary):
//!
//! * **Pipelined sweep** — wall time of an N-point ε sweep on one
//!   connection, legacy line protocol against the blocking server vs.
//!   the framed protocol against the reactor. The legacy wire pays
//!   two blocking round trips per point (`SUBMIT` ack, `WAIT` body);
//!   the framed wire writes every request up front and streams the
//!   responses back. An untimed first pass fills the result cache, so
//!   the timed pass serves every point from cache on both wires and
//!   the gap is pure protocol overhead, not estimator time.
//! * **Submit latency under concurrency** — per-request wall-time
//!   quantiles (p50/p95/p99) and sustained cost (total wall / ops,
//!   the inverse of submits/sec) at 1, 64, and 1000 concurrent
//!   framed connections multiplexed onto the single reactor thread.
//!
//! The dataset is deliberately tiny and every thread submits the same
//! request, so after the first computation the engine answers from
//! its result cache and the measurement isolates the wire, not the
//! estimator.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hcc_data::{Dataset, DatasetKind};
use hcc_engine::protocol::SubmitParams;
use hcc_engine::{
    serve_blocking_with, serve_reactor, Client, Engine, EngineConfig, MuxClient, ReactorConfig,
    ServeConfig,
};

/// Timed sweep passes per wire (best-of; the first, untimed pass
/// fills the result cache).
const SWEEP_REPS: usize = 3;

/// A reusable wire-path workload: one tiny census-style dataset plus
/// the base request every benchmarked submit derives from.
pub struct WireWorkload {
    hierarchy_csv: String,
    groups_csv: String,
    entities_csv: String,
    base: SubmitParams,
}

/// One concurrency level's submit-latency measurement.
pub struct SubmitProfile {
    /// Concurrent connections driven.
    pub connections: usize,
    /// Total submits across all connections.
    pub ops: usize,
    /// Per-submit wall times, sorted ascending.
    pub latencies: Vec<Duration>,
    /// Wall time of the whole burst (connect + submits + teardown).
    pub wall: Duration,
}

impl SubmitProfile {
    /// The `q`-quantile (0.0 ≤ q ≤ 1.0) of the sorted latencies by
    /// the nearest-rank method.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank =
            ((self.latencies.len() as f64 * q).ceil() as usize).clamp(1, self.latencies.len());
        self.latencies[rank - 1]
    }

    /// Sustained per-submit cost: total wall time / ops — the inverse
    /// of submits/sec, in the scoreboard's ns/iter unit.
    pub fn per_op(&self) -> Duration {
        if self.ops == 0 {
            return Duration::ZERO;
        }
        self.wall / self.ops as u32
    }
}

impl WireWorkload {
    /// The benchmark workload: the housing dataset at `scale` with
    /// the `hc` estimator under public bound `K = bound`, seed-pinned
    /// so every run computes the same releases.
    pub fn census(scale: f64, bound: u64) -> Self {
        let ds = Dataset::generate(DatasetKind::Housing, scale, 6);
        let (hierarchy_csv, groups_csv, entities_csv) = ds.to_csv_tables();
        Self {
            hierarchy_csv,
            groups_csv,
            entities_csv,
            base: SubmitParams {
                bound,
                ..SubmitParams::default()
            },
        }
    }

    fn engine(&self) -> Arc<Engine> {
        // The cache holds the whole sweep grid so the timed pass is
        // wire-bound on both protocols.
        Arc::new(Engine::start(
            EngineConfig::default()
                .with_workers(2)
                .with_queue_capacity(64)
                .with_cache_capacity(1024),
        ))
    }

    fn grid(points: usize) -> Vec<f64> {
        (1..=points).map(|i| 0.25 + i as f64 / 16.0).collect()
    }

    /// Wall time of a `points`-long ε sweep over the legacy line
    /// protocol against the blocking thread-per-connection server.
    pub fn sweep_blocking(&self, points: usize) -> Duration {
        let server = serve_blocking_with(self.engine(), "127.0.0.1:0", ServeConfig::default())
            .expect("bind blocking server");
        let mut client = Client::connect(server.addr()).expect("connect");
        let handle = client
            .prepare(&self.hierarchy_csv, &self.groups_csv, &self.entities_csv)
            .expect("prepare io")
            .expect("prepare accepted");
        let grid = Self::grid(points);
        // Untimed pass fills the cache; the timed passes are
        // wire-bound and best-of-N removes scheduler noise.
        client
            .sweep(&self.base, handle, &grid, |_, outcome| {
                outcome.expect("warm sweep point succeeds");
            })
            .expect("warm sweep io");
        let best = (0..SWEEP_REPS)
            .map(|_| {
                let start = Instant::now();
                let mut done = 0usize;
                client
                    .sweep(&self.base, handle, &grid, |_, outcome| {
                        outcome.expect("sweep point succeeds");
                        done += 1;
                    })
                    .expect("sweep io");
                let elapsed = start.elapsed();
                assert_eq!(done, points);
                elapsed
            })
            .min()
            .expect("at least one rep");
        let _ = client.quit();
        server.shutdown();
        best
    }

    /// Wall time of the same sweep pipelined over the framed protocol
    /// against the reactor.
    pub fn sweep_framed(&self, points: usize) -> Duration {
        let server = serve_reactor(self.engine(), "127.0.0.1:0", ReactorConfig::default())
            .expect("bind reactor");
        let mut client = MuxClient::connect(server.addr()).expect("connect");
        let handle = client
            .prepare(&self.hierarchy_csv, &self.groups_csv, &self.entities_csv)
            .expect("prepare io")
            .expect("prepare accepted");
        let grid = Self::grid(points);
        // Untimed pass fills the cache; the timed passes are
        // wire-bound and best-of-N removes scheduler noise.
        let warm = client
            .sweep(&self.base, handle, &grid)
            .expect("warm sweep io");
        assert_eq!(warm.len(), points);
        let best = (0..SWEEP_REPS)
            .map(|_| {
                let start = Instant::now();
                let results = client.sweep(&self.base, handle, &grid).expect("sweep io");
                let elapsed = start.elapsed();
                assert_eq!(results.len(), points);
                for point in &results {
                    assert!(point.outcome.is_ok(), "sweep point failed");
                }
                elapsed
            })
            .min()
            .expect("at least one rep");
        let _ = client.quit();
        server.shutdown();
        best
    }

    /// Drives `connections` concurrent framed clients, each issuing
    /// `ops_per_conn` identical submits over one prepared handle, and
    /// returns the pooled per-submit latency profile. The reactor is
    /// sized to accept every connection.
    pub fn submit_profile(&self, connections: usize, ops_per_conn: usize) -> SubmitProfile {
        let server = serve_reactor(
            self.engine(),
            "127.0.0.1:0",
            ReactorConfig::default().with_max_connections(connections + 8),
        )
        .expect("bind reactor");
        let addr = server.addr();
        let mut seed_client = MuxClient::connect(addr).expect("connect");
        let handle = seed_client
            .prepare(&self.hierarchy_csv, &self.groups_csv, &self.entities_csv)
            .expect("prepare io")
            .expect("prepare accepted");
        // Warm the result cache so the measured path is the wire.
        seed_client
            .submit_prepared(&self.base, handle)
            .expect("warm io")
            .expect("warm accepted");

        let base = self.base.clone();
        let start = Instant::now();
        let threads: Vec<_> = (0..connections)
            .map(|_| {
                let base = base.clone();
                std::thread::spawn(move || {
                    let mut client = MuxClient::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(ops_per_conn);
                    for _ in 0..ops_per_conn {
                        let t0 = Instant::now();
                        client
                            .submit_prepared(&base, handle)
                            .expect("submit io")
                            .expect("submit accepted");
                        lat.push(t0.elapsed());
                    }
                    let _ = client.quit();
                    lat
                })
            })
            .collect();
        let mut latencies = Vec::with_capacity(connections * ops_per_conn);
        for t in threads {
            latencies.extend(t.join().expect("wire bench thread"));
        }
        let wall = start.elapsed();
        let _ = seed_client.quit();
        server.shutdown();
        latencies.sort_unstable();
        SubmitProfile {
            connections,
            ops: connections * ops_per_conn,
            latencies,
            wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_run_on_both_wires() {
        let w = WireWorkload::census(2e-6, 200);
        assert!(w.sweep_blocking(3) > Duration::ZERO);
        assert!(w.sweep_framed(3) > Duration::ZERO);
    }

    #[test]
    fn submit_profile_pools_every_op() {
        let w = WireWorkload::census(2e-6, 200);
        let p = w.submit_profile(2, 3);
        assert_eq!(p.ops, 6);
        assert_eq!(p.latencies.len(), 6);
        assert!(p.quantile(0.5) <= p.quantile(0.99));
        assert!(p.per_op() > Duration::ZERO);
    }
}
