//! Figure 1 — where each method's error lives.
//!
//! The paper visualises per-group estimation error against the
//! cumulative group-size position: the `Hg` method's error
//! concentrates on the *small* group sizes, while the `Hc` method's
//! error is spread across the rest of the range. We reproduce the
//! underlying series: for each method, the absolute difference
//! between the estimated and true unattributed histograms, bucketed
//! into percentiles of the group index.

use hcc_data::{housing, HousingConfig};
use hcc_estimators::{CumulativeEstimator, Estimator, UnattributedEstimator};
use hcc_hierarchy::Hierarchy;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ExpConfig;

const BUCKETS: usize = 20;

/// Per-bucket mean absolute error of `Ĥg` vs `Hg`.
fn bucket_errors(truth: &[u64], est: &[u64]) -> Vec<f64> {
    assert_eq!(truth.len(), est.len());
    let n = truth.len();
    let mut sums = [0.0f64; BUCKETS];
    let mut counts = [0u64; BUCKETS];
    for i in 0..n {
        let b = (i * BUCKETS / n).min(BUCKETS - 1);
        sums[b] += truth[i].abs_diff(est[i]) as f64;
        counts[b] += 1;
    }
    sums.iter()
        .zip(counts.iter())
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect()
}

/// Runs the Figure 1 experiment on the housing dataset's root node at
/// ε = 1.
pub fn run(cfg: &ExpConfig) -> String {
    let ds = housing(&HousingConfig {
        scale: 1e-3 * cfg.scale,
        seed: cfg.seed,
        levels: 2,
        ..Default::default()
    });
    let truth = ds.data.node(Hierarchy::ROOT);
    let truth_dense = truth.to_unattributed().to_dense();
    let g = truth.num_groups();
    // The paper's figure is drawn where estimation error is clearly
    // visible; at reduced dataset scale that means a small per-level
    // budget.
    let eps = 0.05;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut avg = |name: &str, f: &dyn Fn(&mut StdRng) -> Vec<u64>| -> Vec<f64> {
        let mut acc = vec![0.0; BUCKETS];
        for _ in 0..cfg.runs {
            let est = f(&mut rng);
            for (a, e) in acc.iter_mut().zip(bucket_errors(&truth_dense, &est)) {
                *a += e;
            }
        }
        acc.iter_mut().for_each(|a| *a /= cfg.runs as f64);
        let _ = name;
        acc
    };

    let hg_est = UnattributedEstimator::new();
    let hg = avg("Hg", &|rng: &mut StdRng| {
        hg_est
            .estimate(truth, g, eps, rng)
            .into_hist()
            .to_unattributed()
            .to_dense()
    });
    let hc_est = CumulativeEstimator::new(cfg.bound);
    let hc = avg("Hc", &|rng: &mut StdRng| {
        hc_est
            .estimate(truth, g, eps, rng)
            .into_hist()
            .to_unattributed()
            .to_dense()
    });

    let rows: Vec<String> = (0..BUCKETS)
        .map(|b| format!("{},{:.3},{:.3}", (b + 1) * 100 / BUCKETS, hg[b], hc[b]))
        .collect();
    cfg.write_csv(
        "figure1.csv",
        "group_index_percentile,hg_abs_err,hc_abs_err",
        &rows,
    );

    // Summary: fraction of each method's total error carried by the
    // smallest 25 % of groups (the paper's qualitative claim is that
    // Hg concentrates there, Hc does not).
    let frac_small = |e: &[f64]| -> f64 {
        let total: f64 = e.iter().sum();
        let small: f64 = e[..BUCKETS / 4].iter().sum();
        if total > 0.0 {
            small / total
        } else {
            0.0
        }
    };
    let mut report = format!(
        "{:<28} {:>10} {:>10}\n",
        "group-index percentile", "Hg |err|", "Hc |err|"
    );
    for b in 0..BUCKETS {
        report.push_str(&format!(
            "{:<28} {:>10.3} {:>10.3}\n",
            format!("≤ {}%", (b + 1) * 100 / BUCKETS),
            hg[b],
            hc[b]
        ));
    }
    report.push_str(&format!(
        "error share in smallest 25% of groups:  Hg {:.1}%   Hc {:.1}%\n",
        100.0 * frac_small(&hg),
        100.0 * frac_small(&hc)
    ));
    report
}
