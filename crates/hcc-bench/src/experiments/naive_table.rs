//! §6.2.1 — ruling out the naive method.
//!
//! Paper (ε = 1, full scale): naive EMD is in the billions —
//! Synthetic 4.46 B, White 4.81 B, Hawaiian 4.03 B, Taxi 0.21 B —
//! several orders of magnitude above the `Hc`/`Hg` methods, because
//! noise lands on every one of the `K` cells and half the spurious
//! mass survives the nonnegativity projection.

use hcc_core::emd;
use hcc_data::{Dataset, DatasetKind};
use hcc_estimators::{CumulativeEstimator, Estimator, NaiveEstimator, UnattributedEstimator};
use hcc_hierarchy::Hierarchy;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::mean_std;
use crate::ExpConfig;

/// Runs the naive method at ε = 1 on every dataset's root node, with
/// the `Hc` and `Hg` methods alongside for the orders-of-magnitude
/// comparison.
pub fn run(cfg: &ExpConfig) -> String {
    let eps = 1.0;
    let mut report = format!(
        "{:<16} {:>16} {:>12} {:>12}   (avg EMD at root, eps=1)\n",
        "dataset", "naive", "Hc", "Hg"
    );
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let ds = Dataset::generate(kind, cfg.scale, cfg.seed);
        let truth = ds.data.node(Hierarchy::ROOT);
        let g = truth.num_groups();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA1);

        let mut errors = |est: &dyn Fn(&mut StdRng) -> hcc_core::CountOfCounts| -> f64 {
            let xs: Vec<f64> = (0..cfg.runs)
                .map(|_| emd(&est(&mut rng), truth) as f64)
                .collect();
            mean_std(&xs).0
        };

        let naive = NaiveEstimator::new(cfg.bound);
        let e_naive = errors(&|rng: &mut StdRng| naive.estimate(truth, g, eps, rng).into_hist());
        let hc = CumulativeEstimator::new(cfg.bound);
        let e_hc = errors(&|rng: &mut StdRng| hc.estimate(truth, g, eps, rng).into_hist());
        let hg = UnattributedEstimator::new();
        let e_hg = errors(&|rng: &mut StdRng| hg.estimate(truth, g, eps, rng).into_hist());

        report.push_str(&format!(
            "{:<16} {:>16.0} {:>12.0} {:>12.0}\n",
            ds.name, e_naive, e_hc, e_hg
        ));
        rows.push(format!(
            "{},{:.1},{:.1},{:.1}",
            ds.name, e_naive, e_hc, e_hg
        ));
    }
    cfg.write_csv("naive_table.csv", "dataset,naive_emd,hc_emd,hg_emd", &rows);
    report.push_str(
        "(paper full-scale naive EMD: synthetic 4.46e9, white 4.81e9, hawaiian 4.03e9, taxi 2.09e8)\n",
    );
    report
}
