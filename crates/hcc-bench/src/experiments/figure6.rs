//! Figure 6 — 3-level consistency (West Coast / State / County for the
//! census-like data; the taxi data keeps its full geography).
//!
//! `Hc×Hc×Hc` vs `Hg×Hg×Hg` vs omniscient over the ε sweep. Expected
//! shape: no method dominates everywhere, but `Hc` is generally the
//! better default — the paper's closing recommendation.

use crate::experiments::bottomup_table::three_level_datasets;
use crate::experiments::figure5::run_with_levels;
use crate::ExpConfig;

/// Runs the 3-level consistency comparison.
pub fn run(cfg: &ExpConfig) -> String {
    run_with_levels(cfg, three_level_datasets(cfg), "figure6.csv")
}
