//! Extension experiment: per-node adaptive method selection.
//!
//! The paper defers per-node `Hc`-vs-`Hg` selection to external tools
//! (footnote 4). Our [`hcc_estimators::AdaptiveEstimator`] spends 5 %
//! of each node's budget on a private sparsity probe. This experiment
//! checks the selector against the two fixed choices across all four
//! datasets: a good selector should track the better fixed method on
//! each dataset (minus the probe's small budget tax).

use hcc_consistency::{top_down_release, LevelMethod, TopDownConfig};
use hcc_data::{Dataset, DatasetKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::{mean_std, per_level_emd};
use crate::ExpConfig;

/// Runs adaptive vs fixed Hc vs fixed Hg on 2-level hierarchies.
pub fn run(cfg: &ExpConfig) -> String {
    let mut report = format!(
        "{:<16} {:>6} {:>5} {:>12} {:>12} {:>12}\n",
        "dataset", "eps/lv", "level", "Hc", "Hg", "adaptive"
    );
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let ds = Dataset::generate(kind, cfg.scale, cfg.seed);
        let levels = ds.hierarchy.num_levels();
        for &eps in &cfg.epsilons {
            let total = eps * levels as f64;
            let methods = [
                LevelMethod::Cumulative { bound: cfg.bound },
                LevelMethod::Unattributed,
                LevelMethod::Adaptive { bound: cfg.bound },
            ];
            let mut acc: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); levels]; 3];
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xAD);
            for _ in 0..cfg.runs {
                for (mi, &m) in methods.iter().enumerate() {
                    let tdc = TopDownConfig::new(total).with_method(m);
                    let rel = top_down_release(&ds.hierarchy, &ds.data, &tdc, &mut rng)
                        .expect("uniform depth");
                    for (l, e) in per_level_emd(&ds.hierarchy, &ds.data, &rel)
                        .into_iter()
                        .enumerate()
                    {
                        acc[mi][l].push(e);
                    }
                }
            }
            #[allow(clippy::needless_range_loop)]
            for l in 0..levels {
                let hc = mean_std(&acc[0][l]).0;
                let hg = mean_std(&acc[1][l]).0;
                let ad = mean_std(&acc[2][l]).0;
                rows.push(format!(
                    "{},{},{},{:.2},{:.2},{:.2}",
                    ds.name, eps, l, hc, hg, ad
                ));
                if ((eps - 0.1).abs() < 1e-12 || (eps - 1.0).abs() < 1e-12) && l == 0 {
                    report.push_str(&format!(
                        "{:<16} {:>6} {:>5} {:>12.1} {:>12.1} {:>12.1}\n",
                        ds.name, eps, l, hc, hg, ad
                    ));
                }
            }
        }
    }
    cfg.write_csv(
        "adaptive.csv",
        "dataset,eps_per_level,level,hc_emd,hg_emd,adaptive_emd",
        &rows,
    );
    report.push_str("(expected: adaptive ≈ the better fixed method per dataset)\n");
    report
}
