//! Figure 4 — weighted-average vs plain-average merging.
//!
//! Two-level hierarchies (National/State); method combinations
//! `Hc×Hc`, `Hc×Hg`, `Hg×Hc` (the paper omits `Hg×Hg` from the plot
//! because plain averaging's error there "would visually skew the
//! results" — we include it in the CSV for completeness); x-axis is
//! the per-level privacy budget. Expected shape: weighted averaging
//! yields large error reductions at the top level and modest ones at
//! the second level, for every budget and combination.

use hcc_consistency::{top_down_release, LevelMethod, MergeStrategy, TopDownConfig};
use hcc_data::{housing, race, Dataset, HousingConfig, RaceConfig, RaceProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::{mean_std, per_level_emd};
use crate::ExpConfig;

/// The 2-level datasets used by the merge comparison.
pub fn two_level_datasets(cfg: &ExpConfig) -> Vec<Dataset> {
    vec![
        housing(&HousingConfig {
            scale: 1e-3 * cfg.scale,
            seed: cfg.seed,
            levels: 2,
            ..Default::default()
        }),
        race(&RaceConfig {
            scale: 0.01 * cfg.scale,
            seed: cfg.seed,
            levels: 2,
            ..RaceConfig::new(RaceProfile::White)
        }),
        race(&RaceConfig {
            scale: 0.01 * cfg.scale,
            seed: cfg.seed,
            levels: 2,
            ..RaceConfig::new(RaceProfile::Hawaiian)
        }),
    ]
}

/// Method combinations plotted by the paper (top level × second
/// level), plus `Hg×Hg` for the CSV.
pub fn combos(bound: u64) -> Vec<(&'static str, Vec<LevelMethod>)> {
    let hc = LevelMethod::Cumulative { bound };
    let hg = LevelMethod::Unattributed;
    vec![
        ("HcxHc", vec![hc, hc]),
        ("HcxHg", vec![hc, hg]),
        ("HgxHc", vec![hg, hc]),
        ("HgxHg", vec![hg, hg]),
    ]
}

/// Runs the merge-strategy comparison.
pub fn run(cfg: &ExpConfig) -> String {
    let mut report = format!(
        "{:<16} {:<7} {:>6} {:>5} {:>14} {:>14} {:>8}\n",
        "dataset", "combo", "eps/lv", "level", "weighted", "plain", "plain/wt"
    );
    let mut rows = Vec::new();
    for ds in two_level_datasets(cfg) {
        for (combo_name, methods) in combos(cfg.bound) {
            for &eps in &cfg.epsilons {
                let total_eps = eps * ds.hierarchy.num_levels() as f64;
                let mut acc: [[Vec<f64>; 2]; 2] = Default::default();
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF4);
                for _ in 0..cfg.runs {
                    for (si, strategy) in
                        [MergeStrategy::WeightedAverage, MergeStrategy::PlainAverage]
                            .into_iter()
                            .enumerate()
                    {
                        let tdc = TopDownConfig::new(total_eps)
                            .with_level_methods(methods.clone())
                            .with_merge(strategy);
                        let rel = top_down_release(&ds.hierarchy, &ds.data, &tdc, &mut rng)
                            .expect("uniform depth");
                        for (l, e) in per_level_emd(&ds.hierarchy, &ds.data, &rel)
                            .into_iter()
                            .enumerate()
                        {
                            acc[si][l].push(e);
                        }
                    }
                }
                #[allow(clippy::needless_range_loop)]
                for l in 0..2 {
                    let (w, _) = mean_std(&acc[0][l]);
                    let (p, _) = mean_std(&acc[1][l]);
                    rows.push(format!(
                        "{},{},{},{},{:.2},{:.2}",
                        ds.name, combo_name, eps, l, w, p
                    ));
                    // Keep the printed table readable: only eps = 0.1
                    // and 1.0 rows (the CSV has the full sweep).
                    if (eps - 0.1).abs() < 1e-12 || (eps - 1.0).abs() < 1e-12 {
                        let ratio = if w > 0.0 { p / w } else { f64::NAN };
                        report.push_str(&format!(
                            "{:<16} {:<7} {:>6} {:>5} {:>14.1} {:>14.1} {:>8.2}\n",
                            ds.name, combo_name, eps, l, w, p, ratio
                        ));
                    }
                }
            }
        }
    }
    cfg.write_csv(
        "figure4.csv",
        "dataset,combo,eps_per_level,level,weighted_emd,plain_emd",
        &rows,
    );
    report.push_str("(expected shape: plain/weighted >> 1 at level 0, ≥ 1 at level 1)\n");
    report
}
