//! §6.1 — the dataset statistics table.
//!
//! Paper (full scale):
//!
//! | Data | # groups | # people/trip | # unique size |
//! |---|---|---|---|
//! | Synthetic | 240,908,081 | 605,304,918 | 2352 |
//! | White | 11,155,486 | 226,378,365 | 1916 |
//! | Hawaiian | 11,155,486 | 540,383 | 224 |
//! | Taxi | 360,872 | 130,962,398 | 3128 |
//!
//! Our generators reproduce the *relative* shape at a configurable
//! scale; this experiment prints the realised statistics so every
//! other experiment's magnitudes can be interpreted.

use hcc_data::{Dataset, DatasetKind};

use crate::ExpConfig;

/// Generates all four datasets and prints their statistics.
pub fn run(cfg: &ExpConfig) -> String {
    let mut report = format!(
        "{:<16} {:>12} {:>14} {:>13} {:>7} {:>7}\n",
        "dataset", "# groups", "# people/trip", "# uniq sizes", "levels", "nodes"
    );
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let ds = Dataset::generate(kind, cfg.scale, cfg.seed);
        let s = ds.stats();
        report.push_str(&format!(
            "{:<16} {:>12} {:>14} {:>13} {:>7} {:>7}\n",
            s.name, s.groups, s.entities, s.unique_sizes, s.levels, s.nodes
        ));
        rows.push(format!(
            "{},{},{},{},{},{}",
            s.name, s.groups, s.entities, s.unique_sizes, s.levels, s.nodes
        ));
    }
    cfg.write_csv(
        "stats_table.csv",
        "dataset,groups,entities,unique_sizes,levels,nodes",
        &rows,
    );
    report.push_str(&format!(
        "(scale multiplier {}; paper full-scale: synthetic 240.9M groups, white 11.2M, hawaiian 11.2M, taxi 360.9K)\n",
        cfg.scale
    ));
    report
}
