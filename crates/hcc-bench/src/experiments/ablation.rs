//! Ablation: L1 vs L2 post-processing for the `Hc` method.
//!
//! Section 4.3 reports that "the L1 version of the problem performs
//! better than the L2 version", consistent with Lin & Kifer's
//! observations on unattributed histograms, and that the L1 solution
//! is almost always integral. This ablation quantifies both claims on
//! all four datasets.

use hcc_core::emd;
use hcc_data::{Dataset, DatasetKind};
use hcc_estimators::{CumulativeEstimator, Estimator};
use hcc_hierarchy::Hierarchy;
use hcc_isotonic::CumulativeLoss;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::mean_std;
use crate::ExpConfig;

/// Runs the L1-vs-L2 comparison at the root node across the ε sweep.
pub fn run(cfg: &ExpConfig) -> String {
    let mut report = format!(
        "{:<16} {:>6} {:>12} {:>12} {:>8}\n",
        "dataset", "eps", "Hc-L1", "Hc-L2", "L2/L1"
    );
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let ds = Dataset::generate(kind, cfg.scale, cfg.seed);
        let truth = ds.data.node(Hierarchy::ROOT);
        let g = truth.num_groups();
        for &eps in &cfg.epsilons {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xAB);
            let avg = |loss: CumulativeLoss, rng: &mut StdRng| -> f64 {
                let est = CumulativeEstimator::with_loss(cfg.bound, loss);
                let xs: Vec<f64> = (0..cfg.runs)
                    .map(|_| emd(est.estimate(truth, g, eps, rng).hist(), truth) as f64)
                    .collect();
                mean_std(&xs).0
            };
            let l1 = avg(CumulativeLoss::L1, &mut rng);
            let l2 = avg(CumulativeLoss::L2, &mut rng);
            rows.push(format!("{},{},{:.2},{:.2}", ds.name, eps, l1, l2));
            if (eps - 0.1).abs() < 1e-12 || (eps - 1.0).abs() < 1e-12 {
                let ratio = if l1 > 0.0 { l2 / l1 } else { f64::NAN };
                report.push_str(&format!(
                    "{:<16} {:>6} {:>12.1} {:>12.1} {:>8.2}\n",
                    ds.name, eps, l1, l2, ratio
                ));
            }
        }
    }
    cfg.write_csv(
        "ablation_l1_vs_l2.csv",
        "dataset,eps,hc_l1_emd,hc_l2_emd",
        &rows,
    );
    report.push_str("(paper: the L1 variant performs better — expect L2/L1 ≥ 1)\n");
    report
}
