//! §6.2.2 — Bottom-Up aggregation vs the consistency algorithm.
//!
//! Paper (ε = 1 total, 3 levels): BU wins slightly at the leaves
//! (level 2) but loses by large factors at level 1 and especially at
//! the root, e.g. White level 0: BU 448,909 vs Hc 17,000.

use hcc_consistency::{bottom_up_release, top_down_release, LevelMethod, TopDownConfig};
use hcc_data::{housing, race, taxi, Dataset, HousingConfig, RaceConfig, RaceProfile, TaxiConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::{mean_std, per_level_emd};
use crate::ExpConfig;

/// Builds the 3-level datasets. `west_coast` restricts the census-like
/// data to CA/OR/WA (used by Figure 6, as in the paper, "for
/// computational reasons"); the BU comparison uses the full national
/// hierarchy because BU's root-level error accumulation — the effect
/// the table demonstrates — grows with the number of leaves.
pub fn datasets(cfg: &ExpConfig, west_coast: bool) -> Vec<Dataset> {
    vec![
        housing(&HousingConfig {
            scale: 1e-3 * cfg.scale,
            seed: cfg.seed,
            west_coast_only: west_coast,
            ..Default::default()
        }),
        race(&RaceConfig {
            scale: 0.01 * cfg.scale,
            seed: cfg.seed,
            west_coast_only: west_coast,
            ..RaceConfig::new(RaceProfile::White)
        }),
        race(&RaceConfig {
            scale: 0.01 * cfg.scale,
            seed: cfg.seed,
            west_coast_only: west_coast,
            ..RaceConfig::new(RaceProfile::Hawaiian)
        }),
        // The taxi generator is cheap (28 leaves), so it runs at 5×
        // the relative scale of the census data: the BU-vs-top-down
        // contrast at the root is driven by per-leaf bias accumulation
        // and only emerges once leaves hold thousands of groups (the
        // paper's leaves hold ~12 900).
        taxi(&TaxiConfig {
            scale: (0.5 * cfg.scale).min(1.0),
            seed: cfg.seed,
            ..Default::default()
        }),
    ]
}

/// The west-coast 3-level datasets used by Figure 6.
pub fn three_level_datasets(cfg: &ExpConfig) -> Vec<Dataset> {
    datasets(cfg, true)
}

/// Compares BU against top-down `Hc` consistency at total ε = 1.
pub fn run(cfg: &ExpConfig) -> String {
    let eps_total = 1.0;
    let method = LevelMethod::Cumulative { bound: cfg.bound };
    let mut report = format!(
        "{:<20} {:>7} {:>14} {:>14} {:>9}\n",
        "dataset", "level", "BottomUp", "Hc-consist", "BU/Hc"
    );
    let mut rows = Vec::new();
    for ds in datasets(cfg, false) {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xB0);
        let levels = ds.hierarchy.num_levels();
        let mut bu_acc = vec![Vec::new(); levels];
        let mut td_acc = vec![Vec::new(); levels];
        for _ in 0..cfg.runs {
            let bu = bottom_up_release(&ds.hierarchy, &ds.data, method, eps_total, &mut rng)
                .expect("uniform-depth hierarchy");
            for (l, e) in per_level_emd(&ds.hierarchy, &ds.data, &bu)
                .into_iter()
                .enumerate()
            {
                bu_acc[l].push(e);
            }
            let tdc = TopDownConfig::new(eps_total).with_method(method);
            let td = top_down_release(&ds.hierarchy, &ds.data, &tdc, &mut rng)
                .expect("uniform-depth hierarchy");
            for (l, e) in per_level_emd(&ds.hierarchy, &ds.data, &td)
                .into_iter()
                .enumerate()
            {
                td_acc[l].push(e);
            }
        }
        for l in 0..levels {
            let (bu_m, _) = mean_std(&bu_acc[l]);
            let (td_m, _) = mean_std(&td_acc[l]);
            let ratio = if td_m > 0.0 { bu_m / td_m } else { f64::NAN };
            report.push_str(&format!(
                "{:<20} {:>7} {:>14.1} {:>14.1} {:>9.2}\n",
                ds.name, l, bu_m, td_m, ratio
            ));
            rows.push(format!("{},{},{:.2},{:.2}", ds.name, l, bu_m, td_m));
        }
    }
    cfg.write_csv(
        "bottomup_table.csv",
        "dataset,level,bottom_up_emd,hc_consistency_emd",
        &rows,
    );
    report.push_str("(expected shape: BU/Hc >> 1 at level 0-1, < 1 at the leaf level)\n");
    report
}
