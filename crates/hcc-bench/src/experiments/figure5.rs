//! Figure 5 — 2-level consistency, per level, against the omniscient
//! yardstick.
//!
//! Compares `Hc×Hc` and `Hg×Hg` (both with weighted merging) and the
//! omniscient baseline across the per-level budget sweep. Expected
//! shape: the best method tracks the omniscient line within a small
//! factor; `Hc` wins on dense data (White), `Hg` competes on sparse /
//! gappy data (partially synthetic housing).

use hcc_consistency::{omniscient_expected_error, top_down_release, LevelMethod, TopDownConfig};
use hcc_data::{taxi, Dataset, TaxiConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::figure4::two_level_datasets;
use crate::harness::{mean_std, per_level_emd};
use crate::ExpConfig;

/// All four 2-level datasets (census ones from Figure 4's helper plus
/// the 2-level taxi variant).
pub fn datasets(cfg: &ExpConfig) -> Vec<Dataset> {
    let mut ds = two_level_datasets(cfg);
    ds.push(taxi(&TaxiConfig {
        scale: 0.1 * cfg.scale,
        seed: cfg.seed,
        levels: 2,
    }));
    ds
}

/// Runs the 2-level consistency comparison.
pub fn run(cfg: &ExpConfig) -> String {
    run_with_levels(cfg, datasets(cfg), "figure5.csv")
}

/// Shared driver for Figures 5 and 6: sweeps ε for `Hc×…` vs `Hg×…`
/// vs omniscient on the given datasets.
pub fn run_with_levels(cfg: &ExpConfig, datasets: Vec<Dataset>, csv: &str) -> String {
    let mut report = format!(
        "{:<20} {:>6} {:>5} {:>13} {:>13} {:>13}\n",
        "dataset", "eps/lv", "level", "Hc", "Hg", "omniscient"
    );
    let mut rows = Vec::new();
    for ds in &datasets {
        let levels = ds.hierarchy.num_levels();
        for &eps in &cfg.epsilons {
            let total_eps = eps * levels as f64;
            let mut hc_acc = vec![Vec::new(); levels];
            let mut hg_acc = vec![Vec::new(); levels];
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF5);
            for _ in 0..cfg.runs {
                let hc_cfg = TopDownConfig::new(total_eps)
                    .with_method(LevelMethod::Cumulative { bound: cfg.bound });
                let rel = top_down_release(&ds.hierarchy, &ds.data, &hc_cfg, &mut rng)
                    .expect("uniform depth");
                for (l, e) in per_level_emd(&ds.hierarchy, &ds.data, &rel)
                    .into_iter()
                    .enumerate()
                {
                    hc_acc[l].push(e);
                }
                let hg_cfg = TopDownConfig::new(total_eps).with_method(LevelMethod::Unattributed);
                let rel = top_down_release(&ds.hierarchy, &ds.data, &hg_cfg, &mut rng)
                    .expect("uniform depth");
                for (l, e) in per_level_emd(&ds.hierarchy, &ds.data, &rel)
                    .into_iter()
                    .enumerate()
                {
                    hg_acc[l].push(e);
                }
            }
            for l in 0..levels {
                let (hc, _) = mean_std(&hc_acc[l]);
                let (hg, _) = mean_std(&hg_acc[l]);
                // The paper's yardstick is the *analytic* expected
                // error of the omniscient algorithm (its §6.2 worked
                // example computes the formula, not a simulation):
                // avg over the level's nodes of distinct_sizes·√2/ε.
                let nodes = ds.hierarchy.level(l);
                let om = nodes
                    .iter()
                    .map(|&n| omniscient_expected_error(ds.data.node(n).distinct_sizes(), eps))
                    .sum::<f64>()
                    / nodes.len() as f64;
                rows.push(format!(
                    "{},{},{},{:.2},{:.2},{:.2}",
                    ds.name, eps, l, hc, hg, om
                ));
                if (eps - 0.1).abs() < 1e-12 || (eps - 1.0).abs() < 1e-12 {
                    report.push_str(&format!(
                        "{:<20} {:>6} {:>5} {:>13.1} {:>13.1} {:>13.1}\n",
                        ds.name, eps, l, hc, hg, om
                    ));
                }
            }
        }
    }
    crate::harness::write_csv(
        &cfg.out_dir.join(csv),
        "dataset,eps_per_level,level,hc_emd,hg_emd,omniscient_emd",
        &rows,
    );
    report.push_str("(expected shape: best private method within a small factor of omniscient)\n");
    report
}
