//! One module per Section 6 table/figure.

pub mod ablation;
pub mod adaptive_exp;
pub mod bottomup_table;
pub mod figure1;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod naive_table;
pub mod stats_table;

/// Runs every experiment in paper order, returning the concatenated
/// textual report.
pub fn run_all(cfg: &crate::ExpConfig) -> String {
    let mut out = String::new();
    for (name, f) in [
        (
            "§6.1 dataset statistics",
            stats_table::run as fn(&crate::ExpConfig) -> String,
        ),
        ("Figure 1 error visualisation", figure1::run),
        ("§6.2.1 naive method", naive_table::run),
        ("§6.2.2 bottom-up vs Hc", bottomup_table::run),
        ("Figure 4 merge strategies", figure4::run),
        ("Figure 5 2-level consistency", figure5::run),
        ("Figure 6 3-level consistency", figure6::run),
        ("Ablation: Hc L1 vs L2", ablation::run),
        ("Extension: adaptive method selection", adaptive_exp::run),
    ] {
        out.push_str(&format!("\n================ {name} ================\n"));
        out.push_str(&f(cfg));
    }
    out
}
