//! Experiment harness regenerating every table and figure of the
//! paper's Section 6 evaluation.
//!
//! Each experiment lives in [`experiments`] as a function taking an
//! [`ExpConfig`] and returning a printable report while writing CSV
//! series under `{out_dir}`. Thin binaries in `src/bin/` wrap each
//! experiment; `run_all` regenerates everything.
//!
//! Environment overrides (all optional):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `HCC_RUNS` | repetitions averaged per point (paper: 10) | 3 |
//! | `HCC_SCALE` | dataset scale multiplier | 0.2 |
//! | `HCC_SEED` | RNG seed | 42 |
//! | `HCC_BOUND` | public size bound `K` | 100000 |
//! | `HCC_OUT` | output directory | `target/experiments` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod hotpath;
pub mod scaling;
pub mod wire;

pub use harness::ExpConfig;
