//! Shared experiment infrastructure: configuration, statistics,
//! per-level error evaluation and CSV output.

use std::fs;
use std::path::{Path, PathBuf};

use hcc_consistency::HierarchicalCounts;
use hcc_core::{emd, CountOfCounts};
use hcc_hierarchy::Hierarchy;

/// Experiment configuration, populated from environment variables
/// (see the crate docs for the table of overrides).
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Repetitions averaged per data point (the paper uses 10).
    pub runs: usize,
    /// Dataset scale multiplier applied to each generator's default.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Public group-size bound `K` (paper: 100 000).
    pub bound: u64,
    /// Output directory for CSV series.
    pub out_dir: PathBuf,
    /// Per-level privacy budgets swept on figure x-axes.
    pub epsilons: Vec<f64>,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            runs: 3,
            scale: 0.2,
            seed: 42,
            bound: 100_000,
            out_dir: PathBuf::from("target/experiments"),
            epsilons: vec![0.01, 0.05, 0.1, 0.5, 1.0, 2.0],
        }
    }
}

impl ExpConfig {
    /// Reads overrides from the environment.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("HCC_RUNS") {
            cfg.runs = v.parse().expect("HCC_RUNS must be an integer");
        }
        if let Ok(v) = std::env::var("HCC_SCALE") {
            cfg.scale = v.parse().expect("HCC_SCALE must be a float");
        }
        if let Ok(v) = std::env::var("HCC_SEED") {
            cfg.seed = v.parse().expect("HCC_SEED must be an integer");
        }
        if let Ok(v) = std::env::var("HCC_BOUND") {
            cfg.bound = v.parse().expect("HCC_BOUND must be an integer");
        }
        if let Ok(v) = std::env::var("HCC_OUT") {
            cfg.out_dir = PathBuf::from(v);
        }
        cfg
    }

    /// Writes a CSV file under the configured output directory.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) -> PathBuf {
        let path = self.out_dir.join(name);
        write_csv(&path, header, rows);
        path
    }
}

/// Mean and standard deviation *of the mean* (the paper plots 1-σ
/// error bars of the 10-run average, i.e. sample σ divided by √runs).
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

/// Average earth-mover's distance per node at each hierarchy level,
/// comparing a released set of histograms against the truth.
pub fn per_level_emd(
    hierarchy: &Hierarchy,
    truth: &HierarchicalCounts,
    released: &HierarchicalCounts,
) -> Vec<f64> {
    per_level_emd_nodes(hierarchy, truth, released.as_slice())
}

/// As [`per_level_emd`] but for baselines that produce a raw per-node
/// histogram vector (e.g. the omniscient yardstick).
pub fn per_level_emd_nodes(
    hierarchy: &Hierarchy,
    truth: &HierarchicalCounts,
    released: &[CountOfCounts],
) -> Vec<f64> {
    (0..hierarchy.num_levels())
        .map(|l| {
            let nodes = hierarchy.level(l);
            let total: u64 = nodes
                .iter()
                .map(|&n| emd(truth.node(n), &released[n.index()]))
                .sum();
            total as f64 / nodes.len() as f64
        })
        .collect()
}

/// Writes a CSV file, creating parent directories.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("create output directory");
    }
    let mut content = String::with_capacity(rows.len() * 32 + header.len() + 1);
    content.push_str(header);
    content.push('\n');
    for r in rows {
        content.push_str(r);
        content.push('\n');
    }
    fs::write(path, content).expect("write CSV");
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_hierarchy::HierarchyBuilder;

    #[test]
    fn mean_std_basics() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        // sample var = 2, σ_mean = sqrt(2/2) = 1.
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_level_emd_averages_nodes() {
        let mut b = HierarchyBuilder::new("r");
        let a = b.add_child(Hierarchy::ROOT, "a");
        let c = b.add_child(Hierarchy::ROOT, "b");
        let h = b.build();
        let truth = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (a, CountOfCounts::from_group_sizes([1, 1])),
                (c, CountOfCounts::from_group_sizes([2])),
            ],
        )
        .unwrap();
        let released = HierarchicalCounts::from_leaves(
            &h,
            vec![
                (a, CountOfCounts::from_group_sizes([1, 2])), // emd 1
                (c, CountOfCounts::from_group_sizes([2])),    // emd 0
            ],
        )
        .unwrap();
        let lv = per_level_emd(&h, &truth, &released);
        assert_eq!(lv.len(), 2);
        assert_eq!(lv[0], 1.0); // root: single node, emd 1
        assert_eq!(lv[1], 0.5); // two leaves averaging (1 + 0) / 2
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("hcc_bench_test");
        let path = dir.join("x.csv");
        write_csv(&path, "a,b", &["1,2".into(), "3,4".into()]);
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn config_default_epsilons_ascend() {
        let cfg = ExpConfig::default();
        assert!(cfg.epsilons.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(cfg.bound, 100_000);
    }
}
