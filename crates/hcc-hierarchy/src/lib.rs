//! The region hierarchy `Γ` of the paper (Section 3).
//!
//! Regions are organised into a rooted tree: level 0 is the root
//! (e.g. the nation), level 1 subdivides it (states), level 2
//! subdivides further (counties), and so on. Every group (household,
//! taxi, census block, …) lives entirely inside one *leaf* region —
//! the paper's restriction that a group cannot span multiple leaves.
//!
//! [`Hierarchy`] is an immutable arena-indexed tree built through
//! [`HierarchyBuilder`]; [`NodeId`]s are small copyable handles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parse;

pub use parse::{hierarchy_from_csv, hierarchy_to_csv, ParseError};

use std::fmt;

/// Handle to a node of a [`Hierarchy`]. Internally an index into the
/// hierarchy's arenas; only valid for the hierarchy that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The raw index, usable for dense side tables keyed by node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Incrementally constructs a [`Hierarchy`]. The root exists from the
/// start as [`Hierarchy::ROOT`]; children may be attached to any node
/// already added.
#[derive(Debug, Clone)]
pub struct HierarchyBuilder {
    names: Vec<String>,
    parent: Vec<Option<NodeId>>,
    level: Vec<u32>,
}

impl HierarchyBuilder {
    /// Starts a hierarchy whose root region is called `root_name`.
    pub fn new(root_name: impl Into<String>) -> Self {
        Self {
            names: vec![root_name.into()],
            parent: vec![None],
            level: vec![0],
        }
    }

    /// Adds a region under `parent` and returns its id.
    ///
    /// Panics if `parent` does not belong to this builder.
    pub fn add_child(&mut self, parent: NodeId, name: impl Into<String>) -> NodeId {
        assert!(
            parent.index() < self.names.len(),
            "parent {parent} does not exist"
        );
        let id = NodeId(u32::try_from(self.names.len()).expect("too many regions"));
        self.names.push(name.into());
        self.parent.push(Some(parent));
        self.level.push(self.level[parent.index()] + 1);
        id
    }

    /// Finalises the tree.
    pub fn build(self) -> Hierarchy {
        let n = self.names.len();
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(NodeId(i as u32));
            }
        }
        let max_level = self.level.iter().copied().max().unwrap_or(0);
        let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); max_level as usize + 1];
        for (i, &l) in self.level.iter().enumerate() {
            levels[l as usize].push(NodeId(i as u32));
        }
        Hierarchy {
            names: self.names,
            parent: self.parent,
            children,
            level: self.level,
            levels,
        }
    }
}

/// An immutable region hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    names: Vec<String>,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    level: Vec<u32>,
    levels: Vec<Vec<NodeId>>,
}

impl Hierarchy {
    /// The root node (level 0). Every hierarchy has one.
    pub const ROOT: NodeId = NodeId(0);

    /// Total number of regions in the tree.
    pub fn num_nodes(&self) -> usize {
        self.names.len()
    }

    /// Number of levels `L + 1` (root inclusive). A single-node
    /// hierarchy has one level.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The depth `L` of the deepest level (0 for a root-only tree).
    pub fn depth(&self) -> usize {
        self.levels.len() - 1
    }

    /// The display name of a region.
    pub fn name(&self, node: NodeId) -> &str {
        &self.names[node.index()]
    }

    /// The parent region, or `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// The child regions, in insertion order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Whether the region has no children.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children[node.index()].is_empty()
    }

    /// The level of a region (root = 0).
    pub fn level_of(&self, node: NodeId) -> usize {
        self.level[node.index()] as usize
    }

    /// All regions at the given level, or an empty slice past the
    /// deepest level.
    pub fn level(&self, l: usize) -> &[NodeId] {
        self.levels.get(l).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All leaf regions, in id order.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(|&n| self.is_leaf(n))
    }

    /// Iterates over all node ids, root first, in creation order
    /// (which is also non-decreasing in level).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// The paper's `Level_j(ℓ)`: the ancestor of `node` living at
    /// level `j`. Returns `None` if `node` is above level `j`.
    pub fn ancestor_at_level(&self, node: NodeId, j: usize) -> Option<NodeId> {
        let mut cur = node;
        loop {
            let l = self.level_of(cur);
            if l == j {
                return Some(cur);
            }
            if l < j {
                return None;
            }
            cur = self.parent(cur)?;
        }
    }

    /// Whether every leaf sits at the deepest level — required by the
    /// top-down consistency algorithm, which processes complete
    /// levels.
    pub fn is_uniform_depth(&self) -> bool {
        let d = self.depth();
        self.leaves().all(|n| self.level_of(n) == d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// nation → {VA → {fairfax, arlington}, MD → {montgomery}}.
    fn sample() -> (Hierarchy, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut b = HierarchyBuilder::new("nation");
        let va = b.add_child(Hierarchy::ROOT, "VA");
        let md = b.add_child(Hierarchy::ROOT, "MD");
        let fx = b.add_child(va, "fairfax");
        let ar = b.add_child(va, "arlington");
        let mo = b.add_child(md, "montgomery");
        (b.build(), va, md, fx, ar, mo)
    }

    #[test]
    fn structure_queries() {
        let (h, va, md, fx, ar, mo) = sample();
        assert_eq!(h.num_nodes(), 6);
        assert_eq!(h.num_levels(), 3);
        assert_eq!(h.depth(), 2);
        assert_eq!(h.name(Hierarchy::ROOT), "nation");
        assert_eq!(h.name(fx), "fairfax");
        assert_eq!(h.parent(va), Some(Hierarchy::ROOT));
        assert_eq!(h.parent(Hierarchy::ROOT), None);
        assert_eq!(h.children(va), &[fx, ar]);
        assert_eq!(h.children(md), &[mo]);
        assert!(h.is_leaf(fx));
        assert!(!h.is_leaf(va));
        assert_eq!(h.level_of(Hierarchy::ROOT), 0);
        assert_eq!(h.level_of(md), 1);
        assert_eq!(h.level_of(mo), 2);
    }

    #[test]
    fn levels_partition_the_nodes() {
        let (h, va, md, fx, ar, mo) = sample();
        assert_eq!(h.level(0), &[Hierarchy::ROOT]);
        assert_eq!(h.level(1), &[va, md]);
        assert_eq!(h.level(2), &[fx, ar, mo]);
        assert!(h.level(3).is_empty());
        let total: usize = (0..h.num_levels()).map(|l| h.level(l).len()).sum();
        assert_eq!(total, h.num_nodes());
    }

    #[test]
    fn leaves_and_uniform_depth() {
        let (h, _, _, fx, ar, mo) = sample();
        let leaves: Vec<_> = h.leaves().collect();
        assert_eq!(leaves, vec![fx, ar, mo]);
        assert!(h.is_uniform_depth());

        // Attach a leaf at level 1 → no longer uniform.
        let mut b = HierarchyBuilder::new("r");
        let a = b.add_child(Hierarchy::ROOT, "a");
        let _deep = b.add_child(a, "deep");
        let _shallow = b.add_child(Hierarchy::ROOT, "shallow");
        let h2 = b.build();
        assert!(!h2.is_uniform_depth());
    }

    #[test]
    fn ancestor_at_level_walks_up() {
        let (h, va, _, fx, _, mo) = sample();
        assert_eq!(h.ancestor_at_level(fx, 1), Some(va));
        assert_eq!(h.ancestor_at_level(fx, 0), Some(Hierarchy::ROOT));
        assert_eq!(h.ancestor_at_level(fx, 2), Some(fx));
        assert_eq!(h.ancestor_at_level(va, 2), None);
        assert_eq!(h.ancestor_at_level(mo, 1), h.parent(mo));
    }

    #[test]
    fn root_only_hierarchy() {
        let h = HierarchyBuilder::new("solo").build();
        assert_eq!(h.num_nodes(), 1);
        assert_eq!(h.num_levels(), 1);
        assert_eq!(h.depth(), 0);
        assert!(h.is_leaf(Hierarchy::ROOT));
        assert!(h.is_uniform_depth());
        assert_eq!(h.leaves().collect::<Vec<_>>(), vec![Hierarchy::ROOT]);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn invalid_parent_panics() {
        let mut b = HierarchyBuilder::new("r");
        // Forge an id from a different (larger) builder.
        let bogus = {
            let mut other = HierarchyBuilder::new("x");
            let a = other.add_child(Hierarchy::ROOT, "a");
            other.add_child(a, "b")
        };
        b.add_child(bogus, "child");
    }

    #[test]
    fn display_and_index() {
        let (_, va, ..) = sample();
        assert_eq!(va.to_string(), "n1");
        assert_eq!(va.index(), 1);
    }
}
